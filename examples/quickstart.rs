//! Quickstart: create a database through the governor, load a document,
//! query it, and read the observability surfaces.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use sedna::{DbConfig, Governor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("sedna-quickstart");
    let _ = std::fs::remove_dir_all(&dir);

    // 1. Create a database (data file + write-ahead log on disk),
    //    registered at the governor — the system's control center.
    let governor = Governor::new();
    let db = governor.create_database("quickstart", &dir, DbConfig::default())?;
    let mut session = db.session();

    // 2. DDL + bulk load: the paper's Figure 2 document.
    session.execute("CREATE DOCUMENT 'library'")?;
    session.load_xml(
        "library",
        r#"<library>
            <book><title>Foundations of Databases</title>
                  <author>Abiteboul</author><author>Hull</author><author>Vianu</author></book>
            <book><title>An Introduction to Database Systems</title><author>Date</author>
                  <issue><publisher>Addison-Wesley</publisher><year>2004</year></issue></book>
            <paper><title>A Relational Model for Large Shared Data Banks</title>
                   <author>Codd</author></paper>
           </library>"#,
    )?;

    // 3. XQuery.
    println!("All titles:");
    println!("  {}", session.query("doc('library')//title/text()")?);

    println!("Books with more than one author:");
    let q = "for $b in doc('library')/library/book \
             where count($b/author) > 1 \
             return $b/title/text()";
    println!("  {}", session.query(q)?);

    println!("Constructed summary:");
    let q = "<summary books=\"{count(doc('library')//book)}\" \
                      authors=\"{count(doc('library')//author)}\"/>";
    println!("  {}", session.query(q)?);

    // 4. An update, visible immediately.
    session.execute(
        "UPDATE insert <author>Second Author</author> into doc('library')/library/paper",
    )?;
    println!("Paper authors after update:");
    println!(
        "  {}",
        session.query("string-join(doc('library')//paper/author/text(), ', ')")?
    );

    // 5. Per-query profile: phase timings + executor counters of the
    //    last statement (EXPLAIN-ANALYZE style).
    if let Some(profile) = session.last_profile() {
        println!("\nProfile of the last statement:");
        for line in profile.render().lines() {
            println!("  {line}");
        }
    }

    // 6. System-wide metrics, aggregated by the governor across every
    //    registered database (Prometheus text format).
    let snap = governor.metrics_snapshot();
    println!("\nGovernor metrics snapshot:");
    println!(
        "  statements={} commits={} buffer hits/misses={}/{} wal fsyncs={} (p99 {} ns)",
        snap.counter("sedna_query_statements_total"),
        snap.counter("sedna_txn_commits_total"),
        snap.counter("sedna_buffer_hits_total"),
        snap.counter("sedna_buffer_misses_total"),
        snap.counter("sedna_wal_fsyncs_total"),
        snap.histogram("sedna_wal_fsync_ns").map_or(0, |h| h.p99()),
    );
    println!("\nPrometheus exposition (excerpt):");
    for line in governor
        .render_prometheus()
        .lines()
        .filter(|l| l.starts_with("sedna_buffer") || l.starts_with("sedna_txn_commits"))
    {
        println!("  {line}");
    }

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
