//! Quickstart: create a database, load a document, query it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use sedna::{Database, DbConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("sedna-quickstart");
    let _ = std::fs::remove_dir_all(&dir);

    // 1. Create a database (data file + write-ahead log on disk).
    let db = Database::create(&dir, DbConfig::default())?;
    let mut session = db.session();

    // 2. DDL + bulk load: the paper's Figure 2 document.
    session.execute("CREATE DOCUMENT 'library'")?;
    session.load_xml(
        "library",
        r#"<library>
            <book><title>Foundations of Databases</title>
                  <author>Abiteboul</author><author>Hull</author><author>Vianu</author></book>
            <book><title>An Introduction to Database Systems</title><author>Date</author>
                  <issue><publisher>Addison-Wesley</publisher><year>2004</year></issue></book>
            <paper><title>A Relational Model for Large Shared Data Banks</title>
                   <author>Codd</author></paper>
           </library>"#,
    )?;

    // 3. XQuery.
    println!("All titles:");
    println!("  {}", session.query("doc('library')//title/text()")?);

    println!("Books with more than one author:");
    let q = "for $b in doc('library')/library/book \
             where count($b/author) > 1 \
             return $b/title/text()";
    println!("  {}", session.query(q)?);

    println!("Constructed summary:");
    let q = "<summary books=\"{count(doc('library')//book)}\" \
                      authors=\"{count(doc('library')//author)}\"/>";
    println!("  {}", session.query(q)?);

    // 4. An update, visible immediately.
    session.execute(
        "UPDATE insert <author>Second Author</author> into doc('library')/library/paper",
    )?;
    println!("Paper authors after update:");
    println!(
        "  {}",
        session.query("string-join(doc('library')//paper/author/text(), ', ')")?
    );

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
