//! Snapshot isolation in action (§6.1–§6.3): read-only transactions run
//! against a pinned snapshot without taking document locks, so a writer
//! never blocks them — and they never see its uncommitted work.
//!
//! ```sh
//! cargo run --release --example versioned_reads
//! ```

use sedna::{Database, DbConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("sedna-versioned-reads");
    let _ = std::fs::remove_dir_all(&dir);
    let db = Database::create(&dir, DbConfig::default())?;
    let mut s = db.session();
    s.execute("CREATE DOCUMENT 'lib'")?;
    s.load_xml("lib", &sedna_workload::library(200, 5))?;
    let initial = s.query("count(doc('lib')//book)")?;
    println!("initial books: {initial}");
    drop(s);

    // A long-running read-only transaction pins the current snapshot.
    let mut pinned = db.session();
    pinned.begin_read_only()?;

    // Writers churn in parallel: each commit creates new page versions.
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|r| {
            let db = db.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut n = 0u64;
                let mut s = db.session();
                while !stop.load(Ordering::Relaxed) {
                    s.begin_read_only().unwrap();
                    let _ = s.query("count(doc('lib')//author)").unwrap();
                    s.commit().unwrap();
                    n += 1;
                }
                println!("reader {r}: {n} snapshot transactions, never blocked");
                n
            })
        })
        .collect();

    let mut writer = db.session();
    for i in 0..20 {
        writer.execute(&format!(
            "UPDATE insert <book><title>Hot Update {i}</title><author>Writer</author></book> into doc('lib')/library"
        ))?;
    }
    drop(writer);
    stop.store(true, Ordering::Relaxed);
    let total: u64 = readers.into_iter().map(|h| h.join().unwrap()).sum();
    println!("total reader transactions while writing: {total}");

    // The pinned snapshot still shows the initial state...
    let pinned_count = pinned.query("count(doc('lib')//book)")?;
    println!("pinned snapshot still sees: {pinned_count} books");
    assert_eq!(pinned_count, initial);
    pinned.commit()?;

    // ...while a fresh transaction sees all 20 inserts.
    let mut fresh = db.session();
    let now = fresh.query("count(doc('lib')//book)")?;
    println!("fresh transaction sees:     {now} books");

    let vstats = db.version_stats();
    println!(
        "page versions created: {}, purged when no snapshot needed them: {}",
        vstats.versions_created, vstats.versions_purged
    );

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
