//! A library catalog application: a larger generated library, value
//! indexes, reporting queries, and an update mix with index maintenance.
//!
//! ```sh
//! cargo run --release --example library_catalog
//! ```

use sedna::{Database, DbConfig};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("sedna-library-catalog");
    let _ = std::fs::remove_dir_all(&dir);
    let db = Database::create(&dir, DbConfig::default())?;
    let mut s = db.session();

    // Load a 2 000-book generated library (~16k nodes).
    let xml = sedna_workload::library(2000, 42);
    s.execute("CREATE DOCUMENT 'lib'")?;
    let t = Instant::now();
    let nodes = s.load_xml("lib", &xml)?;
    println!("loaded {nodes} nodes in {:?}", t.elapsed());

    // A value index over book prices (CREATE INDEX DDL).
    s.execute("CREATE INDEX 'byprice' ON doc('lib')/library/book BY price AS xs:double")?;
    println!("indexes: {:?}", db.index_names());

    // Reporting queries.
    let t = Instant::now();
    let n = s.query("count(doc('lib')//book[issue/year > 1999])")?;
    println!("books published after 1999: {n}  ({:?})", t.elapsed());

    let t = Instant::now();
    let expensive = s.query("count(index-scan-between('byprice', 100, 200))")?;
    println!(
        "books priced 100..200 via index: {expensive}  ({:?})",
        t.elapsed()
    );

    let t = Instant::now();
    let same_scan = s.query("count(doc('lib')/library/book[number(price) >= 100])")?;
    println!(
        "same via path scan:             {same_scan}  ({:?})",
        t.elapsed()
    );

    // Top publishers by volume, with FLWOR + order by.
    let q = "for $p in distinct-values(doc('lib')//publisher) \
             order by $p \
             return <publisher name=\"{$p}\" books=\"{count(doc('lib')//book[issue/publisher = $p])}\"/>";
    let t = Instant::now();
    let report = s.query(q)?;
    println!(
        "publisher report ({} entries) in {:?}",
        report.matches("<publisher").count(),
        t.elapsed()
    );

    // An update mix: insert authors at random books, index stays in sync.
    let updates = sedna_workload::author_insert_statements(50, 2000, 7);
    let t = Instant::now();
    for u in &updates {
        s.execute(u)?;
    }
    println!("applied {} updates in {:?}", updates.len(), t.elapsed());
    println!(
        "new author count: {}",
        s.query("count(doc('lib')//author[starts-with(string(.), 'New Author')])")?
    );

    // Checkpoint, then show buffer statistics.
    drop(s);
    db.checkpoint()?;
    let stats = db.buffer_stats();
    println!(
        "buffer pool: {} hits, {} misses, {} evictions, {} writebacks",
        stats.hits, stats.misses, stats.evictions, stats.writebacks
    );

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
