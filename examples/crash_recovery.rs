//! Durability walkthrough (§6.4–§6.5): WAL commits, a simulated crash,
//! two-step recovery, and hot backup with point-in-time restore.
//!
//! ```sh
//! cargo run --release --example crash_recovery
//! ```

use sedna::{Database, DbConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("sedna-crash-demo");
    let backup = std::env::temp_dir().join("sedna-crash-demo-backup");
    let restored = std::env::temp_dir().join("sedna-crash-demo-restored");
    for d in [&dir, &backup, &restored] {
        let _ = std::fs::remove_dir_all(d);
    }

    // Build some committed state.
    let db = Database::create(&dir, DbConfig::default())?;
    let mut s = db.session();
    s.execute("CREATE DOCUMENT 'ledger'")?;
    s.load_xml(
        "ledger",
        "<ledger><entry id=\"1\">opening balance</entry></ledger>",
    )?;
    s.execute("UPDATE insert <entry id=\"2\">first deposit</entry> into doc('ledger')/ledger")?;
    println!(
        "entries committed: {}",
        s.query("count(doc('ledger')//entry)")?
    );

    // Take a full hot backup while running.
    drop(s);
    db.backup(&backup)?;
    println!("full hot backup taken");

    // More committed work + one transaction that never commits.
    let mut s = db.session();
    s.execute("UPDATE insert <entry id=\"3\">second deposit</entry> into doc('ledger')/ledger")?;
    db.backup_incremental(&backup)?;
    println!("incremental backup taken after entry 3");

    s.begin_update()?;
    s.execute("UPDATE delete doc('ledger')//entry")?; // uncommitted!
    println!("uncommitted delete in flight; crashing now…");
    std::mem::forget(s); // skip the rollback a clean Drop would run
    db.crash(); // dirty pages are lost, as in a real crash

    // Two-step recovery: snapshot restore + redo of committed work only.
    let db = Database::open(&dir, DbConfig::default())?;
    let mut s = db.session();
    let n = s.query("count(doc('ledger')//entry)")?;
    println!("after recovery: {n} entries (the uncommitted delete is gone)");
    assert_eq!(n, "3");
    drop(s);

    // Point-in-time restore from the backup: full-only = 2 entries.
    let r = Database::restore(&backup, &restored, DbConfig::default(), Some(0), None)?;
    let mut s = r.session();
    println!(
        "restored from full backup only: {} entries",
        s.query("count(doc('ledger')//entry)")?
    );
    drop(s);
    drop(r);
    let _ = std::fs::remove_dir_all(&restored);

    // With the incremental applied: 3 entries.
    let r = Database::restore(&backup, &restored, DbConfig::default(), None, None)?;
    let mut s = r.session();
    println!(
        "restored with incremental:      {} entries",
        s.query("count(doc('ledger')//entry)")?
    );

    for d in [&dir, &backup, &restored] {
        let _ = std::fs::remove_dir_all(d);
    }
    Ok(())
}
