//! An XMark-flavored auction site: mixed-structure data, analytical
//! queries, and the schema-driven storage paying off on typed scans.
//!
//! ```sh
//! cargo run --release --example auction_site
//! ```

use sedna::{Database, DbConfig};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("sedna-auction-site");
    let _ = std::fs::remove_dir_all(&dir);
    let db = Database::create(&dir, DbConfig::default())?;
    let mut s = db.session();

    let xml = sedna_workload::auction(1000, 99);
    s.execute("CREATE DOCUMENT 'site'")?;
    let nodes = s.load_xml("site", &xml)?;
    println!("auction site: {nodes} nodes, {} bytes of XML", xml.len());

    // Q1: typed sub-element retrieval — the schema-clustered strength.
    let t = Instant::now();
    let names = s.query("count(doc('site')//item/name)")?;
    println!("item names: {names}  ({:?})", t.elapsed());

    // Q2: selective predicate over one region.
    let t = Instant::now();
    let eu = s.query("count(doc('site')/site/regions/europe/item[quantity > 5])")?;
    println!("bulk European items: {eu}  ({:?})", t.elapsed());

    // Q3: join-like lookup — auctions referencing an item id.
    let t = Instant::now();
    let q = "for $a in doc('site')//open_auction \
             where count($a/bidder) >= 3 \
             order by number($a/current) descending \
             return <hot auction=\"{string($a/@id)}\" bids=\"{count($a/bidder)}\" current=\"{string($a/current)}\"/>";
    let hot = s.query(q)?;
    println!(
        "hot auctions: {} entries  ({:?})",
        hot.matches("<hot").count(),
        t.elapsed()
    );

    // Q4: aggregate over numeric content.
    let t = Instant::now();
    let avg = s.query("round(avg(doc('site')//open_auction/current))")?;
    println!("average current bid: {avg}  ({:?})", t.elapsed());

    // Q5: people by country (grouping via distinct-values).
    let q = "for $c in distinct-values(doc('site')//person/country) \
             order by $c \
             return concat($c, ':', count(doc('site')//person[country = $c]))";
    let t = Instant::now();
    println!("people per country: {}  ({:?})", s.query(q)?, t.elapsed());

    // An auction closes: remove it and its bids in one transaction.
    s.begin_update()?;
    let before = s.query("count(doc('site')//open_auction)")?;
    s.execute("UPDATE delete doc('site')//open_auction[1]")?;
    s.commit()?;
    let after = s.query("count(doc('site')//open_auction)")?;
    println!("open auctions: {before} -> {after}");

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
