//! Workspace root of the Sedna reproduction.
//!
//! This meta-crate exists to host the cross-crate integration tests
//! (`tests/`) and the runnable examples (`examples/`) at the repository
//! root. The actual system lives in the `crates/` workspace members; the
//! public entry point is the [`sedna`] crate.
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the
//! system inventory and per-experiment index, and `EXPERIMENTS.md` for
//! the paper-vs-measured record.

#![forbid(unsafe_code)]

pub use sedna;
