//! Cross-crate end-to-end tests over the generated workloads, including
//! property-based checks that the optimizer rewrites never change query
//! results and that storage round-trips arbitrary documents.

use proptest::prelude::*;
use sedna::{Database, DbConfig};

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sedna-e2e-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn workload_documents_load_and_query() {
    let dir = tmpdir("workloads");
    let db = Database::create(&dir, DbConfig::small()).unwrap();
    let mut s = db.session();

    s.execute("CREATE DOCUMENT 'lib'").unwrap();
    s.load_xml("lib", &sedna_workload::library(300, 1)).unwrap();
    assert_eq!(s.query("count(doc('lib')/library/book)").unwrap(), "300");

    s.execute("CREATE DOCUMENT 'site'").unwrap();
    s.load_xml("site", &sedna_workload::auction(200, 2))
        .unwrap();
    assert_eq!(s.query("count(doc('site')//item)").unwrap(), "200");
    assert_eq!(s.query("count(doc('site')//person)").unwrap(), "100");

    s.execute("CREATE DOCUMENT 'deep'").unwrap();
    s.load_xml("deep", &sedna_workload::deep(40, 3, 3)).unwrap();
    assert_eq!(s.query("count(doc('deep')//para)").unwrap(), "121");
    assert_eq!(
        s.query("string(doc('deep')//sec[@level = 39]/para[1])")
            .unwrap(),
        // `(//sec)[40]` selects the 40th section globally — unlike
        // `//sec[40]`, which filters per parent and selects nothing here.
        s.query("string((doc('deep')//sec)[40]/para[1])").unwrap(),
    );
    drop(s);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn update_mix_then_integrity() {
    let dir = tmpdir("update-mix");
    let db = Database::create(&dir, DbConfig::small()).unwrap();
    let mut s = db.session();
    s.execute("CREATE DOCUMENT 'lib'").unwrap();
    s.load_xml("lib", &sedna_workload::library(100, 4)).unwrap();
    let before: usize = s
        .query("count(doc('lib')//author)")
        .unwrap()
        .parse()
        .unwrap();
    for stmt in sedna_workload::author_insert_statements(60, 100, 5) {
        s.execute(&stmt).unwrap();
    }
    let after: usize = s
        .query("count(doc('lib')//author)")
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(after, before + 60);
    // Structural integrity: every author has a book or paper parent.
    assert_eq!(
        s.query("count(doc('lib')//author[not(parent::book) and not(parent::paper)])")
            .unwrap(),
        "0"
    );
    // Labels still give consistent document order: titles come in
    // ascending volume numbers.
    let first = s.query("string(doc('lib')/library/book[1]/title)").unwrap();
    assert!(first.ends_with("vol. 0"));
    drop(s);
    std::fs::remove_dir_all(dir).unwrap();
}

/// Strategy generating small random XML documents.
fn arb_xml() -> impl Strategy<Value = String> {
    // A tree of up to depth 3 with random tags from a small alphabet.
    let leaf = prop_oneof![
        "[a-z]{1,8}".prop_map(|t| format!("<leaf>{t}</leaf>")),
        Just("<empty/>".to_string()),
        "[a-z]{1,6}".prop_map(|v| format!("<item k=\"{v}\">{v}</item>")),
    ];
    let node = leaf.prop_recursive(3, 24, 4, |inner| {
        (
            prop_oneof![Just("a"), Just("b"), Just("c")],
            proptest::collection::vec(inner, 0..4),
        )
            .prop_map(|(tag, children)| {
                if children.is_empty() {
                    format!("<{tag}/>")
                } else {
                    format!("<{tag}>{}</{tag}>", children.join(""))
                }
            })
    });
    node.prop_map(|body| format!("<root>{body}</root>"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any generated document loads into storage and serializes back to
    /// the same canonical form our DOM produces.
    #[test]
    fn prop_storage_round_trips_documents(xml in arb_xml()) {
        use sedna_sas::{Sas, SasConfig, TxnToken, View};
        use sedna_storage::build::load_xml;
        use sedna_storage::ParentMode;
        let sas = Sas::in_memory(SasConfig {
            page_size: 1024,
            layer_size: 1024 * 1024,
            buffer_frames: 1024,
            buffer_shards: 0,
        }).unwrap();
        let vas = sas.session();
        vas.begin(View::LATEST, Some(TxnToken(1)));
        let mut schema = sedna_schema::SchemaTree::new();
        let doc = load_xml(&vas, &mut schema, ParentMode::Indirect, &xml).unwrap();
        // Serialize through the query engine.
        let view = sedna_xquery::exec::Database {
            vas: &vas,
            docs: vec![sedna_xquery::exec::DocEntry {
                name: "d".into(),
                schema: &schema,
                doc: &doc,
            }],
            indexes: vec![],
        };
        let stmt = sedna_xquery::compile("doc('d')/root").unwrap();
        let mut ex = sedna_xquery::exec::Executor::new(&view, &stmt, sedna_xquery::exec::ConstructMode::Embedded);
        let result = ex.run().unwrap();
        let out = ex.serialize_sequence(&result).unwrap();
        // Compare against the DOM serializer (canonical form).
        let dom = sedna_xml::parse(&xml).unwrap();
        let expected = sedna_xml::serialize::to_string(&dom);
        prop_assert_eq!(out, expected);
    }

    /// The §5.1 rewrites never change results on random documents.
    #[test]
    fn prop_rewrites_preserve_semantics(xml in arb_xml(), qsel in 0usize..6) {
        use sedna_sas::{Sas, SasConfig, TxnToken, View};
        use sedna_storage::build::load_xml;
        use sedna_storage::ParentMode;
        let queries = [
            "count(doc('d')//leaf)",
            "doc('d')//item[@k]",
            "count(doc('d')/root/a/b)",
            "for $x in doc('d')//a where exists($x/b) return count($x/b)",
            "doc('d')//b/..",
            "count(doc('d')//a[1])",
        ];
        let q = queries[qsel];
        let sas = Sas::in_memory(SasConfig {
            page_size: 1024,
            layer_size: 1024 * 1024,
            buffer_frames: 1024,
            buffer_shards: 0,
        }).unwrap();
        let vas = sas.session();
        vas.begin(View::LATEST, Some(TxnToken(1)));
        let mut schema = sedna_schema::SchemaTree::new();
        let doc = load_xml(&vas, &mut schema, ParentMode::Indirect, &xml).unwrap();
        let view = sedna_xquery::exec::Database {
            vas: &vas,
            docs: vec![sedna_xquery::exec::DocEntry {
                name: "d".into(),
                schema: &schema,
                doc: &doc,
            }],
            indexes: vec![],
        };
        let optimized = sedna_xquery::compile(q).unwrap();
        let raw = {
            let s = sedna_xquery::parser::parse_statement(q).unwrap();
            let s = sedna_xquery::static_ctx::analyze(s).unwrap();
            sedna_xquery::rewrite::rewrite_with(s, sedna_xquery::rewrite::RewriteOptions {
                remove_ddo: false,
                combine_descendant: false,
                lazy_invariants: false,
                structural_paths: false,
                inline_functions: false,
            }).0
        };
        let run = |stmt: &sedna_xquery::Statement| {
            let mut ex = sedna_xquery::exec::Executor::new(
                &view, stmt, sedna_xquery::exec::ConstructMode::Embedded,
            );
            let r = ex.run().unwrap();
            ex.serialize_sequence(&r).unwrap()
        };
        prop_assert_eq!(run(&optimized), run(&raw), "query: {}", q);
    }
}
