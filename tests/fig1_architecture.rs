//! F1 — Figure 1 invariants: the governor tracks databases; each client
//! gets a connection (session); each transaction runs the
//! parser → optimizer → executor pipeline; the database manager pairs the
//! buffer manager with the transaction manager.

use sedna::{DbConfig, Governor};

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sedna-fig1-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn governor_is_the_control_center() {
    let gov = Governor::new();
    let d1 = tmpdir("db1");
    let d2 = tmpdir("db2");
    gov.create_database("db1", &d1, DbConfig::small()).unwrap();
    gov.create_database("db2", &d2, DbConfig::small()).unwrap();
    // "It keeps track of all databases [...] running in the system."
    assert_eq!(gov.database_names(), ["db1", "db2"]);
    // "For each Sedna client, the governor creates an instance of the
    // connection component."
    let mut c1 = gov.connect("db1").unwrap();
    let mut c2 = gov.connect("db2").unwrap();
    c1.execute("CREATE DOCUMENT 'a'").unwrap();
    c2.execute("CREATE DOCUMENT 'b'").unwrap();
    // Connections are bound to their database.
    assert_eq!(gov.database("db1").unwrap().document_names(), ["a"]);
    assert_eq!(gov.database("db2").unwrap().document_names(), ["b"]);
    drop(c1);
    drop(c2);
    for d in [d1, d2] {
        std::fs::remove_dir_all(d).unwrap();
    }
}

#[test]
fn transactions_run_the_full_pipeline() {
    let gov = Governor::new();
    let dir = tmpdir("pipeline");
    gov.create_database("main", &dir, DbConfig::small())
        .unwrap();
    let mut s = gov.connect("main").unwrap();
    s.execute("CREATE DOCUMENT 'd'").unwrap();
    s.load_xml("d", "<r><x>1</x><x>2</x></r>").unwrap();
    // Parse errors are parser-stage errors; unknown names are
    // static-analysis errors; missing documents are executor errors —
    // the three stages §3/§5 name.
    assert!(matches!(
        s.execute("for $x in"),
        Err(sedna::DbError::Query(
            sedna_xquery::QueryError::Parse { .. }
        ))
    ));
    assert!(matches!(
        s.execute("$undeclared"),
        Err(sedna::DbError::Query(sedna_xquery::QueryError::Static(_)))
    ));
    assert!(matches!(
        s.execute("doc('missing')/r"),
        Err(sedna::DbError::Query(sedna_xquery::QueryError::Dynamic(_)))
    ));
    // And a healthy statement traverses all of them.
    assert_eq!(s.query("count(doc('d')//x)").unwrap(), "2");
    drop(s);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn all_three_statement_types_share_one_entry_point() {
    // §3: "the operation tree produced by the parser is designed to
    // provide uniform representation for all the 3 query/statement types".
    let gov = Governor::new();
    let dir = tmpdir("uniform");
    gov.create_database("main", &dir, DbConfig::small())
        .unwrap();
    let mut s = gov.connect("main").unwrap();
    // DDL
    assert_eq!(
        s.execute("CREATE DOCUMENT 'd'").unwrap(),
        sedna::ExecOutcome::Done
    );
    s.load_xml("d", "<r/>").unwrap();
    // Update
    assert_eq!(
        s.execute("UPDATE insert <x>1</x> into doc('d')/r").unwrap(),
        sedna::ExecOutcome::Updated(1)
    );
    // Query
    assert_eq!(
        s.execute("string(doc('d')/r/x)").unwrap(),
        sedna::ExecOutcome::Results("1".into())
    );
    drop(s);
    std::fs::remove_dir_all(dir).unwrap();
}
