//! Concurrency stress: many sessions mixing snapshot reads, locked
//! updates, rollbacks, checkpoints, and a final crash/recovery — the
//! whole §6 machinery under load; plus a pool-level eviction-pressure
//! phase driving the sharded buffer manager directly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sedna::{Database, DbConfig};
use sedna_sas::{BufferPool, MemPageStore, PageStore, XPtr, PAGE_HEADER_LEN};

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sedna-stress-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn mixed_sessions_stress_then_recover() {
    let dir = tmpdir("mixed");
    let db = Database::create(&dir, DbConfig::small()).unwrap();
    {
        let mut s = db.session();
        s.execute("CREATE DOCUMENT 'lib'").unwrap();
        s.load_xml("lib", &sedna_workload::library(150, 77))
            .unwrap();
    }
    let committed = Arc::new(AtomicU64::new(0));
    let reads = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();
    // 3 writers: each commits some inserts and rolls back others.
    for w in 0..3u64 {
        let db = db.clone();
        let committed = Arc::clone(&committed);
        handles.push(std::thread::spawn(move || {
            let mut s = db.session();
            for i in 0..12 {
                s.begin_update().unwrap();
                s.execute(&format!(
                    "UPDATE insert <author>W{w}N{i}</author> into doc('lib')/library/paper[1]"
                ))
                .unwrap();
                if i % 3 == 0 {
                    s.rollback().unwrap();
                } else {
                    s.commit().unwrap();
                    committed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }
    // 4 snapshot readers hammering concurrently.
    for _ in 0..4 {
        let db = db.clone();
        let reads = Arc::clone(&reads);
        handles.push(std::thread::spawn(move || {
            let mut s = db.session();
            for _ in 0..40 {
                s.begin_read_only().unwrap();
                let n: u64 = s
                    .query("count(doc('lib')//paper[1]/author)")
                    .unwrap()
                    .parse()
                    .unwrap();
                // A snapshot is internally consistent: counting twice in
                // one transaction gives the same answer.
                let again: u64 = s
                    .query("count(doc('lib')//paper[1]/author)")
                    .unwrap()
                    .parse()
                    .unwrap();
                assert_eq!(n, again);
                s.commit().unwrap();
                reads.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }
    // A checkpointer running alongside.
    {
        let db = db.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..4 {
                db.checkpoint().unwrap();
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let committed = committed.load(Ordering::Relaxed);
    assert!(reads.load(Ordering::Relaxed) >= 160);

    // Exactly the committed inserts are visible (1 original author).
    let mut s = db.session();
    let n: u64 = s
        .query("count(doc('lib')//paper[1]/author)")
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(n, committed + 1, "rolled-back work must not surface");
    drop(s);

    // Crash and recover: the same state must come back.
    db.crash();
    let db = Database::open(&dir, DbConfig::small()).unwrap();
    let mut s = db.session();
    let after: u64 = s
        .query("count(doc('lib')//paper[1]/author)")
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(after, committed + 1);
    // Structure still fully navigable.
    assert_eq!(s.query("count(doc('lib')//book)").unwrap(), "150");
    drop(s);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn sharded_pool_eviction_pressure_readers_and_writer() {
    // Pool-level stress on the sharded buffer manager: the pool (16
    // frames) is much smaller than the working set (64 pages), so every
    // thread continuously fights the clock for victims across shards.
    // Asserts: the run terminates (no deadlock), no write-back is lost,
    // and per-shard accounting stays exact (lookups == hits + misses).
    const PS: usize = 512;
    const FRAMES: usize = 16;
    const SHARDS: usize = 4;
    const PAGES: usize = 64;
    const READERS: usize = 4;

    let pool = Arc::new(BufferPool::with_shards(FRAMES, PS, SHARDS));
    let store = Arc::new(MemPageStore::new(PS));
    let mut pages = Vec::new();
    for i in 0..PAGES {
        let page = XPtr::new(0, ((i + 1) * PS) as u32);
        let phys = store.alloc().unwrap();
        let fref = pool.acquire_fresh(page, phys, store.as_ref()).unwrap();
        let mut w = pool.try_write(&fref, phys).unwrap();
        // Per-page marker (verified by readers) + write counter
        // (verified against the writer's tally at the end).
        w.bytes_mut()[PAGE_HEADER_LEN + 8] = i as u8;
        drop(w);
        pages.push((page, phys));
    }
    let pages = Arc::new(pages);

    let mut handles = Vec::new();
    for t in 0..READERS {
        let pool = Arc::clone(&pool);
        let store = Arc::clone(&store);
        let pages = Arc::clone(&pages);
        handles.push(std::thread::spawn(move || {
            let mut x = (t as u64 + 1) * 0x9E37_79B9;
            for _ in 0..800 {
                // xorshift walk over the working set.
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let i = (x % PAGES as u64) as usize;
                let (page, phys) = pages[i];
                // Under eviction pressure the frame can be stolen between
                // acquire and try_read; re-acquire until the read lands.
                loop {
                    let fref = pool.acquire(page, phys, store.as_ref()).unwrap();
                    if let Some(r) = pool.try_read(&fref, phys) {
                        assert_eq!(r.bytes()[PAGE_HEADER_LEN + 8], i as u8);
                        break;
                    }
                }
            }
        }));
    }
    let writer = {
        let pool = Arc::clone(&pool);
        let store = Arc::clone(&store);
        let pages = Arc::clone(&pages);
        std::thread::spawn(move || {
            let mut tally = vec![0u64; PAGES];
            let mut x = 0xDEAD_BEEFu64;
            for _ in 0..800 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let i = (x % PAGES as u64) as usize;
                let (page, phys) = pages[i];
                loop {
                    let fref = pool.acquire(page, phys, store.as_ref()).unwrap();
                    if let Some(mut w) = pool.try_write(&fref, phys) {
                        let off = PAGE_HEADER_LEN;
                        let mut c = u64::from_le_bytes(w.bytes()[off..off + 8].try_into().unwrap());
                        c += 1;
                        w.bytes_mut()[off..off + 8].copy_from_slice(&c.to_le_bytes());
                        tally[i] += 1;
                        break;
                    }
                }
            }
            tally
        })
    };
    for h in handles {
        h.join().unwrap();
    }
    let tally = writer.join().unwrap();

    // No lost write-backs: after flushing, the store holds exactly the
    // writer's count for every page (evictions in between wrote back
    // every intermediate state consistently).
    pool.flush_all(store.as_ref()).unwrap();
    let mut buf = vec![0u8; PS];
    for (i, &(_, phys)) in pages.iter().enumerate() {
        store.read(phys, &mut buf).unwrap();
        let off = PAGE_HEADER_LEN;
        let c = u64::from_le_bytes(buf[off..off + 8].try_into().unwrap());
        assert_eq!(c, tally[i], "page {i}: store must hold the final count");
        assert_eq!(buf[off + 8], i as u8, "page {i}: marker survived churn");
    }

    // Per-shard accounting is exact and capacity bounds hold.
    let shard_stats = pool.shard_stats();
    assert_eq!(shard_stats.len(), SHARDS);
    for (si, s) in shard_stats.iter().enumerate() {
        assert_eq!(
            s.lookups,
            s.hits + s.misses,
            "shard {si}: lookups must equal hits + misses"
        );
        assert!(s.resident <= s.frames, "shard {si}: resident within frames");
    }
    let totals = pool.stats();
    assert_eq!(
        totals.hits + totals.misses,
        shard_stats.iter().map(|s| s.lookups).sum::<u64>(),
        "shard counters must sum to the pool totals"
    );
    assert!(totals.evictions > 0, "the workload must have evicted");
    assert!(totals.writebacks > 0, "dirty evictions must write back");
}

#[test]
fn deadlock_victim_can_retry() {
    let dir = tmpdir("deadlock");
    let db = Database::create(&dir, DbConfig::small()).unwrap();
    {
        let mut s = db.session();
        s.execute("CREATE DOCUMENT 'a'").unwrap();
        s.load_xml("a", "<r><v>0</v></r>").unwrap();
        s.execute("CREATE DOCUMENT 'b'").unwrap();
        s.load_xml("b", "<r><v>0</v></r>").unwrap();
    }
    // Session 1: X(a) then X(b); session 2: X(b) then X(a) — classic
    // cross deadlock. One of them must be chosen as victim, roll back,
    // and succeed on retry.
    let db1 = db.clone();
    let t1 = std::thread::spawn(move || {
        let mut s = db1.session();
        loop {
            s.begin_update().unwrap();
            if s.execute("UPDATE replace value of doc('a')//v with '1'")
                .is_err()
            {
                let _ = s.rollback();
                continue;
            }
            std::thread::sleep(std::time::Duration::from_millis(30));
            match s.execute("UPDATE replace value of doc('b')//v with '1'") {
                Ok(_) => {
                    s.commit().unwrap();
                    return;
                }
                Err(_) => {
                    let _ = s.rollback();
                }
            }
        }
    });
    let db2 = db.clone();
    let t2 = std::thread::spawn(move || {
        let mut s = db2.session();
        loop {
            s.begin_update().unwrap();
            if s.execute("UPDATE replace value of doc('b')//v with '2'")
                .is_err()
            {
                let _ = s.rollback();
                continue;
            }
            std::thread::sleep(std::time::Duration::from_millis(30));
            match s.execute("UPDATE replace value of doc('a')//v with '2'") {
                Ok(_) => {
                    s.commit().unwrap();
                    return;
                }
                Err(_) => {
                    let _ = s.rollback();
                }
            }
        }
    });
    t1.join().unwrap();
    t2.join().unwrap();
    // Both transactions eventually committed; whoever was second wins
    // both values (serializability).
    let mut s = db.session();
    let va = s.query("string(doc('a')//v)").unwrap();
    let vb = s.query("string(doc('b')//v)").unwrap();
    assert!(va == "1" || va == "2");
    assert!(vb == "1" || vb == "2");
    drop(s);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn repeated_crash_recovery_cycles() {
    // Recovery must be idempotent and composable: crash, recover, write
    // more, crash again, recover again.
    let dir = tmpdir("cycles");
    {
        let db = Database::create(&dir, DbConfig::small()).unwrap();
        let mut s = db.session();
        s.execute("CREATE DOCUMENT 'log'").unwrap();
        s.load_xml("log", "<log/>").unwrap();
        drop(s);
        db.crash();
    }
    for round in 0..5 {
        let db = Database::open(&dir, DbConfig::small()).unwrap();
        let mut s = db.session();
        let n: u64 = s.query("count(doc('log')/log/e)").unwrap().parse().unwrap();
        assert_eq!(n, round, "round {round}");
        s.execute(&format!(
            "UPDATE insert <e>round {round}</e> into doc('log')/log"
        ))
        .unwrap();
        drop(s);
        db.crash();
    }
    let db = Database::open(&dir, DbConfig::small()).unwrap();
    let mut s = db.session();
    assert_eq!(s.query("count(doc('log')/log/e)").unwrap(), "5");
    assert_eq!(s.query("string(doc('log')/log/e[3])").unwrap(), "round 2");
    drop(s);
    std::fs::remove_dir_all(dir).unwrap();
}
