//! Concurrency stress: many sessions mixing snapshot reads, locked
//! updates, rollbacks, checkpoints, and a final crash/recovery — the
//! whole §6 machinery under load.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sedna::{Database, DbConfig};

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sedna-stress-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn mixed_sessions_stress_then_recover() {
    let dir = tmpdir("mixed");
    let db = Database::create(&dir, DbConfig::small()).unwrap();
    {
        let mut s = db.session();
        s.execute("CREATE DOCUMENT 'lib'").unwrap();
        s.load_xml("lib", &sedna_workload::library(150, 77)).unwrap();
    }
    let committed = Arc::new(AtomicU64::new(0));
    let reads = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();
    // 3 writers: each commits some inserts and rolls back others.
    for w in 0..3u64 {
        let db = db.clone();
        let committed = Arc::clone(&committed);
        handles.push(std::thread::spawn(move || {
            let mut s = db.session();
            for i in 0..12 {
                s.begin_update().unwrap();
                s.execute(&format!(
                    "UPDATE insert <author>W{w}N{i}</author> into doc('lib')/library/paper[1]"
                ))
                .unwrap();
                if i % 3 == 0 {
                    s.rollback().unwrap();
                } else {
                    s.commit().unwrap();
                    committed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }
    // 4 snapshot readers hammering concurrently.
    for _ in 0..4 {
        let db = db.clone();
        let reads = Arc::clone(&reads);
        handles.push(std::thread::spawn(move || {
            let mut s = db.session();
            for _ in 0..40 {
                s.begin_read_only().unwrap();
                let n: u64 = s
                    .query("count(doc('lib')//paper[1]/author)")
                    .unwrap()
                    .parse()
                    .unwrap();
                // A snapshot is internally consistent: counting twice in
                // one transaction gives the same answer.
                let again: u64 = s
                    .query("count(doc('lib')//paper[1]/author)")
                    .unwrap()
                    .parse()
                    .unwrap();
                assert_eq!(n, again);
                s.commit().unwrap();
                reads.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }
    // A checkpointer running alongside.
    {
        let db = db.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..4 {
                db.checkpoint().unwrap();
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let committed = committed.load(Ordering::Relaxed);
    assert!(reads.load(Ordering::Relaxed) >= 160);

    // Exactly the committed inserts are visible (1 original author).
    let mut s = db.session();
    let n: u64 = s
        .query("count(doc('lib')//paper[1]/author)")
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(n, committed + 1, "rolled-back work must not surface");
    drop(s);

    // Crash and recover: the same state must come back.
    db.crash();
    let db = Database::open(&dir, DbConfig::small()).unwrap();
    let mut s = db.session();
    let after: u64 = s
        .query("count(doc('lib')//paper[1]/author)")
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(after, committed + 1);
    // Structure still fully navigable.
    assert_eq!(s.query("count(doc('lib')//book)").unwrap(), "150");
    drop(s);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn deadlock_victim_can_retry() {
    let dir = tmpdir("deadlock");
    let db = Database::create(&dir, DbConfig::small()).unwrap();
    {
        let mut s = db.session();
        s.execute("CREATE DOCUMENT 'a'").unwrap();
        s.load_xml("a", "<r><v>0</v></r>").unwrap();
        s.execute("CREATE DOCUMENT 'b'").unwrap();
        s.load_xml("b", "<r><v>0</v></r>").unwrap();
    }
    // Session 1: X(a) then X(b); session 2: X(b) then X(a) — classic
    // cross deadlock. One of them must be chosen as victim, roll back,
    // and succeed on retry.
    let db1 = db.clone();
    let t1 = std::thread::spawn(move || {
        let mut s = db1.session();
        loop {
            s.begin_update().unwrap();
            if s.execute("UPDATE replace value of doc('a')//v with '1'").is_err() {
                let _ = s.rollback();
                continue;
            }
            std::thread::sleep(std::time::Duration::from_millis(30));
            match s.execute("UPDATE replace value of doc('b')//v with '1'") {
                Ok(_) => {
                    s.commit().unwrap();
                    return;
                }
                Err(_) => {
                    let _ = s.rollback();
                }
            }
        }
    });
    let db2 = db.clone();
    let t2 = std::thread::spawn(move || {
        let mut s = db2.session();
        loop {
            s.begin_update().unwrap();
            if s.execute("UPDATE replace value of doc('b')//v with '2'").is_err() {
                let _ = s.rollback();
                continue;
            }
            std::thread::sleep(std::time::Duration::from_millis(30));
            match s.execute("UPDATE replace value of doc('a')//v with '2'") {
                Ok(_) => {
                    s.commit().unwrap();
                    return;
                }
                Err(_) => {
                    let _ = s.rollback();
                }
            }
        }
    });
    t1.join().unwrap();
    t2.join().unwrap();
    // Both transactions eventually committed; whoever was second wins
    // both values (serializability).
    let mut s = db.session();
    let va = s.query("string(doc('a')//v)").unwrap();
    let vb = s.query("string(doc('b')//v)").unwrap();
    assert!(va == "1" || va == "2");
    assert!(vb == "1" || vb == "2");
    drop(s);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn repeated_crash_recovery_cycles() {
    // Recovery must be idempotent and composable: crash, recover, write
    // more, crash again, recover again.
    let dir = tmpdir("cycles");
    {
        let db = Database::create(&dir, DbConfig::small()).unwrap();
        let mut s = db.session();
        s.execute("CREATE DOCUMENT 'log'").unwrap();
        s.load_xml("log", "<log/>").unwrap();
        drop(s);
        db.crash();
    }
    for round in 0..5 {
        let db = Database::open(&dir, DbConfig::small()).unwrap();
        let mut s = db.session();
        let n: u64 = s.query("count(doc('log')/log/e)").unwrap().parse().unwrap();
        assert_eq!(n, round, "round {round}");
        s.execute(&format!(
            "UPDATE insert <e>round {round}</e> into doc('log')/log"
        ))
        .unwrap();
        drop(s);
        db.crash();
    }
    let db = Database::open(&dir, DbConfig::small()).unwrap();
    let mut s = db.session();
    assert_eq!(s.query("count(doc('log')/log/e)").unwrap(), "5");
    assert_eq!(s.query("string(doc('log')/log/e[3])").unwrap(), "round 2");
    drop(s);
    std::fs::remove_dir_all(dir).unwrap();
}
