//! F3 — Figure 3 invariants: the node descriptor carries the label, the
//! immutable node handle, left/right sibling direct pointers,
//! next/prev-in-block links, the **indirect** parent pointer, and child
//! pointers only to the first child per child schema node; descriptors
//! are fixed-size within a block with the width in the block header.

use std::sync::Arc;

use sedna_numbering::DocOrder;
use sedna_sas::{Sas, SasConfig, TxnToken, Vas, View};
use sedna_schema::{NodeKind, SchemaName, SchemaTree};
use sedna_storage::build::load_xml;
use sedna_storage::{block, indirection, layout, DocStorage, ParentMode};

const FIG2: &str = "<library><book><title>Foundations of Databases</title><author>Abiteboul</author><author>Hull</author><author>Vianu</author></book><book><title>An Introduction to Database Systems</title><author>Date</author><issue><publisher>Addison-Wesley</publisher><year>2004</year></issue></book><paper><title>A Relational Model for Large Shared Data Banks</title><author>Codd</author></paper></library>";

fn setup(xml: &str) -> (Arc<Sas>, Vas, SchemaTree, DocStorage) {
    let sas = Sas::in_memory(SasConfig {
        page_size: 4096,
        layer_size: 4096 * 4096,
        buffer_frames: 4096,
        buffer_shards: 0,
    })
    .unwrap();
    let vas = sas.session();
    vas.begin(View::LATEST, Some(TxnToken(1)));
    let mut schema = SchemaTree::new();
    let doc = load_xml(&vas, &mut schema, ParentMode::Indirect, xml).unwrap();
    (sas, vas, schema, doc)
}

#[test]
fn descriptor_has_all_figure3_fields() {
    let (_sas, vas, schema, doc) = setup(FIG2);
    let root = doc.root_element(&vas).unwrap().unwrap();
    let books = root.children_by_schema(&vas, 0).unwrap();
    let book1 = books[0];
    // label
    let label = book1.label(&vas).unwrap();
    assert!(root.label(&vas).unwrap().is_ancestor_of(&label));
    // node handle (indirection entry pointing back at the descriptor)
    let handle = book1.handle(&vas).unwrap();
    assert_eq!(
        indirection::deref_handle(&vas, handle).unwrap(),
        book1.ptr()
    );
    // indirect parent: the raw field stores the PARENT'S HANDLE, not its
    // descriptor address.
    let parent_field = book1.parent_handle(&vas).unwrap();
    assert_eq!(parent_field, root.handle(&vas).unwrap());
    assert_ne!(parent_field, root.ptr());
    // left/right siblings are direct pointers.
    let book2 = books[1];
    assert_eq!(
        book1.right_sibling(&vas).unwrap().unwrap().ptr(),
        book2.ptr()
    );
    assert_eq!(
        book2.left_sibling(&vas).unwrap().unwrap().ptr(),
        book1.ptr()
    );
    // children: only the FIRST child per child schema node is pointed to.
    let book_sid = book1.schema(&vas).unwrap();
    let author_sid = schema
        .find_child(
            book_sid,
            NodeKind::Element,
            Some(&SchemaName::local("author")),
        )
        .unwrap();
    let slot = schema.child_slot(book_sid, author_sid).unwrap();
    let head = book1.child_head(&vas, slot).unwrap().unwrap();
    assert_eq!(head.string_value(&vas, &schema).unwrap(), "Abiteboul");
    // The other authors are reached via next-in-block/next-in-list, not
    // via more child pointers.
    let authors = book1.children_by_schema(&vas, slot).unwrap();
    assert_eq!(authors.len(), 3);
}

#[test]
fn descriptors_fixed_size_within_block_width_in_header() {
    let (_sas, vas, schema, doc) = setup(FIG2);
    let root = doc.root_element(&vas).unwrap().unwrap();
    let blk = root.ptr().page(4096);
    let page = vas.read(blk).unwrap();
    let width = block::child_slots(&page);
    let dsize = block::block_desc_size(&page);
    assert_eq!(
        dsize as usize,
        layout::desc_size(width),
        "descriptor size must be the fixed function of the header width"
    );
    // Width covers at least the library's current child schemas.
    let lib_sid = root.schema(&vas).unwrap();
    assert!(width as usize >= schema.child_count(lib_sid));
}

#[test]
fn handle_is_immutable_across_physical_moves() {
    // Force widening relocations by adding many distinct child schemas.
    let (_sas, vas, mut schema, mut doc) = setup("<row/>");
    let row = doc.root_element(&vas).unwrap().unwrap();
    let handle = row.handle(&vas).unwrap();
    let original_ptr = row.ptr();
    let mut last = None;
    for i in 0..10 {
        let h = doc
            .insert_node(
                &vas,
                &mut schema,
                handle,
                last,
                None,
                NodeKind::Element,
                Some(SchemaName::local(format!("c{i}"))),
                None,
            )
            .unwrap();
        last = Some(h);
    }
    let now_ptr = indirection::deref_handle(&vas, handle).unwrap();
    assert_ne!(now_ptr, original_ptr, "the descriptor physically moved");
    // The handle still identifies the same logical node.
    let row_now = doc.root_element(&vas).unwrap().unwrap();
    assert_eq!(row_now.ptr(), now_ptr);
    assert_eq!(row_now.handle(&vas).unwrap(), handle);
    assert_eq!(row_now.children(&vas).unwrap().len(), 10);
}

#[test]
fn in_block_links_reconstruct_document_order() {
    let (_sas, vas, _schema, doc) = setup(FIG2);
    let root = doc.root_element(&vas).unwrap().unwrap();
    let books = root.children_by_schema(&vas, 0).unwrap();
    // next_in_list follows the in-block chain: labels ascend.
    let mut cur = Some(books[0]);
    let mut labels = Vec::new();
    while let Some(n) = cur {
        labels.push(n.label(&vas).unwrap());
        cur = n.next_in_list(&vas).unwrap();
    }
    assert_eq!(labels.len(), 2);
    assert_eq!(labels[0].doc_cmp(&labels[1]), DocOrder::Before);
    // And prev_in_list walks back.
    let back = books[1].prev_in_list(&vas).unwrap().unwrap();
    assert_eq!(back.ptr(), books[0].ptr());
}

#[test]
fn value_is_separated_from_structure() {
    // Text values live in slotted text blocks, not inside descriptors:
    // the descriptor's value field is a pointer into a text block.
    let (_sas, vas, _schema, doc) = setup(FIG2);
    let root = doc.root_element(&vas).unwrap().unwrap();
    let title_text = root.children(&vas).unwrap()[0] // book 1
        .children(&vas)
        .unwrap()[0] // title
        .children(&vas)
        .unwrap()[0]; // text node
    assert_eq!(title_text.kind(&vas).unwrap(), NodeKind::Text);
    let vref = title_text.value_ref(&vas).unwrap();
    assert!(!vref.is_null());
    // The pointed-to page is a text block, different from the node block.
    let vpage = vas.read(vref).unwrap();
    assert_eq!(vpage[16], layout::KIND_TEXT_BLOCK);
    assert_ne!(vref.page(4096), title_text.ptr().page(4096));
    assert_eq!(
        title_text.value_string(&vas).unwrap(),
        "Foundations of Databases"
    );
}
