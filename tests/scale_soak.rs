//! Scale soak: a ~100k-node document through the full database stack —
//! bulk load, analytical queries, an update mix, checkpoint, crash,
//! recovery — verifying counts at every stage.

use sedna::{Database, DbConfig};

#[test]
fn hundred_thousand_node_lifecycle() {
    let dir = std::env::temp_dir().join(format!("sedna-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let items = 5000usize;
    let xml = sedna_workload::auction(items, 2024);
    let expected_people = items / 2;
    let expected_auctions = items / 4;

    {
        let db = Database::create(&dir, DbConfig::default()).unwrap();
        let mut s = db.session();
        s.execute("CREATE DOCUMENT 'site'").unwrap();
        let nodes = s.load_xml("site", &xml).unwrap();
        assert!(
            nodes > 80_000,
            "expected a large document, got {nodes} nodes"
        );

        // Analytical queries over the full document.
        assert_eq!(
            s.query("count(doc('site')//item)").unwrap(),
            items.to_string()
        );
        assert_eq!(
            s.query("count(doc('site')//person)").unwrap(),
            expected_people.to_string()
        );
        assert_eq!(
            s.query("count(doc('site')//open_auction)").unwrap(),
            expected_auctions.to_string()
        );
        // A selective predicate + join-ish lookup.
        let busy: usize = s
            .query("count(doc('site')//open_auction[count(bidder) >= 3])")
            .unwrap()
            .parse()
            .unwrap();
        assert!(busy > 0 && busy < expected_auctions);

        // An index over item quantity, used and verified.
        s.execute("CREATE INDEX 'byqty' ON doc('site')//item BY quantity AS xs:double")
            .unwrap();
        let q9: usize = s
            .query("count(index-scan('byqty', 9))")
            .unwrap()
            .parse()
            .unwrap();
        let q9_scan: usize = s
            .query("count(doc('site')//item[number(quantity) = 9])")
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(q9, q9_scan);

        // Update mix: close the first 50 auctions.
        for _ in 0..50 {
            s.execute("UPDATE delete doc('site')//open_auction[1]")
                .unwrap();
        }
        assert_eq!(
            s.query("count(doc('site')//open_auction)").unwrap(),
            (expected_auctions - 50).to_string()
        );
        drop(s);
        db.checkpoint().unwrap();

        // More committed work after the checkpoint, then crash.
        let mut s = db.session();
        for i in 0..10 {
            s.execute(&format!(
                "UPDATE insert <item id=\"late{i}\"><name>Late {i}</name><quantity>1</quantity></item> into doc('site')/site/regions/africa"
            ))
            .unwrap();
        }
        drop(s);
        db.crash();
    }

    // Recovery brings everything back.
    let db = Database::open(&dir, DbConfig::default()).unwrap();
    let mut s = db.session();
    assert_eq!(
        s.query("count(doc('site')//open_auction)").unwrap(),
        (expected_auctions - 50).to_string()
    );
    assert_eq!(
        s.query("count(doc('site')//item)").unwrap(),
        (items + 10).to_string()
    );
    assert_eq!(
        s.query("string(doc('site')//item[@id = 'late7']/name)")
            .unwrap(),
        "Late 7"
    );
    // The index recovered and reflects the post-crash state.
    let q1: usize = s
        .query("count(index-scan('byqty', 1))")
        .unwrap()
        .parse()
        .unwrap();
    let q1_scan: usize = s
        .query("count(doc('site')//item[number(quantity) = 1])")
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(q1, q1_scan);
    drop(s);
    std::fs::remove_dir_all(dir).unwrap();
}
