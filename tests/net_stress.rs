//! Network stress: many concurrent `SednaClient`s against one server,
//! mixing read-only queries, update transactions, and forced aborts
//! (connections dropped mid-session). Afterwards the wire-session
//! accounting must balance exactly (`opened == closed + active`) and
//! every acknowledged commit must be visible — zero lost responses.

use std::sync::Arc;
use std::time::{Duration, Instant};

use sedna::{DbConfig, Governor};
use sedna_net::{ClientError, ExecReply, NetConfig, SednaClient, Server};

const CLIENTS: usize = 12;
const ROUNDS: usize = 12;

#[test]
fn concurrent_clients_with_forced_aborts() {
    let dir = std::env::temp_dir().join(format!("sedna-net-stress-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let governor = Governor::new();
    governor
        .create_database("db", &dir, DbConfig::small())
        .unwrap();
    {
        let mut s = governor.connect("db").unwrap();
        s.execute("CREATE DOCUMENT 'lib'").unwrap();
        s.load_xml("lib", "<library><book><title>T0</title></book></library>")
            .unwrap();
    }
    let server = Server::start(
        Arc::clone(&governor),
        NetConfig {
            workers: CLIENTS + 2,
            poll_interval: Duration::from_millis(5),
            ..NetConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    // Writers (every third client) count their *acknowledged* commits;
    // readers return 0. Aborted rounds drop the connection mid-flight.
    let workers: Vec<_> = (0..CLIENTS)
        .map(|i| {
            std::thread::spawn(move || {
                let mut commits = 0u64;
                for round in 0..ROUNDS {
                    let mut c = SednaClient::connect(addr, "db").unwrap();
                    if i % 3 == 0 {
                        c.begin().unwrap();
                        let exec = c.execute(&format!(
                            "UPDATE insert <book><title>c{i}r{round}</title></book> \
                             into doc('lib')/library"
                        ));
                        match exec {
                            Ok(ExecReply::Updated(n)) => assert!(n >= 1),
                            Ok(other) => panic!("expected an update reply, got {other:?}"),
                            Err(ClientError::Server { .. }) => {
                                // Lock contention: give the round up.
                                let _ = c.rollback();
                                let _ = c.close();
                                continue;
                            }
                            Err(other) => panic!("transport failure: {other}"),
                        }
                        if round % 4 == 3 {
                            // Forced abort: vanish mid-transaction; the
                            // server must roll this insert back.
                            drop(c);
                            continue;
                        }
                        c.commit().unwrap();
                        commits += 1;
                        c.close().unwrap();
                    } else {
                        c.begin_read_only().unwrap();
                        let items = c.query("count(doc('lib')//book)").unwrap();
                        assert_eq!(items.len(), 1, "every query gets its full response");
                        let n: u64 = items[0].parse().unwrap();
                        assert!(n >= 1);
                        if round % 5 == 4 {
                            // Forced abort with a result still buffered
                            // server-side.
                            c.execute("doc('lib')//title/text()").unwrap();
                            drop(c);
                            continue;
                        }
                        c.commit().unwrap();
                        c.close().unwrap();
                    }
                }
                commits
            })
        })
        .collect();
    let mut total_commits = 0u64;
    for w in workers {
        total_commits += w.join().unwrap();
    }
    assert!(total_commits > 0, "at least some writer rounds must commit");

    // Aborted connections are reaped asynchronously; wait for the wire
    // accounting to settle, then it must balance exactly.
    let m = server.metrics();
    let deadline = Instant::now() + Duration::from_secs(10);
    while m.sessions_active.get() != 0 || governor.database("db").unwrap().active_sessions() != 0 {
        assert!(
            Instant::now() < deadline,
            "sessions leaked: {} wire / {} db still active",
            m.sessions_active.get(),
            governor.database("db").unwrap().active_sessions()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        m.sessions_opened.get(),
        m.sessions_closed.get(),
        "opened == closed + active, with active == 0"
    );
    assert_eq!(
        m.sessions_opened.get(),
        (CLIENTS * ROUNDS) as u64,
        "every connect opened exactly one wire session"
    );

    // Zero lost responses: every acknowledged commit is visible, every
    // aborted insert is not.
    let mut check = SednaClient::connect(addr, "db").unwrap();
    let n: u64 = check.query("count(doc('lib')//book)").unwrap()[0]
        .parse()
        .unwrap();
    assert_eq!(
        n,
        1 + total_commits,
        "acknowledged commits must all be visible"
    );
    check.close().unwrap();

    // Drain + close; the data survives a cold reopen.
    server.shutdown().unwrap();
    let db = sedna::Database::open(&dir, DbConfig::small()).unwrap();
    let mut s = db.session();
    assert_eq!(
        s.query("count(doc('lib')//book)").unwrap(),
        (1 + total_commits).to_string()
    );
    drop(s);
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}
