//! F2 — Figure 2 invariants: the descriptive schema is the relaxed
//! DataGuide of the document (every document path has exactly one schema
//! path); each schema node heads a bidirectional block list; descriptors
//! are partly ordered across the list.

use std::sync::Arc;

use sedna_numbering::DocOrder;
use sedna_sas::{Sas, SasConfig, TxnToken, Vas, View};
use sedna_schema::{NodeKind, SchemaName, SchemaTree};
use sedna_storage::build::load_xml;
use sedna_storage::{block, DocStorage, NodeRef, ParentMode};

const FIG2: &str = "<library><book><title>Foundations of Databases</title><author>Abiteboul</author><author>Hull</author><author>Vianu</author></book><book><title>An Introduction to Database Systems</title><author>Date</author><issue><publisher>Addison-Wesley</publisher><year>2004</year></issue></book><paper><title>A Relational Model for Large Shared Data Banks</title><author>Codd</author></paper></library>";

fn setup(xml: &str, page_size: usize) -> (Arc<Sas>, Vas, SchemaTree, DocStorage) {
    let sas = Sas::in_memory(SasConfig {
        page_size,
        layer_size: page_size as u64 * 4096,
        buffer_frames: 4096,
        buffer_shards: 0,
    })
    .unwrap();
    let vas = sas.session();
    vas.begin(View::LATEST, Some(TxnToken(1)));
    let mut schema = SchemaTree::new();
    let doc = load_xml(&vas, &mut schema, ParentMode::Indirect, xml).unwrap();
    (sas, vas, schema, doc)
}

/// Every path in the document has exactly one path in the schema: walk
/// the stored tree and check each node's root path maps to its schema
/// node, and that no two schema siblings share (kind, name).
#[test]
fn descriptive_schema_is_a_relaxed_dataguide() {
    let (_sas, vas, schema, doc) = setup(FIG2, 4096);
    // Uniqueness of (kind, name) among every schema node's children.
    for id in schema.ids() {
        let children = &schema.node(id).children;
        for (i, &a) in children.iter().enumerate() {
            for &b in &children[i + 1..] {
                let (na, nb) = (schema.node(a), schema.node(b));
                assert!(
                    na.kind != nb.kind || na.name != nb.name,
                    "duplicate schema path under {id:?}"
                );
            }
        }
    }
    // The Figure-2 point: 2 books + 1 paper in the data, but the library
    // schema node has exactly two element children.
    let lib = schema
        .find_child(
            SchemaTree::ROOT,
            NodeKind::Element,
            Some(&SchemaName::local("library")),
        )
        .unwrap();
    assert_eq!(schema.child_count(lib), 2);
    // Data nodes per schema node, as the figure shows.
    let book = schema
        .find_child(lib, NodeKind::Element, Some(&SchemaName::local("book")))
        .unwrap();
    let author = schema
        .find_child(book, NodeKind::Element, Some(&SchemaName::local("author")))
        .unwrap();
    assert_eq!(schema.node(book).node_count, 2);
    assert_eq!(schema.node(author).node_count, 4);
    let _ = doc;
    let _ = vas;
}

/// "Data blocks related to a common schema node are linked via pointers
/// into a bidirectional list."
#[test]
fn block_lists_are_bidirectional() {
    // Small pages force several blocks per schema node.
    let xml = format!(
        "<r>{}</r>",
        (0..200)
            .map(|i| format!("<item>{i}</item>"))
            .collect::<String>()
    );
    let (_sas, vas, schema, _doc) = setup(&xml, 1024);
    let r = schema
        .find_child(
            SchemaTree::ROOT,
            NodeKind::Element,
            Some(&SchemaName::local("r")),
        )
        .unwrap();
    let item = schema
        .find_child(r, NodeKind::Element, Some(&SchemaName::local("item")))
        .unwrap();
    let snode = schema.node(item);
    assert!(snode.block_count >= 2, "need multiple blocks for the test");
    // Forward walk reaches last_block; backward walk returns to first.
    let mut blk = snode.first_block;
    let mut prev = sedna_sas::XPtr::NULL;
    let mut count = 0;
    while !blk.is_null() {
        let page = vas.read(blk).unwrap();
        assert_eq!(block::prev_block(&page), prev, "backward link broken");
        assert_eq!(
            block::schema_of(&page),
            item,
            "block belongs to its schema node"
        );
        prev = blk;
        blk = block::next_block(&page);
        count += 1;
    }
    assert_eq!(prev, snode.last_block);
    assert_eq!(count, snode.block_count);
}

/// "Every node descriptor in the i-th block precedes every node
/// descriptor in the j-th block in document order, if and only if i < j."
#[test]
fn descriptors_are_partly_ordered() {
    let xml = format!(
        "<r>{}</r>",
        (0..300)
            .map(|i| format!("<item>{i}</item>"))
            .collect::<String>()
    );
    let (_sas, vas, schema, _doc) = setup(&xml, 1024);
    let r = schema
        .find_child(
            SchemaTree::ROOT,
            NodeKind::Element,
            Some(&SchemaName::local("r")),
        )
        .unwrap();
    let item = schema
        .find_child(r, NodeKind::Element, Some(&SchemaName::local("item")))
        .unwrap();
    let mut blk = schema.node(item).first_block;
    let mut prev_block_max: Option<sedna_numbering::Label> = None;
    while !blk.is_null() {
        let (first, dsize, next) = {
            let page = vas.read(blk).unwrap();
            (
                block::first_desc(&page),
                block::block_desc_size(&page),
                block::next_block(&page),
            )
        };
        // Collect this block's labels in chain order.
        let mut labels = Vec::new();
        let mut slot = first;
        while slot != sedna_storage::layout::NO_SLOT {
            let off = block::desc_offset(slot, dsize);
            let node = NodeRef(blk.offset(off as u32));
            labels.push(node.label(&vas).unwrap());
            let page = vas.read(blk).unwrap();
            slot = sedna_storage::descriptor::next_in_block(&page, off);
        }
        // Every label in this block follows every label of prior blocks.
        if let Some(pmax) = &prev_block_max {
            for l in &labels {
                assert_eq!(pmax.doc_cmp(l), DocOrder::Before, "partial order violated");
            }
        }
        prev_block_max = labels.into_iter().last().or(prev_block_max);
        blk = next;
    }
}

/// The descriptive schema is maintained incrementally: new paths appear
/// when updates introduce them, existing slots stay stable.
#[test]
fn schema_maintained_incrementally_on_update() {
    let (_sas, vas, mut schema, mut doc) = setup(FIG2, 4096);
    let lib = schema
        .find_child(
            SchemaTree::ROOT,
            NodeKind::Element,
            Some(&SchemaName::local("library")),
        )
        .unwrap();
    let before = schema.len();
    let book_slot_before = schema.child_slot(
        lib,
        schema
            .find_child(lib, NodeKind::Element, Some(&SchemaName::local("book")))
            .unwrap(),
    );
    // Insert a brand-new element type.
    let root = doc.root_element(&vas).unwrap().unwrap();
    let h = root.handle(&vas).unwrap();
    doc.insert_node(
        &vas,
        &mut schema,
        h,
        None,
        None,
        NodeKind::Element,
        Some(SchemaName::local("journal")),
        None,
    )
    .unwrap();
    assert_eq!(schema.len(), before + 1, "one new schema node");
    // Existing slots unchanged (descriptor layout stability).
    let book_slot_after = schema.child_slot(
        lib,
        schema
            .find_child(lib, NodeKind::Element, Some(&SchemaName::local("book")))
            .unwrap(),
    );
    assert_eq!(book_slot_before, book_slot_after);
    // Re-inserting the same path adds nothing.
    let kids = root.children(&vas).unwrap();
    let last = kids.last().unwrap().handle(&vas).unwrap();
    doc.insert_node(
        &vas,
        &mut schema,
        h,
        Some(last),
        None,
        NodeKind::Element,
        Some(SchemaName::local("journal")),
        None,
    )
    .unwrap();
    assert_eq!(schema.len(), before + 1);
}
