//! F4 — Figure 4 invariants: the storage manager maps DAS layers onto the
//! session VAS on the equality basis; dereferences of resident pages take
//! the fast path; a missing page faults into the buffer manager; pages
//! (not layers) are the unit of disk interaction, so frames hold pages
//! from multiple layers at once.

use sedna_sas::{Sas, SasConfig, TxnToken, View, XPtr};

fn tiny_sas(frames: usize) -> std::sync::Arc<Sas> {
    sharded_sas(frames, 0)
}

fn sharded_sas(frames: usize, shards: usize) -> std::sync::Arc<Sas> {
    Sas::in_memory(SasConfig {
        page_size: 512,
        layer_size: 8 * 512,
        buffer_frames: frames,
        buffer_shards: shards,
    })
    .unwrap()
}

#[test]
fn das_address_is_layer_plus_offset() {
    // "The 64-bit address of an object in SAS consists of the layer number
    // (the first 32 bits) and the address within the layer."
    let p = XPtr::new(0x0102_0304, 0x0506_0708);
    assert_eq!(p.raw() >> 32, 0x0102_0304);
    assert_eq!(p.raw() & 0xFFFF_FFFF, 0x0506_0708);
}

#[test]
fn equality_basis_mapping_no_translation_structure() {
    // Two pages at the SAME within-layer address in different layers
    // compete for the same VAS slot (that is what "equality basis" means);
    // pages at different offsets never conflict.
    let sas = tiny_sas(16);
    let vas = sas.session();
    vas.begin(View::LATEST, Some(TxnToken(1)));
    let mut pages = Vec::new();
    for _ in 0..10 {
        let (p, w) = vas.alloc_page().unwrap();
        drop(w);
        pages.push(p);
    }
    let a = *pages
        .iter()
        .find(|p| p.layer() == 0 && p.addr() == 512)
        .unwrap();
    let b = *pages
        .iter()
        .find(|p| p.layer() == 1 && p.addr() == 512)
        .unwrap();
    vas.reset_stats();
    let _ = vas.read(a).unwrap();
    let _ = vas.read(b).unwrap(); // same slot, different layer → conflict
    let _ = vas.read(a).unwrap();
    assert!(vas.stats().layer_conflicts >= 2);
    // Distinct offsets in one layer: pure fast-path hits after first touch.
    let c = *pages
        .iter()
        .find(|p| p.layer() == 0 && p.addr() == 1024)
        .unwrap();
    let _ = vas.read(c).unwrap();
    vas.reset_stats();
    for _ in 0..5 {
        let _ = vas.read(c).unwrap();
    }
    assert_eq!(vas.stats().hits, 5);
    assert_eq!(vas.stats().faults, 0);
}

#[test]
fn fault_path_goes_through_buffer_manager() {
    // "If there is no page in main memory by this address of PVAS, then
    // dereferencing results in a memory fault. In this case the buffer
    // manager reads the required page from disk."
    let sas = tiny_sas(1); // single frame: every switch evicts
    let vas = sas.session();
    vas.begin(View::LATEST, Some(TxnToken(1)));
    let (p1, mut w) = vas.alloc_page().unwrap();
    w.bytes_mut()[16] = 1;
    drop(w);
    let (p2, mut w) = vas.alloc_page().unwrap();
    w.bytes_mut()[16] = 2;
    drop(w);
    sas.pool().reset_stats();
    // Ping-pong between the two pages: each read evicts the other.
    for _ in 0..4 {
        assert_eq!(vas.read(p1).unwrap()[16], 1);
        assert_eq!(vas.read(p2).unwrap()[16], 2);
    }
    let stats = sas.pool().stats();
    assert!(stats.evictions >= 7, "stats: {stats:?}");
    assert!(stats.writebacks >= 1, "dirty pages were forced to disk");
}

#[test]
fn unit_of_disk_interaction_is_the_page_not_the_layer() {
    // "Main memory generally contains pages from multiple layers at a
    // time."
    let sas = tiny_sas(16);
    let vas = sas.session();
    vas.begin(View::LATEST, Some(TxnToken(1)));
    let mut pages = Vec::new();
    for _ in 0..12 {
        let (p, w) = vas.alloc_page().unwrap();
        drop(w);
        pages.push(p);
    }
    // Touch pages from layer 0 and layer 1 at distinct offsets.
    let l0 = *pages
        .iter()
        .find(|p| p.layer() == 0 && p.addr() == 1024)
        .unwrap();
    let l1 = *pages
        .iter()
        .find(|p| p.layer() == 1 && p.addr() == 2048)
        .unwrap();
    let _ = vas.read(l0).unwrap();
    let _ = vas.read(l1).unwrap();
    vas.reset_stats();
    let _ = vas.read(l0).unwrap();
    let _ = vas.read(l1).unwrap();
    // Both resident simultaneously: no faults.
    assert_eq!(vas.stats().faults, 0);
    assert_eq!(vas.stats().hits, 2);
}

#[test]
fn figure4_invariants_hold_per_shard() {
    // The sharded pool must preserve the figure's semantics shard by
    // shard: equality-basis slot conflicts, the fault path through the
    // buffer manager, and exact per-shard accounting
    // (lookups == hits + misses, resident pages hash to their shard).
    let sas = sharded_sas(16, 4);
    assert_eq!(sas.pool().shard_count(), 4);
    let vas = sas.session();
    vas.begin(View::LATEST, Some(TxnToken(1)));
    let mut pages = Vec::new();
    for _ in 0..12 {
        let (p, mut w) = vas.alloc_page().unwrap();
        w.bytes_mut()[16] = (p.raw() % 251) as u8;
        drop(w);
        pages.push(p);
    }
    // Same within-layer offset in two layers still conflicts on the VAS
    // slot regardless of which pool shard holds each page.
    let a = *pages
        .iter()
        .find(|p| p.layer() == 0 && p.addr() == 512)
        .unwrap();
    let b = *pages
        .iter()
        .find(|p| p.layer() == 1 && p.addr() == 512)
        .unwrap();
    vas.reset_stats();
    let _ = vas.read(a).unwrap();
    let _ = vas.read(b).unwrap();
    let _ = vas.read(a).unwrap();
    assert!(vas.stats().layer_conflicts >= 2);
    // Every page faults in and reads back its own marker.
    for &p in &pages {
        assert_eq!(vas.read(p).unwrap()[16], (p.raw() % 251) as u8);
    }
    // Per-shard accounting is exact at this quiescent point.
    let shard_stats = sas.pool().shard_stats();
    assert_eq!(shard_stats.len(), 4);
    for (si, s) in shard_stats.iter().enumerate() {
        assert_eq!(s.lookups, s.hits + s.misses, "shard {si} accounting");
        assert!(s.resident <= s.frames, "shard {si} capacity");
    }
    // Pages landed in more than one shard (the hash actually spreads).
    assert!(
        shard_stats.iter().filter(|s| s.resident > 0).count() > 1,
        "working set must span shards: {shard_stats:?}"
    );
}

#[test]
fn same_pointer_representation_in_memory_and_on_disk() {
    // "Costly pointer swizzling is avoided by using the same pointer
    // representation in main and secondary memory": a pointer stored into
    // a page round-trips through eviction byte-identical and remains
    // directly dereferenceable.
    let sas = tiny_sas(1);
    let vas = sas.session();
    vas.begin(View::LATEST, Some(TxnToken(1)));
    let (p1, w) = vas.alloc_page().unwrap();
    drop(w);
    let (p2, mut w) = vas.alloc_page().unwrap();
    // Store p1's address INSIDE p2.
    p1.write_at(&mut w, 16);
    drop(w);
    // Evict both by touching other pages.
    for _ in 0..3 {
        let (_, w) = vas.alloc_page().unwrap();
        drop(w);
    }
    // Read the pointer back from disk and dereference it as-is.
    let stored = {
        let page = vas.read(p2).unwrap();
        XPtr::read_at(&page, 16)
    };
    assert_eq!(stored, p1, "bit-identical representation");
    let page = vas.read(stored).unwrap();
    assert_eq!(
        XPtr::read_at(&page, 0),
        p1,
        "self-pointer in the SAS header"
    );
}
