//! Hot backup (Section 6.5).
//!
//! "Sedna allows creating hot-backup copies of a database. Such backup can
//! be made even while the database is working. [...] First, data file is
//! copied. To solve the infamous 'split-block' problem, additional logging
//! is used. Second, log is fixated and its files are copied."
//!
//! In this reproduction the "additional logging" is the full-page-image
//! redo log itself: any page whose copy was torn by a concurrent write is
//! rewritten during restore from its logged after-image, and the
//! persistent snapshot's slots are never overwritten in place
//! (copy-on-write versioning), so the base state in the copied data file
//! is always intact.
//!
//! "During incremental hot-backup, only log files and configuration files
//! are copied [...]. Using incremental hot-backups, it is also possible to
//! perform some analogue of 'point-in-time' recovery by applying only the
//! required incremental parts of the required backup."

use std::fs;
use std::path::{Path, PathBuf};

use crate::record::{WalError, WalResult};

/// Names used inside a backup directory.
const DATA_NAME: &str = "data.sedna";
const LOG_NAME: &str = "wal.sedna";

/// A full hot backup: the data file plus the fixated log.
pub fn full_backup(data: &Path, log: &Path, dest_dir: &Path) -> WalResult<()> {
    fs::create_dir_all(dest_dir)?;
    // "First, data file is copied."
    fs::copy(data, dest_dir.join(DATA_NAME))?;
    // "Second, log is fixated and its files are copied." — the caller
    // flushes the log before invoking; the copy then fixes its extent.
    fs::copy(log, dest_dir.join(LOG_NAME))?;
    Ok(())
}

/// An incremental hot backup: copies only the log. `base_dir` must hold a
/// prior full backup; the incremental is stored as a numbered log file
/// next to it.
pub fn incremental_backup(log: &Path, base_dir: &Path) -> WalResult<PathBuf> {
    if !base_dir.join(DATA_NAME).exists() {
        return Err(WalError::Corrupt {
            at: 0,
            msg: format!("{} holds no full backup", base_dir.display()),
        });
    }
    let n = (1..)
        .find(|i| !base_dir.join(format!("wal.incr.{i}")).exists())
        .expect("unbounded search");
    let dest = base_dir.join(format!("wal.incr.{n}"));
    fs::copy(log, &dest)?;
    Ok(dest)
}

/// Materializes a backup into `target_dir`, returning the paths of the
/// restored `(data, log)` files. `increments` selects how many incremental
/// log copies to apply (`None` = all) — the newest selected increment
/// replaces the log wholesale, since each incremental copy is a superset
/// of the previous (the log only grows between checkpoints).
pub fn restore_backup(
    backup_dir: &Path,
    target_dir: &Path,
    increments: Option<usize>,
) -> WalResult<(PathBuf, PathBuf)> {
    fs::create_dir_all(target_dir)?;
    let data_src = backup_dir.join(DATA_NAME);
    if !data_src.exists() {
        return Err(WalError::Corrupt {
            at: 0,
            msg: format!("{} holds no full backup", backup_dir.display()),
        });
    }
    let data = target_dir.join(DATA_NAME);
    let log = target_dir.join(LOG_NAME);
    fs::copy(&data_src, &data)?;
    // Pick the newest increment within the requested range, else the
    // full backup's log.
    let mut chosen = backup_dir.join(LOG_NAME);
    let mut i = 1usize;
    loop {
        if increments.is_some_and(|limit| i > limit) {
            break;
        }
        let cand = backup_dir.join(format!("wal.incr.{i}"));
        if !cand.exists() {
            break;
        }
        chosen = cand;
        i += 1;
    }
    fs::copy(&chosen, &log)?;
    Ok((data, log))
}

/// Lists the incremental parts present in a backup directory.
pub fn list_increments(backup_dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut i = 1usize;
    loop {
        let cand = backup_dir.join(format!("wal.incr.{i}"));
        if !cand.exists() {
            break;
        }
        out.push(cand);
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sedna-bak-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn full_backup_and_restore() {
        let work = tmpdir("full");
        let data = work.join("data.sedna");
        let log = work.join("wal.sedna");
        fs::write(&data, b"DATA-V1").unwrap();
        fs::write(&log, b"LOG-V1").unwrap();

        let bdir = work.join("backup");
        full_backup(&data, &log, &bdir).unwrap();
        // Mutate the originals.
        fs::write(&data, b"DATA-V2").unwrap();
        fs::write(&log, b"LOG-V2").unwrap();

        let rdir = work.join("restore");
        let (rd, rl) = restore_backup(&bdir, &rdir, None).unwrap();
        assert_eq!(fs::read(&rd).unwrap(), b"DATA-V1");
        assert_eq!(fs::read(&rl).unwrap(), b"LOG-V1");
        fs::remove_dir_all(&work).unwrap();
    }

    #[test]
    fn incrementals_choose_newest_within_limit() {
        let work = tmpdir("incr");
        let data = work.join("data.sedna");
        let log = work.join("wal.sedna");
        fs::write(&data, b"BASE").unwrap();
        fs::write(&log, b"L0").unwrap();
        let bdir = work.join("backup");
        full_backup(&data, &log, &bdir).unwrap();

        fs::write(&log, b"L0+L1").unwrap();
        incremental_backup(&log, &bdir).unwrap();
        fs::write(&log, b"L0+L1+L2").unwrap();
        incremental_backup(&log, &bdir).unwrap();
        assert_eq!(list_increments(&bdir).len(), 2);

        // Point-in-time: only the first increment.
        let r1 = work.join("r1");
        let (_, rl) = restore_backup(&bdir, &r1, Some(1)).unwrap();
        assert_eq!(fs::read(&rl).unwrap(), b"L0+L1");
        // All increments.
        let r2 = work.join("r2");
        let (_, rl) = restore_backup(&bdir, &r2, None).unwrap();
        assert_eq!(fs::read(&rl).unwrap(), b"L0+L1+L2");
        // Zero increments = the base log.
        let r3 = work.join("r3");
        let (_, rl) = restore_backup(&bdir, &r3, Some(0)).unwrap();
        assert_eq!(fs::read(&rl).unwrap(), b"L0");
        fs::remove_dir_all(&work).unwrap();
    }

    #[test]
    fn incremental_without_base_rejected() {
        let work = tmpdir("nobase");
        let log = work.join("wal.sedna");
        fs::write(&log, b"L").unwrap();
        let r = incremental_backup(&log, &work.join("missing"));
        assert!(r.is_err());
        let r = restore_backup(&work.join("missing"), &work.join("t"), None);
        assert!(r.is_err());
        fs::remove_dir_all(&work).unwrap();
    }
}
