//! Appending to and scanning log files.
//!
//! Frame format per record: `len: u32 | crc32(body): u32 | body`. A
//! record whose frame is short or whose CRC mismatches marks the torn
//! tail of a crashed log; scanning stops there.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use sedna_obs::{Counter, Histogram, Registry};

use crate::record::{crc32, WalError, WalRecord, WalResult};

/// Live metric handles for one log (`sedna_wal_*`). Cloning shares the
/// underlying counters and histograms.
#[derive(Clone, Debug, Default)]
pub struct WalMetrics {
    /// Records appended.
    pub appends: Counter,
    /// Bytes appended (frame bytes, including the len/crc header).
    pub append_bytes: Counter,
    /// `fsync` (sync_data) calls issued.
    pub fsyncs: Counter,
    /// Per-append latency, nanoseconds.
    pub append_ns: Histogram,
    /// Per-fsync latency, nanoseconds.
    pub fsync_ns: Histogram,
}

impl WalMetrics {
    /// Registers every metric under its canonical `sedna_wal_*` name
    /// (see `docs/metrics.md`).
    pub fn register_into(&self, reg: &Registry) {
        reg.register_counter(
            "sedna_wal_appends_total",
            "WAL records appended",
            &self.appends,
        );
        reg.register_counter(
            "sedna_wal_append_bytes_total",
            "WAL bytes appended (framed)",
            &self.append_bytes,
        );
        reg.register_counter("sedna_wal_fsyncs_total", "WAL fsync calls", &self.fsyncs);
        reg.register_histogram(
            "sedna_wal_append_ns",
            "WAL append latency (ns)",
            &self.append_ns,
        );
        reg.register_histogram(
            "sedna_wal_fsync_ns",
            "WAL fsync latency (ns)",
            &self.fsync_ns,
        );
    }
}

/// Appends records to a log file.
pub struct WalWriter {
    file: File,
    /// Next LSN (= byte offset of the next record frame).
    lsn: u64,
    /// LSN up to which the log is known durable.
    flushed: u64,
    metrics: WalMetrics,
}

impl WalWriter {
    /// Creates a fresh log (truncates an existing file).
    pub fn create(path: &Path) -> WalResult<WalWriter> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(WalWriter {
            file,
            lsn: 0,
            flushed: 0,
            metrics: WalMetrics::default(),
        })
    }

    /// Opens an existing log for appending; scans it first so that the
    /// append position sits after the last intact record (dropping any
    /// torn tail).
    pub fn open(path: &Path) -> WalResult<WalWriter> {
        let end = {
            let mut reader = WalReader::open(path)?;
            let mut end = 0;
            while let Some((lsn, rec)) = reader.next_record()? {
                end = lsn + frame_len(&rec);
            }
            end
        };
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(end)?;
        file.seek(SeekFrom::Start(end))?;
        Ok(WalWriter {
            file,
            lsn: end,
            flushed: end,
            metrics: WalMetrics::default(),
        })
    }

    /// Appends a record, returning its LSN. Not yet durable — call
    /// [`WalWriter::flush`].
    pub fn append(&mut self, rec: &WalRecord) -> WalResult<u64> {
        let span = self.metrics.append_ns.span();
        let body = rec.encode();
        let lsn = self.lsn;
        let mut frame = Vec::with_capacity(8 + body.len());
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&body).to_le_bytes());
        frame.extend_from_slice(&body);
        self.file.write_all(&frame)?;
        self.lsn += frame.len() as u64;
        self.metrics.appends.inc();
        self.metrics.append_bytes.add(frame.len() as u64);
        span.finish();
        Ok(lsn)
    }

    /// Forces appended records to durable storage (the WAL rule's "force
    /// the log" step).
    pub fn flush(&mut self) -> WalResult<()> {
        let span = self.metrics.fsync_ns.span();
        self.file.sync_data()?;
        self.flushed = self.lsn;
        self.metrics.fsyncs.inc();
        span.finish();
        Ok(())
    }

    /// The next LSN.
    pub fn lsn(&self) -> u64 {
        self.lsn
    }

    /// Drops every record before `keep_from` (log rotation after a
    /// checkpoint: the checkpoint record carries the full base state, so
    /// older records can never be needed again). `keep_from` must be a
    /// record boundary (an LSN previously returned by
    /// [`WalWriter::append`]). LSNs restart at zero afterwards.
    pub fn truncate_prefix(&mut self, keep_from: u64) -> WalResult<()> {
        if keep_from == 0 {
            return Ok(());
        }
        let mut tail = Vec::new();
        self.file.seek(SeekFrom::Start(keep_from))?;
        self.file.read_to_end(&mut tail)?;
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(&tail)?;
        self.file.sync_data()?;
        self.lsn = tail.len() as u64;
        self.flushed = self.lsn;
        Ok(())
    }

    /// The durable prefix of the log.
    pub fn flushed_lsn(&self) -> u64 {
        self.flushed
    }

    /// The writer's live metric handles.
    pub fn metrics(&self) -> &WalMetrics {
        &self.metrics
    }

    /// Replaces the writer's metric handles (so a database can hand the
    /// writer handles already registered with its observability
    /// registry).
    pub fn set_metrics(&mut self, metrics: WalMetrics) {
        self.metrics = metrics;
    }
}

fn frame_len(rec: &WalRecord) -> u64 {
    8 + rec.encode().len() as u64
}

/// Sequentially reads a log file, stopping cleanly at a torn tail.
pub struct WalReader {
    buf: Vec<u8>,
    pos: u64,
}

impl WalReader {
    /// Opens a log for scanning.
    pub fn open(path: &Path) -> WalResult<WalReader> {
        let mut buf = Vec::new();
        File::open(path)?.read_to_end(&mut buf)?;
        Ok(WalReader { buf, pos: 0 })
    }

    /// Returns the next intact record and its LSN, or `None` at the end
    /// (or at a torn/corrupt tail, which is treated as the end — the
    /// crash semantics of an unflushed suffix).
    pub fn next_record(&mut self) -> WalResult<Option<(u64, WalRecord)>> {
        let at = self.pos as usize;
        if at + 8 > self.buf.len() {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[at..at + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(self.buf[at + 4..at + 8].try_into().unwrap());
        if at + 8 + len > self.buf.len() {
            return Ok(None); // torn frame
        }
        let body = &self.buf[at + 8..at + 8 + len];
        if crc32(body) != crc {
            return Ok(None); // torn/corrupt tail
        }
        let Some(rec) = WalRecord::decode(body) else {
            return Err(WalError::Corrupt {
                at: self.pos,
                msg: "valid checksum but undecodable body".into(),
            });
        };
        let lsn = self.pos;
        self.pos += 8 + len as u64;
        Ok(Some((lsn, rec)))
    }

    /// Reads every intact record with its LSN.
    pub fn read_all(path: &Path) -> WalResult<Vec<(u64, WalRecord)>> {
        let mut reader = WalReader::open(path)?;
        let mut out = Vec::new();
        while let Some(item) = reader.next_record()? {
            out.push(item);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedna_sas::XPtr;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sedna-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn append_flush_scan() {
        let path = tmpfile("basic.log");
        let recs = vec![
            WalRecord::Begin { txn: 1 },
            WalRecord::PageImage {
                txn: 1,
                branch: 0,
                page: XPtr::new(0, 4096),
                image: vec![9u8; 128],
            },
            WalRecord::Commit { txn: 1, ts: 5 },
        ];
        {
            let mut w = WalWriter::create(&path).unwrap();
            let mut lsns = Vec::new();
            for r in &recs {
                lsns.push(w.append(r).unwrap());
            }
            assert!(lsns.windows(2).all(|w| w[0] < w[1]));
            w.flush().unwrap();
            assert_eq!(w.flushed_lsn(), w.lsn());
        }
        let back: Vec<WalRecord> = WalReader::read_all(&path)
            .unwrap()
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        assert_eq!(back, recs);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped() {
        let path = tmpfile("torn.log");
        {
            let mut w = WalWriter::create(&path).unwrap();
            w.append(&WalRecord::Begin { txn: 1 }).unwrap();
            w.append(&WalRecord::Commit { txn: 1, ts: 1 }).unwrap();
            w.flush().unwrap();
        }
        // Simulate a crash mid-append: half a frame of garbage.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[200, 0, 0, 0, 1, 2]).unwrap();
        }
        let back = WalReader::read_all(&path).unwrap();
        assert_eq!(back.len(), 2);
        // Re-opening for append truncates the tail and continues cleanly.
        {
            let mut w = WalWriter::open(&path).unwrap();
            w.append(&WalRecord::Abort { txn: 2 }).unwrap();
            w.flush().unwrap();
        }
        let back = WalReader::read_all(&path).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back[2].1, WalRecord::Abort { txn: 2 });
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupted_record_midstream_stops_scan() {
        let path = tmpfile("corrupt.log");
        {
            let mut w = WalWriter::create(&path).unwrap();
            w.append(&WalRecord::Begin { txn: 1 }).unwrap();
            w.append(&WalRecord::Commit { txn: 1, ts: 1 }).unwrap();
            w.flush().unwrap();
        }
        // Flip a byte in the second record's body.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let back = WalReader::read_all(&path).unwrap();
        assert_eq!(back.len(), 1, "scan stops at the corrupt record");
        std::fs::remove_file(&path).unwrap();
    }
}
