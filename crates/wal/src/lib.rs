//! # sedna-wal
//!
//! Durability per Section 6.4/6.5 of the paper:
//!
//! * **Write-ahead logging** — "All the main operations (insert node,
//!   create index, etc.) are logged using the WAL protocol." This
//!   reproduction logs full page after-images at commit (physical redo),
//!   which composes with the page-versioning design: rollback needs no
//!   undo (working versions are simply discarded), and committed work is
//!   replayable from the log alone.
//! * **Checkpoints** — "a checkpoint may be created at some moment during
//!   execution to fixate transaction-consistent state of a database. We
//!   call such a state a persistent snapshot." A [`WalRecord::Checkpoint`] record
//!   carries the persistent snapshot's page table, the SAS allocator
//!   state, and the serialized catalog.
//! * **Two-step recovery** — "transaction-consistent state of the
//!   database is restored by converting versions belonging to the
//!   persistent snapshot into last committed ones. Then, at the second
//!   step, log is processed to redo the necessary operations of committed
//!   transactions." [`recovery::plan_recovery`] computes exactly that
//!   plan from a log file.
//! * **Hot backup** — full (data file + fixated log) and incremental
//!   (log only) backups with point-in-time restore ([`backup`]).
//!
//! The crate is deliberately independent of the storage and transaction
//! crates: it reads and writes log files and produces recovery *plans*;
//! the database core applies them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backup;
pub mod record;
pub mod recovery;
pub mod writer;

pub use record::{BranchMeta, CheckpointData, WalError, WalRecord, WalResult};
pub use recovery::{plan_recovery, BranchEvent, PageOp, RecoveryPlan, RedoOp};
pub use writer::{WalMetrics, WalReader, WalWriter};
