//! Two-step recovery planning (Section 6.4).
//!
//! "If a database is crashed at some moment in time, two-step recovery
//! process is initiated to restore all transactions that had been
//! committed by the moment of the crash. During the first step,
//! transaction-consistent state of the database is restored by converting
//! versions belonging to the persistent snapshot into last committed
//! ones. Then, at the second step, log is processed to redo the necessary
//! operations of committed transactions."
//!
//! [`plan_recovery`] scans a log and produces exactly that: the last
//! checkpoint (step 1's persistent snapshot) and the ordered redo list of
//! committed transactions after it (step 2). Applying the plan is the
//! database core's job — it owns the store, resolver and catalog.

use std::collections::HashMap;
use std::path::Path;

use sedna_sas::XPtr;

use crate::record::{CheckpointData, WalRecord, WalResult};
use crate::writer::WalReader;

/// A page operation to redo.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PageOp {
    /// Write this full image.
    Image(Vec<u8>),
    /// Free the page.
    Free,
}

/// One redo operation of a committed transaction, in log order. The
/// `u32` is the branch (fork) the operation happened on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RedoOp {
    /// A page operation on a branch.
    Page(XPtr, u32, PageOp),
    /// Install a catalog entry in a branch's catalog.
    CatalogPut(u32, String, Vec<u8>),
    /// Remove a catalog entry from a branch's catalog.
    CatalogDrop(u32, String),
}

/// A fork-lifecycle event found in the log tail. Events are anchored to
/// a position in [`RecoveryPlan::redo`] so replay can interleave them
/// with committed transactions in exact log order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BranchEvent {
    /// `branch` forked off `parent` at commit timestamp `ts`.
    Fork {
        /// The new branch id.
        branch: u32,
        /// The branch forked from.
        parent: u32,
        /// Fork-point commit timestamp.
        ts: u64,
        /// The fork's database name.
        name: String,
    },
    /// `branch` was dropped.
    DropFork {
        /// The dropped branch id.
        branch: u32,
    },
}

/// The outcome of scanning the log.
#[derive(Debug, Default)]
pub struct RecoveryPlan {
    /// Step 1: the persistent snapshot to restore (from the last
    /// checkpoint), if the log contains one.
    pub checkpoint: Option<CheckpointData>,
    /// Step 2: per committed transaction, in commit order:
    /// `(txn, commit_ts, operations in log order)`.
    pub redo: Vec<(u64, u64, Vec<RedoOp>)>,
    /// Fork/drop-fork events after the checkpoint, in log order. Each is
    /// `(idx, event)`: the event happened after the first `idx` entries
    /// of [`RecoveryPlan::redo`].
    pub branch_events: Vec<(usize, BranchEvent)>,
    /// Transactions that began but never committed (their records are
    /// ignored; versioning already isolated them).
    pub losers: Vec<u64>,
    /// The highest commit timestamp seen anywhere in the log.
    pub max_ts: u64,
}

/// Scans `log` and produces the two-step recovery plan. When `upto_ts` is
/// set, only transactions with `commit_ts <= upto_ts` are redone —
/// point-in-time recovery for incremental backups (§6.5).
pub fn plan_recovery(log: &Path, upto_ts: Option<u64>) -> WalResult<RecoveryPlan> {
    let records = WalReader::read_all(log)?;
    let mut plan = RecoveryPlan::default();

    // Find the last checkpoint; redo starts after it.
    let cp_idx = records
        .iter()
        .rposition(|(_, r)| matches!(r, WalRecord::Checkpoint(_)));
    if let Some(idx) = cp_idx {
        if let WalRecord::Checkpoint(cp) = &records[idx].1 {
            plan.max_ts = cp.ts;
            plan.checkpoint = Some(cp.clone());
        }
    }
    let tail = &records[cp_idx.map_or(0, |i| i + 1)..];

    // Group redo ops by transaction, keep log order within each.
    let mut pending: HashMap<u64, Vec<RedoOp>> = HashMap::new();
    let mut began: Vec<u64> = Vec::new();
    // Commit timestamp most recently seen in the tail; used to place
    // ts-less DropFork records for point-in-time limits.
    let mut seen_ts = plan.max_ts;
    for (_, rec) in tail {
        match rec {
            WalRecord::Begin { txn } => {
                began.push(*txn);
                pending.entry(*txn).or_default();
            }
            WalRecord::PageImage {
                txn,
                branch,
                page,
                image,
            } => {
                pending.entry(*txn).or_default().push(RedoOp::Page(
                    *page,
                    *branch,
                    PageOp::Image(image.clone()),
                ));
            }
            WalRecord::PageFree { txn, branch, page } => {
                pending
                    .entry(*txn)
                    .or_default()
                    .push(RedoOp::Page(*page, *branch, PageOp::Free));
            }
            WalRecord::CatalogPut {
                txn,
                branch,
                key,
                payload,
            } => {
                pending.entry(*txn).or_default().push(RedoOp::CatalogPut(
                    *branch,
                    key.clone(),
                    payload.clone(),
                ));
            }
            WalRecord::CatalogDrop { txn, branch, key } => {
                pending
                    .entry(*txn)
                    .or_default()
                    .push(RedoOp::CatalogDrop(*branch, key.clone()));
            }
            WalRecord::Commit { txn, ts } => {
                plan.max_ts = plan.max_ts.max(*ts);
                seen_ts = seen_ts.max(*ts);
                let ops = pending.remove(txn).unwrap_or_default();
                if upto_ts.is_none_or(|limit| *ts <= limit) {
                    plan.redo.push((*txn, *ts, ops));
                }
                began.retain(|t| t != txn);
            }
            WalRecord::Abort { txn } => {
                pending.remove(txn);
                began.retain(|t| t != txn);
            }
            WalRecord::Fork {
                branch,
                parent,
                ts,
                name,
            } => {
                if upto_ts.is_none_or(|limit| *ts <= limit) {
                    plan.branch_events.push((
                        plan.redo.len(),
                        BranchEvent::Fork {
                            branch: *branch,
                            parent: *parent,
                            ts: *ts,
                            name: name.clone(),
                        },
                    ));
                }
            }
            WalRecord::DropFork { branch } => {
                if upto_ts.is_none_or(|limit| seen_ts <= limit) {
                    plan.branch_events
                        .push((plan.redo.len(), BranchEvent::DropFork { branch: *branch }));
                }
            }
            WalRecord::Checkpoint(_) => unreachable!("tail starts after the last checkpoint"),
        }
    }
    plan.losers = began;
    // Redo is already in commit order (log order of commit records).
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::AllocSnapshot;
    use crate::writer::WalWriter;
    use sedna_sas::PhysId;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sedna-rec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn page(n: u32) -> XPtr {
        XPtr::new(0, n * 4096)
    }

    #[test]
    fn committed_work_is_redone_losers_ignored() {
        let path = tmpfile("plan1.log");
        {
            let mut w = WalWriter::create(&path).unwrap();
            w.append(&WalRecord::Begin { txn: 1 }).unwrap();
            w.append(&WalRecord::Begin { txn: 2 }).unwrap();
            w.append(&WalRecord::PageImage {
                txn: 1,
                branch: 0,
                page: page(1),
                image: vec![1],
            })
            .unwrap();
            w.append(&WalRecord::PageImage {
                txn: 2,
                branch: 0,
                page: page(2),
                image: vec![2],
            })
            .unwrap();
            w.append(&WalRecord::Commit { txn: 1, ts: 10 }).unwrap();
            // txn 2 never commits (crash).
            w.flush().unwrap();
        }
        let plan = plan_recovery(&path, None).unwrap();
        assert!(plan.checkpoint.is_none());
        assert_eq!(plan.redo.len(), 1);
        assert_eq!(plan.redo[0].0, 1);
        assert_eq!(
            plan.redo[0].2,
            vec![RedoOp::Page(page(1), 0, PageOp::Image(vec![1]))]
        );
        assert_eq!(plan.losers, vec![2]);
        assert_eq!(plan.max_ts, 10);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn redo_starts_after_last_checkpoint() {
        let path = tmpfile("plan2.log");
        {
            let mut w = WalWriter::create(&path).unwrap();
            w.append(&WalRecord::Begin { txn: 1 }).unwrap();
            w.append(&WalRecord::PageImage {
                txn: 1,
                branch: 0,
                page: page(1),
                image: vec![1],
            })
            .unwrap();
            w.append(&WalRecord::Commit { txn: 1, ts: 1 }).unwrap();
            w.append(&WalRecord::Checkpoint(CheckpointData {
                ts: 1,
                page_table: vec![(page(1), PhysId(0), 0, 1)],
                drops: Vec::new(),
                alloc: AllocSnapshot::default(),
                catalog: vec![7, 7],
                branches: Vec::new(),
            }))
            .unwrap();
            w.append(&WalRecord::Begin { txn: 2 }).unwrap();
            w.append(&WalRecord::PageImage {
                txn: 2,
                branch: 0,
                page: page(2),
                image: vec![2],
            })
            .unwrap();
            w.append(&WalRecord::Commit { txn: 2, ts: 2 }).unwrap();
            w.flush().unwrap();
        }
        let plan = plan_recovery(&path, None).unwrap();
        let cp = plan.checkpoint.unwrap();
        assert_eq!(cp.page_table, vec![(page(1), PhysId(0), 0, 1)]);
        assert_eq!(cp.catalog, vec![7, 7]);
        // Txn 1 predates the checkpoint: not redone.
        assert_eq!(plan.redo.len(), 1);
        assert_eq!(plan.redo[0].0, 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn aborted_transactions_not_redone() {
        let path = tmpfile("plan3.log");
        {
            let mut w = WalWriter::create(&path).unwrap();
            w.append(&WalRecord::Begin { txn: 1 }).unwrap();
            w.append(&WalRecord::PageImage {
                txn: 1,
                branch: 0,
                page: page(1),
                image: vec![1],
            })
            .unwrap();
            w.append(&WalRecord::Abort { txn: 1 }).unwrap();
            w.flush().unwrap();
        }
        let plan = plan_recovery(&path, None).unwrap();
        assert!(plan.redo.is_empty());
        assert!(plan.losers.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn point_in_time_limit_respected() {
        let path = tmpfile("plan4.log");
        {
            let mut w = WalWriter::create(&path).unwrap();
            for (txn, ts) in [(1u64, 10u64), (2, 20), (3, 30)] {
                w.append(&WalRecord::Begin { txn }).unwrap();
                w.append(&WalRecord::PageImage {
                    txn,
                    branch: 0,
                    page: page(txn as u32),
                    image: vec![txn as u8],
                })
                .unwrap();
                w.append(&WalRecord::Commit { txn, ts }).unwrap();
            }
            w.flush().unwrap();
        }
        let plan = plan_recovery(&path, Some(20)).unwrap();
        assert_eq!(plan.redo.len(), 2);
        assert_eq!(plan.redo.iter().map(|r| r.0).collect::<Vec<_>>(), [1, 2]);
        assert_eq!(plan.max_ts, 30, "max_ts still reflects the full log");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn page_free_redo_preserved_in_order() {
        let path = tmpfile("plan5.log");
        {
            let mut w = WalWriter::create(&path).unwrap();
            w.append(&WalRecord::Begin { txn: 1 }).unwrap();
            w.append(&WalRecord::PageImage {
                txn: 1,
                branch: 0,
                page: page(1),
                image: vec![1],
            })
            .unwrap();
            w.append(&WalRecord::PageFree {
                txn: 1,
                branch: 0,
                page: page(1),
            })
            .unwrap();
            w.append(&WalRecord::Commit { txn: 1, ts: 1 }).unwrap();
            w.flush().unwrap();
        }
        let plan = plan_recovery(&path, None).unwrap();
        assert_eq!(
            plan.redo[0].2,
            vec![
                RedoOp::Page(page(1), 0, PageOp::Image(vec![1])),
                RedoOp::Page(page(1), 0, PageOp::Free),
            ]
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fork_events_anchored_in_log_order() {
        let path = tmpfile("plan6.log");
        {
            let mut w = WalWriter::create(&path).unwrap();
            w.append(&WalRecord::Begin { txn: 1 }).unwrap();
            w.append(&WalRecord::PageImage {
                txn: 1,
                branch: 0,
                page: page(1),
                image: vec![1],
            })
            .unwrap();
            w.append(&WalRecord::Commit { txn: 1, ts: 10 }).unwrap();
            w.append(&WalRecord::Fork {
                branch: 2,
                parent: 0,
                ts: 10,
                name: "dev".into(),
            })
            .unwrap();
            w.append(&WalRecord::Begin { txn: 2 }).unwrap();
            w.append(&WalRecord::PageImage {
                txn: 2,
                branch: 2,
                page: page(1),
                image: vec![2],
            })
            .unwrap();
            w.append(&WalRecord::Commit { txn: 2, ts: 11 }).unwrap();
            w.append(&WalRecord::DropFork { branch: 2 }).unwrap();
            w.flush().unwrap();
        }
        let plan = plan_recovery(&path, None).unwrap();
        assert_eq!(plan.redo.len(), 2);
        assert_eq!(
            plan.branch_events,
            vec![
                (
                    1,
                    BranchEvent::Fork {
                        branch: 2,
                        parent: 0,
                        ts: 10,
                        name: "dev".into(),
                    }
                ),
                (2, BranchEvent::DropFork { branch: 2 }),
            ]
        );
        // Point-in-time at ts 10: fork included, the later drop excluded.
        let plan = plan_recovery(&path, Some(10)).unwrap();
        assert_eq!(plan.redo.len(), 1);
        assert_eq!(plan.branch_events.len(), 1);
        assert!(matches!(
            plan.branch_events[0].1,
            BranchEvent::Fork { branch: 2, .. }
        ));
        std::fs::remove_file(&path).unwrap();
    }
}
