//! Log-record types and their binary codec.

use sedna_sas::{PhysId, XPtr};

/// Errors from log encoding/decoding and I/O.
#[derive(Debug)]
pub enum WalError {
    /// I/O failure.
    Io(std::io::Error),
    /// A record failed its checksum or is structurally invalid. Expected
    /// at the crash-torn tail of a log; fatal anywhere else.
    Corrupt {
        /// Byte offset of the bad record.
        at: u64,
        /// Description.
        msg: String,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "log I/O error: {e}"),
            WalError::Corrupt { at, msg } => write!(f, "corrupt log record at {at}: {msg}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// Result alias for WAL operations.
pub type WalResult<T> = Result<T, WalError>;

/// Serialized allocator state carried by checkpoints (mirrors
/// `sedna_sas::alloc::AllocState` without depending on its layout).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct AllocSnapshot {
    /// Next fresh layer.
    pub next_layer: u32,
    /// Next fresh address within the layer.
    pub next_addr: u32,
    /// Recycled page addresses.
    pub free: Vec<XPtr>,
}

/// Per-fork metadata carried by checkpoints so forks survive restart.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BranchMeta {
    /// The fork's branch id.
    pub branch: u32,
    /// The branch it was forked from.
    pub parent: u32,
    /// Commit timestamp of the fork point.
    pub fork_ts: u64,
    /// The fork's database name.
    pub name: String,
    /// Opaque serialized catalog of the fork at checkpoint time.
    pub catalog: Vec<u8>,
}

/// Payload of a checkpoint record: the persistent snapshot.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct CheckpointData {
    /// Commit timestamp the snapshot is consistent with.
    pub ts: u64,
    /// Page table of the persistent snapshot: SAS page → physical slot,
    /// tagged with the branch that owns the version and its commit
    /// timestamp (so fork lineage resolution survives restart).
    pub page_table: Vec<(XPtr, PhysId, u32, u64)>,
    /// Pages dropped on a branch while still visible to an ancestor or
    /// descendant: `(page, branch, drop_ts)`.
    pub drops: Vec<(XPtr, u32, u64)>,
    /// SAS address-allocator state.
    pub alloc: AllocSnapshot,
    /// Opaque serialized catalog of the root branch (schemas, document
    /// anchors, indexes).
    pub catalog: Vec<u8>,
    /// Live forks at checkpoint time, parents before children.
    pub branches: Vec<BranchMeta>,
}

/// One write-ahead-log record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// Transaction start.
    Begin {
        /// Transaction id.
        txn: u64,
    },
    /// Full after-image of a page written by `txn` (logged at commit,
    /// before the commit record).
    PageImage {
        /// Transaction id.
        txn: u64,
        /// Branch the write happened on.
        branch: u32,
        /// The SAS page.
        page: XPtr,
        /// The page bytes.
        image: Vec<u8>,
    },
    /// A page freed by `txn`.
    PageFree {
        /// Transaction id.
        txn: u64,
        /// Branch the free happened on.
        branch: u32,
        /// The freed SAS page.
        page: XPtr,
    },
    /// A catalog entry (document schema + storage anchors, or index
    /// metadata) as of this transaction's commit. Logged with the page
    /// images so recovery can restore the in-memory catalog consistent
    /// with the redone pages.
    CatalogPut {
        /// Transaction id.
        txn: u64,
        /// Branch whose catalog the entry belongs to.
        branch: u32,
        /// Namespaced key (`doc:<name>` / `index:<name>`).
        key: String,
        /// Opaque payload owned by the database core.
        payload: Vec<u8>,
    },
    /// Removal of a catalog entry (DROP DOCUMENT / DROP INDEX).
    CatalogDrop {
        /// Transaction id.
        txn: u64,
        /// Branch whose catalog the entry belongs to.
        branch: u32,
        /// Namespaced key.
        key: String,
    },
    /// Transaction commit; `ts` is the commit timestamp.
    Commit {
        /// Transaction id.
        txn: u64,
        /// Commit timestamp.
        ts: u64,
    },
    /// Transaction abort (its versions were discarded; nothing to redo).
    Abort {
        /// Transaction id.
        txn: u64,
    },
    /// A checkpoint: the persistent snapshot.
    Checkpoint(CheckpointData),
    /// A database fork: `branch` splits off `parent` at commit
    /// timestamp `ts`, sharing all pages copy-on-write.
    Fork {
        /// The new branch id.
        branch: u32,
        /// The branch being forked.
        parent: u32,
        /// Commit timestamp of the fork point.
        ts: u64,
        /// The fork's database name.
        name: String,
    },
    /// A fork dropped: its branch-private versions are garbage.
    DropFork {
        /// The dropped branch id.
        branch: u32,
    },
}

const T_BEGIN: u8 = 1;
const T_PAGE_IMAGE: u8 = 2;
const T_PAGE_FREE: u8 = 3;
const T_COMMIT: u8 = 4;
const T_ABORT: u8 = 5;
const T_CHECKPOINT: u8 = 6;
const T_CATALOG_PUT: u8 = 7;
const T_CATALOG_DROP: u8 = 8;
const T_FORK: u8 = 9;
const T_DROP_FORK: u8 = 10;

/// CRC-32 (IEEE 802.3 polynomial, bitwise implementation — log records
/// are not hot enough to justify a table).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.buf.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(s)
    }
    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }
    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }
    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
    fn bytes(&mut self) -> Option<Vec<u8>> {
        let n = self.u32()? as usize;
        Some(self.take(n)?.to_vec())
    }
}

impl WalRecord {
    /// Encodes the record body (without the length/CRC frame).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WalRecord::Begin { txn } => {
                out.push(T_BEGIN);
                put_u64(&mut out, *txn);
            }
            WalRecord::PageImage {
                txn,
                branch,
                page,
                image,
            } => {
                out.push(T_PAGE_IMAGE);
                put_u64(&mut out, *txn);
                put_u32(&mut out, *branch);
                put_u64(&mut out, page.raw());
                put_bytes(&mut out, image);
            }
            WalRecord::PageFree { txn, branch, page } => {
                out.push(T_PAGE_FREE);
                put_u64(&mut out, *txn);
                put_u32(&mut out, *branch);
                put_u64(&mut out, page.raw());
            }
            WalRecord::CatalogPut {
                txn,
                branch,
                key,
                payload,
            } => {
                out.push(T_CATALOG_PUT);
                put_u64(&mut out, *txn);
                put_u32(&mut out, *branch);
                put_bytes(&mut out, key.as_bytes());
                put_bytes(&mut out, payload);
            }
            WalRecord::CatalogDrop { txn, branch, key } => {
                out.push(T_CATALOG_DROP);
                put_u64(&mut out, *txn);
                put_u32(&mut out, *branch);
                put_bytes(&mut out, key.as_bytes());
            }
            WalRecord::Commit { txn, ts } => {
                out.push(T_COMMIT);
                put_u64(&mut out, *txn);
                put_u64(&mut out, *ts);
            }
            WalRecord::Abort { txn } => {
                out.push(T_ABORT);
                put_u64(&mut out, *txn);
            }
            WalRecord::Checkpoint(cp) => {
                out.push(T_CHECKPOINT);
                put_u64(&mut out, cp.ts);
                put_u32(&mut out, cp.page_table.len() as u32);
                for (page, phys, branch, ts) in &cp.page_table {
                    put_u64(&mut out, page.raw());
                    put_u64(&mut out, phys.0);
                    put_u32(&mut out, *branch);
                    put_u64(&mut out, *ts);
                }
                put_u32(&mut out, cp.drops.len() as u32);
                for (page, branch, ts) in &cp.drops {
                    put_u64(&mut out, page.raw());
                    put_u32(&mut out, *branch);
                    put_u64(&mut out, *ts);
                }
                put_u32(&mut out, cp.alloc.next_layer);
                put_u32(&mut out, cp.alloc.next_addr);
                put_u32(&mut out, cp.alloc.free.len() as u32);
                for p in &cp.alloc.free {
                    put_u64(&mut out, p.raw());
                }
                put_bytes(&mut out, &cp.catalog);
                put_u32(&mut out, cp.branches.len() as u32);
                for b in &cp.branches {
                    put_u32(&mut out, b.branch);
                    put_u32(&mut out, b.parent);
                    put_u64(&mut out, b.fork_ts);
                    put_bytes(&mut out, b.name.as_bytes());
                    put_bytes(&mut out, &b.catalog);
                }
            }
            WalRecord::Fork {
                branch,
                parent,
                ts,
                name,
            } => {
                out.push(T_FORK);
                put_u32(&mut out, *branch);
                put_u32(&mut out, *parent);
                put_u64(&mut out, *ts);
                put_bytes(&mut out, name.as_bytes());
            }
            WalRecord::DropFork { branch } => {
                out.push(T_DROP_FORK);
                put_u32(&mut out, *branch);
            }
        }
        out
    }

    /// Decodes a record body.
    pub fn decode(buf: &[u8]) -> Option<WalRecord> {
        let mut c = Cursor { buf, pos: 0 };
        let rec = match c.u8()? {
            T_BEGIN => WalRecord::Begin { txn: c.u64()? },
            T_PAGE_IMAGE => WalRecord::PageImage {
                txn: c.u64()?,
                branch: c.u32()?,
                page: XPtr::from_raw(c.u64()?),
                image: c.bytes()?,
            },
            T_PAGE_FREE => WalRecord::PageFree {
                txn: c.u64()?,
                branch: c.u32()?,
                page: XPtr::from_raw(c.u64()?),
            },
            T_CATALOG_PUT => WalRecord::CatalogPut {
                txn: c.u64()?,
                branch: c.u32()?,
                key: String::from_utf8(c.bytes()?).ok()?,
                payload: c.bytes()?,
            },
            T_CATALOG_DROP => WalRecord::CatalogDrop {
                txn: c.u64()?,
                branch: c.u32()?,
                key: String::from_utf8(c.bytes()?).ok()?,
            },
            T_COMMIT => WalRecord::Commit {
                txn: c.u64()?,
                ts: c.u64()?,
            },
            T_ABORT => WalRecord::Abort { txn: c.u64()? },
            T_CHECKPOINT => {
                let ts = c.u64()?;
                let n = c.u32()? as usize;
                let mut page_table = Vec::with_capacity(n);
                for _ in 0..n {
                    let page = XPtr::from_raw(c.u64()?);
                    let phys = PhysId(c.u64()?);
                    let branch = c.u32()?;
                    let vts = c.u64()?;
                    page_table.push((page, phys, branch, vts));
                }
                let nd = c.u32()? as usize;
                let mut drops = Vec::with_capacity(nd);
                for _ in 0..nd {
                    let page = XPtr::from_raw(c.u64()?);
                    let branch = c.u32()?;
                    let dts = c.u64()?;
                    drops.push((page, branch, dts));
                }
                let next_layer = c.u32()?;
                let next_addr = c.u32()?;
                let nf = c.u32()? as usize;
                let mut free = Vec::with_capacity(nf);
                for _ in 0..nf {
                    free.push(XPtr::from_raw(c.u64()?));
                }
                let catalog = c.bytes()?;
                let nb = c.u32()? as usize;
                let mut branches = Vec::with_capacity(nb);
                for _ in 0..nb {
                    branches.push(BranchMeta {
                        branch: c.u32()?,
                        parent: c.u32()?,
                        fork_ts: c.u64()?,
                        name: String::from_utf8(c.bytes()?).ok()?,
                        catalog: c.bytes()?,
                    });
                }
                WalRecord::Checkpoint(CheckpointData {
                    ts,
                    page_table,
                    drops,
                    alloc: AllocSnapshot {
                        next_layer,
                        next_addr,
                        free,
                    },
                    catalog,
                    branches,
                })
            }
            T_FORK => WalRecord::Fork {
                branch: c.u32()?,
                parent: c.u32()?,
                ts: c.u64()?,
                name: String::from_utf8(c.bytes()?).ok()?,
            },
            T_DROP_FORK => WalRecord::DropFork { branch: c.u32()? },
            _ => return None,
        };
        (c.pos == buf.len()).then_some(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn all_record_types_round_trip() {
        let records = vec![
            WalRecord::Begin { txn: 7 },
            WalRecord::PageImage {
                txn: 7,
                branch: 0,
                page: XPtr::new(2, 4096),
                image: vec![1, 2, 3, 4, 5],
            },
            WalRecord::PageFree {
                txn: 7,
                branch: 3,
                page: XPtr::new(2, 8192),
            },
            WalRecord::CatalogPut {
                txn: 7,
                branch: 1,
                key: "doc:lib".into(),
                payload: vec![9, 9],
            },
            WalRecord::CatalogDrop {
                txn: 7,
                branch: 1,
                key: "index:by-author".into(),
            },
            WalRecord::Commit { txn: 7, ts: 99 },
            WalRecord::Abort { txn: 8 },
            WalRecord::Checkpoint(CheckpointData {
                ts: 42,
                page_table: vec![
                    (XPtr::new(0, 4096), PhysId(0), 0, 10),
                    (XPtr::new(1, 0), PhysId(5), 2, 41),
                ],
                drops: vec![(XPtr::new(0, 8192), 2, 40)],
                alloc: AllocSnapshot {
                    next_layer: 1,
                    next_addr: 8192,
                    free: vec![XPtr::new(0, 12288)],
                },
                catalog: b"catalog-bytes".to_vec(),
                branches: vec![BranchMeta {
                    branch: 2,
                    parent: 0,
                    fork_ts: 17,
                    name: "staging".into(),
                    catalog: b"fork-catalog".to_vec(),
                }],
            }),
            WalRecord::Fork {
                branch: 2,
                parent: 0,
                ts: 17,
                name: "staging".into(),
            },
            WalRecord::DropFork { branch: 2 },
        ];
        for rec in records {
            let enc = rec.encode();
            assert_eq!(WalRecord::decode(&enc), Some(rec));
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut enc = WalRecord::Begin { txn: 1 }.encode();
        enc.push(0);
        assert_eq!(WalRecord::decode(&enc), None);
        assert_eq!(WalRecord::decode(&[]), None);
        assert_eq!(WalRecord::decode(&[99]), None);
    }
}
