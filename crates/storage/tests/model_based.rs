//! Model-based testing of the document store: random sequences of
//! structural updates run against both the schema-clustered storage and a
//! trivial in-memory reference tree; after every operation the two must
//! serialize identically, and the storage invariants (label order, handle
//! stability, child-slot consistency) must hold.

use proptest::prelude::*;
use sedna_sas::{Sas, SasConfig, TxnToken, Vas, View, XPtr};
use sedna_schema::{NodeKind, SchemaName, SchemaTree};
use sedna_storage::{DocStorage, NodeRef, ParentMode};

// ---------------------------------------------------------------------
// Reference model
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
struct RefNode {
    kind: NodeKind,
    name: Option<String>,
    value: String,
    children: Vec<usize>,
    alive: bool,
}

struct Model {
    nodes: Vec<RefNode>,
}

impl Model {
    fn new() -> Model {
        Model {
            nodes: vec![RefNode {
                kind: NodeKind::Document,
                name: None,
                value: String::new(),
                children: Vec::new(),
                alive: true,
            }],
        }
    }

    fn live_elements(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| {
                self.nodes[i].alive
                    && matches!(self.nodes[i].kind, NodeKind::Element | NodeKind::Document)
            })
            .collect()
    }

    fn live_non_root(&self) -> Vec<usize> {
        (1..self.nodes.len())
            .filter(|&i| self.nodes[i].alive)
            .collect()
    }

    fn live_texts(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].alive && self.nodes[i].kind == NodeKind::Text)
            .collect()
    }

    fn insert(
        &mut self,
        parent: usize,
        pos: usize,
        kind: NodeKind,
        name: Option<String>,
        value: String,
    ) -> usize {
        let id = self.nodes.len();
        self.nodes.push(RefNode {
            kind,
            name,
            value,
            children: Vec::new(),
            alive: true,
        });
        let pos = pos.min(self.nodes[parent].children.len());
        self.nodes[parent].children.insert(pos, id);
        id
    }

    fn delete(&mut self, node: usize) {
        // Remove from its parent and mark the subtree dead.
        for n in self.nodes.iter_mut() {
            n.children.retain(|&c| c != node);
        }
        let mut stack = vec![node];
        while let Some(n) = stack.pop() {
            self.nodes[n].alive = false;
            stack.extend(self.nodes[n].children.clone());
        }
    }

    fn serialize(&self, node: usize, out: &mut String) {
        let n = &self.nodes[node];
        match n.kind {
            NodeKind::Document => {
                for &c in &n.children {
                    self.serialize(c, out);
                }
            }
            NodeKind::Element => {
                let name = n.name.as_deref().unwrap();
                out.push('<');
                out.push_str(name);
                if n.children.is_empty() {
                    out.push_str("/>");
                } else {
                    out.push('>');
                    for &c in &n.children {
                        self.serialize(c, out);
                    }
                    out.push_str("</");
                    out.push_str(name);
                    out.push('>');
                }
            }
            NodeKind::Text => out.push_str(&n.value),
            _ => unreachable!("model uses only document/element/text"),
        }
    }
}

// ---------------------------------------------------------------------
// Storage-side serializer and invariant checks
// ---------------------------------------------------------------------

fn serialize_stored(vas: &Vas, schema: &SchemaTree, node: NodeRef, out: &mut String) {
    match node.kind(vas).unwrap() {
        NodeKind::Document => {
            for c in node.children(vas).unwrap() {
                serialize_stored(vas, schema, c, out);
            }
        }
        NodeKind::Element => {
            let sid = node.schema(vas).unwrap();
            let name = schema.node(sid).name.as_ref().unwrap().local.clone();
            out.push('<');
            out.push_str(&name);
            let kids = node.children(vas).unwrap();
            if kids.is_empty() {
                out.push_str("/>");
            } else {
                out.push('>');
                for c in kids {
                    serialize_stored(vas, schema, c, out);
                }
                out.push_str("</");
                out.push_str(&name);
                out.push('>');
            }
        }
        NodeKind::Text => out.push_str(&node.value_string(vas).unwrap()),
        other => panic!("unexpected kind {other:?}"),
    }
}

/// Labels along any traversal must strictly ascend in document order, and
/// every node's handle must dereference back to it.
fn check_invariants(vas: &Vas, node: NodeRef, prev: &mut Option<sedna_numbering::Label>) {
    let label = node.label(vas).unwrap();
    if let Some(p) = prev {
        assert_eq!(
            p.doc_cmp(&label),
            sedna_numbering::DocOrder::Before,
            "document order violated"
        );
    }
    *prev = Some(label);
    let handle = node.handle(vas).unwrap();
    let back = sedna_storage::indirection::deref_handle(vas, handle).unwrap();
    assert_eq!(back, node.ptr(), "handle must dereference to the node");
    for c in node.children(vas).unwrap() {
        check_invariants(vas, c, prev);
    }
}

// ---------------------------------------------------------------------
// Operations
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum Op {
    /// Insert an element under the i-th live element at child position p.
    InsertElement {
        parent_sel: usize,
        pos: usize,
        name_sel: usize,
    },
    /// Insert a text node under the i-th live element.
    InsertText {
        parent_sel: usize,
        pos: usize,
        value: String,
    },
    /// Delete the i-th live non-root node (whole subtree).
    Delete { node_sel: usize },
    /// Replace the value of the i-th live text node.
    SetValue { node_sel: usize, value: String },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (any::<usize>(), any::<usize>(), 0usize..5).prop_map(|(parent_sel, pos, name_sel)| Op::InsertElement {
            parent_sel,
            pos: pos % 6,
            name_sel,
        }),
        3 => (any::<usize>(), any::<usize>(), "[a-z]{0,12}").prop_map(|(parent_sel, pos, value)| Op::InsertText {
            parent_sel,
            pos: pos % 6,
            value,
        }),
        1 => any::<usize>().prop_map(|node_sel| Op::Delete { node_sel }),
        1 => (any::<usize>(), "[a-z]{0,20}").prop_map(|(node_sel, value)| Op::SetValue { node_sel, value }),
    ]
}

const NAMES: [&str; 5] = ["a", "b", "c", "d", "e"];

fn run_model(ops: Vec<Op>, mode: ParentMode, page_size: usize) {
    let sas = Sas::in_memory(SasConfig {
        page_size,
        layer_size: page_size as u64 * 8192,
        buffer_frames: 8192,
        buffer_shards: 0,
    })
    .unwrap();
    let vas = sas.session();
    vas.begin(View::LATEST, Some(TxnToken(1)));
    let mut schema = SchemaTree::new();
    let mut doc = DocStorage::create(&vas, &mut schema, mode).unwrap();
    let mut model = Model::new();
    // model node id -> storage handle
    let mut handles: Vec<Option<XPtr>> = vec![Some(doc.doc_handle)];

    for op in ops {
        match op {
            Op::InsertElement {
                parent_sel,
                pos,
                name_sel,
            } => {
                let parents = model.live_elements();
                let parent = parents[parent_sel % parents.len()];
                let siblings = model.nodes[parent].children.clone();
                let pos = pos.min(siblings.len());
                let name = NAMES[name_sel % NAMES.len()];
                let left = pos.checked_sub(1).map(|i| handles[siblings[i]].unwrap());
                let right = siblings.get(pos).map(|&i| handles[i].unwrap());
                let h = doc
                    .insert_node(
                        &vas,
                        &mut schema,
                        handles[parent].unwrap(),
                        left,
                        right,
                        NodeKind::Element,
                        Some(SchemaName::local(name)),
                        None,
                    )
                    .unwrap();
                let id = model.insert(
                    parent,
                    pos,
                    NodeKind::Element,
                    Some(name.into()),
                    String::new(),
                );
                assert_eq!(id, handles.len());
                handles.push(Some(h));
            }
            Op::InsertText {
                parent_sel,
                pos,
                value,
            } => {
                let parents = model.live_elements();
                let parent = parents[parent_sel % parents.len()];
                // The document node only takes elements in this model.
                if model.nodes[parent].kind == NodeKind::Document {
                    continue;
                }
                let siblings = model.nodes[parent].children.clone();
                let pos = pos.min(siblings.len());
                let left = pos.checked_sub(1).map(|i| handles[siblings[i]].unwrap());
                let right = siblings.get(pos).map(|&i| handles[i].unwrap());
                let h = doc
                    .insert_node(
                        &vas,
                        &mut schema,
                        handles[parent].unwrap(),
                        left,
                        right,
                        NodeKind::Text,
                        None,
                        Some(value.as_bytes()),
                    )
                    .unwrap();
                let id = model.insert(parent, pos, NodeKind::Text, None, value);
                assert_eq!(id, handles.len());
                handles.push(Some(h));
            }
            Op::Delete { node_sel } => {
                let candidates = model.live_non_root();
                if candidates.is_empty() {
                    continue;
                }
                let node = candidates[node_sel % candidates.len()];
                doc.delete_subtree(&vas, &mut schema, handles[node].unwrap())
                    .unwrap();
                model.delete(node);
            }
            Op::SetValue { node_sel, value } => {
                let texts = model.live_texts();
                if texts.is_empty() {
                    continue;
                }
                let node = texts[node_sel % texts.len()];
                doc.set_value(&vas, &mut schema, handles[node].unwrap(), value.as_bytes())
                    .unwrap();
                model.nodes[node].value = value;
            }
        }
        // Compare serializations after every operation.
        let mut want = String::new();
        model.serialize(0, &mut want);
        let mut got = String::new();
        serialize_stored(&vas, &schema, doc.doc_node(&vas).unwrap(), &mut got);
        assert_eq!(got, want, "storage diverged from the model");
    }
    // Final invariant sweep.
    let mut prev = None;
    check_invariants(&vas, doc.doc_node(&vas).unwrap(), &mut prev);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_random_updates_match_model_indirect(ops in proptest::collection::vec(arb_op(), 1..60)) {
        run_model(ops, ParentMode::Indirect, 1024);
    }

    #[test]
    fn prop_random_updates_match_model_direct(ops in proptest::collection::vec(arb_op(), 1..60)) {
        run_model(ops, ParentMode::Direct, 1024);
    }

    #[test]
    fn prop_random_updates_tiny_pages(ops in proptest::collection::vec(arb_op(), 1..40)) {
        // 512-byte pages: every few inserts split a block.
        run_model(ops, ParentMode::Indirect, 512);
    }
}

/// A long deterministic soak: thousands of mixed operations.
#[test]
fn soak_mixed_operations() {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
    let mut ops = Vec::new();
    for _ in 0..1500 {
        let r: u32 = rng.gen_range(0..8);
        ops.push(match r {
            0..=2 => Op::InsertElement {
                parent_sel: rng.gen(),
                pos: rng.gen_range(0..6),
                name_sel: rng.gen_range(0..5),
            },
            3..=5 => Op::InsertText {
                parent_sel: rng.gen(),
                pos: rng.gen_range(0..6),
                value: (0..rng.gen_range(0..18))
                    .map(|_| rng.gen_range(b'a'..=b'z') as char)
                    .collect(),
            },
            6 => Op::Delete {
                node_sel: rng.gen(),
            },
            _ => Op::SetValue {
                node_sel: rng.gen(),
                value: "replacement".into(),
            },
        });
    }
    run_model(ops, ParentMode::Indirect, 1024);
}
