//! End-to-end tests of the schema-clustered document store: bulk load,
//! navigation, mid-document updates, block splits, delayed widening,
//! label spill, and the direct-parent baseline.

use std::sync::Arc;

use sedna_numbering::DocOrder;
use sedna_sas::{Sas, SasConfig, TxnToken, Vas, View, XPtr};
use sedna_schema::{NodeKind, SchemaName, SchemaTree};
use sedna_storage::build::load_xml;
use sedna_storage::{NodeRef, ParentMode};

const LIBRARY: &str = r#"<library><book><title>Foundations of Databases</title><author>Abiteboul</author><author>Hull</author><author>Vianu</author></book><book><title>An Introduction to Database Systems</title><author>Date</author><issue><publisher>Addison-Wesley</publisher><year>2004</year></issue></book><paper><title>A Relational Model for Large Shared Data Banks</title><author>Codd</author></paper></library>"#;

fn setup(page_size: usize) -> (Arc<Sas>, Vas) {
    let sas = Sas::in_memory(SasConfig {
        page_size,
        layer_size: (page_size * 1024) as u64,
        buffer_frames: 2048,
        buffer_shards: 0,
    })
    .unwrap();
    let vas = sas.session();
    vas.begin(View::LATEST, Some(TxnToken(1)));
    (sas, vas)
}

/// Serializes a stored element back to XML text via NodeRef navigation.
fn serialize(vas: &Vas, schema: &SchemaTree, node: NodeRef) -> String {
    let mut out = String::new();
    write_node(vas, schema, node, &mut out);
    out
}

fn write_node(vas: &Vas, schema: &SchemaTree, node: NodeRef, out: &mut String) {
    let sid = node.schema(vas).unwrap();
    match node.kind(vas).unwrap() {
        NodeKind::Element => {
            let name = schema.node(sid).name.as_ref().unwrap().local.clone();
            out.push('<');
            out.push_str(&name);
            let children = node.children(vas).unwrap();
            let (attrs, others): (Vec<_>, Vec<_>) = children
                .into_iter()
                .partition(|c| c.kind(vas).unwrap() == NodeKind::Attribute);
            for a in &attrs {
                let asid = a.schema(vas).unwrap();
                out.push(' ');
                out.push_str(&schema.node(asid).name.as_ref().unwrap().local);
                out.push_str("=\"");
                out.push_str(&a.value_string(vas).unwrap());
                out.push('"');
            }
            if others.is_empty() {
                out.push_str("/>");
            } else {
                out.push('>');
                for c in others {
                    write_node(vas, schema, c, out);
                }
                out.push_str("</");
                out.push_str(&name);
                out.push('>');
            }
        }
        NodeKind::Text => out.push_str(&node.value_string(vas).unwrap()),
        NodeKind::Comment => {
            out.push_str("<!--");
            out.push_str(&node.value_string(vas).unwrap());
            out.push_str("-->");
        }
        NodeKind::ProcessingInstruction => {
            out.push_str("<?");
            out.push_str(&schema.node(sid).name.as_ref().unwrap().local);
            let data = node.value_string(vas).unwrap();
            if !data.is_empty() {
                out.push(' ');
                out.push_str(&data);
            }
            out.push_str("?>");
        }
        NodeKind::Document => {
            for c in node.children(vas).unwrap() {
                write_node(vas, schema, c, out);
            }
        }
        NodeKind::Attribute => unreachable!("attributes handled by parent"),
    }
}

#[test]
fn figure2_document_round_trips() {
    let (_sas, vas) = setup(4096);
    let mut schema = SchemaTree::new();
    let doc = load_xml(&vas, &mut schema, ParentMode::Indirect, LIBRARY).unwrap();
    let out = serialize(&vas, &schema, doc.doc_node(&vas).unwrap());
    assert_eq!(out, LIBRARY);
}

#[test]
fn figure2_schema_shape() {
    let (_sas, vas) = setup(4096);
    let mut schema = SchemaTree::new();
    let _doc = load_xml(&vas, &mut schema, ParentMode::Indirect, LIBRARY).unwrap();
    // The library element's schema node has exactly two element children
    // (book, paper) — Figure 2's central point.
    let lib = schema
        .find_child(
            SchemaTree::ROOT,
            NodeKind::Element,
            Some(&SchemaName::local("library")),
        )
        .unwrap();
    let elem_children: Vec<_> = schema
        .node(lib)
        .children
        .iter()
        .map(|&c| schema.node(c).name.as_ref().unwrap().local.clone())
        .collect();
    assert_eq!(elem_children, ["book", "paper"]);
    // Two books share one schema node with node_count 2.
    let book = schema
        .find_child(lib, NodeKind::Element, Some(&SchemaName::local("book")))
        .unwrap();
    assert_eq!(schema.node(book).node_count, 2);
    assert!(!schema.node(book).first_block.is_null());
}

#[test]
fn children_by_schema_walks_one_parents_children_only() {
    let (_sas, vas) = setup(4096);
    let mut schema = SchemaTree::new();
    let doc = load_xml(&vas, &mut schema, ParentMode::Indirect, LIBRARY).unwrap();
    let root = doc.root_element(&vas).unwrap().unwrap();
    let books = root.children_by_schema(&vas, 0).unwrap();
    assert_eq!(books.len(), 2);
    // First book: slot for author within book's children.
    let lib = schema
        .find_child(
            SchemaTree::ROOT,
            NodeKind::Element,
            Some(&SchemaName::local("library")),
        )
        .unwrap();
    let book_sid = schema
        .find_child(lib, NodeKind::Element, Some(&SchemaName::local("book")))
        .unwrap();
    let author_sid = schema
        .find_child(
            book_sid,
            NodeKind::Element,
            Some(&SchemaName::local("author")),
        )
        .unwrap();
    let slot = schema.child_slot(book_sid, author_sid).unwrap();
    // Book 1 has 3 authors; book 2 has exactly 1 — the walk must stop at
    // the parent boundary even though all 4 authors share one list.
    let authors1 = books[0].children_by_schema(&vas, slot).unwrap();
    assert_eq!(authors1.len(), 3);
    let authors2 = books[1].children_by_schema(&vas, slot).unwrap();
    assert_eq!(authors2.len(), 1);
    assert_eq!(authors2[0].string_value(&vas, &schema).unwrap(), "Date");
}

#[test]
fn labels_encode_document_order_and_ancestry() {
    let (_sas, vas) = setup(4096);
    let mut schema = SchemaTree::new();
    let doc = load_xml(&vas, &mut schema, ParentMode::Indirect, LIBRARY).unwrap();
    let root = doc.root_element(&vas).unwrap().unwrap();
    let root_label = root.label(&vas).unwrap();
    // Collect all descendants via recursive traversal; labels must be
    // strictly increasing in document order and all under the root label.
    fn collect(vas: &Vas, n: NodeRef, out: &mut Vec<NodeRef>) {
        for c in n.children(vas).unwrap() {
            out.push(c);
            collect(vas, c, out);
        }
    }
    let mut descendants = Vec::new();
    collect(&vas, root, &mut descendants);
    assert!(descendants.len() > 15);
    let labels: Vec<_> = descendants.iter().map(|n| n.label(&vas).unwrap()).collect();
    for w in labels.windows(2) {
        assert_eq!(w[0].doc_cmp(&w[1]), DocOrder::Before);
    }
    for l in &labels {
        assert!(root_label.is_ancestor_of(l));
    }
}

#[test]
fn multi_block_lists_preserve_partial_order() {
    // Tiny pages so that 300 <item> elements need many blocks.
    let (_sas, vas) = setup(1024);
    let mut schema = SchemaTree::new();
    let xml = format!(
        "<root>{}</root>",
        (0..300)
            .map(|i| format!("<item>{i}</item>"))
            .collect::<String>()
    );
    let doc = load_xml(&vas, &mut schema, ParentMode::Indirect, &xml).unwrap();
    let root_sid = schema
        .find_child(
            SchemaTree::ROOT,
            NodeKind::Element,
            Some(&SchemaName::local("root")),
        )
        .unwrap();
    let item_sid = schema
        .find_child(
            root_sid,
            NodeKind::Element,
            Some(&SchemaName::local("item")),
        )
        .unwrap();
    assert!(
        schema.node(item_sid).block_count > 3,
        "expected multiple blocks, got {}",
        schema.node(item_sid).block_count
    );
    // Walk the whole list via next_in_list; labels must ascend.
    let first_blk = schema.node(item_sid).first_block;
    let page = vas.read(first_blk).unwrap();
    let first_slot = {
        use sedna_storage::block;
        let s = block::first_desc(&page);
        let dsz = block::block_desc_size(&page);
        first_blk.offset(block::desc_offset(s, dsz) as u32)
    };
    drop(page);
    let mut cur = Some(NodeRef(first_slot));
    let mut count = 0;
    let mut prev_label: Option<sedna_numbering::Label> = None;
    while let Some(n) = cur {
        let l = n.label(&vas).unwrap();
        if let Some(p) = &prev_label {
            assert_eq!(p.doc_cmp(&l), DocOrder::Before);
        }
        prev_label = Some(l);
        count += 1;
        cur = n.next_in_list(&vas).unwrap();
    }
    assert_eq!(count, 300);
    // And the values are in creation order.
    let root = doc.root_element(&vas).unwrap().unwrap();
    let items = root.children_by_schema(&vas, 0).unwrap();
    assert_eq!(items.len(), 300);
    assert_eq!(items[299].string_value(&vas, &schema).unwrap(), "299");
}

#[test]
fn mid_document_insert_preserves_structure() {
    let (_sas, vas) = setup(4096);
    let mut schema = SchemaTree::new();
    let mut doc = load_xml(&vas, &mut schema, ParentMode::Indirect, LIBRARY).unwrap();
    let root = doc.root_element(&vas).unwrap().unwrap();
    let books = root.children_by_schema(&vas, 0).unwrap();
    let book1 = books[0];
    let kids = book1.children(&vas).unwrap();
    // Insert a new <author>Inserted</author> between Abiteboul and Hull.
    let abiteboul = kids[1];
    let hull = kids[2];
    let parent_handle = book1.handle(&vas).unwrap();
    let new_handle = doc
        .insert_node(
            &vas,
            &mut schema,
            parent_handle,
            Some(abiteboul.handle(&vas).unwrap()),
            Some(hull.handle(&vas).unwrap()),
            NodeKind::Element,
            Some(SchemaName::local("author")),
            None,
        )
        .unwrap();
    // Give it a text child.
    doc.insert_node(
        &vas,
        &mut schema,
        new_handle,
        None,
        None,
        NodeKind::Text,
        None,
        Some(b"Inserted"),
    )
    .unwrap();
    let out = serialize(&vas, &schema, doc.doc_node(&vas).unwrap());
    assert!(
        out.contains("<author>Abiteboul</author><author>Inserted</author><author>Hull</author>"),
        "got: {out}"
    );
    // Document order of the new node sits between its siblings.
    let la = abiteboul.label(&vas).unwrap();
    let ln = NodeRef(sedna_storage::indirection::deref_handle(&vas, new_handle).unwrap())
        .label(&vas)
        .unwrap();
    let lh = hull.label(&vas).unwrap();
    assert_eq!(la.doc_cmp(&ln), DocOrder::Before);
    assert_eq!(ln.doc_cmp(&lh), DocOrder::Before);
}

#[test]
fn insert_new_first_child_updates_parent_slot() {
    let (_sas, vas) = setup(4096);
    let mut schema = SchemaTree::new();
    let mut doc = load_xml(&vas, &mut schema, ParentMode::Indirect, LIBRARY).unwrap();
    let root = doc.root_element(&vas).unwrap().unwrap();
    let books = root.children_by_schema(&vas, 0).unwrap();
    let book2 = books[1];
    // book2 currently starts with <title>; prepend a brand-new <isbn/>
    // element — a NEW schema child of book, so the parent descriptor may
    // need widening (delayed per-block widening path).
    let first = book2.children(&vas).unwrap()[0];
    let h = doc
        .insert_node(
            &vas,
            &mut schema,
            book2.handle(&vas).unwrap(),
            None,
            Some(first.handle(&vas).unwrap()),
            NodeKind::Element,
            Some(SchemaName::local("isbn")),
            None,
        )
        .unwrap();
    doc.insert_node(
        &vas,
        &mut schema,
        h,
        None,
        None,
        NodeKind::Text,
        None,
        Some(b"0-321"),
    )
    .unwrap();
    let out = serialize(&vas, &schema, doc.doc_node(&vas).unwrap());
    assert!(
        out.contains("<book><isbn>0-321</isbn><title>An Introduction"),
        "got: {out}"
    );
    // The other book is untouched.
    assert!(out.contains("<book><title>Foundations"));
}

#[test]
fn widening_relocation_keeps_handles_valid() {
    // Element with many distinct child schemas, added one at a time via
    // updates — every new schema child exercises ensure_child_slot.
    let (_sas, vas) = setup(1024);
    let mut schema = SchemaTree::new();
    let mut doc = load_xml(&vas, &mut schema, ParentMode::Indirect, "<row/>").unwrap();
    let row = doc.root_element(&vas).unwrap().unwrap();
    let row_handle = row.handle(&vas).unwrap();
    let mut last: Option<XPtr> = None;
    for i in 0..12 {
        let h = doc
            .insert_node(
                &vas,
                &mut schema,
                row_handle,
                last,
                None,
                NodeKind::Element,
                Some(SchemaName::local(format!("col{i}"))),
                None,
            )
            .unwrap();
        doc.insert_node(
            &vas,
            &mut schema,
            h,
            None,
            None,
            NodeKind::Text,
            None,
            Some(format!("v{i}").as_bytes()),
        )
        .unwrap();
        last = Some(h);
    }
    // The row element moved several times; its handle still resolves and
    // every child is reachable in order.
    let row = doc.root_element(&vas).unwrap().unwrap();
    assert_eq!(row.handle(&vas).unwrap(), row_handle);
    let kids = row.children(&vas).unwrap();
    assert_eq!(kids.len(), 12);
    for (i, k) in kids.iter().enumerate() {
        assert_eq!(k.string_value(&vas, &schema).unwrap(), format!("v{i}"));
        // Parent pointers (indirect) still reach the row.
        let p = k.parent(&vas, ParentMode::Indirect).unwrap().unwrap();
        assert_eq!(p.handle(&vas).unwrap(), row_handle);
    }
    assert!(doc.stats.descriptors_moved > 0, "widening must relocate");
}

#[test]
fn split_on_full_block_mid_insert() {
    let (_sas, vas) = setup(1024);
    let mut schema = SchemaTree::new();
    let xml = format!(
        "<root>{}</root>",
        (0..40)
            .map(|i| format!("<item>{i}</item>"))
            .collect::<String>()
    );
    let mut doc = load_xml(&vas, &mut schema, ParentMode::Indirect, &xml).unwrap();
    let root = doc.root_element(&vas).unwrap().unwrap();
    let root_handle = root.handle(&vas).unwrap();
    // Repeatedly insert right after item 0 — the first block must split.
    let items = root.children_by_schema(&vas, 0).unwrap();
    let mut left = items[0].handle(&vas).unwrap();
    let right0 = items[1].handle(&vas).unwrap();
    let splits_before = doc.stats.splits;
    for i in 0..30 {
        let h = doc
            .insert_node(
                &vas,
                &mut schema,
                root_handle,
                Some(left),
                Some(right0),
                NodeKind::Element,
                Some(SchemaName::local("item")),
                None,
            )
            .unwrap();
        doc.insert_node(
            &vas,
            &mut schema,
            h,
            None,
            None,
            NodeKind::Text,
            None,
            Some(format!("new{i}").as_bytes()),
        )
        .unwrap();
        left = h;
    }
    assert!(
        doc.stats.splits > splits_before,
        "inserts must split blocks"
    );
    // Structure check: 70 items, values in order.
    let root = doc.root_element(&vas).unwrap().unwrap();
    let items = root.children_by_schema(&vas, 0).unwrap();
    assert_eq!(items.len(), 70);
    assert_eq!(items[0].string_value(&vas, &schema).unwrap(), "0");
    assert_eq!(items[1].string_value(&vas, &schema).unwrap(), "new0");
    assert_eq!(items[30].string_value(&vas, &schema).unwrap(), "new29");
    assert_eq!(items[31].string_value(&vas, &schema).unwrap(), "1");
    assert_eq!(items[69].string_value(&vas, &schema).unwrap(), "39");
    // Labels still strictly ascend.
    let labels: Vec<_> = items.iter().map(|n| n.label(&vas).unwrap()).collect();
    for w in labels.windows(2) {
        assert_eq!(w[0].doc_cmp(&w[1]), DocOrder::Before);
    }
}

#[test]
fn delete_subtree_relinks_and_frees() {
    let (_sas, vas) = setup(4096);
    let mut schema = SchemaTree::new();
    let mut doc = load_xml(&vas, &mut schema, ParentMode::Indirect, LIBRARY).unwrap();
    let root = doc.root_element(&vas).unwrap().unwrap();
    let books = root.children_by_schema(&vas, 0).unwrap();
    let book1_handle = books[0].handle(&vas).unwrap();
    doc.delete_subtree(&vas, &mut schema, book1_handle).unwrap();
    let out = serialize(&vas, &schema, doc.doc_node(&vas).unwrap());
    assert!(!out.contains("Abiteboul"));
    assert!(out.contains("<book><title>An Introduction"));
    assert!(out.contains("<paper>"));
    // Schema counts dropped.
    let lib = schema
        .find_child(
            SchemaTree::ROOT,
            NodeKind::Element,
            Some(&SchemaName::local("library")),
        )
        .unwrap();
    let book_sid = schema
        .find_child(lib, NodeKind::Element, Some(&SchemaName::local("book")))
        .unwrap();
    assert_eq!(schema.node(book_sid).node_count, 1);
    // Deleting the remaining book leaves paper as the only child.
    let root = doc.root_element(&vas).unwrap().unwrap();
    let books = root.children_by_schema(&vas, 0).unwrap();
    assert_eq!(books.len(), 1);
    doc.delete_subtree(&vas, &mut schema, books[0].handle(&vas).unwrap())
        .unwrap();
    assert_eq!(schema.node(book_sid).node_count, 0);
    let out = serialize(&vas, &schema, doc.doc_node(&vas).unwrap());
    assert_eq!(out, "<library><paper><title>A Relational Model for Large Shared Data Banks</title><author>Codd</author></paper></library>");
}

#[test]
fn deep_documents_spill_labels() {
    let (_sas, vas) = setup(4096);
    let mut schema = SchemaTree::new();
    let depth = 40;
    let mut xml = String::new();
    for i in 0..depth {
        xml.push_str(&format!("<d{i}>"));
    }
    xml.push_str("leaf");
    for i in (0..depth).rev() {
        xml.push_str(&format!("</d{i}>"));
    }
    let doc = load_xml(&vas, &mut schema, ParentMode::Indirect, &xml).unwrap();
    // Walk to the leaf text node.
    let mut node = doc.root_element(&vas).unwrap().unwrap();
    let root_label = node.label(&vas).unwrap();
    loop {
        let kids = node.children(&vas).unwrap();
        if kids.is_empty() {
            break;
        }
        node = kids[0];
    }
    assert_eq!(node.kind(&vas).unwrap(), NodeKind::Text);
    let leaf_label = node.label(&vas).unwrap();
    assert!(
        leaf_label.byte_len() > 23,
        "depth-{depth} label should exceed the inline area ({})",
        leaf_label.byte_len()
    );
    assert!(root_label.is_ancestor_of(&leaf_label));
    assert_eq!(node.string_value(&vas, &schema).unwrap(), "leaf");
    // Round trip survives spilled labels.
    let out = serialize(&vas, &schema, doc.doc_node(&vas).unwrap());
    assert!(out.starts_with("<d0><d1>"));
}

#[test]
fn direct_parent_mode_round_trips() {
    let (_sas, vas) = setup(4096);
    let mut schema = SchemaTree::new();
    let doc = load_xml(&vas, &mut schema, ParentMode::Direct, LIBRARY).unwrap();
    let out = serialize(&vas, &schema, doc.doc_node(&vas).unwrap());
    assert_eq!(out, LIBRARY);
    // parent() works in direct mode.
    let root = doc.root_element(&vas).unwrap().unwrap();
    let kid = root.children(&vas).unwrap()[0];
    let p = kid.parent(&vas, ParentMode::Direct).unwrap().unwrap();
    assert_eq!(p.ptr(), root.ptr());
}

#[test]
fn direct_mode_pays_more_pointer_updates_on_moves() {
    // The E4 claim at unit scale: identical split workload, indirect vs
    // direct parent pointers; direct must rewrite each child of every
    // moved element.
    fn run(mode: ParentMode) -> u64 {
        let (_sas, vas) = setup(1024);
        let mut schema = SchemaTree::new();
        // Elements with 8 children each, so moving one costs 8 rewrites in
        // direct mode.
        let xml = format!(
            "<root>{}</root>",
            (0..30)
                .map(|i| format!(
                    "<rec>{}</rec>",
                    (0..8)
                        .map(|j| format!("<f{j}>x{i}</f{j}>"))
                        .collect::<String>()
                ))
                .collect::<String>()
        );
        let mut doc = load_xml(&vas, &mut schema, mode, &xml).unwrap();
        let root = doc.root_element(&vas).unwrap().unwrap();
        let root_handle = root.handle(&vas).unwrap();
        let recs = root.children_by_schema(&vas, 0).unwrap();
        let mut left = recs[0].handle(&vas).unwrap();
        let right = recs[1].handle(&vas).unwrap();
        let base = doc.stats.pointer_updates;
        for _ in 0..20 {
            left = doc
                .insert_node(
                    &vas,
                    &mut schema,
                    root_handle,
                    Some(left),
                    Some(right),
                    NodeKind::Element,
                    Some(SchemaName::local("rec")),
                    None,
                )
                .unwrap();
        }
        assert!(doc.stats.splits > 0);
        doc.stats.pointer_updates - base
    }
    let indirect = run(ParentMode::Indirect);
    let direct = run(ParentMode::Direct);
    assert!(
        direct > indirect,
        "direct parents must cost more pointer updates: direct={direct} indirect={indirect}"
    );
}

#[test]
fn set_value_replaces_text() {
    let (_sas, vas) = setup(4096);
    let mut schema = SchemaTree::new();
    let mut doc = load_xml(&vas, &mut schema, ParentMode::Indirect, "<a><b>old</b></a>").unwrap();
    let root = doc.root_element(&vas).unwrap().unwrap();
    let b = root.children(&vas).unwrap()[0];
    let text = b.children(&vas).unwrap()[0];
    let th = text.handle(&vas).unwrap();
    doc.set_value(
        &vas,
        &mut schema,
        th,
        b"replacement value that is much longer than before",
    )
    .unwrap();
    assert_eq!(
        root.string_value(&vas, &schema).unwrap(),
        "replacement value that is much longer than before"
    );
}

#[test]
fn comments_pis_and_attributes_store_and_navigate() {
    let (_sas, vas) = setup(4096);
    let mut schema = SchemaTree::new();
    let xml = r#"<root a="1" b="two"><!--note--><?pi some data?><x/></root>"#;
    let doc = load_xml(&vas, &mut schema, ParentMode::Indirect, xml).unwrap();
    let out = serialize(&vas, &schema, doc.doc_node(&vas).unwrap());
    assert_eq!(
        out,
        r#"<root a="1" b="two"><!--note--><?pi some data?><x/></root>"#
    );
    let root = doc.root_element(&vas).unwrap().unwrap();
    let kids = root.children(&vas).unwrap();
    assert_eq!(kids.len(), 5); // 2 attrs + comment + pi + x
    assert_eq!(kids[0].kind(&vas).unwrap(), NodeKind::Attribute);
    assert_eq!(kids[2].kind(&vas).unwrap(), NodeKind::Comment);
    assert_eq!(kids[2].value_string(&vas).unwrap(), "note");
    assert_eq!(kids[3].kind(&vas).unwrap(), NodeKind::ProcessingInstruction);
    assert_eq!(kids[3].value_string(&vas).unwrap(), "some data");
}

#[test]
fn sixty_four_kib_pages_work() {
    // Regression: text-block slot offsets are u16; 64 KiB pages must cap
    // the data area rather than wrap to zero.
    let (_sas, vas) = setup(64 * 1024);
    let mut schema = SchemaTree::new();
    let big_text = "x".repeat(50_000);
    let xml = format!("<a><b>{big_text}</b><c>small</c></a>");
    let doc = load_xml(&vas, &mut schema, ParentMode::Indirect, &xml).unwrap();
    let root = doc.root_element(&vas).unwrap().unwrap();
    assert_eq!(root.string_value(&vas, &schema).unwrap().len(), 50_005);
    let out = serialize(&vas, &schema, doc.doc_node(&vas).unwrap());
    assert_eq!(out, xml);
}

#[test]
fn document_node_cannot_be_deleted() {
    let (_sas, vas) = setup(4096);
    let mut schema = SchemaTree::new();
    let mut doc = load_xml(&vas, &mut schema, ParentMode::Indirect, "<a/>").unwrap();
    assert!(doc
        .delete_subtree(&vas, &mut schema, doc.doc_handle)
        .is_err());
}
