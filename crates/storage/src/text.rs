//! Slotted-page text storage.
//!
//! "In our storage we separate the structural part of an XML node (i.e.
//! markup) and text value. [...] Due to unrestricted length support
//! required for text values, they are stored in blocks according to the
//! well-known slotted-page structure method developed specifically for
//! data of variable length." (Section 4.1)
//!
//! A stored string is addressed by an [`XPtr`] to its **slot-directory
//! entry**; the directory never moves, so the reference stays valid across
//! in-page compaction. Values longer than a page are chained across
//! chunks.

use sedna_sas::{Vas, XPtr};
use sedna_schema as _; // (crate linkage; schema types not needed here)

use crate::error::{StorageError, StorageResult};
use crate::layout::*;
use crate::util::*;

/// Per-document text storage anchors.
///
/// Text values are clustered by **group** (the schema node of the owning
/// XML node): every group has its own chain of slotted text blocks, so a
/// typed scan that reads the values of one schema node touches only that
/// group's pages — the schema-driven clustering principle applied to the
/// value part of nodes, matching the structural clustering of §4.1.
/// Allocation targets a group's chain head; a full head gets a fresh
/// block prepended.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TextStore {
    /// Chain heads per group (`schema node id` → head block).
    pub heads: std::collections::BTreeMap<u32, XPtr>,
}

/// Number of chain blocks probed for free space before a new block is
/// prepended.
const ALLOC_PROBE: usize = 4;

impl TextStore {
    /// Creates an empty text store.
    pub fn new() -> TextStore {
        TextStore::default()
    }

    /// The chain head of `group` (`XPtr::NULL` when the group has no
    /// text yet).
    pub fn head_of(&self, group: u32) -> XPtr {
        self.heads.get(&group).copied().unwrap_or(XPtr::NULL)
    }

    /// Top of the data area: offsets in the slot directory are 16-bit, so
    /// pages larger than 64 KiB address at most the first 65 535 bytes for
    /// text data (one byte of a 64 KiB page goes unused).
    fn data_top(page_size: usize) -> usize {
        page_size.min(u16::MAX as usize)
    }

    /// Largest single-chunk payload for the given page size.
    fn max_chunk(page_size: usize) -> usize {
        // Worst-case per-chunk overhead: slot entry + flags + next pointer.
        Self::data_top(page_size) - TEXT_HEADER_LEN - TEXT_SLOT_LEN - TEXT_CHUNK_HDR - 8
    }

    /// Stores `bytes` in `group`'s chain, returning the stable text
    /// reference.
    pub fn alloc(&mut self, vas: &Vas, group: u32, bytes: &[u8]) -> StorageResult<XPtr> {
        let max = Self::max_chunk(vas.page_size());
        // Build the chunk chain from the tail so each chunk knows its
        // successor.
        if bytes.len() <= max {
            return self.alloc_chunk(vas, group, bytes, XPtr::NULL);
        }
        let mut chunks: Vec<&[u8]> = bytes.chunks(max).collect();
        let mut next = XPtr::NULL;
        while let Some(chunk) = chunks.pop() {
            next = self.alloc_chunk(vas, group, chunk, next)?;
        }
        Ok(next)
    }

    /// Reads the full value behind `text_ref`.
    pub fn read(vas: &Vas, text_ref: XPtr) -> StorageResult<Vec<u8>> {
        let mut out = Vec::new();
        let mut cur = text_ref;
        while !cur.is_null() {
            let page = vas.read(cur)?;
            if page[TH_KIND] != KIND_TEXT_BLOCK {
                return Err(StorageError::BadPointer(cur, "text block"));
            }
            let ps = vas.page_size();
            let slot_at = cur.offset_in_page(ps);
            let data_off = get_u16(&page, slot_at) as usize;
            let len = get_u16(&page, slot_at + 2) as usize;
            if data_off == 0 {
                return Err(StorageError::BadPointer(cur, "live text slot"));
            }
            let chunk = &page[data_off..data_off + len];
            let flags = chunk[0];
            if flags & TEXT_CHUNK_CONTINUED != 0 {
                cur = XPtr::read_at(chunk, TEXT_CHUNK_HDR);
                out.extend_from_slice(&chunk[TEXT_CHUNK_HDR + 8..]);
            } else {
                cur = XPtr::NULL;
                out.extend_from_slice(&chunk[TEXT_CHUNK_HDR..]);
            }
        }
        Ok(out)
    }

    /// Frees the value behind `text_ref` (every chunk in the chain).
    pub fn free(vas: &Vas, text_ref: XPtr) -> StorageResult<()> {
        let mut cur = text_ref;
        while !cur.is_null() {
            let ps = vas.page_size();
            let slot_at = cur.offset_in_page(ps);
            let mut page = vas.write(cur)?;
            if page[TH_KIND] != KIND_TEXT_BLOCK {
                return Err(StorageError::BadPointer(cur, "text block"));
            }
            let data_off = get_u16(&page, slot_at) as usize;
            let len = get_u16(&page, slot_at + 2) as usize;
            if data_off == 0 {
                return Err(StorageError::BadPointer(cur, "live text slot"));
            }
            let chunk_flags = page[data_off];
            let next = if chunk_flags & TEXT_CHUNK_CONTINUED != 0 {
                XPtr::read_at(&page, data_off + TEXT_CHUNK_HDR)
            } else {
                XPtr::NULL
            };
            // Mark the slot free and thread it on the free list.
            let slot_idx = ((slot_at - TEXT_HEADER_LEN) / TEXT_SLOT_LEN) as u16;
            let free_head = get_u16(&page, TH_FREE_SLOT_HEAD);
            put_u16(&mut page, slot_at, 0);
            put_u16(&mut page, slot_at + 2, free_head);
            put_u16(&mut page, TH_FREE_SLOT_HEAD, slot_idx);
            let live = get_u16(&page, TH_LIVE_COUNT) - 1;
            put_u16(&mut page, TH_LIVE_COUNT, live);
            let dead = get_u16(&page, TH_DEAD_BYTES) as usize + len;
            put_u16(&mut page, TH_DEAD_BYTES, dead.min(u16::MAX as usize) as u16);
            drop(page);
            cur = next;
        }
        Ok(())
    }

    /// Replaces the value behind `text_ref` — frees the old chain and
    /// allocates anew (the node's value pointer must be updated to the
    /// returned reference).
    pub fn replace(
        &mut self,
        vas: &Vas,
        group: u32,
        text_ref: XPtr,
        bytes: &[u8],
    ) -> StorageResult<XPtr> {
        Self::free(vas, text_ref)?;
        self.alloc(vas, group, bytes)
    }

    fn alloc_chunk(
        &mut self,
        vas: &Vas,
        group: u32,
        payload: &[u8],
        next: XPtr,
    ) -> StorageResult<XPtr> {
        let chunk_len = if next.is_null() {
            TEXT_CHUNK_HDR + payload.len()
        } else {
            TEXT_CHUNK_HDR + 8 + payload.len()
        };
        // Probe a few of the group's chain blocks for space.
        let head = self.head_of(group);
        let mut cur = head;
        let mut probed = 0;
        while !cur.is_null() && probed < ALLOC_PROBE {
            if let Some(r) = self.try_alloc_in(vas, cur, payload, next, chunk_len)? {
                return Ok(r);
            }
            let page = vas.read(cur)?;
            cur = get_xptr(&page, TH_NEXT);
            probed += 1;
        }
        // Prepend a fresh text block to the group's chain.
        let (block, mut page) = vas.alloc_page()?;
        page[TH_KIND] = KIND_TEXT_BLOCK;
        put_u16(&mut page, TH_SLOT_COUNT, 0);
        put_u16(
            &mut page,
            TH_DATA_START,
            Self::data_top(vas.page_size()) as u16,
        );
        put_u16(&mut page, TH_FREE_SLOT_HEAD, NO_SLOT);
        put_u16(&mut page, TH_LIVE_COUNT, 0);
        put_u16(&mut page, TH_DEAD_BYTES, 0);
        put_xptr(&mut page, TH_NEXT, head);
        drop(page);
        self.heads.insert(group, block);
        self.try_alloc_in(vas, block, payload, next, chunk_len)?
            .ok_or_else(|| {
                StorageError::TooLarge(format!(
                    "text chunk of {} bytes does not fit an empty block",
                    chunk_len
                ))
            })
    }

    /// Attempts allocation inside `block`; `Ok(None)` = no room.
    fn try_alloc_in(
        &mut self,
        vas: &Vas,
        block: XPtr,
        payload: &[u8],
        next: XPtr,
        chunk_len: usize,
    ) -> StorageResult<Option<XPtr>> {
        let ps = vas.page_size();
        let mut page = vas.write(block)?;
        debug_assert_eq!(page[TH_KIND], KIND_TEXT_BLOCK);
        let slot_count = get_u16(&page, TH_SLOT_COUNT) as usize;
        let free_head = get_u16(&page, TH_FREE_SLOT_HEAD);
        let need_new_slot = free_head == NO_SLOT;
        let dir_end = TEXT_HEADER_LEN
            + slot_count * TEXT_SLOT_LEN
            + if need_new_slot { TEXT_SLOT_LEN } else { 0 };
        let mut data_start = get_u16(&page, TH_DATA_START) as usize;
        if data_start < dir_end + chunk_len {
            // Try in-page compaction if enough dead space exists.
            let dead = get_u16(&page, TH_DEAD_BYTES) as usize;
            if dead == 0 || data_start + dead < dir_end + chunk_len {
                return Ok(None);
            }
            Self::compact(&mut page, ps);
            data_start = get_u16(&page, TH_DATA_START) as usize;
            if data_start < dir_end + chunk_len {
                return Ok(None);
            }
        }
        // Claim a slot.
        let slot_idx = if need_new_slot {
            put_u16(&mut page, TH_SLOT_COUNT, (slot_count + 1) as u16);
            slot_count as u16
        } else {
            let idx = free_head;
            let at = TEXT_HEADER_LEN + idx as usize * TEXT_SLOT_LEN;
            let next_free = get_u16(&page, at + 2);
            put_u16(&mut page, TH_FREE_SLOT_HEAD, next_free);
            idx
        };
        // Place the data.
        let off = data_start - chunk_len;
        {
            let chunk = &mut page[off..off + chunk_len];
            if next.is_null() {
                chunk[0] = 0;
                chunk[TEXT_CHUNK_HDR..].copy_from_slice(payload);
            } else {
                chunk[0] = TEXT_CHUNK_CONTINUED;
                next.write_at(chunk, TEXT_CHUNK_HDR);
                chunk[TEXT_CHUNK_HDR + 8..].copy_from_slice(payload);
            }
        }
        put_u16(&mut page, TH_DATA_START, off as u16);
        let slot_at = TEXT_HEADER_LEN + slot_idx as usize * TEXT_SLOT_LEN;
        put_u16(&mut page, slot_at, off as u16);
        put_u16(&mut page, slot_at + 2, chunk_len as u16);
        let live = get_u16(&page, TH_LIVE_COUNT) + 1;
        put_u16(&mut page, TH_LIVE_COUNT, live);
        Ok(Some(block.offset(slot_at as u32)))
    }

    /// In-page compaction: repacks live chunks against the page end,
    /// keeping slot indices (and therefore external references) stable.
    fn compact(page: &mut [u8], page_size: usize) {
        let page_size = Self::data_top(page_size);
        let slot_count = get_u16(page, TH_SLOT_COUNT) as usize;
        // Collect live slots ordered by current data offset, descending,
        // so we can repack from the end without overlap.
        let mut live: Vec<(usize, usize, usize)> = (0..slot_count)
            .filter_map(|i| {
                let at = TEXT_HEADER_LEN + i * TEXT_SLOT_LEN;
                let off = get_u16(page, at) as usize;
                let len = get_u16(page, at + 2) as usize;
                (off != 0).then_some((i, off, len))
            })
            .collect();
        live.sort_by_key(|&(_, off, _)| std::cmp::Reverse(off));
        let mut write_end = page_size;
        for (slot, off, len) in live {
            let new_off = write_end - len;
            if new_off != off {
                page.copy_within(off..off + len, new_off);
                let at = TEXT_HEADER_LEN + slot * TEXT_SLOT_LEN;
                put_u16(page, at, new_off as u16);
            }
            write_end = new_off;
        }
        put_u16(page, TH_DATA_START, write_end as u16);
        put_u16(page, TH_DEAD_BYTES, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedna_sas::{Sas, SasConfig, TxnToken, View};
    use std::sync::Arc;

    fn setup() -> (Arc<Sas>, Vas) {
        let sas = Sas::in_memory(SasConfig {
            page_size: 1024,
            layer_size: 64 * 1024,
            buffer_frames: 64,
            buffer_shards: 0,
        })
        .unwrap();
        let vas = sas.session();
        vas.begin(View::LATEST, Some(TxnToken(1)));
        (sas, vas)
    }

    #[test]
    fn small_value_round_trip() {
        let (_sas, vas) = setup();
        let mut ts = TextStore::new();
        let r = ts.alloc(&vas, 0, b"Foundations of Databases").unwrap();
        assert_eq!(
            TextStore::read(&vas, r).unwrap(),
            b"Foundations of Databases"
        );
    }

    #[test]
    fn empty_value_round_trip() {
        let (_sas, vas) = setup();
        let mut ts = TextStore::new();
        let r = ts.alloc(&vas, 0, b"").unwrap();
        assert_eq!(TextStore::read(&vas, r).unwrap(), b"");
    }

    #[test]
    fn many_values_share_blocks() {
        let (_sas, vas) = setup();
        let mut ts = TextStore::new();
        let refs: Vec<(XPtr, Vec<u8>)> = (0..100)
            .map(|i| {
                let v = format!("value number {i}").into_bytes();
                (ts.alloc(&vas, 0, &v).unwrap(), v)
            })
            .collect();
        for (r, v) in &refs {
            assert_eq!(&TextStore::read(&vas, *r).unwrap(), v);
        }
    }

    #[test]
    fn unrestricted_length_values_chain() {
        let (_sas, vas) = setup();
        let mut ts = TextStore::new();
        // 10 KiB value on 1 KiB pages: must chain across ≥10 chunks.
        let big: Vec<u8> = (0..10_240u32).map(|i| (i % 251) as u8).collect();
        let r = ts.alloc(&vas, 0, &big).unwrap();
        assert_eq!(TextStore::read(&vas, r).unwrap(), big);
        TextStore::free(&vas, r).unwrap();
    }

    #[test]
    fn free_then_realloc_reuses_space() {
        let (_sas, vas) = setup();
        let mut ts = TextStore::new();
        let r1 = ts.alloc(&vas, 0, &[b'x'; 300]).unwrap();
        let first_block = r1.page(1024);
        TextStore::free(&vas, r1).unwrap();
        // Freed slot + compaction leave room in the same block.
        let r2 = ts.alloc(&vas, 0, &[b'y'; 300]).unwrap();
        assert_eq!(r2.page(1024), first_block, "block was reused");
        assert_eq!(TextStore::read(&vas, r2).unwrap(), vec![b'y'; 300]);
    }

    #[test]
    fn compaction_keeps_references_valid() {
        let (_sas, vas) = setup();
        let mut ts = TextStore::new();
        // Fill a block with alternating values, free half to fragment it,
        // then allocate something that only fits after compaction.
        let keep: Vec<XPtr> = (0..6)
            .map(|i| {
                ts.alloc(&vas, 0, format!("keeper-{i}-{}", "k".repeat(50)).as_bytes())
                    .unwrap()
            })
            .collect();
        let drop_refs: Vec<XPtr> = (0..6)
            .map(|i| {
                ts.alloc(&vas, 0, format!("dropme-{i}-{}", "d".repeat(50)).as_bytes())
                    .unwrap()
            })
            .collect();
        for r in drop_refs {
            TextStore::free(&vas, r).unwrap();
        }
        let big = ts.alloc(&vas, 0, &[b'z'; 350]).unwrap();
        assert_eq!(TextStore::read(&vas, big).unwrap(), vec![b'z'; 350]);
        for (i, r) in keep.iter().enumerate() {
            let v = TextStore::read(&vas, *r).unwrap();
            assert!(v.starts_with(format!("keeper-{i}").as_bytes()));
        }
    }

    #[test]
    fn replace_returns_fresh_reference() {
        let (_sas, vas) = setup();
        let mut ts = TextStore::new();
        let r1 = ts.alloc(&vas, 0, b"old").unwrap();
        let r2 = ts.replace(&vas, 0, r1, b"brand new value").unwrap();
        assert_eq!(TextStore::read(&vas, r2).unwrap(), b"brand new value");
    }

    #[test]
    fn reading_freed_slot_errors() {
        let (_sas, vas) = setup();
        let mut ts = TextStore::new();
        let r = ts.alloc(&vas, 0, b"gone").unwrap();
        TextStore::free(&vas, r).unwrap();
        assert!(matches!(
            TextStore::read(&vas, r),
            Err(StorageError::BadPointer(_, _))
        ));
    }
}
