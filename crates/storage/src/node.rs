//! High-level, read-only navigation over stored nodes.
//!
//! A [`NodeRef`] is a **direct pointer** to a node descriptor — the
//! representation query execution uses for intermediate results
//! (Section 5.2: "the selected nodes as well as intermediate result of any
//! query expression are represented by direct pointers"). Anything that
//! must survive node movement (update targets, index entries) uses the
//! node handle instead.

use sedna_numbering::Label;
use sedna_sas::{Vas, XPtr};
use sedna_schema::{NodeKind, SchemaNodeId, SchemaTree};

use crate::descriptor as desc;
use crate::error::{StorageError, StorageResult};
use crate::indirection::deref_handle;
use crate::layout::*;
use crate::text::TextStore;
use crate::{block, ParentMode};

/// A direct pointer to a node descriptor.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct NodeRef(pub XPtr);

impl NodeRef {
    /// The raw descriptor pointer.
    #[inline]
    pub fn ptr(self) -> XPtr {
        self.0
    }

    /// Whether this reference is null.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0.is_null()
    }

    fn offset(self, vas: &Vas) -> usize {
        self.0.offset_in_page(vas.page_size())
    }

    /// The node's kind.
    pub fn kind(self, vas: &Vas) -> StorageResult<NodeKind> {
        let page = vas.read(self.0)?;
        desc::kind(&page, self.offset(vas))
            .ok_or(StorageError::BadPointer(self.0, "live node descriptor"))
    }

    /// The schema node this node belongs to (from the block header).
    pub fn schema(self, vas: &Vas) -> StorageResult<SchemaNodeId> {
        let page = vas.read(self.0)?;
        if page[BH_KIND] != KIND_NODE_BLOCK {
            return Err(StorageError::BadPointer(self.0, "node block"));
        }
        Ok(block::schema_of(&page))
    }

    /// The node's numbering-scheme label (resolving spilled prefixes).
    pub fn label(self, vas: &Vas) -> StorageResult<Label> {
        let raw = {
            let page = vas.read(self.0)?;
            desc::label(&page, self.offset(vas))
        };
        match raw {
            desc::RawLabel::Inline(l) => Ok(l),
            desc::RawLabel::Spilled { text_ref, delim } => {
                let prefix = TextStore::read(vas, text_ref)?;
                Ok(Label::from_parts(prefix, delim))
            }
        }
    }

    /// The node handle (indirection entry address).
    pub fn handle(self, vas: &Vas) -> StorageResult<XPtr> {
        let page = vas.read(self.0)?;
        Ok(desc::handle(&page, self.offset(vas)))
    }

    /// The parent node, or `None` for the document node.
    pub fn parent(self, vas: &Vas, mode: ParentMode) -> StorageResult<Option<NodeRef>> {
        let p = {
            let page = vas.read(self.0)?;
            desc::parent(&page, self.offset(vas))
        };
        if p.is_null() {
            return Ok(None);
        }
        Ok(Some(match mode {
            ParentMode::Indirect => NodeRef(deref_handle(vas, p)?),
            ParentMode::Direct => NodeRef(p),
        }))
    }

    /// The parent's handle (indirect mode only) — what child descriptors
    /// actually store; two nodes are siblings iff these are equal.
    pub fn parent_handle(self, vas: &Vas) -> StorageResult<XPtr> {
        let page = vas.read(self.0)?;
        Ok(desc::parent(&page, self.offset(vas)))
    }

    /// Left sibling (any node kind), if any.
    pub fn left_sibling(self, vas: &Vas) -> StorageResult<Option<NodeRef>> {
        let page = vas.read(self.0)?;
        let p = desc::left_sibling(&page, self.offset(vas));
        Ok((!p.is_null()).then_some(NodeRef(p)))
    }

    /// Right sibling (any node kind), if any.
    pub fn right_sibling(self, vas: &Vas) -> StorageResult<Option<NodeRef>> {
        let page = vas.read(self.0)?;
        let p = desc::right_sibling(&page, self.offset(vas));
        Ok((!p.is_null()).then_some(NodeRef(p)))
    }

    /// The head of child-pointer slot `slot` (the first child with that
    /// child schema node), if set.
    pub fn child_head(self, vas: &Vas, slot: usize) -> StorageResult<Option<NodeRef>> {
        let page = vas.read(self.0)?;
        let width = block::child_slots(&page);
        let p = desc::child(&page, self.offset(vas), slot, width);
        Ok((!p.is_null()).then_some(NodeRef(p)))
    }

    /// The node's string value (attributes, text, comments, PI data);
    /// empty for valueless kinds.
    pub fn value_bytes(self, vas: &Vas) -> StorageResult<Vec<u8>> {
        let v = {
            let page = vas.read(self.0)?;
            desc::value(&page, self.offset(vas))
        };
        if v.is_null() {
            return Ok(Vec::new());
        }
        TextStore::read(vas, v)
    }

    /// The node's string value as UTF-8.
    pub fn value_string(self, vas: &Vas) -> StorageResult<String> {
        String::from_utf8(self.value_bytes(vas)?)
            .map_err(|_| StorageError::Corrupt(format!("non-UTF-8 value at {}", self.0)))
    }

    /// The raw text reference of the value field.
    pub fn value_ref(self, vas: &Vas) -> StorageResult<XPtr> {
        let page = vas.read(self.0)?;
        Ok(desc::value(&page, self.offset(vas)))
    }

    /// The first child in document order: the slot-head child with no left
    /// sibling. Includes attribute children (filter by kind for XPath
    /// axes).
    pub fn first_child(self, vas: &Vas) -> StorageResult<Option<NodeRef>> {
        let heads = {
            let page = vas.read(self.0)?;
            let width = block::child_slots(&page) as usize;
            let off = self.offset(vas);
            (0..width)
                .map(|s| desc::child(&page, off, s, width as u16))
                .filter(|p| !p.is_null())
                .collect::<Vec<_>>()
        };
        for head in heads {
            let node = NodeRef(head);
            if node.left_sibling(vas)?.is_none() {
                return Ok(Some(node));
            }
        }
        Ok(None)
    }

    /// All children in document order (attributes included, first).
    pub fn children(self, vas: &Vas) -> StorageResult<Vec<NodeRef>> {
        let mut out = Vec::new();
        let mut cur = self.first_child(vas)?;
        while let Some(n) = cur {
            out.push(n);
            cur = n.right_sibling(vas)?;
        }
        Ok(out)
    }

    /// The next node of the same schema node in the document-ordered node
    /// list (next-in-block, or the first descriptor of the next block).
    pub fn next_in_list(self, vas: &Vas) -> StorageResult<Option<NodeRef>> {
        let ps = vas.page_size();
        let (next_slot, next_blk, dsize) = {
            let page = vas.read(self.0)?;
            (
                desc::next_in_block(&page, self.offset(vas)),
                block::next_block(&page),
                block::block_desc_size(&page),
            )
        };
        if next_slot != NO_SLOT {
            let blk = self.0.page(ps);
            return Ok(Some(NodeRef(
                blk.offset(block::desc_offset(next_slot, dsize) as u32),
            )));
        }
        let mut blk = next_blk;
        while !blk.is_null() {
            let page = vas.read(blk)?;
            let first = block::first_desc(&page);
            if first != NO_SLOT {
                let dsize = block::block_desc_size(&page);
                return Ok(Some(NodeRef(
                    blk.offset(block::desc_offset(first, dsize) as u32),
                )));
            }
            blk = block::next_block(&page);
        }
        Ok(None)
    }

    /// The previous node of the same schema node in the list.
    pub fn prev_in_list(self, vas: &Vas) -> StorageResult<Option<NodeRef>> {
        let ps = vas.page_size();
        let (prev_slot, prev_blk, dsize) = {
            let page = vas.read(self.0)?;
            (
                desc::prev_in_block(&page, self.offset(vas)),
                block::prev_block(&page),
                block::block_desc_size(&page),
            )
        };
        if prev_slot != NO_SLOT {
            let blk = self.0.page(ps);
            return Ok(Some(NodeRef(
                blk.offset(block::desc_offset(prev_slot, dsize) as u32),
            )));
        }
        let mut blk = prev_blk;
        while !blk.is_null() {
            let page = vas.read(blk)?;
            let last = block::last_desc(&page);
            if last != NO_SLOT {
                let dsize = block::block_desc_size(&page);
                return Ok(Some(NodeRef(
                    blk.offset(block::desc_offset(last, dsize) as u32),
                )));
            }
            blk = block::prev_block(&page);
        }
        Ok(None)
    }

    /// Children having a specific child schema node, in document order:
    /// start at the slot head and follow the node list while the parent
    /// matches — the paper's "pointer to the first book element, then
    /// next-in-block pointers".
    pub fn children_by_schema(self, vas: &Vas, slot: usize) -> StorageResult<Vec<NodeRef>> {
        let mut out = Vec::new();
        let Some(head) = self.child_head(vas, slot)? else {
            return Ok(Vec::new());
        };
        // All children of one parent carry byte-identical parent fields
        // (the parent's handle in indirect mode, its descriptor address in
        // direct mode), so the head's field is the walk boundary in both
        // modes.
        let boundary = head.parent_handle(vas)?;
        let mut cur = Some(head);
        while let Some(n) = cur {
            if n.parent_handle(vas)? != boundary {
                break;
            }
            out.push(n);
            cur = n.next_in_list(vas)?;
        }
        Ok(out)
    }

    /// The XPath string value: for elements/documents, the concatenation
    /// of descendant text nodes; otherwise the node's own value.
    pub fn string_value(self, vas: &Vas, schema: &SchemaTree) -> StorageResult<String> {
        match self.kind(vas)? {
            NodeKind::Element | NodeKind::Document => {
                let mut out = String::new();
                self.collect_text(vas, &mut out)?;
                let _ = schema;
                Ok(out)
            }
            _ => self.value_string(vas),
        }
    }

    fn collect_text(self, vas: &Vas, out: &mut String) -> StorageResult<()> {
        for child in self.children(vas)? {
            match child.kind(vas)? {
                NodeKind::Text => out.push_str(&child.value_string(vas)?),
                NodeKind::Element => child.collect_text(vas, out)?,
                _ => {}
            }
        }
        Ok(())
    }
}
