//! Little-endian field access helpers for raw page bytes.

use sedna_sas::XPtr;

#[inline]
pub fn get_u16(buf: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([buf[at], buf[at + 1]])
}

#[inline]
pub fn put_u16(buf: &mut [u8], at: usize, v: u16) {
    buf[at..at + 2].copy_from_slice(&v.to_le_bytes());
}

#[inline]
pub fn get_u32(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(buf[at..at + 4].try_into().expect("in bounds"))
}

#[inline]
pub fn put_u32(buf: &mut [u8], at: usize, v: u32) {
    buf[at..at + 4].copy_from_slice(&v.to_le_bytes());
}

#[inline]
pub fn get_u64(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().expect("in bounds"))
}

#[inline]
pub fn put_u64(buf: &mut [u8], at: usize, v: u64) {
    buf[at..at + 8].copy_from_slice(&v.to_le_bytes());
}

#[inline]
pub fn get_xptr(buf: &[u8], at: usize) -> XPtr {
    XPtr::from_raw(get_u64(buf, at))
}

#[inline]
pub fn put_xptr(buf: &mut [u8], at: usize, v: XPtr) {
    put_u64(buf, at, v.raw());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let mut buf = [0u8; 32];
        put_u16(&mut buf, 0, 0xBEEF);
        put_u32(&mut buf, 4, 0xDEAD_BEEF);
        put_u64(&mut buf, 8, 0x0123_4567_89AB_CDEF);
        put_xptr(&mut buf, 16, XPtr::new(3, 77));
        assert_eq!(get_u16(&buf, 0), 0xBEEF);
        assert_eq!(get_u32(&buf, 4), 0xDEAD_BEEF);
        assert_eq!(get_u64(&buf, 8), 0x0123_4567_89AB_CDEF);
        assert_eq!(get_xptr(&buf, 16), XPtr::new(3, 77));
    }
}
