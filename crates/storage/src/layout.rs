//! Byte-level layout of node blocks, node descriptors, indirection
//! entries, and text (slotted) blocks.
//!
//! Every page starts with the 16-byte SAS header (self-`XPtr` + LSN, see
//! `sedna-sas`); the offsets below are absolute within the page.

/// Page kind byte: a node block (descriptors + indirection entries).
pub const KIND_NODE_BLOCK: u8 = 1;
/// Page kind byte: a text block (slotted string storage).
pub const KIND_TEXT_BLOCK: u8 = 2;
/// Page kind byte: a B+-tree index block (crate `sedna-index`).
pub const KIND_INDEX_BLOCK: u8 = 3;

/// Sentinel for "no slot".
pub const NO_SLOT: u16 = u16::MAX;

// ---------------------------------------------------------------------
// Node-block header (follows the 16-byte SAS header).
// ---------------------------------------------------------------------

/// Offset of the page-kind byte.
pub const BH_KIND: usize = 16;
/// Offset of the flags byte.
pub const BH_FLAGS: usize = 17;
/// u16: number of child pointers per descriptor **in this block** — the
/// paper's per-block relaxation of descriptor width.
pub const BH_CHILD_SLOTS: usize = 18;
/// u32: the schema node this block belongs to.
pub const BH_SCHEMA_NODE: usize = 20;
/// u64 XPtr: next block in the schema node's bidirectional list.
pub const BH_NEXT_BLOCK: usize = 24;
/// u64 XPtr: previous block in the list.
pub const BH_PREV_BLOCK: usize = 32;
/// u16: bytes per descriptor (cached copy of the derived size).
pub const BH_DESC_SIZE: usize = 40;
/// u16: descriptor slots allocated so far (the area grows toward the
/// indirection area).
pub const BH_DESC_SLOTS: usize = 42;
/// u16: live descriptors.
pub const BH_DESC_COUNT: usize = 44;
/// u16: slot of the first descriptor in document order.
pub const BH_FIRST_DESC: usize = 46;
/// u16: slot of the last descriptor in document order.
pub const BH_LAST_DESC: usize = 48;
/// u16: head of the free-descriptor-slot list.
pub const BH_FREE_HEAD: usize = 50;
/// u16: live indirection entries in this block.
pub const BH_INDIR_COUNT: usize = 52;
/// u16: head of the free-indirection-entry list.
pub const BH_INDIR_FREE_HEAD: usize = 54;
/// u16: indirection entries allocated so far (area grows from the page end
/// toward the descriptor area).
pub const BH_INDIR_SLOTS: usize = 56;
/// First byte of the descriptor area.
pub const BLOCK_HEADER_LEN: usize = 64;

// ---------------------------------------------------------------------
// Node descriptor (fixed size within a block): common part of Figure 3.
// Offsets are relative to the descriptor start.
// ---------------------------------------------------------------------

/// u8: node kind (`sedna_schema::NodeKind::to_u8`).
pub const ND_KIND: usize = 0;
/// u8: flags; bit 0 set = label prefix spilled to text storage.
pub const ND_FLAGS: usize = 1;
/// u16: next descriptor slot in document order within this block.
pub const ND_NEXT_IN_BLOCK: usize = 2;
/// u16: previous descriptor slot within this block.
pub const ND_PREV_IN_BLOCK: usize = 4;
/// u16: length in bytes of the label prefix.
pub const ND_LABEL_LEN: usize = 6;
/// u64 XPtr: this node's handle — its indirection-table entry.
pub const ND_HANDLE: usize = 8;
/// u64 XPtr: the parent's indirection entry (**indirect** parent pointer);
/// in the direct-parent baseline this holds the parent descriptor itself.
pub const ND_PARENT: usize = 16;
/// u64 XPtr: left sibling's descriptor (direct pointer).
pub const ND_LEFT_SIB: usize = 24;
/// u64 XPtr: right sibling's descriptor (direct pointer).
pub const ND_RIGHT_SIB: usize = 32;
/// u64 XPtr: text-storage reference of the node's string value
/// (attributes, text, comments, PI data); null for elements.
pub const ND_VALUE: usize = 40;
/// u8: the label delimiter character.
pub const ND_LABEL_DELIM: usize = 48;
/// Label prefix inline area start.
pub const ND_LABEL_INLINE: usize = 49;
/// Bytes of label prefix stored inline; longer prefixes spill: the first
/// 8 inline bytes then hold the text-storage XPtr of the full prefix.
pub const LABEL_INLINE_LEN: usize = 23;
/// Descriptor flag bit: label spilled to text storage.
pub const NDF_LABEL_SPILLED: u8 = 0b0000_0001;
/// Fixed part of a descriptor; child pointers follow.
pub const ND_FIXED_LEN: usize = ND_LABEL_INLINE + LABEL_INLINE_LEN; // 72
/// First child-pointer slot (u64 XPtr each, one per child schema node as
/// known when the block was created/widened).
pub const ND_CHILDREN: usize = ND_FIXED_LEN;

/// Size in bytes of a descriptor with `child_slots` child pointers.
pub const fn desc_size(child_slots: u16) -> usize {
    ND_FIXED_LEN + 8 * child_slots as usize
}

// ---------------------------------------------------------------------
// Indirection entries: 8 bytes each, allocated from the page end downward
// inside node blocks. A live entry holds the XPtr of the node descriptor;
// a free entry holds FREE_ENTRY_TAG in the upper 32 bits and the next
// free entry's index in the lower 16.
// ---------------------------------------------------------------------

/// Upper-32-bit tag marking a free indirection entry (no valid XPtr ever
/// uses layer 0xFFFF_FFFF).
pub const FREE_ENTRY_TAG: u64 = 0xFFFF_FFFF_0000_0000;

// ---------------------------------------------------------------------
// Text-block header (slotted page).
// ---------------------------------------------------------------------

/// u8: page kind (= [`KIND_TEXT_BLOCK`]).
pub const TH_KIND: usize = 16;
/// u16: slot-directory entries allocated so far.
pub const TH_SLOT_COUNT: usize = 18;
/// u16: lowest byte offset of stored data (data grows downward).
pub const TH_DATA_START: usize = 20;
/// u16: head of the free-slot list.
pub const TH_FREE_SLOT_HEAD: usize = 22;
/// u16: live strings in this block.
pub const TH_LIVE_COUNT: usize = 24;
/// u16: bytes of reclaimable space from deleted strings (compaction
/// trigger).
pub const TH_DEAD_BYTES: usize = 26;
/// u64 XPtr: next text block in the document's chain.
pub const TH_NEXT: usize = 28;
/// First byte of the slot directory.
pub const TEXT_HEADER_LEN: usize = 36;
/// Bytes per slot-directory entry: u16 offset (0 = free) + u16 length.
pub const TEXT_SLOT_LEN: usize = 4;

/// Text-chunk flag: this chunk is continued in another text entry.
pub const TEXT_CHUNK_CONTINUED: u8 = 0b0000_0001;
/// Per-chunk header: u8 flags (+ 8-byte next-XPtr when continued).
pub const TEXT_CHUNK_HDR: usize = 1;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_layout_is_packed_and_aligned() {
        assert_eq!(ND_FIXED_LEN, 72);
        assert_eq!(desc_size(0), 72);
        assert_eq!(desc_size(2), 88);
        // Handle and pointer fields are 8-aligned relative to the
        // descriptor start for cheap reads.
        for off in [
            ND_HANDLE,
            ND_PARENT,
            ND_LEFT_SIB,
            ND_RIGHT_SIB,
            ND_VALUE,
            ND_CHILDREN,
        ] {
            assert_eq!(off % 8, 0, "offset {off} not aligned");
        }
    }

    #[test]
    fn header_fields_do_not_overlap() {
        let fields = [
            (BH_KIND, 1),
            (BH_FLAGS, 1),
            (BH_CHILD_SLOTS, 2),
            (BH_SCHEMA_NODE, 4),
            (BH_NEXT_BLOCK, 8),
            (BH_PREV_BLOCK, 8),
            (BH_DESC_SIZE, 2),
            (BH_DESC_SLOTS, 2),
            (BH_DESC_COUNT, 2),
            (BH_FIRST_DESC, 2),
            (BH_LAST_DESC, 2),
            (BH_FREE_HEAD, 2),
            (BH_INDIR_COUNT, 2),
            (BH_INDIR_FREE_HEAD, 2),
            (BH_INDIR_SLOTS, 2),
        ];
        for (i, &(off_a, len_a)) in fields.iter().enumerate() {
            assert!(off_a + len_a <= BLOCK_HEADER_LEN);
            assert!(off_a >= 16, "must not clobber the SAS header");
            for &(off_b, len_b) in &fields[i + 1..] {
                assert!(
                    off_a + len_a <= off_b || off_b + len_b <= off_a,
                    "fields at {off_a} and {off_b} overlap"
                );
            }
        }
    }

    #[test]
    fn text_header_fits() {
        // Not a constant assertion from clippy's perspective once routed
        // through a binding: keeps the layout contract pinned in tests.
        let next_end = TH_NEXT + 8;
        assert!(next_end <= TEXT_HEADER_LEN);
    }
}
