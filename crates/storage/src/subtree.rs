//! The subtree-based clustering baseline (experiment E1).
//!
//! Section 2: "The first \[approach\] is based on an assumption that an XML
//! element is frequently queried together with its sub-elements, so these
//! should be clustered together [Natix, Timber]. This approach corresponds
//! to dividing a tree of an XML document into subtrees."
//!
//! This store serializes the document in document order into a chain of
//! pages: every element record is immediately followed by its whole
//! subtree, values inline. Consequences the paper predicts and E1
//! measures:
//!
//! * retrieving a **whole element** with heterogeneous children is a
//!   contiguous read — subtree clustering wins;
//! * retrieving **sub-elements of one type** (or evaluating a predicate
//!   over one element type) must scan everything — schema clustering wins
//!   because "unnecessary nodes are not fetched from disk".
//!
//! Record layout: `kind(1) name_id(4) value_len(4) subtree_len(4)`,
//! then `value_len` value bytes, then the children's records
//! (`subtree_len` covers the record and its whole subtree).

use std::collections::HashMap;

use sedna_sas::{Vas, XPtr};
use sedna_xml::{Document, Node};

use crate::error::{StorageError, StorageResult};
use crate::util::{get_u32, put_u32};

/// Record header length.
const REC_HDR: usize = 13;
/// Name id used by unnamed kinds.
const NO_NAME: u32 = u32::MAX;

const KIND_ELEMENT: u8 = 1;
const KIND_ATTRIBUTE: u8 = 2;
const KIND_TEXT: u8 = 3;
const KIND_COMMENT: u8 = 4;
const KIND_PI: u8 = 5;

/// A document stored with subtree clustering.
pub struct SubtreeStore {
    pages: Vec<XPtr>,
    len: u64,
    names: Vec<String>,
    name_ids: HashMap<String, u32>,
    payload: usize,
}

impl SubtreeStore {
    /// Serializes a parsed document into page storage.
    pub fn build(vas: &Vas, doc: &Document) -> StorageResult<SubtreeStore> {
        let ps = vas.page_size();
        let mut store = SubtreeStore {
            pages: Vec::new(),
            len: 0,
            names: Vec::new(),
            name_ids: HashMap::new(),
            payload: ps - sedna_sas::PAGE_HEADER_LEN,
        };
        let mut bytes = Vec::new();
        for child in &doc.children {
            store.serialize_node(child, &mut bytes);
        }
        // Write the stream across pages.
        let mut written = 0usize;
        while written < bytes.len() {
            let (page_ptr, mut page) = vas.alloc_page()?;
            store.pages.push(page_ptr);
            let n = store.payload.min(bytes.len() - written);
            let start = sedna_sas::PAGE_HEADER_LEN;
            page[start..start + n].copy_from_slice(&bytes[written..written + n]);
            written += n;
        }
        store.len = bytes.len() as u64;
        Ok(store)
    }

    /// Total serialized bytes.
    pub fn byte_len(&self) -> u64 {
        self.len
    }

    /// Number of pages the document occupies.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.name_ids.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_string());
        self.name_ids.insert(name.to_string(), id);
        id
    }

    /// Resolves a name id back to the name.
    pub fn name(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(|s| s.as_str())
    }

    /// The id of `name`, if any node uses it.
    pub fn name_id(&self, name: &str) -> Option<u32> {
        self.name_ids.get(name).copied()
    }

    fn serialize_node(&mut self, node: &Node, out: &mut Vec<u8>) {
        let start = out.len();
        let (kind, name_id, value) = match node {
            Node::Element { name, .. } => (KIND_ELEMENT, self.intern(&name.local), Vec::new()),
            Node::Text(t) => (KIND_TEXT, NO_NAME, t.clone().into_bytes()),
            Node::Comment(c) => (KIND_COMMENT, NO_NAME, c.clone().into_bytes()),
            Node::ProcessingInstruction { target, data } => {
                (KIND_PI, self.intern(target), data.clone().into_bytes())
            }
        };
        out.push(kind);
        let mut hdr = [0u8; 12];
        put_u32(&mut hdr, 0, name_id);
        put_u32(&mut hdr, 4, value.len() as u32);
        put_u32(&mut hdr, 8, 0); // subtree_len patched below
        out.extend_from_slice(&hdr);
        out.extend_from_slice(&value);
        if let Node::Element {
            attributes,
            children,
            ..
        } = node
        {
            for attr in attributes {
                let a_start = out.len();
                out.push(KIND_ATTRIBUTE);
                let mut ahdr = [0u8; 12];
                let aid = self.intern(&attr.name.local);
                put_u32(&mut ahdr, 0, aid);
                put_u32(&mut ahdr, 4, attr.value.len() as u32);
                put_u32(&mut ahdr, 8, (REC_HDR + attr.value.len()) as u32);
                out.extend_from_slice(&ahdr);
                out.extend_from_slice(attr.value.as_bytes());
                debug_assert_eq!(out.len() - a_start, REC_HDR + attr.value.len());
            }
            for child in children {
                self.serialize_node(child, out);
            }
        }
        let total = (out.len() - start) as u32;
        let patch_at = start + 1 + 8;
        put_u32(&mut out[patch_at..patch_at + 4], 0, total);
    }

    /// Reads `buf.len()` bytes of the stream starting at `pos`.
    fn read_at(&self, vas: &Vas, pos: u64, buf: &mut [u8]) -> StorageResult<()> {
        if pos + buf.len() as u64 > self.len {
            return Err(StorageError::Corrupt(format!(
                "subtree read past end: {pos}+{}",
                buf.len()
            )));
        }
        let mut done = 0usize;
        let mut pos = pos as usize;
        while done < buf.len() {
            let page_idx = pos / self.payload;
            let in_page = pos % self.payload;
            let n = (self.payload - in_page).min(buf.len() - done);
            let page = vas.read(self.pages[page_idx])?;
            let start = sedna_sas::PAGE_HEADER_LEN + in_page;
            buf[done..done + n].copy_from_slice(&page[start..start + n]);
            done += n;
            pos += n;
        }
        Ok(())
    }

    fn read_header(&self, vas: &Vas, pos: u64) -> StorageResult<(u8, u32, u32, u32)> {
        let mut hdr = [0u8; REC_HDR];
        self.read_at(vas, pos, &mut hdr)?;
        Ok((hdr[0], get_u32(&hdr, 1), get_u32(&hdr, 5), get_u32(&hdr, 9)))
    }

    /// Full-document scan collecting the string values of every element
    /// named `name` (concatenated text of the subtree). This is the
    /// "retrieve sub-elements of one type" workload where subtree
    /// clustering must fetch every page.
    pub fn scan_element_values(&self, vas: &Vas, name: &str) -> StorageResult<Vec<String>> {
        let Some(target) = self.name_id(name) else {
            return Ok(Vec::new());
        };
        let mut out = Vec::new();
        let mut pos = 0u64;
        while pos < self.len {
            let (kind, name_id, value_len, subtree_len) = self.read_header(vas, pos)?;
            if kind == KIND_ELEMENT && name_id == target {
                out.push(self.subtree_text(vas, pos, subtree_len)?);
                pos += subtree_len as u64;
            } else {
                pos += (REC_HDR + value_len as usize) as u64;
            }
        }
        Ok(out)
    }

    /// Offsets of every element named `name` (full scan).
    pub fn find_elements(&self, vas: &Vas, name: &str) -> StorageResult<Vec<u64>> {
        let Some(target) = self.name_id(name) else {
            return Ok(Vec::new());
        };
        let mut out = Vec::new();
        let mut pos = 0u64;
        while pos < self.len {
            let (kind, name_id, value_len, _subtree_len) = self.read_header(vas, pos)?;
            if kind == KIND_ELEMENT && name_id == target {
                out.push(pos);
            }
            pos += (REC_HDR + value_len as usize) as u64;
        }
        Ok(out)
    }

    /// Concatenated text of the subtree at `pos` — a contiguous read.
    fn subtree_text(&self, vas: &Vas, pos: u64, subtree_len: u32) -> StorageResult<String> {
        let mut bytes = vec![0u8; subtree_len as usize];
        self.read_at(vas, pos, &mut bytes)?;
        let mut out = String::new();
        let mut p = 0usize;
        while p < bytes.len() {
            let kind = bytes[p];
            let value_len = get_u32(&bytes, p + 5) as usize;
            if kind == KIND_TEXT {
                out.push_str(
                    std::str::from_utf8(&bytes[p + REC_HDR..p + REC_HDR + value_len])
                        .map_err(|_| StorageError::Corrupt("non-UTF-8 text".into()))?,
                );
            }
            p += REC_HDR + value_len;
        }
        Ok(out)
    }

    /// Reconstructs the whole subtree at `pos` as a DOM node — the
    /// "retrieve a whole element" workload where subtree clustering wins:
    /// one contiguous byte range, minimal pages.
    pub fn read_subtree(&self, vas: &Vas, pos: u64) -> StorageResult<Node> {
        let (_, _, _, subtree_len) = self.read_header(vas, pos)?;
        let mut bytes = vec![0u8; subtree_len as usize];
        self.read_at(vas, pos, &mut bytes)?;
        let (node, used) = self.parse_record(&bytes, 0)?;
        debug_assert_eq!(used, bytes.len());
        Ok(node)
    }

    fn parse_record(&self, bytes: &[u8], at: usize) -> StorageResult<(Node, usize)> {
        let kind = bytes[at];
        let name_id = get_u32(bytes, at + 1);
        let value_len = get_u32(bytes, at + 5) as usize;
        let subtree_len = get_u32(bytes, at + 9) as usize;
        let value = std::str::from_utf8(&bytes[at + REC_HDR..at + REC_HDR + value_len])
            .map_err(|_| StorageError::Corrupt("non-UTF-8 value".into()))?
            .to_string();
        let name = || self.name(name_id).unwrap_or("?").to_string();
        match kind {
            KIND_ELEMENT => {
                let mut children = Vec::new();
                let mut attributes = Vec::new();
                let mut p = at + REC_HDR + value_len;
                let end = at + subtree_len;
                while p < end {
                    if bytes[p] == KIND_ATTRIBUTE {
                        let a_name = get_u32(bytes, p + 1);
                        let a_len = get_u32(bytes, p + 5) as usize;
                        let a_val = std::str::from_utf8(&bytes[p + REC_HDR..p + REC_HDR + a_len])
                            .map_err(|_| StorageError::Corrupt("non-UTF-8 attr".into()))?;
                        attributes.push(sedna_xml::Attribute {
                            name: sedna_xml::QName::local(self.name(a_name).unwrap_or("?")),
                            value: a_val.to_string(),
                        });
                        p += REC_HDR + a_len;
                    } else {
                        let (child, next) = self.parse_record(bytes, p)?;
                        children.push(child);
                        p = next;
                    }
                }
                Ok((
                    Node::Element {
                        name: sedna_xml::QName::local(name()),
                        attributes,
                        children,
                    },
                    at + subtree_len,
                ))
            }
            KIND_TEXT => Ok((Node::Text(value), at + subtree_len)),
            KIND_COMMENT => Ok((Node::Comment(value), at + subtree_len)),
            KIND_PI => Ok((
                Node::ProcessingInstruction {
                    target: name(),
                    data: value,
                },
                at + subtree_len,
            )),
            KIND_ATTRIBUTE => Err(StorageError::Corrupt("dangling attribute record".into())),
            other => Err(StorageError::Corrupt(format!("bad record kind {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedna_sas::{Sas, SasConfig, TxnToken, View};

    fn setup() -> (std::sync::Arc<Sas>, Vas) {
        let sas = Sas::in_memory(SasConfig {
            page_size: 512,
            layer_size: 512 * 256,
            buffer_frames: 256,
            buffer_shards: 0,
        })
        .unwrap();
        let vas = sas.session();
        vas.begin(View::LATEST, Some(TxnToken(1)));
        (sas, vas)
    }

    const SAMPLE: &str = r#"<library><book id="1"><title>Foundations of Databases</title><author>Abiteboul</author><author>Hull</author></book><book id="2"><title>An Introduction to Database Systems</title><author>Date</author></book><paper><title>A Relational Model</title><author>Codd</author></paper></library>"#;

    #[test]
    fn build_and_scan_by_name() {
        let (_sas, vas) = setup();
        let dom = sedna_xml::parse(SAMPLE).unwrap();
        let store = SubtreeStore::build(&vas, &dom).unwrap();
        let titles = store.scan_element_values(&vas, "title").unwrap();
        assert_eq!(
            titles,
            [
                "Foundations of Databases",
                "An Introduction to Database Systems",
                "A Relational Model"
            ]
        );
        let authors = store.scan_element_values(&vas, "author").unwrap();
        assert_eq!(authors.len(), 4);
        assert!(store
            .scan_element_values(&vas, "missing")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn whole_subtree_round_trips() {
        let (_sas, vas) = setup();
        let dom = sedna_xml::parse(SAMPLE).unwrap();
        let store = SubtreeStore::build(&vas, &dom).unwrap();
        let books = store.find_elements(&vas, "book").unwrap();
        assert_eq!(books.len(), 2);
        let first = store.read_subtree(&vas, books[0]).unwrap();
        assert_eq!(
            sedna_xml::serialize::node_to_string(&first),
            r#"<book id="1"><title>Foundations of Databases</title><author>Abiteboul</author><author>Hull</author></book>"#
        );
    }

    #[test]
    fn document_spans_multiple_small_pages() {
        let (_sas, vas) = setup();
        let many: String = (0..200)
            .map(|i| format!("<item><k>{i}</k><v>value-{i}</v></item>"))
            .collect();
        let xml = format!("<root>{many}</root>");
        let dom = sedna_xml::parse(&xml).unwrap();
        let store = SubtreeStore::build(&vas, &dom).unwrap();
        assert!(store.page_count() > 3, "pages: {}", store.page_count());
        let ks = store.scan_element_values(&vas, "k").unwrap();
        assert_eq!(ks.len(), 200);
        assert_eq!(ks[77], "77");
        let items = store.find_elements(&vas, "item").unwrap();
        let item5 = store.read_subtree(&vas, items[5]).unwrap();
        assert_eq!(item5.string_value(), "5value-5");
    }
}
