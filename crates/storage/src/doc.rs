//! Per-document storage: block lists per schema node, node insertion and
//! deletion, block splits, and the delayed per-block descriptor widening
//! (Section 4.1).

use sedna_numbering::{DocOrder, Label, LabelAlloc};
use sedna_sas::{Vas, XPtr};
use sedna_schema::{NodeKind, SchemaName, SchemaNodeId, SchemaTree};

use crate::block;
use crate::descriptor as d;
use crate::error::{StorageError, StorageResult};
use crate::indirection::{deref_handle, retarget_handle};
use crate::layout::*;
use crate::node::NodeRef;
use crate::text::TextStore;
use crate::util::*;

/// How parent pointers are represented.
///
/// [`ParentMode::Indirect`] is the paper's design: parents are referenced
/// through the indirection table, so moving a node updates one table
/// entry. [`ParentMode::Direct`] is the experiment-E4 baseline: children
/// hold the parent's descriptor address directly, so moving a parent
/// rewrites every child.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ParentMode {
    /// Parent pointers go through the indirection table (Sedna design).
    Indirect,
    /// Parent pointers are direct descriptor addresses (baseline).
    Direct,
}

/// Pointer-maintenance counters, the measured quantity of experiment E4.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct UpdateStats {
    /// Individual pointer fields rewritten by structural maintenance.
    pub pointer_updates: u64,
    /// Block splits performed.
    pub splits: u64,
    /// Node blocks allocated.
    pub blocks_allocated: u64,
    /// Descriptors physically moved between blocks.
    pub descriptors_moved: u64,
}

/// Minimum child-pointer width given to fresh blocks of element/document
/// schema nodes, so that the first few distinct child schemas do not each
/// force a widening relocation during bulk load.
const MIN_ELEMENT_WIDTH: u16 = 4;

/// Insert position within a schema node's block list: after `prev_slot`
/// in `block`'s chain (`NO_SLOT` = at the chain head).
#[derive(Copy, Clone, Debug)]
struct ListPos {
    block: XPtr,
    prev_slot: u16,
}

/// The storage of one XML document.
#[derive(Clone)]
pub struct DocStorage {
    /// Parent-pointer representation.
    pub mode: ParentMode,
    /// Handle of the document node.
    pub doc_handle: XPtr,
    /// The document's text storage.
    pub text: TextStore,
    /// Head of the overflow indirection-block chain (blocks created when a
    /// node's own block had no room for its indirection entry).
    pub overflow_indir: XPtr,
    /// Pointer-maintenance counters.
    pub stats: UpdateStats,
}

impl DocStorage {
    /// Creates the storage for a fresh document: its document node and the
    /// root schema node's first block.
    pub fn create(
        vas: &Vas,
        schema: &mut SchemaTree,
        mode: ParentMode,
    ) -> StorageResult<DocStorage> {
        let mut doc = DocStorage {
            mode,
            doc_handle: XPtr::NULL,
            text: TextStore::new(),
            overflow_indir: XPtr::NULL,
            stats: UpdateStats::default(),
        };
        let sid = SchemaTree::ROOT;
        let blk = doc.alloc_block(vas, schema, sid, MIN_ELEMENT_WIDTH)?;
        doc.link_block_tail(vas, schema, sid, blk)?;
        let label = LabelAlloc::root();
        let (desc, handle) = doc.place_descriptor(
            vas,
            schema,
            sid,
            ListPos {
                block: blk,
                prev_slot: NO_SLOT,
            },
            &label,
            NodeKind::Document,
        )?;
        let _ = desc;
        doc.doc_handle = handle;
        schema.node_mut(sid).node_count += 1;
        Ok(doc)
    }

    /// Reconstructs a document's storage handle from persisted anchors
    /// (catalog/recovery path). The text-store head is set separately via
    /// the public `text` field.
    pub fn with_anchors(mode: ParentMode, doc_handle: XPtr, overflow_indir: XPtr) -> DocStorage {
        DocStorage {
            mode,
            doc_handle,
            text: TextStore::new(),
            overflow_indir,
            stats: UpdateStats::default(),
        }
    }

    /// The document node.
    pub fn doc_node(&self, vas: &Vas) -> StorageResult<NodeRef> {
        Ok(NodeRef(deref_handle(vas, self.doc_handle)?))
    }

    /// The root element, if the document has one.
    pub fn root_element(&self, vas: &Vas) -> StorageResult<Option<NodeRef>> {
        for child in self.doc_node(vas)?.children(vas)? {
            if child.kind(vas)? == NodeKind::Element {
                return Ok(Some(child));
            }
        }
        Ok(None)
    }

    // -----------------------------------------------------------------
    // Block-list management
    // -----------------------------------------------------------------

    /// Allocates a fresh node block for `sid` with at least `min_width`
    /// child slots (element/document kinds get [`MIN_ELEMENT_WIDTH`]).
    fn alloc_block(
        &mut self,
        vas: &Vas,
        schema: &SchemaTree,
        sid: SchemaNodeId,
        min_width: u16,
    ) -> StorageResult<XPtr> {
        let width = (schema.child_count(sid) as u16).max(min_width);
        let (blk, mut page) = vas.alloc_page()?;
        block::init_node_block(&mut page, sid, width);
        // A block must hold at least two descriptors for splits to work.
        let capacity = (vas.page_size() - BLOCK_HEADER_LEN) / desc_size(width);
        if capacity < 2 {
            return Err(StorageError::TooLarge(format!(
                "page size {} cannot hold two descriptors of width {width}",
                vas.page_size()
            )));
        }
        self.stats.blocks_allocated += 1;
        Ok(blk)
    }

    /// Appends `blk` at the tail of `sid`'s block list.
    fn link_block_tail(
        &mut self,
        vas: &Vas,
        schema: &mut SchemaTree,
        sid: SchemaNodeId,
        blk: XPtr,
    ) -> StorageResult<()> {
        let tail = schema.node(sid).last_block;
        self.link_block_after(vas, schema, sid, blk, tail)
    }

    /// Links `blk` into `sid`'s list right after `after` (`NULL` = at the
    /// list head).
    fn link_block_after(
        &mut self,
        vas: &Vas,
        schema: &mut SchemaTree,
        sid: SchemaNodeId,
        blk: XPtr,
        after: XPtr,
    ) -> StorageResult<()> {
        let next = if after.is_null() {
            schema.node(sid).first_block
        } else {
            let page = vas.read(after)?;
            block::next_block(&page)
        };
        {
            let mut page = vas.write(blk)?;
            put_xptr(&mut page, BH_PREV_BLOCK, after);
            put_xptr(&mut page, BH_NEXT_BLOCK, next);
        }
        if after.is_null() {
            schema.node_mut(sid).first_block = blk;
        } else {
            let mut page = vas.write(after)?;
            put_xptr(&mut page, BH_NEXT_BLOCK, blk);
        }
        if next.is_null() {
            schema.node_mut(sid).last_block = blk;
        } else {
            let mut page = vas.write(next)?;
            put_xptr(&mut page, BH_PREV_BLOCK, blk);
        }
        schema.node_mut(sid).block_count += 1;
        Ok(())
    }

    /// Unlinks and frees `blk` if it holds no descriptors and no live
    /// indirection entries.
    fn maybe_free_block(
        &mut self,
        vas: &Vas,
        schema: &mut SchemaTree,
        blk: XPtr,
    ) -> StorageResult<()> {
        let (sid, prev, next, descs, indirs) = {
            let page = vas.read(blk)?;
            (
                block::schema_of(&page),
                block::prev_block(&page),
                block::next_block(&page),
                block::desc_count(&page),
                block::indir_count(&page),
            )
        };
        if descs > 0 || indirs > 0 {
            return Ok(());
        }
        if sid.0 == u32::MAX {
            // Overflow indirection block: unlink from the overflow chain.
            if self.overflow_indir == blk {
                self.overflow_indir = next;
            }
        } else {
            let snode = schema.node_mut(sid);
            if snode.first_block == blk {
                snode.first_block = next;
            }
            if snode.last_block == blk {
                snode.last_block = prev;
            }
            snode.block_count -= 1;
        }
        if !prev.is_null() {
            let mut page = vas.write(prev)?;
            put_xptr(&mut page, BH_NEXT_BLOCK, next);
        }
        if !next.is_null() {
            let mut page = vas.write(next)?;
            put_xptr(&mut page, BH_PREV_BLOCK, prev);
        }
        vas.free_page(blk)?;
        Ok(())
    }

    // -----------------------------------------------------------------
    // Descriptor placement
    // -----------------------------------------------------------------

    /// Writes the label into a descriptor, spilling long prefixes to text
    /// storage. Must run while *not* holding the node page (text
    /// allocation touches other pages); hence the two-phase API.
    fn prepare_label(
        &mut self,
        vas: &Vas,
        sid: SchemaNodeId,
        label: &Label,
    ) -> StorageResult<PreparedLabel> {
        if label.prefix().len() <= LABEL_INLINE_LEN {
            Ok(PreparedLabel::Inline(label.clone()))
        } else {
            let text_ref = self.text.alloc(vas, sid.0, label.prefix())?;
            Ok(PreparedLabel::Spilled {
                text_ref,
                len: label.prefix().len(),
                delim: label.delim(),
            })
        }
    }

    /// Allocates a descriptor at `pos` (splitting the block first when
    /// full), writes its kind + label, chains it into the in-block order,
    /// and gives it an indirection entry. Returns `(descriptor, handle)`.
    fn place_descriptor(
        &mut self,
        vas: &Vas,
        schema: &mut SchemaTree,
        sid: SchemaNodeId,
        pos: ListPos,
        label: &Label,
        kind: NodeKind,
    ) -> StorageResult<(XPtr, XPtr)> {
        let prepared = self.prepare_label(vas, sid, label)?;
        let pos = self.make_room(vas, schema, sid, pos)?;
        let ps = vas.page_size();
        let (desc_ptr, slot) = {
            let mut page = vas.write(pos.block)?;
            let slot =
                block::alloc_desc_slot(&mut page, ps).expect("make_room guarantees a free slot");
            let dsize = block::block_desc_size(&page);
            let off = block::desc_offset(slot, dsize);
            d::set_kind(&mut page, off, kind);
            match &prepared {
                PreparedLabel::Inline(l) => d::set_label_inline(&mut page, off, l),
                PreparedLabel::Spilled {
                    text_ref,
                    len,
                    delim,
                } => d::set_label_spilled(&mut page, off, *text_ref, *len, *delim),
            }
            // Chain insertion after pos.prev_slot.
            let (prev, next) = if pos.prev_slot == NO_SLOT {
                (NO_SLOT, block::first_desc(&page))
            } else {
                let prev_off = block::desc_offset(pos.prev_slot, dsize);
                (pos.prev_slot, d::next_in_block(&page, prev_off))
            };
            d::set_prev_in_block(&mut page, off, prev);
            d::set_next_in_block(&mut page, off, next);
            if prev == NO_SLOT {
                put_u16(&mut page, BH_FIRST_DESC, slot);
            } else {
                let prev_off = block::desc_offset(prev, dsize);
                d::set_next_in_block(&mut page, prev_off, slot);
            }
            if next == NO_SLOT {
                put_u16(&mut page, BH_LAST_DESC, slot);
            } else {
                let next_off = block::desc_offset(next, dsize);
                d::set_prev_in_block(&mut page, next_off, slot);
            }
            (pos.block.offset(off as u32), slot)
        };
        let _ = slot;
        let handle = self.alloc_handle(vas, desc_ptr)?;
        {
            let mut page = vas.write(desc_ptr)?;
            let off = desc_ptr.offset_in_page(ps);
            d::set_handle(&mut page, off, handle);
        }
        Ok((desc_ptr, handle))
    }

    /// Guarantees that `pos.block` can take one more descriptor, splitting
    /// it when full; returns the (possibly relocated) position.
    fn make_room(
        &mut self,
        vas: &Vas,
        schema: &mut SchemaTree,
        sid: SchemaNodeId,
        pos: ListPos,
    ) -> StorageResult<ListPos> {
        let ps = vas.page_size();
        {
            let page = vas.read(pos.block)?;
            if block::has_desc_room(&page, ps) {
                return Ok(pos);
            }
        }
        // Split in half by chain order.
        let chain = self.chain_slots(vas, pos.block)?;
        let keep = chain.len() / 2;
        let width = {
            let page = vas.read(pos.block)?;
            block::child_slots(&page)
        };
        let moved = self.split_block(vas, schema, sid, pos.block, keep, width)?;
        // Recompute the position: if prev_slot moved, the insert goes into
        // the new block after the moved slot.
        if pos.prev_slot == NO_SLOT {
            return Ok(pos); // head of the old block, which now has room
        }
        if let Some(&(_, new_ptr)) = moved
            .iter()
            .find(|&&(old_slot, _)| old_slot == pos.prev_slot)
        {
            let new_block = new_ptr.page(ps);
            let page = vas.read(new_ptr)?;
            let dsize = block::block_desc_size(&page);
            let new_slot =
                ((new_ptr.offset_in_page(ps) - BLOCK_HEADER_LEN) / dsize as usize) as u16;
            drop(page);
            return Ok(ListPos {
                block: new_block,
                prev_slot: new_slot,
            });
        }
        Ok(pos)
    }

    /// Number of `parent_ptr`'s children that belong to schema node `sid`,
    /// walked from the parent's child slot (O(fan-out of that schema)).
    /// Used to maintain the per-schema-node fan-out histogram.
    fn same_schema_child_count(
        &self,
        vas: &Vas,
        schema: &SchemaTree,
        parent_ptr: XPtr,
        parent_sid: SchemaNodeId,
        sid: SchemaNodeId,
    ) -> StorageResult<u64> {
        let Some(slot) = schema.child_slot(parent_sid, sid) else {
            return Ok(0);
        };
        // A slot beyond the parent block's current width has no head yet.
        let width = {
            let page = vas.read(parent_ptr)?;
            block::child_slots(&page) as usize
        };
        if slot >= width {
            return Ok(0);
        }
        Ok(NodeRef(parent_ptr).children_by_schema(vas, slot)?.len() as u64)
    }

    /// The block's descriptor slots in chain (document) order.
    fn chain_slots(&self, vas: &Vas, blk: XPtr) -> StorageResult<Vec<u16>> {
        let page = vas.read(blk)?;
        let dsize = block::block_desc_size(&page);
        let count = block::desc_count(&page);
        let mut out = Vec::with_capacity(count as usize);
        let mut slot = block::first_desc(&page);
        while slot != NO_SLOT {
            if out.len() > count as usize {
                return Err(StorageError::Corrupt(format!(
                    "corrupt in-block chain in {blk} (cycle suspected)"
                )));
            }
            out.push(slot);
            slot = d::next_in_block(&page, block::desc_offset(slot, dsize));
        }
        Ok(out)
    }

    /// Splits `blk`: the first `keep` chain descriptors stay; the rest move
    /// to a fresh block (with `new_width` child slots) linked right after.
    /// Returns the `(old_slot, new_ptr)` mapping of moved descriptors.
    ///
    /// This is the operation the indirection table exists for: each moved
    /// node costs a constant number of pointer updates (its handle, its two
    /// sibling neighbours, possibly its parent's child slot) — never a
    /// per-child rewrite. In [`ParentMode::Direct`] the children *are*
    /// rewritten, and the difference is what experiment E4 measures.
    fn split_block(
        &mut self,
        vas: &Vas,
        schema: &mut SchemaTree,
        sid: SchemaNodeId,
        blk: XPtr,
        keep: usize,
        new_width: u16,
    ) -> StorageResult<Vec<(u16, XPtr)>> {
        let ps = vas.page_size();
        let chain = self.chain_slots(vas, blk)?;
        let moved_slots = &chain[keep..];
        if moved_slots.is_empty() {
            return Ok(Vec::new());
        }
        self.stats.splits += 1;
        let new_blk = self.alloc_block(vas, schema, sid, new_width)?;
        self.link_block_after(vas, schema, sid, new_blk, blk)?;

        let mut map: Vec<(u16, XPtr)> = Vec::with_capacity(moved_slots.len());
        // Pass 1: copy descriptors into the new block in chain order.
        {
            let old_width;
            let old_dsize;
            {
                let page = vas.read(blk)?;
                old_width = block::child_slots(&page);
                old_dsize = block::block_desc_size(&page);
            }
            let mut prev_new_slot = NO_SLOT;
            for &old_slot in moved_slots {
                let old_off = block::desc_offset(old_slot, old_dsize);
                // Copy the source descriptor bytes out, then write into the
                // new block (two pages: read guard then write guard).
                let src: Vec<u8> = {
                    let page = vas.read(blk)?;
                    page[old_off..old_off + old_dsize as usize].to_vec()
                };
                let new_ptr = {
                    let mut page = vas.write(new_blk)?;
                    let new_dsize = block::block_desc_size(&page);
                    let new_slot = block::alloc_desc_slot(&mut page, ps)
                        .expect("fresh block takes at least half a full block");
                    let new_off = block::desc_offset(new_slot, new_dsize);
                    d::copy_desc(
                        &src,
                        0,
                        old_width,
                        &mut page,
                        new_off,
                        new_width,
                        new_dsize as usize,
                    );
                    // Chain in the new block.
                    d::set_prev_in_block(&mut page, new_off, prev_new_slot);
                    d::set_next_in_block(&mut page, new_off, NO_SLOT);
                    if prev_new_slot == NO_SLOT {
                        put_u16(&mut page, BH_FIRST_DESC, new_slot);
                    } else {
                        let p_off = block::desc_offset(prev_new_slot, new_dsize);
                        d::set_next_in_block(&mut page, p_off, new_slot);
                    }
                    put_u16(&mut page, BH_LAST_DESC, new_slot);
                    prev_new_slot = new_slot;
                    new_blk.offset(new_off as u32)
                };
                map.push((old_slot, new_ptr));
                self.stats.descriptors_moved += 1;
            }
        }
        // Truncate the old chain and free the moved slots.
        {
            let mut page = vas.write(blk)?;
            let dsize = block::block_desc_size(&page);
            if keep == 0 {
                put_u16(&mut page, BH_FIRST_DESC, NO_SLOT);
                put_u16(&mut page, BH_LAST_DESC, NO_SLOT);
            } else {
                let last_kept = chain[keep - 1];
                let off = block::desc_offset(last_kept, dsize);
                d::set_next_in_block(&mut page, off, NO_SLOT);
                put_u16(&mut page, BH_LAST_DESC, last_kept);
            }
            for &old_slot in moved_slots {
                block::free_desc_slot(&mut page, old_slot);
            }
        }
        // Pass 2: fix pointers into the moved descriptors.
        for &(old_slot, new_ptr) in &map {
            let old_ptr = {
                let page = vas.read(blk)?;
                let dsize = block::block_desc_size(&page);
                blk.offset(block::desc_offset(old_slot, dsize) as u32)
            };
            self.fix_after_move(vas, schema, old_ptr, new_ptr, &map, blk)?;
        }
        Ok(map)
    }

    /// After moving a descriptor from `old_ptr` to `new_ptr`: retarget its
    /// handle, repair sibling links and the parent's child slot, and (in
    /// direct-parent mode) rewrite every child's parent pointer.
    fn fix_after_move(
        &mut self,
        vas: &Vas,
        schema: &SchemaTree,
        old_ptr: XPtr,
        new_ptr: XPtr,
        map: &[(u16, XPtr)],
        old_blk: XPtr,
    ) -> StorageResult<()> {
        let ps = vas.page_size();
        // Read the moved descriptor's state from its new location.
        let (handle, left, right, parent_field, node) = {
            let page = vas.read(new_ptr)?;
            let off = new_ptr.offset_in_page(ps);
            (
                d::handle(&page, off),
                d::left_sibling(&page, off),
                d::right_sibling(&page, off),
                d::parent(&page, off),
                NodeRef(new_ptr),
            )
        };
        // 1. The handle: one pointer update, independent of fan-out.
        retarget_handle(vas, handle, new_ptr)?;
        self.stats.pointer_updates += 1;

        // Helper: translate a possibly-moved old address.
        let old_dsize = {
            let page = vas.read(old_blk)?;
            block::block_desc_size(&page)
        };
        let translate = |p: XPtr| -> XPtr {
            if !p.is_null() && p.page(ps) == old_blk {
                let slot = ((p.offset_in_page(ps) - BLOCK_HEADER_LEN) / old_dsize as usize) as u16;
                if let Some(&(_, n)) = map.iter().find(|&&(s, _)| s == slot) {
                    return n;
                }
            }
            p
        };

        // 2. Sibling links (at most two updates).
        let left_t = translate(left);
        if left_t != left {
            let mut page = vas.write(new_ptr)?;
            let off = new_ptr.offset_in_page(ps);
            d::set_left_sibling(&mut page, off, left_t);
            self.stats.pointer_updates += 1;
        } else if !left.is_null() {
            let mut page = vas.write(left)?;
            let off = left.offset_in_page(ps);
            d::set_right_sibling(&mut page, off, new_ptr);
            self.stats.pointer_updates += 1;
        }
        let right_t = translate(right);
        if right_t != right {
            let mut page = vas.write(new_ptr)?;
            let off = new_ptr.offset_in_page(ps);
            d::set_right_sibling(&mut page, off, right_t);
            self.stats.pointer_updates += 1;
        } else if !right.is_null() {
            let mut page = vas.write(right)?;
            let off = right.offset_in_page(ps);
            d::set_left_sibling(&mut page, off, new_ptr);
            self.stats.pointer_updates += 1;
        }

        // 3. The parent's child slot, if it pointed at the moved node.
        if !parent_field.is_null() {
            let parent_ptr = match self.mode {
                ParentMode::Indirect => deref_handle(vas, parent_field)?,
                ParentMode::Direct => translate(parent_field),
            };
            if self.mode == ParentMode::Direct && parent_ptr != parent_field {
                let mut page = vas.write(new_ptr)?;
                let off = new_ptr.offset_in_page(ps);
                d::set_parent(&mut page, off, parent_ptr);
                self.stats.pointer_updates += 1;
            }
            let sid = node.schema(vas)?;
            let parent_sid = NodeRef(parent_ptr).schema(vas)?;
            if let Some(slot) = schema.child_slot(parent_sid, sid) {
                let mut page = vas.write(parent_ptr)?;
                let off = parent_ptr.offset_in_page(ps);
                let width = block::child_slots(&page);
                if slot < width as usize && d::child(&page, off, slot, width) == old_ptr {
                    d::set_child(&mut page, off, slot, width, new_ptr);
                    self.stats.pointer_updates += 1;
                }
            }
        }

        // 4. Direct-parent baseline: every child must be rewritten — the
        // O(fan-out) cost the indirection table avoids.
        if self.mode == ParentMode::Direct {
            for child in node.children(vas)? {
                let mut page = vas.write(child.ptr())?;
                let off = child.ptr().offset_in_page(ps);
                d::set_parent(&mut page, off, new_ptr);
                self.stats.pointer_updates += 1;
            }
        }
        Ok(())
    }

    /// Allocates an indirection entry for `target`, preferring the target's
    /// own block and overflowing into the dedicated chain otherwise.
    fn alloc_handle(&mut self, vas: &Vas, target: XPtr) -> StorageResult<XPtr> {
        let ps = vas.page_size();
        let blk = target.page(ps);
        {
            let mut page = vas.write(blk)?;
            if let Some(off) = block::alloc_indir_entry(&mut page, ps, target) {
                return Ok(blk.offset(off as u32));
            }
        }
        // Overflow chain.
        if !self.overflow_indir.is_null() {
            let mut page = vas.write(self.overflow_indir)?;
            if let Some(off) = block::alloc_indir_entry(&mut page, ps, target) {
                return Ok(self.overflow_indir.offset(off as u32));
            }
        }
        let (new_blk, mut page) = vas.alloc_page()?;
        block::init_node_block(&mut page, SchemaNodeId(u32::MAX), 0);
        put_xptr(&mut page, BH_NEXT_BLOCK, self.overflow_indir);
        let off = block::alloc_indir_entry(&mut page, ps, target)
            .expect("fresh block has indirection room");
        drop(page);
        if !self.overflow_indir.is_null() {
            let mut prev = vas.write(self.overflow_indir)?;
            put_xptr(&mut prev, BH_PREV_BLOCK, new_blk);
        }
        self.overflow_indir = new_blk;
        self.stats.blocks_allocated += 1;
        Ok(new_blk.offset(off as u32))
    }

    /// Relocates `node` (identified by handle) into a block wide enough for
    /// child slot `slot`, if its current block is too narrow — the delayed
    /// per-block widening. Returns the node's (possibly new) descriptor.
    pub fn ensure_child_slot(
        &mut self,
        vas: &Vas,
        schema: &mut SchemaTree,
        handle: XPtr,
        slot: usize,
    ) -> StorageResult<XPtr> {
        let ps = vas.page_size();
        let desc_ptr = deref_handle(vas, handle)?;
        let blk = desc_ptr.page(ps);
        let (width, dsize, sid) = {
            let page = vas.read(blk)?;
            (
                block::child_slots(&page),
                block::block_desc_size(&page),
                block::schema_of(&page),
            )
        };
        if slot < width as usize {
            return Ok(desc_ptr);
        }
        // Split at this node: it and its chain successors move to a block
        // with the full current schema width.
        let my_slot = ((desc_ptr.offset_in_page(ps) - BLOCK_HEADER_LEN) / dsize as usize) as u16;
        let chain = self.chain_slots(vas, blk)?;
        let keep = chain
            .iter()
            .position(|&s| s == my_slot)
            .ok_or_else(|| StorageError::Corrupt("descriptor not in its block chain".into()))?;
        let new_width = (schema.child_count(sid) as u16).max(slot as u16 + 1);
        self.split_block(vas, schema, sid, blk, keep, new_width)?;
        self.maybe_free_block(vas, schema, blk)?;
        deref_handle(vas, handle)
    }

    // -----------------------------------------------------------------
    // Public update operations
    // -----------------------------------------------------------------

    /// Inserts a new node under `parent` between siblings `left` and
    /// `right` (handles; `None` = no sibling on that side). `value` is the
    /// string value for valued kinds. Returns the new node's handle.
    #[allow(clippy::too_many_arguments)]
    pub fn insert_node(
        &mut self,
        vas: &Vas,
        schema: &mut SchemaTree,
        parent: XPtr,
        left: Option<XPtr>,
        right: Option<XPtr>,
        kind: NodeKind,
        name: Option<SchemaName>,
        value: Option<&[u8]>,
    ) -> StorageResult<XPtr> {
        let parent_desc = NodeRef(deref_handle(vas, parent)?);
        let parent_sid = parent_desc.schema(vas)?;
        let parent_label = parent_desc.label(vas)?;
        let (sid, _added) = schema.get_or_add_child(parent_sid, kind, name);

        let left_node = left
            .map(|h| deref_handle(vas, h).map(NodeRef))
            .transpose()?;
        let right_node = right
            .map(|h| deref_handle(vas, h).map(NodeRef))
            .transpose()?;
        let left_label = left_node.map(|n| n.label(vas)).transpose()?;
        let right_label = right_node.map(|n| n.label(vas)).transpose()?;
        let label = LabelAlloc::child(&parent_label, left_label.as_ref(), right_label.as_ref());

        // Locate the document-order position in sid's node list.
        let prev_same = self.nearest_same_schema(vas, left_node, sid, Direction::Left)?;
        let pos = if let Some(p) = prev_same {
            self.pos_after(vas, p)?
        } else if let Some(n) = self.nearest_same_schema(vas, right_node, sid, Direction::Right)? {
            self.pos_before(vas, n)?
        } else {
            self.pos_by_label(vas, schema, sid, &label)?
        };
        let pos = match pos {
            Some(p) => p,
            None => {
                // Empty list (or append past the tail): ensure a tail block.
                let tail = schema.node(sid).last_block;
                let blk = if tail.is_null() {
                    let minw = if kind == NodeKind::Element {
                        MIN_ELEMENT_WIDTH
                    } else {
                        0
                    };
                    let b = self.alloc_block(vas, schema, sid, minw)?;
                    self.link_block_tail(vas, schema, sid, b)?;
                    b
                } else {
                    tail
                };
                let last = {
                    let page = vas.read(blk)?;
                    block::last_desc(&page)
                };
                ListPos {
                    block: blk,
                    prev_slot: last,
                }
            }
        };

        let (desc_ptr, handle) = self.place_descriptor(vas, schema, sid, pos, &label, kind)?;
        let ps = vas.page_size();

        // Widen the parent FIRST when this child introduces a new schema
        // slot: the relocation enumerates the parent's children, and the
        // new node must not be half-linked into the sibling chain yet
        // (in direct-parent mode the enumeration rewrites their parent
        // pointers).
        let first_slot = if prev_same.is_none() {
            let slot = schema
                .child_slot(parent_sid, sid)
                .expect("child schema registered above");
            self.ensure_child_slot(vas, schema, parent, slot)?;
            Some(slot)
        } else {
            None
        };

        // Parent pointer (indirect: the parent's handle; direct: its desc,
        // dereferenced after any widening move above).
        let parent_field = match self.mode {
            ParentMode::Indirect => parent,
            ParentMode::Direct => deref_handle(vas, parent)?,
        };
        {
            let mut page = vas.write(desc_ptr)?;
            let off = desc_ptr.offset_in_page(ps);
            d::set_parent(&mut page, off, parent_field);
        }

        // Value (clustered with the node's schema group).
        if let Some(v) = value {
            let text_ref = self.text.alloc(vas, sid.0, v)?;
            let mut page = vas.write(desc_ptr)?;
            let off = desc_ptr.offset_in_page(ps);
            d::set_value(&mut page, off, text_ref);
            schema.node_mut(sid).text_len += v.len() as u64;
        }

        // Sibling links (re-deref: placement may have split blocks).
        let left_ptr = left.map(|h| deref_handle(vas, h)).transpose()?;
        let right_ptr = right.map(|h| deref_handle(vas, h)).transpose()?;
        {
            let mut page = vas.write(desc_ptr)?;
            let off = desc_ptr.offset_in_page(ps);
            d::set_left_sibling(&mut page, off, left_ptr.unwrap_or(XPtr::NULL));
            d::set_right_sibling(&mut page, off, right_ptr.unwrap_or(XPtr::NULL));
        }
        if let Some(lp) = left_ptr {
            let mut page = vas.write(lp)?;
            d::set_right_sibling(&mut page, lp.offset_in_page(ps), desc_ptr);
        }
        if let Some(rp) = right_ptr {
            let mut page = vas.write(rp)?;
            d::set_left_sibling(&mut page, rp.offset_in_page(ps), desc_ptr);
        }

        // Parent's child slot: set when this is the new first child of its
        // schema under this parent.
        if let Some(slot) = first_slot {
            let parent_ptr = deref_handle(vas, parent)?;
            let mut page = vas.write(parent_ptr)?;
            let off = parent_ptr.offset_in_page(ps);
            let width = block::child_slots(&page);
            d::set_child(&mut page, off, slot, width, desc_ptr);
            self.stats.pointer_updates += 1;
        }

        // Fan-out histogram: the parent gained one child of this schema.
        {
            let parent_ptr = deref_handle(vas, parent)?;
            let now = self.same_schema_child_count(vas, schema, parent_ptr, parent_sid, sid)?;
            debug_assert!(now >= 1, "freshly inserted child must be countable");
            schema
                .node_mut(sid)
                .fanout_transition(now.saturating_sub(1), now);
        }

        schema.node_mut(sid).node_count += 1;
        Ok(handle)
    }

    /// Walks the sibling chain from `start` away from the insertion point,
    /// looking for the nearest sibling with schema `sid`.
    fn nearest_same_schema(
        &self,
        vas: &Vas,
        start: Option<NodeRef>,
        sid: SchemaNodeId,
        dir: Direction,
    ) -> StorageResult<Option<NodeRef>> {
        let mut cur = start;
        while let Some(n) = cur {
            if n.schema(vas)? == sid {
                return Ok(Some(n));
            }
            cur = match dir {
                Direction::Left => n.left_sibling(vas)?,
                Direction::Right => n.right_sibling(vas)?,
            };
        }
        Ok(None)
    }

    fn pos_after(&self, vas: &Vas, node: NodeRef) -> StorageResult<Option<ListPos>> {
        let ps = vas.page_size();
        let blk = node.ptr().page(ps);
        let page = vas.read(blk)?;
        let dsize = block::block_desc_size(&page);
        let slot = ((node.ptr().offset_in_page(ps) - BLOCK_HEADER_LEN) / dsize as usize) as u16;
        Ok(Some(ListPos {
            block: blk,
            prev_slot: slot,
        }))
    }

    fn pos_before(&self, vas: &Vas, node: NodeRef) -> StorageResult<Option<ListPos>> {
        let ps = vas.page_size();
        let blk = node.ptr().page(ps);
        let page = vas.read(blk)?;
        let dsize = block::block_desc_size(&page);
        let slot = ((node.ptr().offset_in_page(ps) - BLOCK_HEADER_LEN) / dsize as usize) as u16;
        let prev = d::prev_in_block(&page, block::desc_offset(slot, dsize));
        // Insert at the head of this block when `node` heads its chain —
        // the partial order across blocks stays valid either way.
        Ok(Some(ListPos {
            block: blk,
            prev_slot: prev,
        }))
    }

    /// Finds the document-order position for `label` by scanning the block
    /// list (blocks are ordered; within a block, the chain is walked).
    fn pos_by_label(
        &self,
        vas: &Vas,
        schema: &SchemaTree,
        sid: SchemaNodeId,
        label: &Label,
    ) -> StorageResult<Option<ListPos>> {
        let mut blk = schema.node(sid).first_block;
        while !blk.is_null() {
            let (last, dsize, next_blk) = {
                let page = vas.read(blk)?;
                (
                    block::last_desc(&page),
                    block::block_desc_size(&page),
                    block::next_block(&page),
                )
            };
            if last != NO_SLOT {
                let last_node = NodeRef(blk.offset(block::desc_offset(last, dsize) as u32));
                if label.doc_cmp(&last_node.label(vas)?) == DocOrder::Before {
                    // Position is inside this block: walk the chain.
                    let mut prev = NO_SLOT;
                    let mut cur = {
                        let page = vas.read(blk)?;
                        block::first_desc(&page)
                    };
                    while cur != NO_SLOT {
                        let node = NodeRef(blk.offset(block::desc_offset(cur, dsize) as u32));
                        if label.doc_cmp(&node.label(vas)?) == DocOrder::Before {
                            break;
                        }
                        prev = cur;
                        let page = vas.read(blk)?;
                        cur = d::next_in_block(&page, block::desc_offset(cur, dsize));
                    }
                    return Ok(Some(ListPos {
                        block: blk,
                        prev_slot: prev,
                    }));
                }
            }
            if next_blk.is_null() {
                // Append at the tail.
                return Ok(Some(ListPos {
                    block: blk,
                    prev_slot: last,
                }));
            }
            blk = next_blk;
        }
        Ok(None)
    }

    /// Deletes the subtree rooted at `handle`.
    pub fn delete_subtree(
        &mut self,
        vas: &Vas,
        schema: &mut SchemaTree,
        handle: XPtr,
    ) -> StorageResult<()> {
        if handle == self.doc_handle {
            return Err(StorageError::Corrupt(
                "the document node cannot be deleted".into(),
            ));
        }
        let node = NodeRef(deref_handle(vas, handle)?);
        let child_handles: Vec<XPtr> = node
            .children(vas)?
            .into_iter()
            .map(|c| c.handle(vas))
            .collect::<StorageResult<_>>()?;
        for ch in child_handles {
            self.delete_subtree(vas, schema, ch)?;
        }
        self.delete_leaf(vas, schema, handle)
    }

    /// Deletes a node with no remaining children.
    fn delete_leaf(
        &mut self,
        vas: &Vas,
        schema: &mut SchemaTree,
        handle: XPtr,
    ) -> StorageResult<()> {
        let ps = vas.page_size();
        let desc_ptr = deref_handle(vas, handle)?;
        let node = NodeRef(desc_ptr);
        let sid = node.schema(vas)?;
        let blk = desc_ptr.page(ps);

        // Successor of the same schema under the same parent, for the
        // parent's child-slot fix-up — computed before unlinking.
        let parent_field = node.parent_handle(vas)?;
        let next_same_parent = {
            let mut nxt = node.next_in_list(vas)?;
            if let Some(n) = nxt {
                if n.parent_handle(vas)? != parent_field {
                    nxt = None;
                }
            }
            nxt
        };

        // Fan-out histogram input: same-schema sibling count while the
        // node is still linked.
        let same_sid_before = if parent_field.is_null() {
            0
        } else {
            let parent_ptr = match self.mode {
                ParentMode::Indirect => deref_handle(vas, parent_field)?,
                ParentMode::Direct => parent_field,
            };
            let parent_sid = NodeRef(parent_ptr).schema(vas)?;
            self.same_schema_child_count(vas, schema, parent_ptr, parent_sid, sid)?
        };

        // Free the value and a spilled label.
        let (value_ref, spilled_ref, left, right) = {
            let page = vas.read(desc_ptr)?;
            let off = desc_ptr.offset_in_page(ps);
            let spill = if d::label_spilled(&page, off) {
                match d::label(&page, off) {
                    d::RawLabel::Spilled { text_ref, .. } => text_ref,
                    _ => XPtr::NULL,
                }
            } else {
                XPtr::NULL
            };
            (
                d::value(&page, off),
                spill,
                d::left_sibling(&page, off),
                d::right_sibling(&page, off),
            )
        };
        if !value_ref.is_null() {
            let len = TextStore::read(vas, value_ref)?.len() as u64;
            let snode = schema.node_mut(sid);
            snode.text_len = snode.text_len.saturating_sub(len);
            TextStore::free(vas, value_ref)?;
        }
        if !spilled_ref.is_null() {
            TextStore::free(vas, spilled_ref)?;
        }

        // Sibling unlink.
        if !left.is_null() {
            let mut page = vas.write(left)?;
            d::set_right_sibling(&mut page, left.offset_in_page(ps), right);
            self.stats.pointer_updates += 1;
        }
        if !right.is_null() {
            let mut page = vas.write(right)?;
            d::set_left_sibling(&mut page, right.offset_in_page(ps), left);
            self.stats.pointer_updates += 1;
        }

        // Parent child-slot fix.
        if !parent_field.is_null() {
            let parent_ptr = match self.mode {
                ParentMode::Indirect => deref_handle(vas, parent_field)?,
                ParentMode::Direct => parent_field,
            };
            let parent_sid = NodeRef(parent_ptr).schema(vas)?;
            if let Some(slot) = schema.child_slot(parent_sid, sid) {
                let mut page = vas.write(parent_ptr)?;
                let off = parent_ptr.offset_in_page(ps);
                let width = block::child_slots(&page);
                if slot < width as usize && d::child(&page, off, slot, width) == desc_ptr {
                    let new_head = next_same_parent.map_or(XPtr::NULL, |n| n.ptr());
                    d::set_child(&mut page, off, slot, width, new_head);
                    self.stats.pointer_updates += 1;
                }
            }
        }

        // In-block chain unlink + slot free.
        {
            let mut page = vas.write(blk)?;
            let dsize = block::block_desc_size(&page);
            let slot = ((desc_ptr.offset_in_page(ps) - BLOCK_HEADER_LEN) / dsize as usize) as u16;
            let off = block::desc_offset(slot, dsize);
            let prev = d::prev_in_block(&page, off);
            let next = d::next_in_block(&page, off);
            if prev == NO_SLOT {
                put_u16(&mut page, BH_FIRST_DESC, next);
            } else {
                d::set_next_in_block(&mut page, block::desc_offset(prev, dsize), next);
            }
            if next == NO_SLOT {
                put_u16(&mut page, BH_LAST_DESC, prev);
            } else {
                d::set_prev_in_block(&mut page, block::desc_offset(next, dsize), prev);
            }
            block::free_desc_slot(&mut page, slot);
        }

        // Free the indirection entry.
        {
            let handle_blk = handle.page(ps);
            let mut page = vas.write(handle_blk)?;
            block::free_indir_entry(&mut page, ps, handle.offset_in_page(ps));
        }

        if same_sid_before > 0 {
            schema
                .node_mut(sid)
                .fanout_transition(same_sid_before, same_sid_before - 1);
        }
        schema.node_mut(sid).node_count -= 1;
        self.maybe_free_block(vas, schema, blk)?;
        if handle.page(ps) != blk {
            self.maybe_free_block(vas, schema, handle.page(ps))?;
        }
        Ok(())
    }

    /// Bulk-load fast path: appends a node at the tail of `sid`'s node
    /// list as the new last child of `parent` (whose current last child is
    /// `prev_sibling`, `XPtr::NULL` when none). Used by
    /// [`crate::DocBuilder`], which guarantees the tail *is* the correct
    /// document-order position.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn append_at_tail(
        &mut self,
        vas: &Vas,
        schema: &mut SchemaTree,
        parent: XPtr,
        prev_sibling: XPtr,
        sid: SchemaNodeId,
        kind: NodeKind,
        label: &Label,
        value: Option<&[u8]>,
        is_first_of_sid: bool,
    ) -> StorageResult<XPtr> {
        let ps = vas.page_size();
        // Tail block with room (append-only loads never split).
        let tail = schema.node(sid).last_block;
        let blk = if tail.is_null() {
            let minw = if kind == NodeKind::Element {
                MIN_ELEMENT_WIDTH
            } else {
                0
            };
            let b = self.alloc_block(vas, schema, sid, minw)?;
            self.link_block_tail(vas, schema, sid, b)?;
            b
        } else {
            let has_room = {
                let page = vas.read(tail)?;
                block::has_desc_room(&page, ps)
            };
            if has_room {
                tail
            } else {
                let minw = if kind == NodeKind::Element {
                    MIN_ELEMENT_WIDTH
                } else {
                    0
                };
                let b = self.alloc_block(vas, schema, sid, minw)?;
                self.link_block_tail(vas, schema, sid, b)?;
                b
            }
        };
        let last = {
            let page = vas.read(blk)?;
            block::last_desc(&page)
        };
        let (desc_ptr, handle) = self.place_descriptor(
            vas,
            schema,
            sid,
            ListPos {
                block: blk,
                prev_slot: last,
            },
            label,
            kind,
        )?;

        // Widen the parent before linking the new node anywhere (see
        // insert_node for why the order matters in direct-parent mode).
        let first_slot = if is_first_of_sid {
            let parent_sid = NodeRef(deref_handle(vas, parent)?).schema(vas)?;
            let slot = schema
                .child_slot(parent_sid, sid)
                .expect("child schema registered by the builder");
            self.ensure_child_slot(vas, schema, parent, slot)?;
            Some(slot)
        } else {
            None
        };

        // Parent pointer (dereferenced after any widening move).
        let parent_field = match self.mode {
            ParentMode::Indirect => parent,
            ParentMode::Direct => deref_handle(vas, parent)?,
        };
        {
            let mut page = vas.write(desc_ptr)?;
            let off = desc_ptr.offset_in_page(ps);
            d::set_parent(&mut page, off, parent_field);
        }

        // Value (clustered with the node's schema group).
        if let Some(v) = value {
            let text_ref = self.text.alloc(vas, sid.0, v)?;
            let mut page = vas.write(desc_ptr)?;
            let off = desc_ptr.offset_in_page(ps);
            d::set_value(&mut page, off, text_ref);
            schema.node_mut(sid).text_len += v.len() as u64;
        }

        // Sibling link to the previous last child.
        if !prev_sibling.is_null() {
            let prev_ptr = deref_handle(vas, prev_sibling)?;
            {
                let mut page = vas.write(desc_ptr)?;
                let off = desc_ptr.offset_in_page(ps);
                d::set_left_sibling(&mut page, off, prev_ptr);
            }
            let mut page = vas.write(prev_ptr)?;
            d::set_right_sibling(&mut page, prev_ptr.offset_in_page(ps), desc_ptr);
        }

        // Parent's child-slot head for a first-of-its-schema child.
        if let Some(slot) = first_slot {
            let parent_ptr = deref_handle(vas, parent)?;
            let mut page = vas.write(parent_ptr)?;
            let off = parent_ptr.offset_in_page(ps);
            let width = block::child_slots(&page);
            d::set_child(&mut page, off, slot, width, desc_ptr);
            self.stats.pointer_updates += 1;
        }

        schema.node_mut(sid).node_count += 1;
        Ok(handle)
    }

    /// Replaces the string value of the node behind `handle`, keeping the
    /// schema node's text-length statistic in step.
    pub fn set_value(
        &mut self,
        vas: &Vas,
        schema: &mut SchemaTree,
        handle: XPtr,
        value: &[u8],
    ) -> StorageResult<()> {
        let ps = vas.page_size();
        let desc_ptr = deref_handle(vas, handle)?;
        let sid = NodeRef(desc_ptr).schema(vas)?;
        let old = {
            let page = vas.read(desc_ptr)?;
            d::value(&page, desc_ptr.offset_in_page(ps))
        };
        if !old.is_null() {
            let old_len = TextStore::read(vas, old)?.len() as u64;
            let snode = schema.node_mut(sid);
            snode.text_len = snode.text_len.saturating_sub(old_len);
            TextStore::free(vas, old)?;
        }
        let new_ref = self.text.alloc(vas, sid.0, value)?;
        let mut page = vas.write(desc_ptr)?;
        d::set_value(&mut page, desc_ptr.offset_in_page(ps), new_ref);
        schema.node_mut(sid).text_len += value.len() as u64;
        Ok(())
    }
}

#[derive(Copy, Clone, PartialEq, Eq)]
enum Direction {
    Left,
    Right,
}

enum PreparedLabel {
    Inline(Label),
    Spilled {
        text_ref: XPtr,
        len: usize,
        delim: u8,
    },
}
