//! Field access for node descriptors (Figure 3) inside raw page bytes.
//!
//! All functions take the page buffer and the descriptor's byte offset;
//! nothing here performs I/O, so the same accessors serve reads, writes,
//! splits, and recovery redo.

use sedna_numbering::Label;
use sedna_sas::XPtr;
use sedna_schema::NodeKind;

use crate::layout::*;
use crate::util::*;

/// Reads the node kind.
pub fn kind(page: &[u8], off: usize) -> Option<NodeKind> {
    NodeKind::from_u8(page[off + ND_KIND])
}

/// Writes the node kind.
pub fn set_kind(page: &mut [u8], off: usize, k: NodeKind) {
    page[off + ND_KIND] = k.to_u8();
}

/// Reads the in-block successor slot.
pub fn next_in_block(page: &[u8], off: usize) -> u16 {
    get_u16(page, off + ND_NEXT_IN_BLOCK)
}

/// Writes the in-block successor slot.
pub fn set_next_in_block(page: &mut [u8], off: usize, slot: u16) {
    put_u16(page, off + ND_NEXT_IN_BLOCK, slot)
}

/// Reads the in-block predecessor slot.
pub fn prev_in_block(page: &[u8], off: usize) -> u16 {
    get_u16(page, off + ND_PREV_IN_BLOCK)
}

/// Writes the in-block predecessor slot.
pub fn set_prev_in_block(page: &mut [u8], off: usize, slot: u16) {
    put_u16(page, off + ND_PREV_IN_BLOCK, slot)
}

/// Reads the node handle (the indirection entry's address).
pub fn handle(page: &[u8], off: usize) -> XPtr {
    get_xptr(page, off + ND_HANDLE)
}

/// Writes the node handle.
pub fn set_handle(page: &mut [u8], off: usize, h: XPtr) {
    put_xptr(page, off + ND_HANDLE, h)
}

/// Reads the parent pointer (indirect: the parent's indirection entry; in
/// the direct-parent baseline: the parent descriptor).
pub fn parent(page: &[u8], off: usize) -> XPtr {
    get_xptr(page, off + ND_PARENT)
}

/// Writes the parent pointer.
pub fn set_parent(page: &mut [u8], off: usize, p: XPtr) {
    put_xptr(page, off + ND_PARENT, p)
}

/// Reads the left-sibling direct pointer.
pub fn left_sibling(page: &[u8], off: usize) -> XPtr {
    get_xptr(page, off + ND_LEFT_SIB)
}

/// Writes the left-sibling direct pointer.
pub fn set_left_sibling(page: &mut [u8], off: usize, p: XPtr) {
    put_xptr(page, off + ND_LEFT_SIB, p)
}

/// Reads the right-sibling direct pointer.
pub fn right_sibling(page: &[u8], off: usize) -> XPtr {
    get_xptr(page, off + ND_RIGHT_SIB)
}

/// Writes the right-sibling direct pointer.
pub fn set_right_sibling(page: &mut [u8], off: usize, p: XPtr) {
    put_xptr(page, off + ND_RIGHT_SIB, p)
}

/// Reads the text-storage reference of the node's value.
pub fn value(page: &[u8], off: usize) -> XPtr {
    get_xptr(page, off + ND_VALUE)
}

/// Writes the value reference.
pub fn set_value(page: &mut [u8], off: usize, v: XPtr) {
    put_xptr(page, off + ND_VALUE, v)
}

/// Reads child pointer `slot` given the block's child-slot count.
/// Slots beyond the block's width read as null (the delayed-widening
/// contract: a narrow block simply has no pointer for new schema
/// children yet).
pub fn child(page: &[u8], off: usize, slot: usize, block_child_slots: u16) -> XPtr {
    if slot >= block_child_slots as usize {
        return XPtr::NULL;
    }
    get_xptr(page, off + ND_CHILDREN + 8 * slot)
}

/// Writes child pointer `slot`.
///
/// # Panics
/// Panics if `slot` exceeds the block's width — callers must relocate the
/// descriptor to a wider block first (`DocStorage::ensure_child_slot`).
pub fn set_child(page: &mut [u8], off: usize, slot: usize, block_child_slots: u16, p: XPtr) {
    assert!(
        slot < block_child_slots as usize,
        "child slot {slot} outside block width {block_child_slots}"
    );
    put_xptr(page, off + ND_CHILDREN + 8 * slot, p)
}

/// Whether the label prefix is spilled to text storage.
pub fn label_spilled(page: &[u8], off: usize) -> bool {
    page[off + ND_FLAGS] & NDF_LABEL_SPILLED != 0
}

/// Result of reading a descriptor's label field.
pub enum RawLabel {
    /// Label fully stored inline.
    Inline(Label),
    /// Prefix spilled: text reference to the full prefix bytes, plus the
    /// delimiter.
    Spilled {
        /// Text-storage reference of the prefix bytes.
        text_ref: XPtr,
        /// The delimiter character.
        delim: u8,
    },
}

/// Reads the label field.
pub fn label(page: &[u8], off: usize) -> RawLabel {
    let len = get_u16(page, off + ND_LABEL_LEN) as usize;
    let delim = page[off + ND_LABEL_DELIM];
    if label_spilled(page, off) {
        RawLabel::Spilled {
            text_ref: get_xptr(page, off + ND_LABEL_INLINE),
            delim,
        }
    } else {
        debug_assert!(len <= LABEL_INLINE_LEN);
        let prefix = page[off + ND_LABEL_INLINE..off + ND_LABEL_INLINE + len].to_vec();
        RawLabel::Inline(Label::from_parts(prefix, delim))
    }
}

/// Writes an inline label. The prefix must fit [`LABEL_INLINE_LEN`].
pub fn set_label_inline(page: &mut [u8], off: usize, l: &Label) {
    let prefix = l.prefix();
    assert!(
        prefix.len() <= LABEL_INLINE_LEN,
        "label does not fit inline"
    );
    put_u16(page, off + ND_LABEL_LEN, prefix.len() as u16);
    page[off + ND_LABEL_DELIM] = l.delim();
    page[off + ND_LABEL_INLINE..off + ND_LABEL_INLINE + prefix.len()].copy_from_slice(prefix);
    page[off + ND_FLAGS] &= !NDF_LABEL_SPILLED;
}

/// Writes a spilled label: the prefix lives in text storage at `text_ref`.
pub fn set_label_spilled(
    page: &mut [u8],
    off: usize,
    text_ref: XPtr,
    prefix_len: usize,
    delim: u8,
) {
    put_u16(
        page,
        off + ND_LABEL_LEN,
        prefix_len.min(u16::MAX as usize) as u16,
    );
    page[off + ND_LABEL_DELIM] = delim;
    put_xptr(page, off + ND_LABEL_INLINE, text_ref);
    page[off + ND_FLAGS] |= NDF_LABEL_SPILLED;
}

/// Copies descriptor fields from one location to another, adapting the
/// child-pointer width (extra target slots are zero; extra source slots
/// must be null — callers only narrow via deletion).
pub fn copy_desc(
    src_page: &[u8],
    src_off: usize,
    src_child_slots: u16,
    dst_page: &mut [u8],
    dst_off: usize,
    dst_child_slots: u16,
    dst_desc_size: usize,
) {
    debug_assert!(dst_child_slots >= src_child_slots);
    dst_page[dst_off..dst_off + dst_desc_size].fill(0);
    // Fixed part verbatim (includes label, pointers, flags); in-block
    // links are location-specific and re-set by the caller.
    dst_page[dst_off..dst_off + ND_FIXED_LEN]
        .copy_from_slice(&src_page[src_off..src_off + ND_FIXED_LEN]);
    for slot in 0..src_child_slots as usize {
        let v = get_u64(src_page, src_off + ND_CHILDREN + 8 * slot);
        put_u64(dst_page, dst_off + ND_CHILDREN + 8 * slot, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedna_numbering::LabelAlloc;

    #[test]
    fn field_round_trips() {
        let mut page = vec![0u8; 512];
        let off = 64;
        set_kind(&mut page, off, NodeKind::Element);
        set_next_in_block(&mut page, off, 5);
        set_prev_in_block(&mut page, off, 9);
        set_handle(&mut page, off, XPtr::new(1, 1000));
        set_parent(&mut page, off, XPtr::new(1, 2000));
        set_left_sibling(&mut page, off, XPtr::new(2, 64));
        set_right_sibling(&mut page, off, XPtr::new(2, 128));
        set_value(&mut page, off, XPtr::new(3, 36));
        assert_eq!(kind(&page, off), Some(NodeKind::Element));
        assert_eq!(next_in_block(&page, off), 5);
        assert_eq!(prev_in_block(&page, off), 9);
        assert_eq!(handle(&page, off), XPtr::new(1, 1000));
        assert_eq!(parent(&page, off), XPtr::new(1, 2000));
        assert_eq!(left_sibling(&page, off), XPtr::new(2, 64));
        assert_eq!(right_sibling(&page, off), XPtr::new(2, 128));
        assert_eq!(value(&page, off), XPtr::new(3, 36));
    }

    #[test]
    fn inline_label_round_trip() {
        let mut page = vec![0u8; 512];
        let off = 64;
        let l = LabelAlloc::append_child(&LabelAlloc::root(), None);
        set_label_inline(&mut page, off, &l);
        match label(&page, off) {
            RawLabel::Inline(back) => assert_eq!(back, l),
            RawLabel::Spilled { .. } => panic!("should be inline"),
        }
        assert!(!label_spilled(&page, off));
    }

    #[test]
    fn spilled_label_round_trip() {
        let mut page = vec![0u8; 512];
        let off = 64;
        set_label_spilled(&mut page, off, XPtr::new(9, 36), 100, 0xFF);
        assert!(label_spilled(&page, off));
        match label(&page, off) {
            RawLabel::Spilled { text_ref, delim } => {
                assert_eq!(text_ref, XPtr::new(9, 36));
                assert_eq!(delim, 0xFF);
            }
            RawLabel::Inline(_) => panic!("should be spilled"),
        }
    }

    #[test]
    fn children_respect_block_width() {
        let mut page = vec![0u8; 512];
        let off = 64;
        set_child(&mut page, off, 0, 2, XPtr::new(1, 64));
        set_child(&mut page, off, 1, 2, XPtr::new(1, 128));
        assert_eq!(child(&page, off, 0, 2), XPtr::new(1, 64));
        assert_eq!(child(&page, off, 1, 2), XPtr::new(1, 128));
        // Reading past the width is null, not junk.
        assert_eq!(child(&page, off, 5, 2), XPtr::NULL);
    }

    #[test]
    #[should_panic(expected = "outside block width")]
    fn writing_past_width_panics() {
        let mut page = vec![0u8; 512];
        set_child(&mut page, 64, 2, 2, XPtr::new(1, 64));
    }

    #[test]
    fn copy_desc_widens() {
        let mut src = vec![0u8; 512];
        let mut dst = vec![0u8; 512];
        let l = LabelAlloc::root();
        set_kind(&mut src, 64, NodeKind::Element);
        set_label_inline(&mut src, 64, &l);
        set_handle(&mut src, 64, XPtr::new(4, 8));
        set_child(&mut src, 64, 0, 1, XPtr::new(5, 64));
        copy_desc(&src, 64, 1, &mut dst, 128, 3, desc_size(3));
        assert_eq!(kind(&dst, 128), Some(NodeKind::Element));
        assert_eq!(handle(&dst, 128), XPtr::new(4, 8));
        assert_eq!(child(&dst, 128, 0, 3), XPtr::new(5, 64));
        assert_eq!(child(&dst, 128, 1, 3), XPtr::NULL);
        match label(&dst, 128) {
            RawLabel::Inline(back) => assert_eq!(back, l),
            _ => panic!(),
        }
    }
}
