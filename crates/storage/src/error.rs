//! Storage-layer error type.

use sedna_sas::{SasError, XPtr};

/// Errors raised by the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// Propagated SAS/buffer error.
    Sas(SasError),
    /// A value too large for its container.
    TooLarge(String),
    /// A structural invariant was violated (corruption or caller bug).
    Corrupt(String),
    /// A dangling or wrong-kind pointer was dereferenced.
    BadPointer(XPtr, &'static str),
}

/// Result alias for storage operations.
pub type StorageResult<T> = Result<T, StorageError>;

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Sas(e) => write!(f, "address-space error: {e}"),
            StorageError::TooLarge(msg) => write!(f, "value too large: {msg}"),
            StorageError::Corrupt(msg) => write!(f, "storage corruption: {msg}"),
            StorageError::BadPointer(p, what) => write!(f, "bad pointer {p}: expected {what}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Sas(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SasError> for StorageError {
    fn from(e: SasError) -> Self {
        StorageError::Sas(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = StorageError::from(SasError::PoolExhausted);
        assert!(e.to_string().contains("address-space"));
        assert!(e.source().is_some());
        assert!(StorageError::TooLarge("x".into()).source().is_none());
        assert!(!StorageError::BadPointer(XPtr::new(1, 2), "text block")
            .to_string()
            .is_empty());
        assert!(!StorageError::Corrupt("y".into()).to_string().is_empty());
    }
}
