//! # sedna-storage
//!
//! The schema-driven clustering storage of Section 4.1 — the paper's first
//! headline contribution — implemented at byte level on top of the Sedna
//! Address Space (crate `sedna-sas`).
//!
//! ## Data organization (Figure 2)
//!
//! XML nodes are clustered by their position in the **descriptive schema**
//! (crate `sedna-schema`): each schema node heads a bidirectional list of
//! data blocks holding exactly the nodes corresponding to it. Node
//! descriptors are *partly ordered*: every descriptor in the i-th block of
//! a list precedes every descriptor in the j-th block (i < j) in document
//! order; within a block, order is carried by `next-in-block` /
//! `prev-in-block` links so that inserts never shift other descriptors.
//!
//! ## Node descriptors (Figure 3)
//!
//! A descriptor holds: the numbering-scheme label; the **node handle**
//! (an entry of the indirection table that survives physical moves); the
//! `left-/right-sibling` direct pointers; the in-block links; the
//! **indirect parent pointer** (through the indirection table, so moving a
//! node costs O(1) pointer fix-ups regardless of fan-out — experiment E4);
//! and child pointers **only to the first child per child schema node**.
//! Descriptors are fixed-size within a block; the per-block child-pointer
//! count lives in the block header and is widened lazily per block when
//! the schema grows ("delayed per-block fashion").
//!
//! ## Text storage
//!
//! String values are separated from structure and stored in slotted pages
//! ([`text`]), chained for unrestricted length.
//!
//! ## Baselines
//!
//! * [`subtree`] — the subtree-clustering storage strategy (Natix-style)
//!   the paper contrasts against in Section 2 (experiment E1);
//! * [`ParentMode::Direct`] — direct parent pointers instead of the
//!   indirection table (experiment E4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod build;
pub mod descriptor;
pub mod doc;
mod error;
pub mod indirection;
pub mod layout;
pub mod node;
pub mod subtree;
pub mod text;
mod util;

pub use build::DocBuilder;
pub use doc::{DocStorage, ParentMode, UpdateStats};
pub use error::{StorageError, StorageResult};
pub use node::NodeRef;
