//! The indirection table (Section 4.1.2): node handles.
//!
//! "The node handle in Sedna is implemented as an entry of the indirection
//! table that holds a pointer to that node. Actually indirection table
//! lays in the same blocks the nodes lay. While a node can change its
//! physical location, entries of the indirection table are guaranteed to
//! preserve their position during the lifetime of the XML nodes they
//! point to."
//!
//! A handle is simply the [`XPtr`] of the entry; dereferencing a handle is
//! one extra pointer hop. The parent pointer of every node descriptor goes
//! through a handle, which is what makes node moves O(1) (experiment E4).

use sedna_sas::{Vas, XPtr};

use crate::error::{StorageError, StorageResult};
use crate::layout::{FREE_ENTRY_TAG, KIND_NODE_BLOCK};
use crate::util::get_u64;

/// Dereferences a node handle to the node descriptor's current address.
pub fn deref_handle(vas: &Vas, handle: XPtr) -> StorageResult<XPtr> {
    let page = vas.read(handle)?;
    if page[crate::layout::BH_KIND] != KIND_NODE_BLOCK {
        return Err(StorageError::BadPointer(handle, "node block"));
    }
    let raw = get_u64(&page, handle.offset_in_page(vas.page_size()));
    if raw & FREE_ENTRY_TAG == FREE_ENTRY_TAG {
        return Err(StorageError::BadPointer(handle, "live indirection entry"));
    }
    Ok(XPtr::from_raw(raw))
}

/// Redirects a handle to a node's new physical location — the single
/// pointer update that replaces per-child parent rewrites when a node
/// moves.
pub fn retarget_handle(vas: &Vas, handle: XPtr, new_target: XPtr) -> StorageResult<()> {
    let off = handle.offset_in_page(vas.page_size());
    let mut page = vas.write(handle)?;
    if page[crate::layout::BH_KIND] != KIND_NODE_BLOCK {
        return Err(StorageError::BadPointer(handle, "node block"));
    }
    new_target.write_at(&mut page, off);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block;
    use sedna_sas::{Sas, SasConfig, TxnToken, View};
    use sedna_schema::SchemaNodeId;

    #[test]
    fn handle_deref_and_retarget() {
        let sas = Sas::in_memory(SasConfig {
            page_size: 1024,
            layer_size: 64 * 1024,
            buffer_frames: 16,
            buffer_shards: 0,
        })
        .unwrap();
        let vas = sas.session();
        vas.begin(View::LATEST, Some(TxnToken(1)));

        let (blk, mut page) = vas.alloc_page().unwrap();
        block::init_node_block(&mut page, SchemaNodeId(1), 0);
        let target1 = XPtr::new(5, 64);
        let entry_off = block::alloc_indir_entry(&mut page, 1024, target1).unwrap();
        drop(page);
        let handle = blk.offset(entry_off as u32);

        assert_eq!(deref_handle(&vas, handle).unwrap(), target1);
        let target2 = XPtr::new(6, 128);
        retarget_handle(&vas, handle, target2).unwrap();
        assert_eq!(deref_handle(&vas, handle).unwrap(), target2);
    }

    #[test]
    fn freed_entry_rejected() {
        let sas = Sas::in_memory(SasConfig {
            page_size: 1024,
            layer_size: 64 * 1024,
            buffer_frames: 16,
            buffer_shards: 0,
        })
        .unwrap();
        let vas = sas.session();
        vas.begin(View::LATEST, Some(TxnToken(1)));
        let (blk, mut page) = vas.alloc_page().unwrap();
        block::init_node_block(&mut page, SchemaNodeId(1), 0);
        let entry_off = block::alloc_indir_entry(&mut page, 1024, XPtr::new(5, 64)).unwrap();
        block::free_indir_entry(&mut page, 1024, entry_off);
        drop(page);
        let handle = blk.offset(entry_off as u32);
        assert!(matches!(
            deref_handle(&vas, handle),
            Err(StorageError::BadPointer(_, _))
        ));
    }
}
