//! Bulk loading: building a stored document from an XML event stream.
//!
//! The builder exploits the fact that during a document-order load every
//! open element is the *last* node of its schema node's list, so each new
//! node simply appends to its list's tail — no position search, no splits
//! (full blocks grow the list with a fresh tail block).

use sedna_numbering::{Label, LabelAlloc};
use sedna_sas::{Vas, XPtr};
use sedna_schema::{NodeKind, SchemaName, SchemaNodeId, SchemaTree};
use sedna_xml::{QName, XmlEvent};

use crate::doc::DocStorage;
use crate::error::{StorageError, StorageResult};
use crate::indirection::deref_handle;
use crate::node::NodeRef;
use crate::ParentMode;

/// State of one open element during the build.
struct Open {
    handle: XPtr,
    sid: SchemaNodeId,
    label: Label,
    last_child_handle: XPtr,
    last_child_label: Option<Label>,
    /// Child schema nodes that already have their head pointer set.
    seen_child_sids: Vec<SchemaNodeId>,
    /// Children appended so far per entry of `seen_child_sids` — feeds the
    /// schema fan-out histogram in O(1) per node instead of a sibling walk.
    child_sid_counts: Vec<u64>,
}

/// Streams XML events into a [`DocStorage`].
pub struct DocBuilder<'a> {
    vas: &'a Vas,
    schema: &'a mut SchemaTree,
    doc: &'a mut DocStorage,
    stack: Vec<Open>,
    nodes_built: u64,
}

impl<'a> DocBuilder<'a> {
    /// Starts building into `doc` (which must be freshly created — only a
    /// document node, no content).
    pub fn new(
        vas: &'a Vas,
        schema: &'a mut SchemaTree,
        doc: &'a mut DocStorage,
    ) -> StorageResult<DocBuilder<'a>> {
        let doc_node = doc.doc_node(vas)?;
        let label = doc_node.label(vas)?;
        let handle = doc.doc_handle;
        Ok(DocBuilder {
            vas,
            schema,
            doc,
            stack: vec![Open {
                handle,
                sid: SchemaTree::ROOT,
                label,
                last_child_handle: XPtr::NULL,
                last_child_label: None,
                seen_child_sids: Vec::new(),
                child_sid_counts: Vec::new(),
            }],
            nodes_built: 0,
        })
    }

    /// Number of nodes created so far.
    pub fn nodes_built(&self) -> u64 {
        self.nodes_built
    }

    /// Feeds one parser event.
    pub fn event(&mut self, ev: &XmlEvent) -> StorageResult<()> {
        match ev {
            XmlEvent::StartElement {
                name, attributes, ..
            } => {
                self.start_element(name)?;
                for attr in attributes {
                    self.leaf(
                        NodeKind::Attribute,
                        Some(qname_to_schema(&attr.name)),
                        attr.value.as_bytes(),
                    )?;
                }
                Ok(())
            }
            XmlEvent::EndElement { .. } => self.end_element(),
            XmlEvent::Text { content, .. } => self.leaf(NodeKind::Text, None, content.as_bytes()),
            XmlEvent::Comment(c) => self.leaf(NodeKind::Comment, None, c.as_bytes()),
            XmlEvent::ProcessingInstruction { target, data } => self.leaf(
                NodeKind::ProcessingInstruction,
                Some(SchemaName::local(target.clone())),
                data.as_bytes(),
            ),
        }
    }

    /// Opens an element.
    pub fn start_element(&mut self, name: &QName) -> StorageResult<()> {
        let handle = self.append_node(NodeKind::Element, Some(qname_to_schema(name)), None)?;
        let top = self.stack.last().expect("document node always open");
        let label = top.last_child_label.clone().expect("just appended");
        let sid = NodeRef(deref_handle(self.vas, handle)?).schema(self.vas)?;
        self.stack.push(Open {
            handle,
            sid,
            label,
            last_child_handle: XPtr::NULL,
            last_child_label: None,
            seen_child_sids: Vec::new(),
            child_sid_counts: Vec::new(),
        });
        Ok(())
    }

    /// Closes the innermost open element.
    pub fn end_element(&mut self) -> StorageResult<()> {
        if self.stack.len() <= 1 {
            return Err(StorageError::Corrupt("unbalanced end_element".into()));
        }
        self.stack.pop();
        Ok(())
    }

    /// Appends a leaf node (attribute, text, comment, PI).
    pub fn leaf(
        &mut self,
        kind: NodeKind,
        name: Option<SchemaName>,
        value: &[u8],
    ) -> StorageResult<()> {
        self.append_node(kind, name, Some(value))?;
        Ok(())
    }

    /// Core append: creates a node as the new last child of the innermost
    /// open element, at the tail of its schema node's list.
    fn append_node(
        &mut self,
        kind: NodeKind,
        name: Option<SchemaName>,
        value: Option<&[u8]>,
    ) -> StorageResult<XPtr> {
        let top = self.stack.last().expect("document node always open");
        let (sid, _added) = self.schema.get_or_add_child(top.sid, kind, name);
        let label = LabelAlloc::child(&top.label, top.last_child_label.as_ref(), None);
        let sid_idx = top.seen_child_sids.iter().position(|&s| s == sid);
        let is_first_of_sid = sid_idx.is_none();

        let handle = self.doc.append_at_tail(
            self.vas,
            self.schema,
            top.handle,
            top.last_child_handle,
            sid,
            kind,
            &label,
            value,
            is_first_of_sid,
        )?;

        let top = self.stack.last_mut().expect("document node always open");
        top.last_child_handle = handle;
        top.last_child_label = Some(label);
        let prior = match sid_idx {
            Some(i) => {
                top.child_sid_counts[i] += 1;
                top.child_sid_counts[i] - 1
            }
            None => {
                top.seen_child_sids.push(sid);
                top.child_sid_counts.push(1);
                0
            }
        };
        self.schema
            .node_mut(sid)
            .fanout_transition(prior, prior + 1);
        self.nodes_built += 1;
        Ok(handle)
    }

    /// Finishes the build, checking balance.
    pub fn finish(self) -> StorageResult<u64> {
        if self.stack.len() != 1 {
            return Err(StorageError::Corrupt(format!(
                "{} elements left open",
                self.stack.len() - 1
            )));
        }
        Ok(self.nodes_built)
    }
}

/// Loads a full parsed event stream into `doc`.
pub fn build_from_events(
    vas: &Vas,
    schema: &mut SchemaTree,
    doc: &mut DocStorage,
    events: &[XmlEvent],
) -> StorageResult<u64> {
    let mut b = DocBuilder::new(vas, schema, doc)?;
    for ev in events {
        b.event(ev)?;
    }
    b.finish()
}

/// Parses and loads an XML string into a fresh document.
pub fn load_xml(
    vas: &Vas,
    schema: &mut SchemaTree,
    mode: ParentMode,
    xml: &str,
) -> StorageResult<DocStorage> {
    let events = sedna_xml::XmlReader::new(xml)
        .collect_events()
        .map_err(|e| StorageError::Corrupt(format!("XML parse error: {e}")))?;
    let mut doc = DocStorage::create(vas, schema, mode)?;
    build_from_events(vas, schema, &mut doc, &events)?;
    Ok(doc)
}

fn qname_to_schema(q: &QName) -> SchemaName {
    SchemaName {
        uri: q.uri.clone(),
        local: q.local.clone(),
    }
}
