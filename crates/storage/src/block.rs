//! Node-block management: header access, descriptor-slot and
//! indirection-entry allocation within a page.
//!
//! Descriptor slots grow upward from [`BLOCK_HEADER_LEN`]; indirection
//! entries grow downward from the page end; allocation fails when the two
//! areas would collide. Both areas recycle freed slots through in-page
//! free lists, so descriptors never shift — "fixed size facilitates more
//! efficient management of free space in blocks" (Section 4.1).

use sedna_sas::XPtr;
use sedna_schema::SchemaNodeId;

use crate::layout::*;
use crate::util::*;

/// Initializes a zeroed page as a node block for `schema` with
/// `child_slots` child pointers per descriptor.
pub fn init_node_block(page: &mut [u8], schema: SchemaNodeId, child_slots: u16) {
    page[BH_KIND] = KIND_NODE_BLOCK;
    page[BH_FLAGS] = 0;
    put_u16(page, BH_CHILD_SLOTS, child_slots);
    put_u32(page, BH_SCHEMA_NODE, schema.0);
    put_xptr(page, BH_NEXT_BLOCK, XPtr::NULL);
    put_xptr(page, BH_PREV_BLOCK, XPtr::NULL);
    put_u16(page, BH_DESC_SIZE, desc_size(child_slots) as u16);
    put_u16(page, BH_DESC_SLOTS, 0);
    put_u16(page, BH_DESC_COUNT, 0);
    put_u16(page, BH_FIRST_DESC, NO_SLOT);
    put_u16(page, BH_LAST_DESC, NO_SLOT);
    put_u16(page, BH_FREE_HEAD, NO_SLOT);
    put_u16(page, BH_INDIR_COUNT, 0);
    put_u16(page, BH_INDIR_FREE_HEAD, NO_SLOT);
    put_u16(page, BH_INDIR_SLOTS, 0);
}

/// The schema node a block belongs to.
pub fn schema_of(page: &[u8]) -> SchemaNodeId {
    SchemaNodeId(get_u32(page, BH_SCHEMA_NODE))
}

/// The per-descriptor child-pointer count of this block.
pub fn child_slots(page: &[u8]) -> u16 {
    get_u16(page, BH_CHILD_SLOTS)
}

/// Bytes per descriptor in this block.
pub fn block_desc_size(page: &[u8]) -> u16 {
    get_u16(page, BH_DESC_SIZE)
}

/// Next block in the schema node's list.
pub fn next_block(page: &[u8]) -> XPtr {
    get_xptr(page, BH_NEXT_BLOCK)
}

/// Previous block in the schema node's list.
pub fn prev_block(page: &[u8]) -> XPtr {
    get_xptr(page, BH_PREV_BLOCK)
}

/// Live descriptors in this block.
pub fn desc_count(page: &[u8]) -> u16 {
    get_u16(page, BH_DESC_COUNT)
}

/// Live indirection entries in this block.
pub fn indir_count(page: &[u8]) -> u16 {
    get_u16(page, BH_INDIR_COUNT)
}

/// Slot index of the first descriptor in document order.
pub fn first_desc(page: &[u8]) -> u16 {
    get_u16(page, BH_FIRST_DESC)
}

/// Slot index of the last descriptor in document order.
pub fn last_desc(page: &[u8]) -> u16 {
    get_u16(page, BH_LAST_DESC)
}

/// Byte offset of descriptor slot `slot` within the page.
#[inline]
pub fn desc_offset(slot: u16, desc_size: u16) -> usize {
    BLOCK_HEADER_LEN + slot as usize * desc_size as usize
}

/// Byte offset of indirection entry `idx` within the page (entries grow
/// from the page end downward).
#[inline]
pub fn indir_offset(page_size: usize, idx: u16) -> usize {
    page_size - 8 * (idx as usize + 1)
}

/// Whether a page currently has room for one more descriptor.
pub fn has_desc_room(page: &[u8], page_size: usize) -> bool {
    if get_u16(page, BH_FREE_HEAD) != NO_SLOT {
        return true;
    }
    let slots = get_u16(page, BH_DESC_SLOTS) as usize;
    let size = get_u16(page, BH_DESC_SIZE) as usize;
    let indir_slots = get_u16(page, BH_INDIR_SLOTS) as usize;
    BLOCK_HEADER_LEN + (slots + 1) * size <= page_size - 8 * indir_slots
}

/// Allocates a descriptor slot, zeroing its bytes. Returns `None` when the
/// descriptor area would collide with the indirection area.
pub fn alloc_desc_slot(page: &mut [u8], page_size: usize) -> Option<u16> {
    let size = get_u16(page, BH_DESC_SIZE);
    let free = get_u16(page, BH_FREE_HEAD);
    let slot = if free != NO_SLOT {
        // Pop the free list (next link lives in the slot's
        // next-in-block field while free).
        let off = desc_offset(free, size);
        let next = get_u16(page, off + ND_NEXT_IN_BLOCK);
        put_u16(page, BH_FREE_HEAD, next);
        free
    } else {
        let slots = get_u16(page, BH_DESC_SLOTS);
        let indir_slots = get_u16(page, BH_INDIR_SLOTS) as usize;
        let end = BLOCK_HEADER_LEN + (slots as usize + 1) * size as usize;
        if end > page_size - 8 * indir_slots {
            return None;
        }
        put_u16(page, BH_DESC_SLOTS, slots + 1);
        slots
    };
    let off = desc_offset(slot, size);
    page[off..off + size as usize].fill(0);
    put_u16(page, BH_DESC_COUNT, get_u16(page, BH_DESC_COUNT) + 1);
    Some(slot)
}

/// Returns a descriptor slot to the block's free list.
pub fn free_desc_slot(page: &mut [u8], slot: u16) {
    let size = get_u16(page, BH_DESC_SIZE);
    let off = desc_offset(slot, size);
    // Poison the kind byte and thread the free list.
    page[off + ND_KIND] = 0xFF;
    let head = get_u16(page, BH_FREE_HEAD);
    put_u16(page, off + ND_NEXT_IN_BLOCK, head);
    put_u16(page, BH_FREE_HEAD, slot);
    put_u16(page, BH_DESC_COUNT, get_u16(page, BH_DESC_COUNT) - 1);
}

/// Whether a page has room for one more indirection entry.
pub fn has_indir_room(page: &[u8], page_size: usize) -> bool {
    if get_u16(page, BH_INDIR_FREE_HEAD) != NO_SLOT {
        return true;
    }
    let slots = get_u16(page, BH_DESC_SLOTS) as usize;
    let size = get_u16(page, BH_DESC_SIZE) as usize;
    let indir_slots = get_u16(page, BH_INDIR_SLOTS) as usize;
    BLOCK_HEADER_LEN + slots * size <= page_size - 8 * (indir_slots + 1)
}

/// Allocates an indirection entry pointing at `target`; returns the
/// entry's page offset, or `None` when the areas would collide.
pub fn alloc_indir_entry(page: &mut [u8], page_size: usize, target: XPtr) -> Option<usize> {
    let free = get_u16(page, BH_INDIR_FREE_HEAD);
    let idx = if free != NO_SLOT {
        let off = indir_offset(page_size, free);
        let raw = get_u64(page, off);
        debug_assert_eq!(raw & FREE_ENTRY_TAG, FREE_ENTRY_TAG);
        put_u16(page, BH_INDIR_FREE_HEAD, (raw & 0xFFFF) as u16);
        free
    } else {
        let slots = get_u16(page, BH_INDIR_SLOTS);
        let desc_slots = get_u16(page, BH_DESC_SLOTS) as usize;
        let size = get_u16(page, BH_DESC_SIZE) as usize;
        if BLOCK_HEADER_LEN + desc_slots * size > page_size - 8 * (slots as usize + 1) {
            return None;
        }
        put_u16(page, BH_INDIR_SLOTS, slots + 1);
        slots
    };
    let off = indir_offset(page_size, idx);
    put_xptr(page, off, target);
    put_u16(page, BH_INDIR_COUNT, get_u16(page, BH_INDIR_COUNT) + 1);
    Some(off)
}

/// Frees the indirection entry at page offset `entry_off`.
pub fn free_indir_entry(page: &mut [u8], page_size: usize, entry_off: usize) {
    let idx = ((page_size - entry_off) / 8 - 1) as u16;
    let head = get_u16(page, BH_INDIR_FREE_HEAD);
    put_u64(page, entry_off, FREE_ENTRY_TAG | head as u64);
    put_u16(page, BH_INDIR_FREE_HEAD, idx);
    put_u16(page, BH_INDIR_COUNT, get_u16(page, BH_INDIR_COUNT) - 1);
}

#[cfg(test)]
mod tests {
    use super::*;

    const PS: usize = 1024;

    fn fresh_block(child_slots: u16) -> Vec<u8> {
        let mut page = vec![0u8; PS];
        init_node_block(&mut page, SchemaNodeId(7), child_slots);
        page
    }

    #[test]
    fn header_round_trip() {
        let page = fresh_block(3);
        assert_eq!(schema_of(&page), SchemaNodeId(7));
        assert_eq!(child_slots(&page), 3);
        assert_eq!(block_desc_size(&page) as usize, desc_size(3));
        assert_eq!(desc_count(&page), 0);
        assert_eq!(first_desc(&page), NO_SLOT);
        assert!(next_block(&page).is_null());
    }

    #[test]
    fn desc_alloc_free_recycle() {
        let mut page = fresh_block(0);
        let a = alloc_desc_slot(&mut page, PS).unwrap();
        let b = alloc_desc_slot(&mut page, PS).unwrap();
        assert_ne!(a, b);
        assert_eq!(desc_count(&page), 2);
        free_desc_slot(&mut page, a);
        assert_eq!(desc_count(&page), 1);
        let c = alloc_desc_slot(&mut page, PS).unwrap();
        assert_eq!(c, a, "freed slot is reused first");
        // Reused slot is zeroed.
        let off = desc_offset(c, block_desc_size(&page));
        assert!(page[off..off + desc_size(0)].iter().all(|&b| b == 0));
    }

    #[test]
    fn desc_area_capacity_is_bounded() {
        let mut page = fresh_block(0);
        let mut n = 0;
        while alloc_desc_slot(&mut page, PS).is_some() {
            n += 1;
        }
        let expect = (PS - BLOCK_HEADER_LEN) / desc_size(0);
        assert_eq!(n, expect);
        assert!(!has_desc_room(&page, PS));
        free_desc_slot(&mut page, 3);
        assert!(has_desc_room(&page, PS));
    }

    #[test]
    fn indir_entries_grow_from_end() {
        let mut page = fresh_block(0);
        let t1 = XPtr::new(1, 64);
        let t2 = XPtr::new(1, 128);
        let o1 = alloc_indir_entry(&mut page, PS, t1).unwrap();
        let o2 = alloc_indir_entry(&mut page, PS, t2).unwrap();
        assert_eq!(o1, PS - 8);
        assert_eq!(o2, PS - 16);
        assert_eq!(get_xptr(&page, o1), t1);
        assert_eq!(get_xptr(&page, o2), t2);
        assert_eq!(indir_count(&page), 2);
        free_indir_entry(&mut page, PS, o1);
        assert_eq!(indir_count(&page), 1);
        let o3 = alloc_indir_entry(&mut page, PS, t2).unwrap();
        assert_eq!(o3, o1, "freed entry index reused");
    }

    #[test]
    fn areas_collide_gracefully() {
        let mut page = fresh_block(0);
        // Fill descriptors fully; the leftover tail still fits a few
        // indirection entries, after which both allocators must refuse.
        while alloc_desc_slot(&mut page, PS).is_some() {}
        let mut entries = 0;
        while alloc_indir_entry(&mut page, PS, XPtr::new(1, 0)).is_some() {
            entries += 1;
        }
        let leftover =
            PS - BLOCK_HEADER_LEN - (get_u16(&page, BH_DESC_SLOTS) as usize) * desc_size(0);
        assert_eq!(entries, leftover / 8);
        assert!(!has_indir_room(&page, PS));
        assert!(!has_desc_room(&page, PS));
        // Freeing an indirection entry reopens exactly one entry.
        free_indir_entry(&mut page, PS, indir_offset(PS, 0));
        assert!(has_indir_room(&page, PS));
    }

    #[test]
    fn wide_descriptors_reduce_capacity() {
        let mut narrow = fresh_block(0);
        let mut wide = fresh_block(8);
        let mut n_narrow = 0;
        while alloc_desc_slot(&mut narrow, PS).is_some() {
            n_narrow += 1;
        }
        let mut n_wide = 0;
        while alloc_desc_slot(&mut wide, PS).is_some() {
            n_wide += 1;
        }
        assert!(n_wide < n_narrow);
    }
}
