//! End-to-end query execution: parse → analyse → rewrite → execute over a
//! real schema-clustered document, checking serialized results.

use std::sync::Arc;

use sedna_sas::{Sas, SasConfig, TxnToken, Vas, View};
use sedna_schema::SchemaTree;
use sedna_storage::build::load_xml;
use sedna_storage::{DocStorage, ParentMode};
use sedna_xquery::exec::{ConstructMode, Database, DocEntry, Executor};
use sedna_xquery::{compile, update};

const LIBRARY: &str = r#"<library><book><title>Foundations of Databases</title><author>Abiteboul</author><author>Hull</author><author>Vianu</author></book><book><title>An Introduction to Database Systems</title><author>Date</author><issue><publisher>Addison-Wesley</publisher><year>2004</year></issue></book><paper><title>A Relational Model for Large Shared Data Banks</title><author>Codd</author></paper></library>"#;

struct Fixture {
    _sas: Arc<Sas>,
    vas: Vas,
    schema: SchemaTree,
    doc: DocStorage,
}

fn fixture(xml: &str) -> Fixture {
    let sas = Sas::in_memory(SasConfig {
        page_size: 4096,
        layer_size: 4096 * 1024,
        buffer_frames: 4096,
        buffer_shards: 0,
    })
    .unwrap();
    let vas = sas.session();
    vas.begin(View::LATEST, Some(TxnToken(1)));
    let mut schema = SchemaTree::new();
    let doc = load_xml(&vas, &mut schema, ParentMode::Indirect, xml).unwrap();
    Fixture {
        _sas: sas,
        vas,
        schema,
        doc,
    }
}

fn run_query(fx: &Fixture, q: &str) -> String {
    let stmt = compile(q).unwrap();
    let db = Database {
        vas: &fx.vas,
        docs: vec![DocEntry {
            name: "lib".into(),
            schema: &fx.schema,
            doc: &fx.doc,
        }],
        indexes: vec![],
    };
    let mut ex = Executor::new(&db, &stmt, ConstructMode::Embedded);
    let result = ex.run().unwrap();
    ex.serialize_sequence(&result).unwrap()
}

fn run_update(fx: &mut Fixture, q: &str) -> usize {
    let stmt = compile(q).unwrap();
    let plan = {
        let db = Database {
            vas: &fx.vas,
            docs: vec![DocEntry {
                name: "lib".into(),
                schema: &fx.schema,
                doc: &fx.doc,
            }],
            indexes: vec![],
        };
        update::plan_update(&stmt, &db).unwrap().1
    };
    update::execute_plan(&plan, &fx.vas, &mut fx.schema, &mut fx.doc)
        .unwrap()
        .affected
}

#[test]
fn simple_child_paths() {
    let fx = fixture(LIBRARY);
    assert_eq!(
        run_query(&fx, "doc('lib')/library/book/title"),
        "<title>Foundations of Databases</title><title>An Introduction to Database Systems</title>"
    );
}

#[test]
fn descendant_paths_cross_structure() {
    let fx = fixture(LIBRARY);
    // //title finds book titles and the paper title, in document order.
    let out = run_query(&fx, "doc('lib')//title");
    assert_eq!(
        out,
        "<title>Foundations of Databases</title><title>An Introduction to Database Systems</title><title>A Relational Model for Large Shared Data Banks</title>"
    );
}

#[test]
fn predicates_filter_and_position() {
    let fx = fixture(LIBRARY);
    assert_eq!(
        run_query(&fx, "doc('lib')/library/book[2]/title"),
        "<title>An Introduction to Database Systems</title>"
    );
    assert_eq!(
        run_query(&fx, "doc('lib')/library/book[issue/year = 2004]/author"),
        "<author>Date</author>"
    );
    assert_eq!(
        run_query(&fx, "doc('lib')//author[position() = last()]"),
        // last() per context node: last author of each book/paper.
        "<author>Vianu</author><author>Date</author><author>Codd</author>"
    );
}

#[test]
fn flwor_with_where_and_order() {
    let fx = fixture(LIBRARY);
    let out = run_query(
        &fx,
        "for $a in doc('lib')//author order by string($a) return string($a)",
    );
    assert_eq!(out, "Abiteboul Codd Date Hull Vianu");
    let out = run_query(
        &fx,
        "for $b in doc('lib')/library/book where count($b/author) > 1 return $b/title/text()",
    );
    assert_eq!(out, "Foundations of Databases");
}

#[test]
fn flwor_positional_variable() {
    let fx = fixture(LIBRARY);
    let out = run_query(
        &fx,
        "for $t at $i in doc('lib')//title return concat($i, ':', $t)",
    );
    assert!(out.starts_with("1:Foundations"));
    assert!(out.contains("3:A Relational Model"));
}

#[test]
fn arithmetic_and_functions() {
    let fx = fixture(LIBRARY);
    assert_eq!(run_query(&fx, "1 + 2 * 3"), "7");
    assert_eq!(run_query(&fx, "count(doc('lib')//author)"), "5");
    assert_eq!(run_query(&fx, "sum((1, 2, 3, 4))"), "10");
    assert_eq!(run_query(&fx, "avg((2, 4))"), "3");
    assert_eq!(run_query(&fx, "min((3, 1, 2))"), "1");
    assert_eq!(run_query(&fx, "max((3, 1, 2))"), "3");
    assert_eq!(run_query(&fx, "string-join(('a', 'b', 'c'), '-')"), "a-b-c");
    assert_eq!(run_query(&fx, "substring('hello world', 7)"), "world");
    assert_eq!(run_query(&fx, "substring('hello', 2, 3)"), "ell");
    assert_eq!(run_query(&fx, "normalize-space('  a   b  ')"), "a b");
    assert_eq!(run_query(&fx, "contains('database', 'tab')"), "true");
    assert_eq!(run_query(&fx, "upper-case('sedna')"), "SEDNA");
    assert_eq!(run_query(&fx, "distinct-values((1, 2, 1, 3, 2))"), "1 2 3");
    assert_eq!(run_query(&fx, "reverse((1, 2, 3))"), "3 2 1");
    assert_eq!(run_query(&fx, "subsequence((1,2,3,4,5), 2, 3)"), "2 3 4");
    assert_eq!(run_query(&fx, "index-of((10, 20, 10), 10)"), "1 3");
    assert_eq!(run_query(&fx, "string-length('hello')"), "5");
    assert_eq!(run_query(&fx, "floor(2.7)"), "2");
    assert_eq!(run_query(&fx, "ceiling(2.1)"), "3");
    assert_eq!(run_query(&fx, "abs(-4)"), "4");
    assert_eq!(run_query(&fx, "10 idiv 3"), "3");
    assert_eq!(run_query(&fx, "10 mod 3"), "1");
}

#[test]
fn quantified_expressions() {
    let fx = fixture(LIBRARY);
    assert_eq!(
        run_query(
            &fx,
            "some $a in doc('lib')//author satisfies string($a) = 'Codd'"
        ),
        "true"
    );
    assert_eq!(
        run_query(
            &fx,
            "every $a in doc('lib')//author satisfies string-length(string($a)) > 3"
        ),
        "true"
    );
    assert_eq!(
        run_query(
            &fx,
            "every $a in doc('lib')//author satisfies starts-with(string($a), 'A')"
        ),
        "false"
    );
}

#[test]
fn if_then_else_and_logic() {
    let fx = fixture(LIBRARY);
    assert_eq!(
        run_query(
            &fx,
            "if (count(doc('lib')//book) = 2) then 'two' else 'other'"
        ),
        "two"
    );
    assert_eq!(run_query(&fx, "true() and not(false())"), "true");
    assert_eq!(run_query(&fx, "false() or false()"), "false");
}

#[test]
fn axes_parent_ancestor_siblings() {
    let fx = fixture(LIBRARY);
    assert_eq!(
        run_query(&fx, "doc('lib')//year/../publisher"),
        "<publisher>Addison-Wesley</publisher>"
    );
    assert_eq!(
        run_query(&fx, "count(doc('lib')//year/ancestor::*)"),
        "3" // issue, book, library
    );
    assert_eq!(
        run_query(
            &fx,
            "string(doc('lib')/library/book[1]/author[1]/following-sibling::author[1])"
        ),
        "Hull"
    );
    assert_eq!(
        run_query(
            &fx,
            "string(doc('lib')/library/book[1]/author[2]/preceding-sibling::*[1])"
        ),
        "Abiteboul"
    );
    assert_eq!(run_query(&fx, "count(doc('lib')//title/self::title)"), "3");
}

#[test]
fn attributes_and_wildcards() {
    let fx = fixture(r#"<r><item id="a1" n="1">x</item><item id="a2" n="2">y</item></r>"#);
    assert_eq!(run_query(&fx, "string(doc('lib')/r/item[1]/@id)"), "a1");
    assert_eq!(run_query(&fx, "count(doc('lib')//@*)"), "4");
    assert_eq!(run_query(&fx, "string(doc('lib')/r/item[@n = 2])"), "y");
    assert_eq!(run_query(&fx, "count(doc('lib')/r/*)"), "2");
}

#[test]
fn set_operations() {
    let fx = fixture(LIBRARY);
    assert_eq!(
        run_query(
            &fx,
            "count(doc('lib')//book/title union doc('lib')//paper/title)"
        ),
        "3"
    );
    assert_eq!(
        run_query(
            &fx,
            "count(doc('lib')//title intersect doc('lib')//book/title)"
        ),
        "2"
    );
    assert_eq!(
        run_query(
            &fx,
            "count(doc('lib')//title except doc('lib')//book/title)"
        ),
        "1"
    );
}

#[test]
fn constructors_build_new_nodes() {
    let fx = fixture(LIBRARY);
    let out = run_query(
        &fx,
        r#"<summary count="{count(doc('lib')//book)}">{doc('lib')//paper/title}</summary>"#,
    );
    assert_eq!(
        out,
        r#"<summary count="2"><title>A Relational Model for Large Shared Data Banks</title></summary>"#
    );
    let out = run_query(&fx, "<a><b>{1 + 1}</b></a>");
    assert_eq!(out, "<a><b>2</b></a>");
}

#[test]
fn text_constructor_and_atoms_in_content() {
    let fx = fixture(LIBRARY);
    assert_eq!(run_query(&fx, "text { 'plain' }"), "plain");
    assert_eq!(run_query(&fx, "<x>{(1, 2, 3)}</x>"), "<x>1 2 3</x>");
}

#[test]
fn user_functions_and_variables() {
    let fx = fixture(LIBRARY);
    let out = run_query(
        &fx,
        "declare variable $inc := 10; declare function local:add($x) { $x + $inc }; local:add(5)",
    );
    assert_eq!(out, "15");
    // Recursion.
    let out = run_query(
        &fx,
        "declare function local:fact($n) { if ($n le 1) then 1 else $n * local:fact($n - 1) }; local:fact(6)",
    );
    assert_eq!(out, "720");
}

#[test]
fn general_vs_value_comparison() {
    let fx = fixture(LIBRARY);
    // General comparison is existential over sequences.
    assert_eq!(run_query(&fx, "doc('lib')//author = 'Codd'"), "true");
    assert_eq!(run_query(&fx, "(1, 2, 3) = 3"), "true");
    assert_eq!(run_query(&fx, "(1, 2, 3) = 9"), "false");
    // Value comparison requires singletons.
    assert_eq!(run_query(&fx, "2 eq 2"), "true");
}

#[test]
fn range_and_nested_flwor() {
    let fx = fixture(LIBRARY);
    assert_eq!(run_query(&fx, "count(1 to 100)"), "100");
    assert_eq!(
        run_query(&fx, "for $i in 1 to 3 for $j in 1 to 2 return $i * 10 + $j"),
        "11 12 21 22 31 32"
    );
}

#[test]
fn filter_expressions() {
    let fx = fixture(LIBRARY);
    assert_eq!(run_query(&fx, "(10, 20, 30)[2]"), "20");
    assert_eq!(run_query(&fx, "(1, 2, 3, 4)[. > 2]"), "3 4");
}

#[test]
fn update_insert_into() {
    let mut fx = fixture(LIBRARY);
    let n = run_update(
        &mut fx,
        "UPDATE insert <author>Newcomer</author> into doc('lib')/library/paper",
    );
    assert_eq!(n, 1);
    assert_eq!(
        run_query(&fx, "string(doc('lib')//paper/author[2])"),
        "Newcomer"
    );
}

#[test]
fn update_insert_following_preceding() {
    let mut fx = fixture(LIBRARY);
    run_update(
        &mut fx,
        "UPDATE insert <author>Middle</author> following doc('lib')/library/book[1]/author[1]",
    );
    let out = run_query(&fx, "doc('lib')/library/book[1]/author");
    assert_eq!(
        out,
        "<author>Abiteboul</author><author>Middle</author><author>Hull</author><author>Vianu</author>"
    );
    run_update(
        &mut fx,
        "UPDATE insert <author>First</author> preceding doc('lib')/library/book[1]/author[1]",
    );
    assert_eq!(
        run_query(&fx, "string(doc('lib')/library/book[1]/author[1])"),
        "First"
    );
}

#[test]
fn update_delete() {
    let mut fx = fixture(LIBRARY);
    let n = run_update(&mut fx, "UPDATE delete doc('lib')//book[2]");
    assert_eq!(n, 1);
    assert_eq!(run_query(&fx, "count(doc('lib')//book)"), "1");
    assert_eq!(run_query(&fx, "count(doc('lib')//paper)"), "1");
}

#[test]
fn update_replace_value() {
    let mut fx = fixture(LIBRARY);
    run_update(
        &mut fx,
        "UPDATE replace value of doc('lib')//issue/year with '2005'",
    );
    assert_eq!(run_query(&fx, "string(doc('lib')//issue/year)"), "2005");
}

#[test]
fn update_inserts_subtrees() {
    let mut fx = fixture(LIBRARY);
    run_update(
        &mut fx,
        "UPDATE insert <review score=\"5\"><by>Reader</by><text>Great</text></review> into doc('lib')/library/book[1]",
    );
    assert_eq!(
        run_query(&fx, "doc('lib')//review"),
        r#"<review score="5"><by>Reader</by><text>Great</text></review>"#
    );
    assert_eq!(run_query(&fx, "string(doc('lib')//review/@score)"), "5");
}

#[test]
fn construct_modes_produce_identical_output() {
    let fx = fixture(LIBRARY);
    let q = "<wrap>{doc('lib')//paper}</wrap>";
    let stmt = compile(q).unwrap();
    let db = Database {
        vas: &fx.vas,
        docs: vec![DocEntry {
            name: "lib".into(),
            schema: &fx.schema,
            doc: &fx.doc,
        }],
        indexes: vec![],
    };
    let mut outs = Vec::new();
    let mut copies = Vec::new();
    for mode in [
        ConstructMode::DeepCopy,
        ConstructMode::Embedded,
        ConstructMode::Virtual,
    ] {
        let mut ex = Executor::new(&db, &stmt, mode);
        let r = ex.run().unwrap();
        outs.push(ex.serialize_sequence(&r).unwrap());
        copies.push(ex.stats.ctor_copies);
    }
    assert_eq!(outs[0], outs[1]);
    assert_eq!(outs[1], outs[2]);
    // Virtual never copies; deep copy copies the whole paper subtree.
    assert_eq!(copies[2], 0, "virtual mode must not copy");
    assert!(copies[0] > 0, "deep-copy mode must copy");
}

#[test]
fn structural_path_matches_naive_path() {
    let fx = fixture(LIBRARY);
    // Compiled (structural) vs suppressed-rewrites execution must agree.
    let q = "doc('lib')/library/book/author";
    let stmt_opt = compile(q).unwrap();
    let stmt_raw = {
        let s = sedna_xquery::parser::parse_statement(q).unwrap();
        let s = sedna_xquery::static_ctx::analyze(s).unwrap();
        let (s, _) = sedna_xquery::rewrite::rewrite_with(
            s,
            sedna_xquery::rewrite::RewriteOptions {
                remove_ddo: false,
                combine_descendant: false,
                lazy_invariants: false,
                structural_paths: false,
                inline_functions: false,
            },
        );
        s
    };
    let db = Database {
        vas: &fx.vas,
        docs: vec![DocEntry {
            name: "lib".into(),
            schema: &fx.schema,
            doc: &fx.doc,
        }],
        indexes: vec![],
    };
    let mut ex1 = Executor::new(&db, &stmt_opt, ConstructMode::Embedded);
    let r1 = ex1.run().unwrap();
    let out1 = ex1.serialize_sequence(&r1).unwrap();
    let mut ex2 = Executor::new(&db, &stmt_raw, ConstructMode::Embedded);
    let r2 = ex2.run().unwrap();
    let out2 = ex2.serialize_sequence(&r2).unwrap();
    assert_eq!(out1, out2);
    // And the structural variant touched far fewer nodes.
    assert!(
        ex1.stats.nodes_scanned <= ex2.stats.nodes_scanned,
        "structural {} vs naive {}",
        ex1.stats.nodes_scanned,
        ex2.stats.nodes_scanned
    );
}

#[test]
fn dynamic_errors_reported() {
    let fx = fixture(LIBRARY);
    let stmt = compile("doc('missing')/a").unwrap();
    let db = Database {
        vas: &fx.vas,
        docs: vec![DocEntry {
            name: "lib".into(),
            schema: &fx.schema,
            doc: &fx.doc,
        }],
        indexes: vec![],
    };
    let mut ex = Executor::new(&db, &stmt, ConstructMode::Embedded);
    assert!(ex.run().is_err());
}
