//! Parser robustness: arbitrary input must never panic the pipeline —
//! it either compiles or reports a structured error. Mutated valid
//! queries exercise the error paths deeper than pure noise.

use proptest::prelude::*;
use sedna_xquery::{compile, parser, QueryError};

const SEEDS: [&str; 12] = [
    "doc('lib')/library/book[price > 10]/title",
    "for $b at $i in doc('l')//book where $i > 1 order by $b/t return <r>{$b}</r>",
    "declare variable $x := 3; declare function local:f($a) { $a + $x }; local:f(4)",
    "some $x in (1,2,3) satisfies $x mod 2 = 0",
    "if (count(//a) > 2) then 'big' else 'small'",
    "UPDATE insert <a b=\"{1+1}\">t</a> into doc('d')//target",
    "UPDATE delete doc('d')//old[position() = last()]",
    "UPDATE replace value of doc('d')//x with concat('a', 'b')",
    "CREATE INDEX 'i' ON doc('d')/a/b BY c/text() AS xs:string",
    "(1, 2, 3)[. > 1] union //x intersect //y",
    "text { normalize-space('  a  b ') }",
    "//a/../following-sibling::b[2]/@id",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Pure noise never panics.
    #[test]
    fn prop_random_input_never_panics(input in "\\PC{0,80}") {
        let _ = compile(&input);
    }

    /// Byte-mutated valid queries never panic and keep errors structured.
    #[test]
    fn prop_mutated_queries_never_panic(
        seed in 0usize..SEEDS.len(),
        cut in any::<usize>(),
        insert_at in any::<usize>(),
        junk in "[\\x20-\\x7e]{0,6}",
    ) {
        let base = SEEDS[seed];
        // Truncate at a char boundary.
        let mut cut_pos = cut % (base.len() + 1);
        while !base.is_char_boundary(cut_pos) {
            cut_pos -= 1;
        }
        let mut mutated = base[..cut_pos].to_string();
        let mut ins = insert_at % (mutated.len() + 1);
        while !mutated.is_char_boundary(ins) {
            ins -= 1;
        }
        mutated.insert_str(ins, &junk);
        match compile(&mutated) {
            Ok(_) => {}
            Err(QueryError::Parse { .. } | QueryError::Static(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other:?}"),
        }
    }

    /// Valid seeds always compile.
    #[test]
    fn prop_seeds_compile(seed in 0usize..SEEDS.len()) {
        compile(SEEDS[seed]).unwrap();
    }

    /// The parser's positions are within bounds.
    #[test]
    fn prop_error_positions_in_bounds(input in "[a-z(){}\\[\\]<>/@$'\" .:=+*-]{0,60}") {
        if let Err(QueryError::Parse { pos, .. }) = parser::parse_statement(&input) {
            prop_assert!(pos <= input.len());
        }
    }
}

#[test]
fn deeply_nested_input_errors_gracefully() {
    // Reasonable nesting parses; pathological nesting is rejected with a
    // structured error instead of exhausting the stack.
    let ok = format!("{}1{}", "(".repeat(30), ")".repeat(30));
    compile(&ok).unwrap();
    let too_deep = format!("{}1{}", "(".repeat(500), ")".repeat(500));
    assert!(matches!(
        compile(&too_deep),
        Err(QueryError::Parse { msg, .. }) if msg.contains("too deep")
    ));
    let unbalanced = "(".repeat(5000);
    assert!(compile(&unbalanced).is_err());
    let ctors_ok = format!("{}x{}", "<a>".repeat(30), "</a>".repeat(30));
    compile(&ctors_ok).unwrap();
    let ctors_deep = format!("{}x{}", "<a>".repeat(500), "</a>".repeat(500));
    assert!(compile(&ctors_deep).is_err());
}
