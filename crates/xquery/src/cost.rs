//! The planner's cost model, fed by the descriptive-schema statistics.
//!
//! Sedna's descriptive schema (§4.1) is small enough to keep entirely in
//! main memory, and after this PR each [`sedna_schema::SchemaNode`]
//! carries incrementally maintained statistics: descriptor count, block
//! count, total text length and a child fan-out histogram. That makes
//! per-path-step cardinality estimation *exact* for predicate-free
//! descending paths — the schema nodes a path matches are computed by
//! [`sedna_schema::path::eval_structural_path`] and their counters are
//! simply summed — and cheap: estimation never touches a data page.
//!
//! Costs are unitless "work units" normalized so that visiting one node
//! descriptor in an already-resident block costs [`NODE_VISIT`]. The
//! constants are deliberately coarse (they only need to rank access
//! paths, not predict wall time) and are documented in
//! `docs/planner.md` together with the decision table they induce.

use sedna_schema::{PathStep, SchemaAxis, SchemaTest, SchemaTree};

use crate::ast::{Axis, CmpOp, Expr, NodeTest, Step};
use crate::value::Atom;

/// Cost of touching one data block of a block list (dominated by the
/// buffer-pool lookup and, in the cold case, the read).
pub const BLOCK_READ: f64 = 8.0;
/// Cost of visiting one node descriptor inside a resident block.
pub const NODE_VISIT: f64 = 1.0;
/// Cost of one B-tree probe level (key comparisons + page hop).
pub const BTREE_LEVEL: f64 = 32.0;
/// Cost of dereferencing one index match (indirection-table hop plus the
/// descriptor visit).
pub const INDEX_DEREF: f64 = 4.0;
/// Multiplier applied to index access when the client wants a streaming
/// cursor: index output is in key order, so a distinct-document-order
/// sort must buffer it, forfeiting the pipeline.
pub const STREAMING_INDEX_PENALTY: f64 = 1.5;

/// Estimated selectivity of an equality predicate (`[k = 'x']`).
pub const SEL_EQ: f64 = 0.05;
/// Estimated selectivity of a non-equality comparison (`[k < 10]`).
pub const SEL_CMP: f64 = 0.3;
/// Estimated selectivity of an existence test or any opaque predicate.
pub const SEL_OTHER: f64 = 0.5;

/// Aggregate statistics of the schema nodes a structural path matches.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PathStats {
    /// Schema nodes matched by the path.
    pub sids: usize,
    /// Total node descriptors in their block lists (exact).
    pub nodes: u64,
    /// Total data blocks in their block lists (exact).
    pub blocks: u64,
}

/// Maps an AST step onto its schema-level counterpart, or `None` when
/// the axis is not a descending one (the descriptive schema can only
/// answer descending paths). Predicates are ignored here: the caller
/// estimates the bare path and applies selectivities on top.
pub fn schema_step(step: &Step) -> Option<PathStep> {
    let axis = match step.axis {
        Axis::Child => SchemaAxis::Child,
        Axis::Descendant => SchemaAxis::Descendant,
        Axis::DescendantOrSelf => SchemaAxis::DescendantOrSelf,
        Axis::Attribute => SchemaAxis::Attribute,
        _ => return None,
    };
    let test = match &step.test {
        NodeTest::Name(n) => SchemaTest::Name(n.clone()),
        NodeTest::Wildcard => SchemaTest::AnyName,
        NodeTest::Text => SchemaTest::Text,
        NodeTest::Comment => SchemaTest::Comment,
        NodeTest::Pi(_) => SchemaTest::Pi,
        NodeTest::AnyKind => SchemaTest::AnyKind,
    };
    Some(PathStep { axis, test })
}

/// Resolves a descending path against the schema and sums the matched
/// nodes' statistics. `None` when any step uses a non-descending axis.
pub fn path_stats(tree: &SchemaTree, steps: &[Step]) -> Option<PathStats> {
    let schema_steps: Option<Vec<PathStep>> = steps.iter().map(schema_step).collect();
    let sids = sedna_schema::path::eval_structural_path(tree, &schema_steps?);
    let mut out = PathStats {
        sids: sids.len(),
        ..PathStats::default()
    };
    for sid in sids {
        let n = tree.node(sid);
        out.nodes += n.node_count;
        out.blocks += n.block_count as u64;
    }
    Some(out)
}

/// Estimated selectivity of one predicate expression: the fraction of
/// candidate nodes expected to survive it. Equality is the sharpest
/// filter, ordered comparisons pass more, and anything opaque (existence
/// tests, nested paths, function calls) gets the conservative half.
pub fn predicate_selectivity(p: &Expr) -> f64 {
    match p {
        // A bare numeric literal is a positional test: one per parent.
        Expr::Literal(Atom::Number(_)) => SEL_EQ,
        Expr::GeneralCmp(op, ..) | Expr::ValueCmp(op, ..) => match op {
            CmpOp::Eq => SEL_EQ,
            _ => SEL_CMP,
        },
        _ => SEL_OTHER,
    }
}

/// Estimated result cardinality of a descending path *with* its step
/// predicates: the exact bare-path count scaled by each predicate's
/// selectivity, floored at 1 when the bare path is non-empty.
pub fn estimate_path_cardinality(tree: &SchemaTree, steps: &[Step]) -> Option<u64> {
    let bare = path_stats(tree, steps)?;
    let mut est = bare.nodes as f64;
    for step in steps {
        for p in &step.predicates {
            est *= predicate_selectivity(p);
        }
    }
    Some(if bare.nodes == 0 {
        0
    } else {
        (est.round() as u64).max(1)
    })
}

/// Cost of answering a path by scanning its schema nodes' block lists
/// (the §5.1.4 structural scan): every block is touched once and every
/// descriptor visited once. Exact, not an estimate — both counts come
/// straight from the maintained statistics.
pub fn scan_cost(stats: &PathStats) -> f64 {
    stats.blocks as f64 * BLOCK_READ + stats.nodes as f64 * NODE_VISIT
}

/// Estimated matches of an equality probe into an index with `entries`
/// keys: the classic distinct-values-unknown heuristic `sqrt(entries)`,
/// clamped to at least one so the deref term never vanishes.
pub fn index_match_estimate(entries: u64) -> u64 {
    ((entries as f64).sqrt().round() as u64).clamp(1, entries.max(1))
}

/// Cost of answering an equality predicate through a B-tree index with
/// `entries` keys: a probe of `log2(entries)` levels plus one
/// indirection dereference per estimated match. Streaming clients pay
/// [`STREAMING_INDEX_PENALTY`] because key-ordered output must be
/// re-sorted into document order, which buffers the pipeline.
pub fn index_cost(entries: u64, streaming: bool) -> f64 {
    let probe = ((entries + 2) as f64).log2() * BTREE_LEVEL;
    let deref = index_match_estimate(entries) as f64 * INDEX_DEREF;
    let cost = probe + deref;
    if streaming {
        cost * STREAMING_INDEX_PENALTY
    } else {
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedna_schema::{NodeKind, SchemaName};

    fn tree_with_counts(hot: u64, cold: u64) -> SchemaTree {
        let mut t = SchemaTree::new();
        let root = t
            .get_or_add_child(
                SchemaTree::ROOT,
                NodeKind::Element,
                Some(SchemaName::local("r")),
            )
            .0;
        let h = t
            .get_or_add_child(root, NodeKind::Element, Some(SchemaName::local("hot")))
            .0;
        let c = t
            .get_or_add_child(root, NodeKind::Element, Some(SchemaName::local("cold")))
            .0;
        t.node_mut(root).node_count = 1;
        t.node_mut(root).block_count = 1;
        t.node_mut(h).node_count = hot;
        t.node_mut(h).block_count = (hot / 100).max(1) as u32;
        t.node_mut(c).node_count = cold;
        t.node_mut(c).block_count = (cold / 100).max(1) as u32;
        t
    }

    fn child(name: &str) -> Step {
        Step::plain(Axis::Child, NodeTest::Name(SchemaName::local(name)))
    }

    #[test]
    fn path_stats_sum_exact_counters() {
        let t = tree_with_counts(3, 10_000);
        let s = path_stats(&t, &[child("r"), child("cold")]).unwrap();
        assert_eq!(s.sids, 1);
        assert_eq!(s.nodes, 10_000);
        assert_eq!(s.blocks, 100);
        let s = path_stats(&t, &[child("r"), child("hot")]).unwrap();
        assert_eq!(s.nodes, 3);
    }

    #[test]
    fn non_descending_axes_are_not_estimable() {
        let t = tree_with_counts(1, 1);
        let parent = Step::plain(Axis::Parent, NodeTest::AnyKind);
        assert_eq!(path_stats(&t, &[child("r"), parent]), None);
    }

    #[test]
    fn predicates_scale_the_estimate() {
        let t = tree_with_counts(3, 10_000);
        let mut step = child("cold");
        step.predicates.push(Expr::GeneralCmp(
            CmpOp::Eq,
            Expr::ContextItem.boxed(),
            Expr::Literal(Atom::String("x".into())).boxed(),
        ));
        let est = estimate_path_cardinality(&t, &[child("r"), step]).unwrap();
        assert_eq!(est, (10_000.0 * SEL_EQ).round() as u64);
        // Empty bare path stays zero even with predicates.
        let est = estimate_path_cardinality(&t, &[child("nope")]).unwrap();
        assert_eq!(est, 0);
    }

    #[test]
    fn index_beats_scan_on_the_cold_path_only() {
        let t = tree_with_counts(3, 10_000);
        let cold = path_stats(&t, &[child("r"), child("cold")]).unwrap();
        let hot = path_stats(&t, &[child("r"), child("hot")]).unwrap();
        assert!(
            index_cost(cold.nodes, false) < scan_cost(&cold),
            "10k-node path must favor the index"
        );
        assert!(
            index_cost(hot.nodes, false) > scan_cost(&hot),
            "3-node path must favor the scan"
        );
    }

    #[test]
    fn streaming_penalizes_index_access() {
        assert!(index_cost(1_000, true) > index_cost(1_000, false));
    }

    #[test]
    fn selectivities_rank_sensibly() {
        let eq = Expr::ValueCmp(
            CmpOp::Eq,
            Expr::ContextItem.boxed(),
            Expr::Literal(Atom::Number(1.0)).boxed(),
        );
        let lt = Expr::ValueCmp(
            CmpOp::Lt,
            Expr::ContextItem.boxed(),
            Expr::Literal(Atom::Number(1.0)).boxed(),
        );
        let exists = Expr::Path {
            start: crate::ast::PathStart::Context,
            steps: vec![child("k")],
        };
        assert!(predicate_selectivity(&eq) < predicate_selectivity(&lt));
        assert!(predicate_selectivity(&lt) < predicate_selectivity(&exists));
    }
}
