//! The executor (§5.2): evaluates the rewritten operation tree over the
//! schema-clustered storage.
//!
//! Intermediate results are **direct node pointers** ([`NodeRef`]);
//! constructed nodes live in the query's [`TempArena`] with the three
//! §5.2.1 construction strategies selectable via [`ConstructMode`]:
//! the deep-copy baseline, **embedded** constructors (a nested
//! constructor's result is adopted by its parent instead of re-copied),
//! and **virtual** constructors (stored content is referenced by pointer,
//! no copy at all — legal when downstream operations do not traverse the
//! constructed subtree, as the paper specifies).
//!
//! Structural paths run over the descriptive schema and then scan exactly
//! the matched schema nodes' block lists (§5.1.4); explicit [`Expr::Ddo`]
//! operations materialize, sort by `(document, label)` and deduplicate —
//! the cost the §5.1.1 rewrite removes when provably unnecessary.

use sedna_index::{BTreeIndex, IndexKey};
use sedna_sas::Vas;
use sedna_schema::{NodeKind, SchemaName, SchemaNodeId, SchemaTree};
use sedna_storage::{block, indirection, DocStorage, NodeRef};

use crate::ast::*;
use crate::error::{QueryError, QueryResult};
use crate::value::*;

/// Constructor strategy (§5.2.1).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ConstructMode {
    /// Always deep-copy content — the baseline whose "overhead grows
    /// significantly for a query consisting of a number of nested element
    /// constructors".
    DeepCopy,
    /// Embedded constructors: nested constructed nodes are adopted by
    /// their parent constructor without re-copying. Stored content is
    /// still copied (general-purpose safe mode; the default).
    Embedded,
    /// Virtual constructors: stored content is referenced by pointer.
    Virtual,
}

/// One queryable document.
pub struct DocEntry<'a> {
    /// The document's catalog name (`doc('name')`).
    pub name: String,
    /// Its descriptive schema.
    pub schema: &'a SchemaTree,
    /// Its storage.
    pub doc: &'a DocStorage,
}

/// One queryable value index.
pub struct IndexEntry<'a> {
    /// Index name.
    pub name: String,
    /// Document the index covers (index into [`Database::docs`]).
    pub doc: usize,
    /// The B+-tree.
    pub index: &'a BTreeIndex,
}

/// The read view a query executes against.
pub struct Database<'a> {
    /// The session's address space.
    pub vas: &'a Vas,
    /// Documents by position; `doc('name')` resolves against this list.
    pub docs: Vec<DocEntry<'a>>,
    /// Value indexes.
    pub indexes: Vec<IndexEntry<'a>>,
}

impl<'a> Database<'a> {
    /// Finds a document by name.
    pub fn doc_idx(&self, name: &str) -> Option<usize> {
        self.docs.iter().position(|d| d.name == name)
    }
}

/// Execution counters for the E5–E9 experiments.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ExecStats {
    /// Nodes produced by axis evaluation (data actually touched).
    pub nodes_scanned: u64,
    /// DDO materialization points executed.
    pub ddo_sorts: u64,
    /// Items passing through DDO sorts.
    pub ddo_items: u64,
    /// Nodes deep-copied by constructors.
    pub ctor_copies: u64,
    /// Index lookups performed.
    pub index_lookups: u64,
    /// Lazy-cache hits (§5.1.3).
    pub cache_hits: u64,
}

impl ExecStats {
    /// Adds another run's counters into this one (used for per-session
    /// accumulated totals).
    pub fn merge(&mut self, other: &ExecStats) {
        self.nodes_scanned += other.nodes_scanned;
        self.ddo_sorts += other.ddo_sorts;
        self.ddo_items += other.ddo_items;
        self.ctor_copies += other.ctor_copies;
        self.index_lookups += other.index_lookups;
        self.cache_hits += other.cache_hits;
    }
}

/// The executor's owned runtime state, detached from the borrowed view.
///
/// A suspended cursor (see [`crate::cursor`]) carries this across pulls:
/// the borrowed [`Database`] view is rebuilt per pull from owned catalog
/// data, while slots, lazy caches, the constructed-node arena, the
/// context stack and the counters survive in here. Obtain one with
/// [`Executor::into_state`]; resume with [`Executor::with_state`].
#[derive(Debug, Default)]
pub struct ExecState {
    slots: Vec<Option<Sequence>>,
    caches: Vec<Option<Sequence>>,
    /// Arena of constructed nodes; owned, so `NodeId::Temp` items stay
    /// valid across suspension.
    pub arena: TempArena,
    ctx: Vec<(Item, usize, usize)>,
    /// Counters accumulated so far.
    pub stats: ExecStats,
    call_depth: usize,
}

/// The executor: one per statement execution.
pub struct Executor<'a> {
    pub(crate) db: &'a Database<'a>,
    pub(crate) stmt: &'a Statement,
    pub(crate) slots: Vec<Option<Sequence>>,
    caches: Vec<Option<Sequence>>,
    /// Arena of constructed nodes; public so callers can serialize
    /// results after execution.
    pub arena: TempArena,
    mode: ConstructMode,
    /// (context item, position, size) stack.
    pub(crate) ctx: Vec<(Item, usize, usize)>,
    /// Counters.
    pub stats: ExecStats,
    call_depth: usize,
}

const MAX_CALL_DEPTH: usize = 256;

impl<'a> Executor<'a> {
    /// Creates an executor for `stmt` over `db`.
    pub fn new(db: &'a Database<'a>, stmt: &'a Statement, mode: ConstructMode) -> Executor<'a> {
        Self::with_state(db, stmt, mode, ExecState::default())
    }

    /// Re-creates an executor around a previously suspended [`ExecState`]
    /// (sized to `stmt` on first use, preserved afterwards).
    pub fn with_state(
        db: &'a Database<'a>,
        stmt: &'a Statement,
        mode: ConstructMode,
        mut state: ExecState,
    ) -> Executor<'a> {
        state.slots.resize(stmt.slot_count, None);
        state.caches.resize(stmt.cache_count, None);
        Executor {
            db,
            stmt,
            slots: state.slots,
            caches: state.caches,
            arena: state.arena,
            mode,
            ctx: state.ctx,
            stats: state.stats,
            call_depth: state.call_depth,
        }
    }

    /// Suspends this executor, releasing the borrow of the view while
    /// keeping every piece of owned runtime state.
    pub fn into_state(self) -> ExecState {
        ExecState {
            slots: self.slots,
            caches: self.caches,
            arena: self.arena,
            ctx: self.ctx,
            stats: self.stats,
            call_depth: self.call_depth,
        }
    }

    /// Binds prolog globals whose slots are still unbound. Idempotent;
    /// called once per entry point (and per cursor open).
    pub fn bind_globals(&mut self) -> QueryResult<()> {
        for decl in &self.stmt.vars {
            if self.slots[decl.slot].is_none() {
                let v = self.eval(&decl.init)?;
                self.slots[decl.slot] = Some(v);
            }
        }
        Ok(())
    }

    /// Evaluates the statement body (must be a query).
    pub fn run(&mut self) -> QueryResult<Sequence> {
        self.bind_globals()?;
        match &self.stmt.kind {
            StatementKind::Query(e) => self.eval(e),
            _ => Err(QueryError::Dynamic(
                "Executor::run only evaluates queries".into(),
            )),
        }
    }

    /// Evaluates an arbitrary expression (used by the update executor for
    /// targets and content).
    pub fn eval_entry(&mut self, e: &Expr) -> QueryResult<Sequence> {
        self.bind_globals()?;
        self.eval(e)
    }

    // ==============================================================
    // Core evaluation
    // ==============================================================

    pub(crate) fn eval(&mut self, e: &Expr) -> QueryResult<Sequence> {
        match e {
            Expr::Literal(a) => Ok(vec![Item::Atom(a.clone())]),
            Expr::Empty => Ok(vec![]),
            Expr::Sequence(items) => {
                let mut out = Vec::new();
                for i in items {
                    out.extend(self.eval(i)?);
                }
                Ok(out)
            }
            Expr::VarRef { name, slot } => self.slots[*slot]
                .clone()
                .ok_or_else(|| QueryError::Dynamic(format!("unbound variable ${name}"))),
            Expr::ContextItem => match self.ctx.last() {
                Some((item, _, _)) => Ok(vec![item.clone()]),
                None => Err(QueryError::Dynamic("no context item".into())),
            },
            Expr::Cached { expr, cache_slot } => {
                if let Some(v) = &self.caches[*cache_slot] {
                    self.stats.cache_hits += 1;
                    return Ok(v.clone());
                }
                let v = self.eval(expr)?;
                self.caches[*cache_slot] = Some(v.clone());
                Ok(v)
            }
            Expr::If { cond, then, els } => {
                let c = self.eval(cond)?;
                if self.ebv(&c)? {
                    self.eval(then)
                } else {
                    self.eval(els)
                }
            }
            Expr::Or(a, b) => {
                let va = self.eval(a)?;
                if self.ebv(&va)? {
                    return Ok(vec![Item::boolean(true)]);
                }
                let vb = self.eval(b)?;
                Ok(vec![Item::boolean(self.ebv(&vb)?)])
            }
            Expr::And(a, b) => {
                let va = self.eval(a)?;
                if !self.ebv(&va)? {
                    return Ok(vec![Item::boolean(false)]);
                }
                let vb = self.eval(b)?;
                Ok(vec![Item::boolean(self.ebv(&vb)?)])
            }
            Expr::Neg(a) => {
                let v = self.eval(a)?;
                let n = self.atomize_number(&v)?;
                Ok(vec![Item::number(-n)])
            }
            Expr::Arith(op, a, b) => {
                let va = self.eval(a)?;
                let vb = self.eval(b)?;
                if va.is_empty() || vb.is_empty() {
                    return Ok(vec![]);
                }
                let x = self.atomize_number(&va)?;
                let y = self.atomize_number(&vb)?;
                let r = match op {
                    ArithOp::Add => x + y,
                    ArithOp::Sub => x - y,
                    ArithOp::Mul => x * y,
                    ArithOp::Div => x / y,
                    ArithOp::IDiv => {
                        if y == 0.0 {
                            return Err(QueryError::Dynamic("integer division by zero".into()));
                        }
                        (x / y).trunc()
                    }
                    ArithOp::Mod => x % y,
                };
                Ok(vec![Item::number(r)])
            }
            Expr::Range(a, b) => {
                let va = self.eval(a)?;
                let vb = self.eval(b)?;
                if va.is_empty() || vb.is_empty() {
                    return Ok(vec![]);
                }
                let lo = self.atomize_number(&va)? as i64;
                let hi = self.atomize_number(&vb)? as i64;
                Ok((lo..=hi).map(|n| Item::number(n as f64)).collect())
            }
            Expr::ValueCmp(op, a, b) => {
                let va = self.eval(a)?;
                let vb = self.eval(b)?;
                if va.is_empty() || vb.is_empty() {
                    return Ok(vec![]);
                }
                if va.len() > 1 || vb.len() > 1 {
                    return Err(QueryError::Dynamic(
                        "value comparison over a multi-item sequence".into(),
                    ));
                }
                let x = self.atomize_item(&va[0])?;
                let y = self.atomize_item(&vb[0])?;
                Ok(vec![Item::boolean(cmp_atoms(*op, &x, &y))])
            }
            Expr::GeneralCmp(op, a, b) => {
                let va = self.eval(a)?;
                let vb = self.eval(b)?;
                for ia in &va {
                    let x = self.atomize_item(ia)?;
                    for ib in &vb {
                        let y = self.atomize_item(ib)?;
                        if cmp_atoms(*op, &x, &y) {
                            return Ok(vec![Item::boolean(true)]);
                        }
                    }
                }
                Ok(vec![Item::boolean(false)])
            }
            Expr::Quantified {
                some,
                slot,
                within,
                satisfies,
                ..
            } => {
                let seq = self.eval(within)?;
                let saved = self.slots[*slot].take();
                let mut result = !*some;
                for item in seq {
                    self.slots[*slot] = Some(vec![item]);
                    let v = self.eval(satisfies)?;
                    let ok = self.ebv(&v)?;
                    if *some && ok {
                        result = true;
                        break;
                    }
                    if !*some && !ok {
                        result = false;
                        break;
                    }
                }
                self.slots[*slot] = saved;
                Ok(vec![Item::boolean(result)])
            }
            Expr::Flwor {
                clauses,
                where_,
                order,
                ret,
            } => self.eval_flwor(clauses, where_.as_deref(), order, ret),
            Expr::Union(a, b) => {
                let mut out = self.eval(a)?;
                out.extend(self.eval(b)?);
                Ok(out) // parser wraps set ops in Ddo
            }
            Expr::Intersect(a, b) => {
                let va = self.eval(a)?;
                let vb = self.eval(b)?;
                let keys: Vec<NodeId> = vb
                    .iter()
                    .filter_map(|i| match i {
                        Item::Node(n) => Some(*n),
                        _ => None,
                    })
                    .collect();
                Ok(va
                    .into_iter()
                    .filter(|i| matches!(i, Item::Node(n) if keys.contains(n)))
                    .collect())
            }
            Expr::Except(a, b) => {
                let va = self.eval(a)?;
                let vb = self.eval(b)?;
                let keys: Vec<NodeId> = vb
                    .iter()
                    .filter_map(|i| match i {
                        Item::Node(n) => Some(*n),
                        _ => None,
                    })
                    .collect();
                Ok(va
                    .into_iter()
                    .filter(|i| matches!(i, Item::Node(n) if !keys.contains(n)))
                    .collect())
            }
            Expr::Ddo(inner) => {
                let seq = self.eval(inner)?;
                self.ddo(seq)
            }
            Expr::Path { start, steps } => self.eval_path(start, steps),
            Expr::StructuralPath { doc, steps } => self.eval_structural(doc, steps),
            Expr::Filter { input, predicates } => {
                let mut seq = self.eval(input)?;
                for p in predicates {
                    seq = self.apply_predicate(seq, p)?;
                }
                Ok(seq)
            }
            Expr::FnCall {
                name,
                args,
                resolved,
            } => match resolved {
                FnResolution::Builtin(_) => self.eval_builtin(name, args),
                FnResolution::User(idx) => self.eval_user_fn(*idx, args),
                FnResolution::Unresolved => Err(QueryError::Dynamic(format!(
                    "function {name} was not resolved (run static analysis)"
                ))),
            },
            Expr::TextCtor(inner) => {
                let v = self.eval(inner)?;
                let s = self.sequence_to_string(&v)?;
                let id = self.arena.text(s);
                Ok(vec![Item::Node(NodeId::Temp(id))])
            }
            Expr::ElementCtor {
                name,
                attrs,
                children,
            } => self.eval_element_ctor(name, attrs, children),
        }
    }

    fn eval_flwor(
        &mut self,
        clauses: &[FlworClause],
        where_: Option<&Expr>,
        order: &[OrderSpec],
        ret: &Expr,
    ) -> QueryResult<Sequence> {
        // Collect produced tuples as (sort keys, value).
        let mut results: Vec<(Vec<Option<Atom>>, Sequence)> = Vec::new();
        self.flwor_rec(clauses, where_, order, ret, &mut results)?;
        if !order.is_empty() {
            results.sort_by(|(ka, _), (kb, _)| {
                for (spec, (a, b)) in order.iter().zip(ka.iter().zip(kb.iter())) {
                    let ord = cmp_order_keys(a, b);
                    let ord = if spec.descending { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }
        Ok(results.into_iter().flat_map(|(_, v)| v).collect())
    }

    fn flwor_rec(
        &mut self,
        clauses: &[FlworClause],
        where_: Option<&Expr>,
        order: &[OrderSpec],
        ret: &Expr,
        out: &mut Vec<(Vec<Option<Atom>>, Sequence)>,
    ) -> QueryResult<()> {
        match clauses.split_first() {
            None => {
                if let Some(w) = where_ {
                    let c = self.eval(w)?;
                    if !self.ebv(&c)? {
                        return Ok(());
                    }
                }
                let mut keys = Vec::with_capacity(order.len());
                for spec in order {
                    let v = self.eval(&spec.key)?;
                    keys.push(match v.first() {
                        None => None,
                        Some(item) => Some(self.atomize_item(item)?),
                    });
                }
                let v = self.eval(ret)?;
                out.push((keys, v));
                Ok(())
            }
            Some((FlworClause::Let { slot, expr, .. }, rest)) => {
                let v = self.eval(expr)?;
                let saved = self.slots[*slot].replace(v);
                self.flwor_rec(rest, where_, order, ret, out)?;
                self.slots[*slot] = saved;
                Ok(())
            }
            Some((FlworClause::For { slot, at, expr, .. }, rest)) => {
                let seq = self.eval(expr)?;
                let saved = self.slots[*slot].take();
                let saved_at = at.as_ref().map(|(_, s)| self.slots[*s].take());
                for (i, item) in seq.into_iter().enumerate() {
                    self.slots[*slot] = Some(vec![item]);
                    if let Some((_, pslot)) = at {
                        self.slots[*pslot] = Some(vec![Item::number((i + 1) as f64)]);
                    }
                    self.flwor_rec(rest, where_, order, ret, out)?;
                }
                self.slots[*slot] = saved;
                if let Some((_, pslot)) = at {
                    self.slots[*pslot] = saved_at.flatten();
                }
                Ok(())
            }
        }
    }

    fn eval_user_fn(&mut self, idx: usize, args: &[Expr]) -> QueryResult<Sequence> {
        if self.call_depth >= MAX_CALL_DEPTH {
            return Err(QueryError::Dynamic("function recursion too deep".into()));
        }
        let mut values = Vec::with_capacity(args.len());
        for a in args {
            values.push(self.eval(a)?);
        }
        let f = &self.stmt.functions[idx];
        let slots = f.param_slots.clone();
        let body = f.body.clone();
        let mut saved = Vec::with_capacity(slots.len());
        for (slot, v) in slots.iter().zip(values) {
            saved.push(self.slots[*slot].replace(v));
        }
        self.call_depth += 1;
        let result = self.eval(&body);
        self.call_depth -= 1;
        for (slot, old) in slots.iter().zip(saved) {
            self.slots[*slot] = old;
        }
        result
    }

    // ==============================================================
    // Paths and axes
    // ==============================================================

    fn eval_path(&mut self, start: &PathStart, steps: &[Step]) -> QueryResult<Sequence> {
        let mut current: Sequence = match start {
            PathStart::Doc(name) => {
                let idx = self
                    .db
                    .doc_idx(name)
                    .ok_or_else(|| QueryError::Dynamic(format!("no such document '{name}'")))?;
                let node = self.db.docs[idx].doc.doc_node(self.db.vas)?;
                vec![Item::Node(NodeId::Stored { doc: idx, node })]
            }
            PathStart::Root => {
                let (item, _, _) = self
                    .ctx
                    .last()
                    .cloned()
                    .ok_or_else(|| QueryError::Dynamic("no context item for '/'".into()))?;
                match item {
                    Item::Node(n) => vec![Item::Node(self.root_of(n)?)],
                    _ => return Err(QueryError::Dynamic("context item is not a node".into())),
                }
            }
            PathStart::Context => {
                let (item, _, _) = self
                    .ctx
                    .last()
                    .cloned()
                    .ok_or_else(|| QueryError::Dynamic("no context item".into()))?;
                vec![item]
            }
            PathStart::Expr(e) => self.eval(e)?,
        };
        for step in steps {
            let mut next = Vec::new();
            for item in &current {
                let node = match item {
                    Item::Node(n) => *n,
                    Item::Atom(_) => {
                        return Err(QueryError::Dynamic(
                            "path step applied to an atomic value".into(),
                        ))
                    }
                };
                let mut batch = self.axis_nodes(node, step.axis, &step.test)?;
                self.stats.nodes_scanned += batch.len() as u64;
                for p in &step.predicates {
                    batch = self.apply_predicate(batch, p)?;
                }
                next.extend(batch);
            }
            current = next;
        }
        Ok(current)
    }

    /// Applies one predicate over a batch with position/size context.
    pub(crate) fn apply_predicate(
        &mut self,
        batch: Sequence,
        pred: &Expr,
    ) -> QueryResult<Sequence> {
        let size = batch.len();
        let mut out = Vec::new();
        for (i, item) in batch.into_iter().enumerate() {
            self.ctx.push((item.clone(), i + 1, size));
            let v = self.eval(pred);
            self.ctx.pop();
            let v = v?;
            // Numeric predicate = positional test.
            let keep = match v.as_slice() {
                [Item::Atom(Atom::Number(n))] => (*n == (i + 1) as f64) && n.fract() == 0.0,
                _ => self.ebv(&v)?,
            };
            if keep {
                out.push(item);
            }
        }
        Ok(out)
    }

    fn root_of(&mut self, node: NodeId) -> QueryResult<NodeId> {
        match node {
            NodeId::Stored { doc, node } => {
                let mode = self.db.docs[doc].doc.mode;
                let mut cur = node;
                while let Some(p) = cur.parent(self.db.vas, mode)? {
                    cur = p;
                }
                Ok(NodeId::Stored { doc, node: cur })
            }
            NodeId::Temp(id) => {
                let mut cur = id;
                while let Some(p) = self.arena.get(cur).parent {
                    cur = p;
                }
                Ok(NodeId::Temp(cur))
            }
        }
    }

    /// Evaluates one axis step from one node.
    pub(crate) fn axis_nodes(
        &mut self,
        node: NodeId,
        axis: Axis,
        test: &NodeTest,
    ) -> QueryResult<Sequence> {
        let mut out = Vec::new();
        match axis {
            Axis::SelfAxis => {
                if self.test_matches(node, test, false)? {
                    out.push(Item::Node(node));
                }
            }
            Axis::Child => {
                // A name test on a stored node goes through the parent's
                // child-schema slot: "the descriptive schema plays a role
                // of a naturally built index" (§4.1) — only descriptors of
                // the matching schema node are touched, never the other
                // children's blocks.
                if let (NodeTest::Name(want), NodeId::Stored { doc, node: n }) = (test, node) {
                    let schema = self.db.docs[doc].schema;
                    let parent_sid = n.schema(self.db.vas)?;
                    if let Some(child_sid) =
                        schema.find_child(parent_sid, NodeKind::Element, Some(want))
                    {
                        if let Some(slot) = schema.child_slot(parent_sid, child_sid) {
                            for c in n.children_by_schema(self.db.vas, slot)? {
                                out.push(Item::Node(NodeId::Stored { doc, node: c }));
                            }
                        }
                    }
                    return Ok(out);
                }
                for c in self.children_of(node)? {
                    if self.node_kind(c)? != NodeKind::Attribute
                        && self.test_matches(c, test, false)?
                    {
                        out.push(Item::Node(c));
                    }
                }
            }
            Axis::Attribute => {
                // Same slot shortcut for named attributes.
                if let (NodeTest::Name(want), NodeId::Stored { doc, node: n }) = (test, node) {
                    let schema = self.db.docs[doc].schema;
                    let parent_sid = n.schema(self.db.vas)?;
                    if let Some(child_sid) =
                        schema.find_child(parent_sid, NodeKind::Attribute, Some(want))
                    {
                        if let Some(slot) = schema.child_slot(parent_sid, child_sid) {
                            for c in n.children_by_schema(self.db.vas, slot)? {
                                out.push(Item::Node(NodeId::Stored { doc, node: c }));
                            }
                        }
                    }
                    return Ok(out);
                }
                for c in self.children_of(node)? {
                    if self.node_kind(c)? == NodeKind::Attribute
                        && self.test_matches(c, test, true)?
                    {
                        out.push(Item::Node(c));
                    }
                }
            }
            Axis::Descendant | Axis::DescendantOrSelf => {
                if axis == Axis::DescendantOrSelf && self.test_matches(node, test, false)? {
                    out.push(Item::Node(node));
                }
                self.collect_descendants(node, test, &mut out)?;
            }
            Axis::Parent => {
                if let Some(p) = self.parent_of(node)? {
                    if self.test_matches(p, test, false)? {
                        out.push(Item::Node(p));
                    }
                }
            }
            Axis::Ancestor | Axis::AncestorOrSelf => {
                if axis == Axis::AncestorOrSelf && self.test_matches(node, test, false)? {
                    out.push(Item::Node(node));
                }
                let mut cur = self.parent_of(node)?;
                while let Some(p) = cur {
                    if self.test_matches(p, test, false)? {
                        out.push(Item::Node(p));
                    }
                    cur = self.parent_of(p)?;
                }
            }
            Axis::FollowingSibling | Axis::PrecedingSibling => {
                if self.node_kind(node)? == NodeKind::Attribute {
                    return Ok(out); // attributes have no siblings
                }
                let siblings = match self.parent_of(node)? {
                    None => Vec::new(),
                    Some(p) => self.children_of(p)?,
                };
                let pos = siblings.iter().position(|&s| s == node);
                if let Some(pos) = pos {
                    let range: Vec<NodeId> = if axis == Axis::FollowingSibling {
                        siblings[pos + 1..].to_vec()
                    } else {
                        siblings[..pos].iter().rev().copied().collect()
                    };
                    for s in range {
                        if self.node_kind(s)? != NodeKind::Attribute
                            && self.test_matches(s, test, false)?
                        {
                            out.push(Item::Node(s));
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    fn collect_descendants(
        &mut self,
        node: NodeId,
        test: &NodeTest,
        out: &mut Sequence,
    ) -> QueryResult<()> {
        for c in self.children_of(node)? {
            if self.node_kind(c)? == NodeKind::Attribute {
                continue;
            }
            if self.test_matches(c, test, false)? {
                out.push(Item::Node(c));
            }
            self.collect_descendants(c, test, out)?;
        }
        Ok(())
    }

    /// §5.1.4: schema-level evaluation + block-list scans.
    fn eval_structural(&mut self, doc: &str, steps: &[Step]) -> QueryResult<Sequence> {
        let idx = self
            .db
            .doc_idx(doc)
            .ok_or_else(|| QueryError::Dynamic(format!("no such document '{doc}'")))?;
        let matched = self.structural_sids(idx, steps);
        let mut out = Vec::new();
        for sid in matched {
            self.scan_schema_list(idx, sid, &mut out)?;
        }
        Ok(out)
    }

    /// Resolves a declared index by name, counting the lookup — the one
    /// place `index_lookups` is bumped; both index builtins go through
    /// it, so the counter and the actual B-tree accesses cannot drift.
    fn index_entry(&mut self, iname: &str) -> QueryResult<&'a IndexEntry<'a>> {
        let entry = self
            .db
            .indexes
            .iter()
            .find(|e| e.name == iname)
            .ok_or_else(|| QueryError::Dynamic(format!("no such index '{iname}'")))?;
        self.stats.index_lookups += 1;
        Ok(entry)
    }

    /// Resolves a structural path to the schema nodes whose block lists
    /// hold the result (the schema-level half of §5.1.4).
    pub(crate) fn structural_sids(&self, doc: usize, steps: &[Step]) -> Vec<SchemaNodeId> {
        let schema = self.db.docs[doc].schema;
        let schema_steps: Vec<sedna_schema::PathStep> = steps
            .iter()
            .map(|s| sedna_schema::PathStep {
                axis: match s.axis {
                    Axis::Child => sedna_schema::SchemaAxis::Child,
                    Axis::Descendant => sedna_schema::SchemaAxis::Descendant,
                    Axis::DescendantOrSelf => sedna_schema::SchemaAxis::DescendantOrSelf,
                    Axis::Attribute => sedna_schema::SchemaAxis::Attribute,
                    _ => unreachable!("rewriter only extracts descending axes"),
                },
                test: match &s.test {
                    NodeTest::Name(n) => sedna_schema::SchemaTest::Name(n.clone()),
                    NodeTest::Wildcard => sedna_schema::SchemaTest::AnyName,
                    NodeTest::Text => sedna_schema::SchemaTest::Text,
                    NodeTest::Comment => sedna_schema::SchemaTest::Comment,
                    NodeTest::Pi(_) => sedna_schema::SchemaTest::Pi,
                    NodeTest::AnyKind => sedna_schema::SchemaTest::AnyKind,
                },
            })
            .collect();
        sedna_schema::path::eval_structural_path(schema, &schema_steps)
    }

    /// The head of a schema node's block list (null when the list is
    /// empty).
    pub(crate) fn first_block(&self, doc: usize, sid: SchemaNodeId) -> sedna_sas::XPtr {
        self.db.docs[doc].schema.node(sid).first_block
    }

    /// Scans one block of a schema node's list into `out`, returning the
    /// next block in the chain (null at the end). One pull of the
    /// streaming structural scan pins exactly this one page.
    pub(crate) fn scan_block(
        &mut self,
        doc: usize,
        blk: sedna_sas::XPtr,
        out: &mut Sequence,
    ) -> QueryResult<sedna_sas::XPtr> {
        let vas = self.db.vas;
        let (mut slot, dsize, next, count) = {
            let page = vas.read(blk)?;
            (
                block::first_desc(&page),
                block::block_desc_size(&page),
                block::next_block(&page),
                block::desc_count(&page),
            )
        };
        let mut walked = 0u16;
        while slot != sedna_storage::layout::NO_SLOT {
            if walked > count {
                return Err(QueryError::Dynamic(format!(
                    "corrupt in-block chain in {blk} (cycle suspected)"
                )));
            }
            walked += 1;
            let off = block::desc_offset(slot, dsize);
            out.push(Item::Node(NodeId::Stored {
                doc,
                node: NodeRef(blk.offset(off as u32)),
            }));
            self.stats.nodes_scanned += 1;
            let page = vas.read(blk)?;
            slot = sedna_storage::descriptor::next_in_block(&page, off);
        }
        Ok(next)
    }

    /// Scans a schema node's block list in document order.
    fn scan_schema_list(
        &mut self,
        doc: usize,
        sid: SchemaNodeId,
        out: &mut Sequence,
    ) -> QueryResult<()> {
        let mut blk = self.first_block(doc, sid);
        while !blk.is_null() {
            blk = self.scan_block(doc, blk, out)?;
        }
        Ok(())
    }

    // ==============================================================
    // Node accessors (stored + constructed)
    // ==============================================================

    /// The node kind.
    pub fn node_kind(&self, node: NodeId) -> QueryResult<NodeKind> {
        match node {
            NodeId::Stored { node, .. } => Ok(node.kind(self.db.vas)?),
            NodeId::Temp(id) => Ok(self.arena.get(id).kind),
        }
    }

    /// The node's expanded name, if named.
    pub fn node_name(&self, node: NodeId) -> QueryResult<Option<SchemaName>> {
        match node {
            NodeId::Stored { doc, node } => {
                let sid = node.schema(self.db.vas)?;
                Ok(self.db.docs[doc].schema.node(sid).name.clone())
            }
            NodeId::Temp(id) => Ok(self.arena.get(id).name.clone()),
        }
    }

    /// The node's children in document order (attributes included, first).
    pub fn children_of(&self, node: NodeId) -> QueryResult<Vec<NodeId>> {
        match node {
            NodeId::Stored { doc, node } => Ok(node
                .children(self.db.vas)?
                .into_iter()
                .map(|n| NodeId::Stored { doc, node: n })
                .collect()),
            NodeId::Temp(id) => Ok(self
                .arena
                .get(id)
                .children
                .iter()
                .map(|c| match c {
                    TempChild::Temp(t) => NodeId::Temp(*t),
                    TempChild::StoredRef { doc, node } => NodeId::Stored {
                        doc: *doc,
                        node: *node,
                    },
                })
                .collect()),
        }
    }

    /// The node's parent.
    pub fn parent_of(&self, node: NodeId) -> QueryResult<Option<NodeId>> {
        match node {
            NodeId::Stored { doc, node } => {
                let mode = self.db.docs[doc].doc.mode;
                Ok(node
                    .parent(self.db.vas, mode)?
                    .map(|n| NodeId::Stored { doc, node: n }))
            }
            NodeId::Temp(id) => Ok(self.arena.get(id).parent.map(NodeId::Temp)),
        }
    }

    /// The XPath string value.
    pub fn string_value(&self, node: NodeId) -> QueryResult<String> {
        match node {
            NodeId::Stored { doc, node } => {
                Ok(node.string_value(self.db.vas, self.db.docs[doc].schema)?)
            }
            NodeId::Temp(id) => {
                let t = self.arena.get(id);
                match t.kind {
                    NodeKind::Element | NodeKind::Document => {
                        let mut out = String::new();
                        self.collect_temp_text(id, &mut out)?;
                        Ok(out)
                    }
                    _ => Ok(t.value.clone()),
                }
            }
        }
    }

    fn collect_temp_text(&self, id: TempId, out: &mut String) -> QueryResult<()> {
        for c in &self.arena.get(id).children {
            match c {
                TempChild::Temp(t) => {
                    let n = self.arena.get(*t);
                    match n.kind {
                        NodeKind::Text => out.push_str(&n.value),
                        NodeKind::Element => self.collect_temp_text(*t, out)?,
                        _ => {}
                    }
                }
                TempChild::StoredRef { doc, node } => match node.kind(self.db.vas)? {
                    NodeKind::Text => out.push_str(&node.value_string(self.db.vas)?),
                    NodeKind::Element => {
                        out.push_str(&node.string_value(self.db.vas, self.db.docs[*doc].schema)?)
                    }
                    _ => {}
                },
            }
        }
        Ok(())
    }

    fn test_matches(&self, node: NodeId, test: &NodeTest, attr_axis: bool) -> QueryResult<bool> {
        let kind = self.node_kind(node)?;
        Ok(match test {
            NodeTest::AnyKind => true,
            NodeTest::Text => kind == NodeKind::Text,
            NodeTest::Comment => kind == NodeKind::Comment,
            NodeTest::Pi(target) => {
                kind == NodeKind::ProcessingInstruction
                    && match target {
                        None => true,
                        Some(t) => self.node_name(node)?.is_some_and(|n| n.local == *t),
                    }
            }
            NodeTest::Wildcard => {
                if attr_axis {
                    kind == NodeKind::Attribute
                } else {
                    kind == NodeKind::Element
                }
            }
            NodeTest::Name(want) => {
                let principal = if attr_axis {
                    NodeKind::Attribute
                } else {
                    NodeKind::Element
                };
                kind == principal && self.node_name(node)?.as_ref() == Some(want)
            }
        })
    }

    // ==============================================================
    // DDO, atomization, EBV
    // ==============================================================

    /// Distinct-document-order: materialize, sort by order key, dedup.
    pub(crate) fn ddo(&mut self, seq: Sequence) -> QueryResult<Sequence> {
        self.stats.ddo_sorts += 1;
        self.stats.ddo_items += seq.len() as u64;
        let mut keyed: Vec<(OrderKey, Item)> = Vec::with_capacity(seq.len());
        for item in seq {
            match &item {
                Item::Node(NodeId::Stored { doc, node }) => {
                    let label = node.label(self.db.vas)?;
                    keyed.push((OrderKey::stored(*doc, &label), item));
                }
                Item::Node(NodeId::Temp(id)) => {
                    keyed.push((OrderKey::Temp(id.0), item));
                }
                Item::Atom(_) => {
                    return Err(QueryError::Dynamic(
                        "distinct-document-order over atomic values".into(),
                    ))
                }
            }
        }
        keyed.sort_by(|(a, _), (b, _)| a.cmp(b));
        keyed.dedup_by(|(a, _), (b, _)| a == b);
        Ok(keyed.into_iter().map(|(_, i)| i).collect())
    }

    /// Atomizes one item.
    pub fn atomize_item(&self, item: &Item) -> QueryResult<Atom> {
        match item {
            Item::Atom(a) => Ok(a.clone()),
            Item::Node(n) => Ok(Atom::String(self.string_value(*n)?)),
        }
    }

    pub(crate) fn atomize_number(&self, seq: &Sequence) -> QueryResult<f64> {
        match seq.as_slice() {
            [item] => Ok(self.atomize_item(item)?.to_number()),
            _ => Err(QueryError::Dynamic(format!(
                "expected a single numeric value, got {} items",
                seq.len()
            ))),
        }
    }

    /// Effective boolean value.
    pub fn ebv(&self, seq: &Sequence) -> QueryResult<bool> {
        match seq.as_slice() {
            [] => Ok(false),
            [Item::Node(_), ..] => Ok(true),
            [Item::Atom(a)] => Ok(match a {
                Atom::Boolean(b) => *b,
                Atom::String(s) => !s.is_empty(),
                Atom::Number(n) => *n != 0.0 && !n.is_nan(),
            }),
            _ => Err(QueryError::Dynamic(
                "effective boolean value of a multi-atom sequence".into(),
            )),
        }
    }

    fn sequence_to_string(&self, seq: &Sequence) -> QueryResult<String> {
        let mut parts = Vec::with_capacity(seq.len());
        for item in seq {
            parts.push(self.atomize_item(item)?.to_string_value());
        }
        Ok(parts.join(" "))
    }

    // ==============================================================
    // Constructors (§5.2.1)
    // ==============================================================

    fn eval_element_ctor(
        &mut self,
        name: &SchemaName,
        attrs: &[(SchemaName, Vec<Expr>)],
        children: &[Expr],
    ) -> QueryResult<Sequence> {
        let elem = self.arena.element(name.clone());
        for (aname, parts) in attrs {
            let mut value = String::new();
            for p in parts {
                let v = self.eval(p)?;
                value.push_str(&self.sequence_to_string(&v)?);
            }
            let a = self.arena.attribute(aname.clone(), value);
            self.arena.add_child(elem, TempChild::Temp(a));
        }
        for c in children {
            let v = self.eval(c)?;
            self.add_content(elem, v)?;
        }
        Ok(vec![Item::Node(NodeId::Temp(elem))])
    }

    /// Content construction: adjacent atoms join into text nodes; node
    /// content is copied/adopted/referenced per [`ConstructMode`].
    fn add_content(&mut self, parent: TempId, content: Sequence) -> QueryResult<()> {
        let mut pending_text = String::new();
        let mut first_atom = true;
        for item in content {
            match item {
                Item::Atom(a) => {
                    if !first_atom && !pending_text.is_empty() {
                        pending_text.push(' ');
                    }
                    pending_text.push_str(&a.to_string_value());
                    first_atom = false;
                }
                Item::Node(n) => {
                    if !pending_text.is_empty() {
                        let t = self.arena.text(std::mem::take(&mut pending_text));
                        self.arena.add_child(parent, TempChild::Temp(t));
                    }
                    first_atom = true;
                    self.add_node_content(parent, n)?;
                }
            }
        }
        if !pending_text.is_empty() {
            let t = self.arena.text(pending_text);
            self.arena.add_child(parent, TempChild::Temp(t));
        }
        Ok(())
    }

    fn add_node_content(&mut self, parent: TempId, node: NodeId) -> QueryResult<()> {
        match (self.mode, node) {
            // Virtual: store the pointer — "does not perform deep copy of
            // the content of constructed node, but rather stores a pointer
            // to it".
            (ConstructMode::Virtual, NodeId::Stored { doc, node }) => {
                self.arena
                    .add_child(parent, TempChild::StoredRef { doc, node });
                Ok(())
            }
            // Embedded/Virtual: adopt a parentless constructed node
            // directly — "the nested one sets the parent property of the
            // constructed node to the element created by the constructor
            // it is nested to".
            (ConstructMode::Embedded | ConstructMode::Virtual, NodeId::Temp(id))
                if self.arena.get(id).parent.is_none() =>
            {
                self.arena.add_child(parent, TempChild::Temp(id));
                Ok(())
            }
            // Everything else: deep copy.
            (_, NodeId::Stored { doc, node }) => {
                let copy = self.deep_copy_stored(doc, node)?;
                self.arena.add_child(parent, TempChild::Temp(copy));
                Ok(())
            }
            (_, NodeId::Temp(id)) => {
                let copy = self.deep_copy_temp(id);
                self.arena.add_child(parent, TempChild::Temp(copy));
                Ok(())
            }
        }
    }

    fn deep_copy_stored(&mut self, doc: usize, node: NodeRef) -> QueryResult<TempId> {
        self.stats.ctor_copies += 1;
        let vas = self.db.vas;
        let kind = node.kind(vas)?;
        let name = {
            let sid = node.schema(vas)?;
            self.db.docs[doc].schema.node(sid).name.clone()
        };
        let value = if kind.has_value() {
            node.value_string(vas)?
        } else {
            String::new()
        };
        let id = self.arena.push(TempNode {
            kind,
            name,
            value,
            children: Vec::new(),
            parent: None,
        });
        if kind == NodeKind::Element || kind == NodeKind::Document {
            for c in node.children(vas)? {
                let cc = self.deep_copy_stored(doc, c)?;
                self.arena.add_child(id, TempChild::Temp(cc));
            }
        }
        Ok(id)
    }

    fn deep_copy_temp(&mut self, src: TempId) -> TempId {
        self.stats.ctor_copies += 1;
        let node = self.arena.get(src).clone();
        let id = self.arena.push(TempNode {
            kind: node.kind,
            name: node.name,
            value: node.value,
            children: Vec::new(),
            parent: None,
        });
        for c in node.children {
            match c {
                TempChild::Temp(t) => {
                    let cc = self.deep_copy_temp(t);
                    self.arena.add_child(id, TempChild::Temp(cc));
                }
                TempChild::StoredRef { doc, node } => {
                    // Copying a virtual node materializes it.
                    if let Ok(cc) = self.deep_copy_stored(doc, node) {
                        self.arena.add_child(id, TempChild::Temp(cc));
                    }
                }
            }
        }
        id
    }

    // ==============================================================
    // Built-in functions
    // ==============================================================

    fn eval_builtin(&mut self, name: &str, args: &[Expr]) -> QueryResult<Sequence> {
        // Context-free evaluation of arguments (position/last need the
        // stack untouched, and take no arguments anyway).
        match name {
            "position" => {
                let (_, pos, _) = self
                    .ctx
                    .last()
                    .ok_or_else(|| QueryError::Dynamic("position() outside a predicate".into()))?;
                return Ok(vec![Item::number(*pos as f64)]);
            }
            "last" => {
                let (_, _, size) = self
                    .ctx
                    .last()
                    .ok_or_else(|| QueryError::Dynamic("last() outside a predicate".into()))?;
                return Ok(vec![Item::number(*size as f64)]);
            }
            "true" => return Ok(vec![Item::boolean(true)]),
            "false" => return Ok(vec![Item::boolean(false)]),
            _ => {}
        }
        let mut vals = Vec::with_capacity(args.len());
        for a in args {
            vals.push(self.eval(a)?);
        }
        let arg = |i: usize| -> &Sequence { &vals[i] };
        let ctx_or_arg = |ex: &Self, i: usize| -> QueryResult<Sequence> {
            if vals.len() > i {
                Ok(vals[i].clone())
            } else {
                match ex.ctx.last() {
                    Some((item, _, _)) => Ok(vec![item.clone()]),
                    None => Err(QueryError::Dynamic(format!(
                        "{name}() with no argument requires a context item"
                    ))),
                }
            }
        };
        let one_string = |ex: &Self, seq: &Sequence| -> QueryResult<String> {
            match seq.as_slice() {
                [] => Ok(String::new()),
                [item] => Ok(ex.atomize_item(item)?.to_string_value()),
                _ => Err(QueryError::Dynamic(format!(
                    "{name}() expected at most one item"
                ))),
            }
        };
        match name {
            "doc" | "document" => {
                let d = one_string(self, arg(0))?;
                let idx = self
                    .db
                    .doc_idx(&d)
                    .ok_or_else(|| QueryError::Dynamic(format!("no such document '{d}'")))?;
                let node = self.db.docs[idx].doc.doc_node(self.db.vas)?;
                Ok(vec![Item::Node(NodeId::Stored { doc: idx, node })])
            }
            "count" => Ok(vec![Item::number(arg(0).len() as f64)]),
            "empty" => Ok(vec![Item::boolean(arg(0).is_empty())]),
            "exists" => Ok(vec![Item::boolean(!arg(0).is_empty())]),
            "not" => {
                let b = self.ebv(arg(0))?;
                Ok(vec![Item::boolean(!b)])
            }
            "boolean" => {
                let b = self.ebv(arg(0))?;
                Ok(vec![Item::boolean(b)])
            }
            "string" => {
                let v = ctx_or_arg(self, 0)?;
                Ok(vec![Item::string(one_string(self, &v)?)])
            }
            "number" => {
                let v = ctx_or_arg(self, 0)?;
                let n = match v.as_slice() {
                    [] => f64::NAN,
                    [item] => self.atomize_item(item)?.to_number(),
                    _ => f64::NAN,
                };
                Ok(vec![Item::number(n)])
            }
            "data" => {
                let mut out = Vec::new();
                for item in arg(0) {
                    out.push(Item::Atom(self.atomize_item(item)?));
                }
                Ok(out)
            }
            "name" | "local-name" => {
                let v = ctx_or_arg(self, 0)?;
                match v.as_slice() {
                    [] => Ok(vec![Item::string("")]),
                    [Item::Node(n)] => {
                        let nm = self.node_name(*n)?;
                        Ok(vec![Item::string(nm.map(|n| n.local).unwrap_or_default())])
                    }
                    _ => Err(QueryError::Dynamic(format!("{name}() requires a node"))),
                }
            }
            "string-length" => {
                let v = ctx_or_arg(self, 0)?;
                let s = one_string(self, &v)?;
                Ok(vec![Item::number(s.chars().count() as f64)])
            }
            "concat" => {
                let mut out = String::new();
                for v in &vals {
                    out.push_str(&one_string(self, v)?);
                }
                Ok(vec![Item::string(out)])
            }
            "contains" => {
                let a = one_string(self, arg(0))?;
                let b = one_string(self, arg(1))?;
                Ok(vec![Item::boolean(a.contains(&b))])
            }
            "starts-with" => {
                let a = one_string(self, arg(0))?;
                let b = one_string(self, arg(1))?;
                Ok(vec![Item::boolean(a.starts_with(&b))])
            }
            "ends-with" => {
                let a = one_string(self, arg(0))?;
                let b = one_string(self, arg(1))?;
                Ok(vec![Item::boolean(a.ends_with(&b))])
            }
            "substring" => {
                let s = one_string(self, arg(0))?;
                let start = self.atomize_number(arg(1))?.round() as i64;
                let chars: Vec<char> = s.chars().collect();
                let len = if vals.len() > 2 {
                    self.atomize_number(arg(2))?.round() as i64
                } else {
                    chars.len() as i64 + 1 - start.min(1)
                };
                let from = (start - 1).max(0) as usize;
                let to = ((start - 1 + len).max(0) as usize).min(chars.len());
                let out: String = if from < to {
                    chars[from..to].iter().collect()
                } else {
                    String::new()
                };
                Ok(vec![Item::string(out)])
            }
            "substring-before" => {
                let a = one_string(self, arg(0))?;
                let b = one_string(self, arg(1))?;
                Ok(vec![Item::string(
                    a.find(&b).map(|i| a[..i].to_string()).unwrap_or_default(),
                )])
            }
            "substring-after" => {
                let a = one_string(self, arg(0))?;
                let b = one_string(self, arg(1))?;
                Ok(vec![Item::string(
                    a.find(&b)
                        .map(|i| a[i + b.len()..].to_string())
                        .unwrap_or_default(),
                )])
            }
            "normalize-space" => {
                let v = ctx_or_arg(self, 0)?;
                let s = one_string(self, &v)?;
                Ok(vec![Item::string(
                    s.split_whitespace().collect::<Vec<_>>().join(" "),
                )])
            }
            "upper-case" => {
                let s = one_string(self, arg(0))?;
                Ok(vec![Item::string(s.to_uppercase())])
            }
            "lower-case" => {
                let s = one_string(self, arg(0))?;
                Ok(vec![Item::string(s.to_lowercase())])
            }
            "string-join" => {
                let sep = one_string(self, arg(1))?;
                let mut parts = Vec::new();
                for item in arg(0) {
                    parts.push(self.atomize_item(item)?.to_string_value());
                }
                Ok(vec![Item::string(parts.join(&sep))])
            }
            "sum" => {
                let mut total = 0.0;
                for item in arg(0) {
                    total += self.atomize_item(item)?.to_number();
                }
                Ok(vec![Item::number(total)])
            }
            "avg" => {
                if arg(0).is_empty() {
                    return Ok(vec![]);
                }
                let mut total = 0.0;
                for item in arg(0) {
                    total += self.atomize_item(item)?.to_number();
                }
                Ok(vec![Item::number(total / arg(0).len() as f64)])
            }
            "min" | "max" => {
                if arg(0).is_empty() {
                    return Ok(vec![]);
                }
                let mut best: Option<f64> = None;
                for item in arg(0) {
                    let n = self.atomize_item(item)?.to_number();
                    best = Some(match best {
                        None => n,
                        Some(b) => {
                            if (name == "min") == (n < b) {
                                n
                            } else {
                                b
                            }
                        }
                    });
                }
                Ok(vec![Item::number(best.expect("nonempty"))])
            }
            "round" => {
                let n = self.atomize_number(arg(0))?;
                Ok(vec![Item::number(n.round())])
            }
            "floor" => {
                let n = self.atomize_number(arg(0))?;
                Ok(vec![Item::number(n.floor())])
            }
            "ceiling" => {
                let n = self.atomize_number(arg(0))?;
                Ok(vec![Item::number(n.ceil())])
            }
            "abs" => {
                let n = self.atomize_number(arg(0))?;
                Ok(vec![Item::number(n.abs())])
            }
            "distinct-values" => {
                let mut seen: Vec<Atom> = Vec::new();
                for item in arg(0) {
                    let a = self.atomize_item(item)?;
                    if !seen.iter().any(|s| atoms_equal(s, &a)) {
                        seen.push(a);
                    }
                }
                Ok(seen.into_iter().map(Item::Atom).collect())
            }
            "reverse" => {
                let mut v = arg(0).clone();
                v.reverse();
                Ok(v)
            }
            "subsequence" => {
                let v = arg(0);
                let start = self.atomize_number(arg(1))?.round() as i64;
                let len = if vals.len() > 2 {
                    self.atomize_number(arg(2))?.round() as i64
                } else {
                    i64::MAX
                };
                let from = (start - 1).max(0) as usize;
                let to = (start - 1 + len).clamp(0, v.len() as i64) as usize;
                Ok(if from < to {
                    v[from..to.min(v.len())].to_vec()
                } else {
                    vec![]
                })
            }
            "index-of" => {
                let target = self.atomize_item(&arg(1)[0])?;
                let mut out = Vec::new();
                for (i, item) in arg(0).iter().enumerate() {
                    if atoms_equal(&self.atomize_item(item)?, &target) {
                        out.push(Item::number((i + 1) as f64));
                    }
                }
                Ok(out)
            }
            "deep-equal" => {
                let a = self.serialize_sequence(arg(0))?;
                let b = self.serialize_sequence(arg(1))?;
                Ok(vec![Item::boolean(a == b)])
            }
            "index-scan" => {
                let iname = one_string(self, arg(0))?;
                let key_atom = self.atomize_item(&arg(1)[0])?;
                let key = atom_to_index_key(&key_atom);
                let entry = self.index_entry(&iname)?;
                let handles = entry
                    .index
                    .lookup(self.db.vas, &key)
                    .map_err(|e| QueryError::Dynamic(format!("index error: {e}")))?;
                let doc = entry.doc;
                let mut out = Vec::new();
                for h in handles {
                    let node = NodeRef(indirection::deref_handle(self.db.vas, h)?);
                    out.push(Item::Node(NodeId::Stored { doc, node }));
                }
                Ok(out)
            }
            "index-scan-between" => {
                let iname = one_string(self, arg(0))?;
                let lo = atom_to_index_key(&self.atomize_item(&arg(1)[0])?);
                let hi = atom_to_index_key(&self.atomize_item(&arg(2)[0])?);
                let entry = self.index_entry(&iname)?;
                let handles = entry
                    .index
                    .range(self.db.vas, Some(&lo), true, Some(&hi), true)
                    .map_err(|e| QueryError::Dynamic(format!("index error: {e}")))?;
                let doc = entry.doc;
                let mut out = Vec::new();
                for h in handles {
                    let node = NodeRef(indirection::deref_handle(self.db.vas, h)?);
                    out.push(Item::Node(NodeId::Stored { doc, node }));
                }
                Ok(out)
            }
            other => Err(QueryError::Dynamic(format!(
                "builtin {other} not implemented"
            ))),
        }
    }

    // ==============================================================
    // Serialization
    // ==============================================================

    /// Serializes a result sequence to XML text (nodes serialized,
    /// atoms space-joined).
    pub fn serialize_sequence(&self, seq: &Sequence) -> QueryResult<String> {
        let mut out = String::new();
        let mut prev_atom = false;
        for item in seq {
            match item {
                Item::Atom(a) => {
                    if prev_atom {
                        out.push(' ');
                    }
                    out.push_str(&a.to_string_value());
                    prev_atom = true;
                }
                Item::Node(n) => {
                    self.serialize_node(*n, &mut out)?;
                    prev_atom = false;
                }
            }
        }
        Ok(out)
    }

    /// Serializes one node.
    pub fn serialize_node(&self, node: NodeId, out: &mut String) -> QueryResult<()> {
        match node {
            NodeId::Stored { doc, node } => self.serialize_stored(doc, node, out),
            NodeId::Temp(id) => self.serialize_temp(id, out),
        }
    }

    fn serialize_stored(&self, doc: usize, node: NodeRef, out: &mut String) -> QueryResult<()> {
        let vas = self.db.vas;
        let schema = self.db.docs[doc].schema;
        match node.kind(vas)? {
            NodeKind::Document => {
                for c in node.children(vas)? {
                    self.serialize_stored(doc, c, out)?;
                }
            }
            NodeKind::Element => {
                let sid = node.schema(vas)?;
                let name = schema
                    .node(sid)
                    .name
                    .as_ref()
                    .expect("elements are named")
                    .local
                    .clone();
                out.push('<');
                out.push_str(&name);
                let children = node.children(vas)?;
                let (attrs, others): (Vec<_>, Vec<_>) = children
                    .into_iter()
                    .partition(|c| matches!(c.kind(vas), Ok(NodeKind::Attribute)));
                for a in &attrs {
                    let asid = a.schema(vas)?;
                    out.push(' ');
                    out.push_str(
                        &schema
                            .node(asid)
                            .name
                            .as_ref()
                            .expect("attributes are named")
                            .local,
                    );
                    out.push_str("=\"");
                    out.push_str(&sedna_xml::escape_attr(&a.value_string(vas)?));
                    out.push('"');
                }
                if others.is_empty() {
                    out.push_str("/>");
                } else {
                    out.push('>');
                    for c in others {
                        self.serialize_stored(doc, c, out)?;
                    }
                    out.push_str("</");
                    out.push_str(&name);
                    out.push('>');
                }
            }
            NodeKind::Text => out.push_str(&sedna_xml::escape_text(&node.value_string(vas)?)),
            NodeKind::Comment => {
                out.push_str("<!--");
                out.push_str(&node.value_string(vas)?);
                out.push_str("-->");
            }
            NodeKind::ProcessingInstruction => {
                let sid = node.schema(vas)?;
                out.push_str("<?");
                out.push_str(&schema.node(sid).name.as_ref().expect("PIs are named").local);
                let data = node.value_string(vas)?;
                if !data.is_empty() {
                    out.push(' ');
                    out.push_str(&data);
                }
                out.push_str("?>");
            }
            NodeKind::Attribute => {
                // A bare attribute serializes as its value.
                out.push_str(&node.value_string(vas)?);
            }
        }
        Ok(())
    }

    fn serialize_temp(&self, id: TempId, out: &mut String) -> QueryResult<()> {
        let node = self.arena.get(id);
        match node.kind {
            NodeKind::Element => {
                let name = node
                    .name
                    .as_ref()
                    .expect("elements are named")
                    .local
                    .clone();
                out.push('<');
                out.push_str(&name);
                let mut content = Vec::new();
                for c in &node.children {
                    match c {
                        TempChild::Temp(t) if self.arena.get(*t).kind == NodeKind::Attribute => {
                            let a = self.arena.get(*t);
                            out.push(' ');
                            out.push_str(&a.name.as_ref().expect("attributes are named").local);
                            out.push_str("=\"");
                            out.push_str(&sedna_xml::escape_attr(&a.value));
                            out.push('"');
                        }
                        other => content.push(other.clone()),
                    }
                }
                if content.is_empty() {
                    out.push_str("/>");
                } else {
                    out.push('>');
                    for c in content {
                        match c {
                            TempChild::Temp(t) => self.serialize_temp(t, out)?,
                            TempChild::StoredRef { doc, node } => {
                                self.serialize_stored(doc, node, out)?
                            }
                        }
                    }
                    out.push_str("</");
                    out.push_str(&name);
                    out.push('>');
                }
            }
            NodeKind::Text => out.push_str(&sedna_xml::escape_text(&node.value)),
            NodeKind::Comment => {
                out.push_str("<!--");
                out.push_str(&node.value);
                out.push_str("-->");
            }
            NodeKind::ProcessingInstruction => {
                out.push_str("<?");
                out.push_str(&node.name.as_ref().expect("PIs are named").local);
                if !node.value.is_empty() {
                    out.push(' ');
                    out.push_str(&node.value);
                }
                out.push_str("?>");
            }
            NodeKind::Attribute => out.push_str(&node.value),
            NodeKind::Document => {
                for c in &node.children {
                    match c {
                        TempChild::Temp(t) => self.serialize_temp(*t, out)?,
                        TempChild::StoredRef { doc, node } => {
                            self.serialize_stored(*doc, *node, out)?
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

fn cmp_atoms(op: CmpOp, a: &Atom, b: &Atom) -> bool {
    use std::cmp::Ordering::*;
    // Numeric when either side is numeric, else string comparison.
    let ord = match (a, b) {
        (Atom::Number(_), _) | (_, Atom::Number(_)) => {
            let (x, y) = (a.to_number(), b.to_number());
            if x.is_nan() || y.is_nan() {
                // NaN compares false except for !=.
                return op == CmpOp::Ne;
            }
            x.partial_cmp(&y).expect("no NaN here")
        }
        (Atom::Boolean(x), Atom::Boolean(y)) => x.cmp(y),
        _ => a.to_string_value().cmp(&b.to_string_value()),
    };
    match op {
        CmpOp::Eq => ord == Equal,
        CmpOp::Ne => ord != Equal,
        CmpOp::Lt => ord == Less,
        CmpOp::Le => ord != Greater,
        CmpOp::Gt => ord == Greater,
        CmpOp::Ge => ord != Less,
    }
}

fn atoms_equal(a: &Atom, b: &Atom) -> bool {
    cmp_atoms(CmpOp::Eq, a, b)
}

fn cmp_order_keys(a: &Option<Atom>, b: &Option<Atom>) -> std::cmp::Ordering {
    match (a, b) {
        (None, None) => std::cmp::Ordering::Equal,
        (None, Some(_)) => std::cmp::Ordering::Less, // empty first
        (Some(_), None) => std::cmp::Ordering::Greater,
        (Some(x), Some(y)) => match (x, y) {
            (Atom::Number(n), Atom::Number(m)) => {
                n.partial_cmp(m).unwrap_or(std::cmp::Ordering::Equal)
            }
            _ => x.to_string_value().cmp(&y.to_string_value()),
        },
    }
}

fn atom_to_index_key(a: &Atom) -> IndexKey {
    match a {
        Atom::Number(n) => IndexKey::number(*n).unwrap_or(IndexKey::Number(0.0)),
        other => IndexKey::string(other.to_string_value()),
    }
}
