//! # sedna-xquery
//!
//! The query-processing stack of Sections 3 and 5 of the paper: for each
//! statement, "query processing in Sedna is implemented as a sequence of
//! steps performed by the following components: (1) query parser;
//! (2) static analyser; (3) optimizing rewriter; and (4) executor."
//!
//! * [`parser`] — a recursive-descent parser producing one uniform
//!   operation tree for all three statement types the paper lists:
//!   XQuery queries, XML update statements (XUpdate), and Data Definition
//!   Language statements.
//! * [`static_ctx`] — the static-analysis phase: prolog processing,
//!   variable/function resolution, arity checks, static errors.
//! * [`rewrite`] — the rule-based optimizing rewriter of §5.1:
//!   removal of unnecessary DDO (distinct-document-order) operations via
//!   inferred order properties, combination of the abbreviated
//!   `//` step with its next step (guarded by position/size-dependence
//!   analysis), lazy evaluation of loop-invariant nested-FLWOR binding
//!   expressions, and extraction of structural location paths onto the
//!   descriptive schema.
//! * [`planner`] / [`cost`] — the cost-based planner layered on top of
//!   the rewriter: per-path cardinality estimation from the statistics
//!   maintained on the descriptive schema, access-path choice between
//!   structural scans and declared B-tree value indexes, and
//!   selectivity-ordered predicates (see `docs/planner.md`).
//! * [`exec`] — the executor of §5.2: a library of physical operations,
//!   each "implemented as iterator [providing the] well known
//!   open-next-close interface", evaluated demand-driven; element
//!   constructors in the three modes of §5.2.1 (deep-copy baseline,
//!   embedded, virtual); intermediate results as direct node pointers,
//!   update targets converted to node handles.
//! * [`update`] — the XUpdate executor: "the first part selects nodes
//!   that are target for the update, and the second part updates the
//!   selected nodes."

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod cost;
pub mod cursor;
mod error;
pub mod exec;
pub mod functions;
pub mod parser;
pub mod planner;
pub mod rewrite;
pub mod static_ctx;
pub mod token;
pub mod update;
pub mod value;

pub use ast::{Expr, Statement};
pub use cursor::{OpProfile, Plan};
pub use error::{QueryError, QueryResult};
pub use exec::{ConstructMode, Database, DocEntry, ExecState, ExecStats, Executor};
pub use planner::{plan_statement, AccessPath, IndexSpec, PlanDecision, PlannerInput};
pub use update::{apply_update, plan_update_with_stats, UpdateTarget};
pub use value::{Atom, Item, Sequence};

/// Parses, analyses, and rewrites a statement — the front half of the
/// paper's pipeline, shared by queries and updates.
pub fn compile(input: &str) -> QueryResult<Statement> {
    let stmt = parser::parse_statement(input)?;
    let stmt = static_ctx::analyze(stmt)?;
    Ok(rewrite::rewrite_statement(stmt))
}
