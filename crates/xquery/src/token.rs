//! Character-level scanning utilities shared by the parser.
//!
//! The parser is *scannerless*: XQuery mixes expression syntax with
//! direct XML constructors, and has no reserved words, so the cleanest
//! small implementation reads characters with contextual helpers rather
//! than maintaining a mode-switching token stream.

/// A character cursor over the query source.
#[derive(Clone)]
pub struct Scanner<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Scanner<'a> {
    /// Creates a scanner at the start of `src`.
    pub fn new(src: &'a str) -> Scanner<'a> {
        Scanner { src, pos: 0 }
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Rewinds/advances to an absolute offset (used for backtracking).
    pub fn seek(&mut self, pos: usize) {
        self.pos = pos;
    }

    /// Remaining input.
    pub fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    /// Whether all input is consumed (after whitespace/comments).
    pub fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.rest().is_empty()
    }

    /// Next character without consuming.
    pub fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    /// Consumes and returns the next character.
    pub fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    /// Skips whitespace and (nested) `(: ... :)` comments.
    pub fn skip_ws(&mut self) {
        loop {
            while self.peek().is_some_and(|c| c.is_whitespace()) {
                self.bump();
            }
            if self.rest().starts_with("(:") {
                self.pos += 2;
                let mut depth = 1;
                while depth > 0 {
                    if self.rest().starts_with("(:") {
                        self.pos += 2;
                        depth += 1;
                    } else if self.rest().starts_with(":)") {
                        self.pos += 2;
                        depth -= 1;
                    } else if self.bump().is_none() {
                        return; // unterminated; the parser will error
                    }
                }
            } else {
                return;
            }
        }
    }

    /// Consumes `s` if the input (after whitespace) starts with it.
    /// For symbols only — does not check word boundaries.
    pub fn eat(&mut self, s: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    /// Peeks whether the next (post-whitespace) input starts with `s`.
    pub fn looking_at(&mut self, s: &str) -> bool {
        self.skip_ws();
        self.rest().starts_with(s)
    }

    /// Consumes the keyword `kw` if present as a whole word.
    pub fn eat_kw(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let rest = self.rest();
        if let Some(after_kw) = rest.strip_prefix(kw) {
            if after_kw.chars().next().is_none_or(|c| !is_name_char(c)) {
                self.pos += kw.len();
                return true;
            }
        }
        false
    }

    /// Peeks whether keyword `kw` is next (without consuming).
    pub fn looking_at_kw(&mut self, kw: &str) -> bool {
        let save = self.pos;
        let hit = self.eat_kw(kw);
        self.pos = save;
        hit
    }

    /// Parses an NCName if next.
    pub fn ncname(&mut self) -> Option<&'a str> {
        self.skip_ws();
        let rest = self.rest();
        let mut chars = rest.char_indices();
        match chars.next() {
            Some((_, c)) if is_name_start(c) => {}
            _ => return None,
        }
        let mut end = rest.len();
        for (i, c) in chars {
            if !is_name_char(c) {
                end = i;
                break;
            }
        }
        self.pos += end;
        Some(&rest[..end])
    }

    /// Parses a QName `(prefix, local)` if next (no whitespace around `:`).
    pub fn qname(&mut self) -> Option<(Option<&'a str>, &'a str)> {
        let first = self.ncname()?;
        if self.rest().starts_with(':') && !self.rest().starts_with("::") {
            let save = self.pos;
            self.pos += 1;
            // No whitespace allowed inside a QName.
            let rest = self.rest();
            if rest.chars().next().is_some_and(is_name_start) {
                let local = self.ncname().expect("checked start");
                return Some((Some(first), local));
            }
            self.pos = save;
        }
        Some((None, first))
    }

    /// Parses a string literal (`'...'` or `"..."`, doubled-quote escape,
    /// predefined entity references).
    pub fn string_literal(&mut self) -> Option<Result<String, usize>> {
        self.skip_ws();
        let quote = match self.peek() {
            Some(q @ ('\'' | '"')) => q,
            _ => return None,
        };
        let start = self.pos;
        self.bump();
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Some(Err(start)),
                Some(c) if c == quote => {
                    self.bump();
                    if self.peek() == Some(quote) {
                        self.bump();
                        out.push(quote);
                    } else {
                        break;
                    }
                }
                Some('&') => {
                    // Entity reference.
                    let amp_start = self.pos;
                    self.bump();
                    let mut ent = String::from("&");
                    loop {
                        match self.bump() {
                            Some(';') => {
                                ent.push(';');
                                break;
                            }
                            Some(c) => ent.push(c),
                            None => return Some(Err(amp_start)),
                        }
                    }
                    match sedna_xml::unescape(&ent) {
                        Some(s) => out.push_str(&s),
                        None => return Some(Err(amp_start)),
                    }
                }
                Some(c) => {
                    out.push(c);
                    self.bump();
                }
            }
        }
        Some(Ok(out))
    }

    /// Parses a numeric literal if next.
    pub fn number_literal(&mut self) -> Option<f64> {
        self.skip_ws();
        let rest = self.rest();
        let mut end = 0;
        let bytes = rest.as_bytes();
        while end < bytes.len() && bytes[end].is_ascii_digit() {
            end += 1;
        }
        let int_digits = end;
        if end < bytes.len() && bytes[end] == b'.' {
            // Not a number if no digits at all around the dot, or if this
            // is the '..' parent abbreviation.
            let frac_start = end + 1;
            let mut frac_end = frac_start;
            while frac_end < bytes.len() && bytes[frac_end].is_ascii_digit() {
                frac_end += 1;
            }
            if frac_end > frac_start {
                end = frac_end;
            } else if int_digits == 0 {
                return None;
            }
        }
        if end == 0 {
            return None;
        }
        // Exponent.
        if end < bytes.len() && (bytes[end] == b'e' || bytes[end] == b'E') {
            let mut e = end + 1;
            if e < bytes.len() && (bytes[e] == b'+' || bytes[e] == b'-') {
                e += 1;
            }
            let digs = e;
            while e < bytes.len() && bytes[e].is_ascii_digit() {
                e += 1;
            }
            if e > digs {
                end = e;
            }
        }
        let text = &rest[..end];
        let v: f64 = text.parse().ok()?;
        self.pos += end;
        Some(v)
    }
}

/// First character of an NCName.
pub fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

/// Subsequent characters of an NCName.
pub fn is_name_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '-' | '.')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_respect_word_boundaries() {
        let mut s = Scanner::new("forward for ");
        assert!(!s.eat_kw("for"));
        assert_eq!(s.ncname(), Some("forward"));
        assert!(s.eat_kw("for"));
    }

    #[test]
    fn comments_nest() {
        let mut s = Scanner::new("  (: outer (: inner :) still :)  x");
        s.skip_ws();
        assert_eq!(s.peek(), Some('x'));
    }

    #[test]
    fn qnames_and_axes_disambiguate() {
        let mut s = Scanner::new("child::para");
        // `child::` must NOT parse as a QName — the double colon belongs
        // to the axis separator.
        assert_eq!(s.qname(), Some((None, "child")));
        assert!(s.eat("::"));
        assert_eq!(s.qname(), Some((None, "para")));
        let mut s = Scanner::new("bk:title");
        assert_eq!(s.qname(), Some((Some("bk"), "title")));
    }

    #[test]
    fn string_literals_with_escapes() {
        let mut s = Scanner::new(r#" "he said ""hi"" &amp; left" "#);
        assert_eq!(
            s.string_literal().unwrap().unwrap(),
            "he said \"hi\" & left"
        );
        let mut s = Scanner::new("'it''s'");
        assert_eq!(s.string_literal().unwrap().unwrap(), "it's");
    }

    #[test]
    fn numbers() {
        let mut s = Scanner::new("3.25 ");
        assert_eq!(s.number_literal(), Some(3.25));
        let mut s = Scanner::new("42");
        assert_eq!(s.number_literal(), Some(42.0));
        let mut s = Scanner::new("1e3");
        assert_eq!(s.number_literal(), Some(1000.0));
        let mut s = Scanner::new(".5");
        assert_eq!(s.number_literal(), Some(0.5));
        // '..' is not a number.
        let mut s = Scanner::new("..");
        assert_eq!(s.number_literal(), None);
    }

    #[test]
    fn eat_and_looking_at() {
        let mut s = Scanner::new("  := rest");
        assert!(s.looking_at(":="));
        assert!(s.eat(":="));
        assert!(!s.eat(":="));
        assert!(s.looking_at_kw("rest"));
    }
}
