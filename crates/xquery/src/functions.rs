//! The built-in function library registry ("the static context of the
//! query is initialized with XQuery Functions and Operators", §5).
//!
//! Evaluation lives in [`crate::exec`]; this module is the registry the
//! static analyser resolves against (name + arity), so unknown functions
//! and arity mismatches are *static* errors as the paper requires.

/// Signature of a built-in function.
#[derive(Debug, Clone, Copy)]
pub struct Builtin {
    /// Function name (the `fn:` prefix is implied).
    pub name: &'static str,
    /// Minimum argument count.
    pub min_arity: usize,
    /// Maximum argument count.
    pub max_arity: usize,
}

/// The registry. Indexes into this slice are the `FnResolution::Builtin`
/// payload.
pub static BUILTINS: &[Builtin] = &[
    Builtin {
        name: "doc",
        min_arity: 1,
        max_arity: 1,
    },
    Builtin {
        name: "document",
        min_arity: 1,
        max_arity: 1,
    },
    Builtin {
        name: "count",
        min_arity: 1,
        max_arity: 1,
    },
    Builtin {
        name: "empty",
        min_arity: 1,
        max_arity: 1,
    },
    Builtin {
        name: "exists",
        min_arity: 1,
        max_arity: 1,
    },
    Builtin {
        name: "not",
        min_arity: 1,
        max_arity: 1,
    },
    Builtin {
        name: "true",
        min_arity: 0,
        max_arity: 0,
    },
    Builtin {
        name: "false",
        min_arity: 0,
        max_arity: 0,
    },
    Builtin {
        name: "boolean",
        min_arity: 1,
        max_arity: 1,
    },
    Builtin {
        name: "string",
        min_arity: 0,
        max_arity: 1,
    },
    Builtin {
        name: "number",
        min_arity: 0,
        max_arity: 1,
    },
    Builtin {
        name: "data",
        min_arity: 1,
        max_arity: 1,
    },
    Builtin {
        name: "name",
        min_arity: 0,
        max_arity: 1,
    },
    Builtin {
        name: "local-name",
        min_arity: 0,
        max_arity: 1,
    },
    Builtin {
        name: "string-length",
        min_arity: 0,
        max_arity: 1,
    },
    Builtin {
        name: "concat",
        min_arity: 2,
        max_arity: 64,
    },
    Builtin {
        name: "contains",
        min_arity: 2,
        max_arity: 2,
    },
    Builtin {
        name: "starts-with",
        min_arity: 2,
        max_arity: 2,
    },
    Builtin {
        name: "ends-with",
        min_arity: 2,
        max_arity: 2,
    },
    Builtin {
        name: "substring",
        min_arity: 2,
        max_arity: 3,
    },
    Builtin {
        name: "substring-before",
        min_arity: 2,
        max_arity: 2,
    },
    Builtin {
        name: "substring-after",
        min_arity: 2,
        max_arity: 2,
    },
    Builtin {
        name: "normalize-space",
        min_arity: 0,
        max_arity: 1,
    },
    Builtin {
        name: "upper-case",
        min_arity: 1,
        max_arity: 1,
    },
    Builtin {
        name: "lower-case",
        min_arity: 1,
        max_arity: 1,
    },
    Builtin {
        name: "string-join",
        min_arity: 2,
        max_arity: 2,
    },
    Builtin {
        name: "sum",
        min_arity: 1,
        max_arity: 1,
    },
    Builtin {
        name: "avg",
        min_arity: 1,
        max_arity: 1,
    },
    Builtin {
        name: "min",
        min_arity: 1,
        max_arity: 1,
    },
    Builtin {
        name: "max",
        min_arity: 1,
        max_arity: 1,
    },
    Builtin {
        name: "round",
        min_arity: 1,
        max_arity: 1,
    },
    Builtin {
        name: "floor",
        min_arity: 1,
        max_arity: 1,
    },
    Builtin {
        name: "ceiling",
        min_arity: 1,
        max_arity: 1,
    },
    Builtin {
        name: "abs",
        min_arity: 1,
        max_arity: 1,
    },
    Builtin {
        name: "position",
        min_arity: 0,
        max_arity: 0,
    },
    Builtin {
        name: "last",
        min_arity: 0,
        max_arity: 0,
    },
    Builtin {
        name: "distinct-values",
        min_arity: 1,
        max_arity: 1,
    },
    Builtin {
        name: "reverse",
        min_arity: 1,
        max_arity: 1,
    },
    Builtin {
        name: "subsequence",
        min_arity: 2,
        max_arity: 3,
    },
    Builtin {
        name: "index-of",
        min_arity: 2,
        max_arity: 2,
    },
    Builtin {
        name: "deep-equal",
        min_arity: 2,
        max_arity: 2,
    },
    // Sedna extension: scan a value index created with CREATE INDEX.
    Builtin {
        name: "index-scan",
        min_arity: 2,
        max_arity: 2,
    },
    Builtin {
        name: "index-scan-between",
        min_arity: 3,
        max_arity: 3,
    },
];

/// Resolves `(name, arity)` against the registry.
pub fn lookup(name: &str, arity: usize) -> Option<usize> {
    BUILTINS
        .iter()
        .position(|b| b.name == name && arity >= b.min_arity && arity <= b.max_arity)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_respects_arity() {
        assert!(lookup("count", 1).is_some());
        assert!(lookup("count", 2).is_none());
        assert!(lookup("string", 0).is_some());
        assert!(lookup("string", 1).is_some());
        assert!(lookup("concat", 5).is_some());
        assert!(lookup("concat", 1).is_none());
        assert!(lookup("no-such-fn", 1).is_none());
    }

    #[test]
    fn registry_has_no_duplicate_overlapping_entries() {
        for (i, a) in BUILTINS.iter().enumerate() {
            for b in &BUILTINS[i + 1..] {
                assert!(a.name != b.name, "duplicate builtin {}", a.name);
            }
        }
    }
}
