//! Pull-based (Volcano-style) item cursors over the executor.
//!
//! [`Plan::compile`] turns a rewritten [`Expr`] into a tree of pull
//! operators; each [`Plan::next`] call produces at most one [`Item`] and
//! touches only the pages that item needs, so a streaming query pins
//! O(pipeline depth) buffer pages instead of O(result size) and the
//! first item surfaces before the scan completes.
//!
//! Operators:
//!
//! * **streaming** — document roots, axis steps (one parent pulled at a
//!   time, its child batch buffered), structural scans (one block-list
//!   page at a time), `last()`-free filters with incremental positions,
//!   unordered FLWOR (binding sequences are materialized — they hold
//!   plain node identities, no page pins — and the `return` clause is
//!   evaluated per binding), integer ranges, and sequence concatenation;
//! * **blocking** — distinct-document-order (sort), `order by` FLWOR,
//!   `last()`-dependent predicates, and every other expression form,
//!   which all fall back to [`OpKind::Materialize`]: full evaluation
//!   behind the same `next()` interface, so callers never observe the
//!   difference except through pin counts.
//!
//! The operators embed their own runtime state, so a plan plus an
//! [`crate::exec::ExecState`] fully captures a suspended query: the host
//! rebuilds the borrowed [`crate::exec::Database`] view around them on
//! every pull (see `sedna` / `QueryCursor`).
//!
//! **Instrumentation.** Every operator carries always-on pull/item
//! counters (two plain `u64` increments per pull — no atomics, no
//! branches beyond the increment itself). Per-operator wall time is
//! opt-in via [`Plan::enable_timing`] (two `Instant` reads per pull per
//! operator), so untraced executions pay nothing for it.
//! [`Plan::profile`] folds the tree into an [`OpProfile`] — the
//! `EXPLAIN ANALYZE` operator tree rendered by [`OpProfile::render`],
//! with self-time computed as cumulative time minus the children's.

use std::collections::VecDeque;
use std::time::Instant;

use sedna_sas::XPtr;
use sedna_schema::SchemaNodeId;

use crate::ast::{Axis, Expr, FlworClause, NodeTest, PathStart, Step};
use crate::error::{QueryError, QueryResult};
use crate::exec::Executor;
use crate::value::{Atom, Item, Sequence};

/// A compiled pull-based plan for one query body.
#[derive(Debug)]
pub struct Plan {
    root: Op,
}

impl Plan {
    /// Compiles an expression into a pull operator tree. Every
    /// expression compiles — forms without a streaming implementation
    /// become a single materializing operator.
    pub fn compile(e: &Expr) -> Plan {
        Plan {
            root: compile_op(e),
        }
    }

    /// The pipeline depth (operators on the longest root-to-leaf path);
    /// the page-pin bound for fully streaming plans is O(this).
    pub fn depth(&self) -> usize {
        self.root.depth()
    }

    /// Whether the root operator streams (false when the whole plan is
    /// one materializing fallback).
    pub fn is_streaming(&self) -> bool {
        !matches!(self.root.kind, OpKind::Materialize { .. })
    }

    /// Turns on per-operator wall-clock timing for the whole tree (for
    /// `EXPLAIN ANALYZE` and traced statements). Off by default so the
    /// plain execution path never reads the clock per pull.
    pub fn enable_timing(&mut self) {
        self.root.enable_timing();
    }

    /// The `EXPLAIN ANALYZE` operator tree: per-operator pulls, items
    /// emitted, and (when timing was enabled) cumulative/self time.
    pub fn profile(&self) -> OpProfile {
        self.root.profile()
    }

    /// Stamps the planner's cardinality estimates onto the operator
    /// tree, so `EXPLAIN ANALYZE` can render `est=N act=M` per operator.
    /// `estimate_path` maps a `(document, steps)` path rooted at a
    /// document node to an estimated item count (see
    /// [`crate::cost::estimate_path_cardinality`]); operators whose
    /// cardinality cannot be derived from it stay unannotated.
    pub fn annotate_estimates<F>(&mut self, estimate_path: &F)
    where
        F: Fn(&str, &[Step]) -> Option<u64>,
    {
        annotate_op(&mut self.root, estimate_path);
    }

    /// Pulls the next item, or `None` when the plan is exhausted.
    pub fn next(&mut self, ex: &mut Executor<'_>) -> QueryResult<Option<Item>> {
        self.root.next(ex)
    }
}

/// One pull operator: its kind-specific state plus runtime counters.
#[derive(Debug)]
struct Op {
    kind: OpKind,
    /// `next()` calls on this operator.
    pulls: u64,
    /// Pulls answered with an item.
    items: u64,
    /// Wall time spent inside `next()`, children included; stays 0
    /// unless timing is enabled.
    cum_ns: u64,
    timed: bool,
    /// Planner cardinality estimate ([`Plan::annotate_estimates`]);
    /// `None` when the operator's output is not estimable.
    est: Option<u64>,
}

impl From<OpKind> for Op {
    fn from(kind: OpKind) -> Op {
        Op {
            kind,
            pulls: 0,
            items: 0,
            cum_ns: 0,
            timed: false,
            est: None,
        }
    }
}

/// Operator-kind state. Lives inline so the tree is self-contained.
#[derive(Debug)]
enum OpKind {
    /// `doc('name')` — yields the document node once.
    DocRoot { name: String, done: bool },
    /// One axis step: pulls a parent from `input`, evaluates the full
    /// child batch (with the step's predicates, whose positions are
    /// per-parent exactly as in the materializing path) and yields it
    /// item by item.
    Step {
        input: Box<Op>,
        step: Step,
        buf: VecDeque<Item>,
    },
    /// §5.1.4 structural scan: schema nodes resolved at open, then the
    /// block lists are walked one page per refill.
    StructuralScan {
        doc: String,
        steps: Vec<Step>,
        state: Option<ScanState>,
        buf: VecDeque<Item>,
    },
    /// A `last()`-free predicate with incrementally counted positions
    /// (numeric predicate = positional test, as in `apply_predicate`).
    Filter {
        input: Box<Op>,
        predicate: Expr,
        pos: usize,
    },
    /// Unordered FLWOR: an odometer over the for/let clauses; each
    /// complete binding evaluates `where` and then `ret`, whose items
    /// stream out before the next binding is produced.
    For {
        clauses: Vec<FlworClause>,
        where_: Option<Expr>,
        ret: Expr,
        state: Option<ForState>,
        buf: VecDeque<Item>,
    },
    /// `a to b` with bounds evaluated at open.
    Range {
        lo: Expr,
        hi: Expr,
        state: RangeState,
    },
    /// `(a, b, c)` — children drained left to right.
    Concat { parts: Vec<Op>, idx: usize },
    /// Distinct-document-order. A structural scan over a single
    /// schema-node chain is already distinct and in document order (one
    /// chain, walked in order, each descriptor once), so that case
    /// streams straight through; anything else drains the child, sorts
    /// and dedups once, then streams the result.
    Ddo {
        input: Box<Op>,
        /// Decided on the first pull: `Some(true)` = stream through.
        passthrough: Option<bool>,
        buf: Option<VecDeque<Item>>,
    },
    /// Blocking fallback: full evaluation through `Executor::eval` on
    /// first pull, then drained item by item.
    Materialize {
        expr: Expr,
        buf: Option<VecDeque<Item>>,
    },
}

/// Runtime state of a structural scan.
#[derive(Debug)]
struct ScanState {
    doc: usize,
    sids: Vec<SchemaNodeId>,
    next_sid: usize,
    blk: XPtr,
}

/// Odometer state of a streaming FLWOR: the materialized binding
/// sequence and cursor per clause (`Let` clauses keep an empty vec).
#[derive(Debug)]
struct ForState {
    seqs: Vec<Sequence>,
    idx: Vec<usize>,
    started: bool,
}

#[derive(Debug)]
enum RangeState {
    Unopened,
    Running(i64, i64),
    Done,
}

/// One node of the `EXPLAIN ANALYZE` operator tree — a plan operator's
/// identity plus its observed runtime behaviour.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OpProfile {
    /// Operator name (`Step`, `Ddo`, `Materialize`, …).
    pub name: &'static str,
    /// Operator-specific detail (`child::v`, `doc('big')`, …).
    pub detail: String,
    /// `next()` calls the operator received.
    pub pulls: u64,
    /// Pulls it answered with an item.
    pub items: u64,
    /// Wall time inside the operator including its children (0 when
    /// timing was not enabled).
    pub cum_ns: u64,
    /// `cum_ns` minus the children's `cum_ns` — the operator's own
    /// work.
    pub self_ns: u64,
    /// Planner cardinality estimate, when the plan was annotated
    /// ([`Plan::annotate_estimates`]); compare against `items` (the
    /// actual count) to judge the cost model.
    pub est: Option<u64>,
    /// Input operators.
    pub children: Vec<OpProfile>,
}

impl OpProfile {
    /// Renders the tree in the classic indented EXPLAIN shape:
    ///
    /// ```text
    /// Ddo streamed  (pulls=5 items=4 self=1.2us total=40.0us)
    ///   StructuralScan doc('big')/child::v  (pulls=5 items=4 ...)
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write as _;
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(self.name);
        if !self.detail.is_empty() {
            let _ = write!(out, " {}", self.detail);
        }
        let _ = write!(
            out,
            "  (pulls={} items={} self={} total={}",
            self.pulls,
            self.items,
            fmt_ns(self.self_ns),
            fmt_ns(self.cum_ns)
        );
        if let Some(est) = self.est {
            let _ = write!(out, " est={est} act={}", self.items);
        }
        out.push_str(")\n");
        for c in &self.children {
            c.render_into(out, depth + 1);
        }
    }
}

/// Human-scaled duration: `640ns`, `12.5us`, `3.1ms`, `1.20s`.
fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

/// `axis::test` plus a predicate-count suffix, e.g. `child::v` or
/// `descendant::*[2 predicates]`.
fn step_label(step: &Step) -> String {
    let axis = match step.axis {
        Axis::Child => "child",
        Axis::Descendant => "descendant",
        Axis::DescendantOrSelf => "descendant-or-self",
        Axis::SelfAxis => "self",
        Axis::Parent => "parent",
        Axis::Ancestor => "ancestor",
        Axis::AncestorOrSelf => "ancestor-or-self",
        Axis::FollowingSibling => "following-sibling",
        Axis::PrecedingSibling => "preceding-sibling",
        Axis::Attribute => "attribute",
    };
    let test = match &step.test {
        NodeTest::Name(n) => n.to_string(),
        NodeTest::Wildcard => "*".into(),
        NodeTest::Text => "text()".into(),
        NodeTest::Comment => "comment()".into(),
        NodeTest::Pi(_) => "processing-instruction()".into(),
        NodeTest::AnyKind => "node()".into(),
    };
    if step.predicates.is_empty() {
        format!("{axis}::{test}")
    } else {
        format!("{axis}::{test}[{} predicates]", step.predicates.len())
    }
}

fn compile_op(e: &Expr) -> Op {
    match e {
        Expr::Path { start, steps } => {
            let input = match start {
                PathStart::Doc(name) => Op::from(OpKind::DocRoot {
                    name: name.clone(),
                    done: false,
                }),
                PathStart::Expr(inner) => compile_op(inner),
                // '/' and '.' need the caller's context item, which a
                // top-level cursor does not have a streaming source for.
                PathStart::Root | PathStart::Context => return Op::materialize(e),
            };
            steps.iter().fold(input, |acc, s| {
                Op::from(OpKind::Step {
                    input: Box::new(acc),
                    step: s.clone(),
                    buf: VecDeque::new(),
                })
            })
        }
        Expr::StructuralPath { doc, steps } => Op::from(OpKind::StructuralScan {
            doc: doc.clone(),
            steps: steps.clone(),
            state: None,
            buf: VecDeque::new(),
        }),
        Expr::Filter { input, predicates } => {
            // last() needs the filtered sequence's size up front; any
            // predicate using it forces materialization.
            if predicates.iter().any(contains_last) {
                return Op::materialize(e);
            }
            predicates.iter().fold(compile_op(input), |acc, p| {
                Op::from(OpKind::Filter {
                    input: Box::new(acc),
                    predicate: p.clone(),
                    pos: 0,
                })
            })
        }
        Expr::Sequence(items) => Op::from(OpKind::Concat {
            parts: items.iter().map(compile_op).collect(),
            idx: 0,
        }),
        Expr::Range(a, b) => Op::from(OpKind::Range {
            lo: (**a).clone(),
            hi: (**b).clone(),
            state: RangeState::Unopened,
        }),
        Expr::Ddo(inner) => Op::from(OpKind::Ddo {
            input: Box::new(compile_op(inner)),
            passthrough: None,
            buf: None,
        }),
        Expr::Flwor {
            clauses,
            where_,
            order,
            ret,
        } if order.is_empty() => Op::from(OpKind::For {
            clauses: clauses.clone(),
            where_: where_.as_deref().cloned(),
            ret: (**ret).clone(),
            state: None,
            buf: VecDeque::new(),
        }),
        other => Op::materialize(other),
    }
}

/// Bottom-up estimate annotation: each operator's estimate is derived
/// from its children's and the planner's path-cardinality oracle.
/// Returns the estimate assigned to `op` (for the parent's use).
fn annotate_op<F>(op: &mut Op, f: &F) -> Option<u64>
where
    F: Fn(&str, &[Step]) -> Option<u64>,
{
    let est = match &mut op.kind {
        OpKind::DocRoot { .. } => Some(1),
        OpKind::StructuralScan { doc, steps, .. } => f(doc, steps),
        OpKind::Step { input, .. } => {
            annotate_op(input, f);
            // A pure DocRoot + Step chain is a document-rooted path: ask
            // the oracle about the prefix ending at this step.
            doc_chain(op).and_then(|(doc, steps)| f(&doc, &steps))
        }
        OpKind::Filter {
            input, predicate, ..
        } => {
            let child = annotate_op(input, f);
            let sel = crate::cost::predicate_selectivity(predicate);
            child.map(|c| {
                if c == 0 {
                    0
                } else {
                    ((c as f64 * sel).round() as u64).max(1)
                }
            })
        }
        OpKind::Ddo { input, .. } => annotate_op(input, f),
        OpKind::Concat { parts, .. } => parts
            .iter_mut()
            .map(|p| annotate_op(p, f))
            .sum::<Option<u64>>(),
        OpKind::Range { lo, hi, .. } => match (&*lo, &*hi) {
            (Expr::Literal(Atom::Number(a)), Expr::Literal(Atom::Number(b))) if b >= a => {
                Some((*b - *a) as u64 + 1)
            }
            _ => None,
        },
        OpKind::For { .. } | OpKind::Materialize { .. } => None,
    };
    op.est = est;
    est
}

/// The `(document, step prefix)` of a pure DocRoot + Step operator
/// chain, or `None` when any other operator interrupts it.
fn doc_chain(op: &Op) -> Option<(String, Vec<Step>)> {
    match &op.kind {
        OpKind::DocRoot { name, .. } => Some((name.clone(), Vec::new())),
        OpKind::Step { input, step, .. } => {
            let (doc, mut steps) = doc_chain(input)?;
            steps.push(step.clone());
            Some((doc, steps))
        }
        _ => None,
    }
}

impl Op {
    fn materialize(e: &Expr) -> Op {
        Op::from(OpKind::Materialize {
            expr: e.clone(),
            buf: None,
        })
    }

    fn depth(&self) -> usize {
        1 + match &self.kind {
            OpKind::DocRoot { .. }
            | OpKind::StructuralScan { .. }
            | OpKind::Range { .. }
            | OpKind::For { .. }
            | OpKind::Materialize { .. } => 0,
            OpKind::Step { input, .. }
            | OpKind::Filter { input, .. }
            | OpKind::Ddo { input, .. } => input.depth(),
            OpKind::Concat { parts, .. } => parts.iter().map(Op::depth).max().unwrap_or(0),
        }
    }

    fn enable_timing(&mut self) {
        self.timed = true;
        match &mut self.kind {
            OpKind::Step { input, .. }
            | OpKind::Filter { input, .. }
            | OpKind::Ddo { input, .. } => input.enable_timing(),
            OpKind::Concat { parts, .. } => parts.iter_mut().for_each(Op::enable_timing),
            _ => {}
        }
    }

    fn profile(&self) -> OpProfile {
        let (name, detail) = self.kind.label();
        let children: Vec<OpProfile> = match &self.kind {
            OpKind::Step { input, .. }
            | OpKind::Filter { input, .. }
            | OpKind::Ddo { input, .. } => vec![input.profile()],
            OpKind::Concat { parts, .. } => parts.iter().map(Op::profile).collect(),
            _ => Vec::new(),
        };
        let child_ns: u64 = children.iter().map(|c| c.cum_ns).sum();
        OpProfile {
            name,
            detail,
            pulls: self.pulls,
            items: self.items,
            cum_ns: self.cum_ns,
            self_ns: self.cum_ns.saturating_sub(child_ns),
            est: self.est,
            children,
        }
    }

    /// True when this operator is a structural scan that resolves to at
    /// most one schema-node chain: such a scan emits each descriptor
    /// exactly once, in document order, so a `Ddo` above it can stream.
    /// Resolving fills the scan's own open state, which the scan reuses.
    fn single_chain_scan(&mut self, ex: &mut Executor<'_>) -> QueryResult<bool> {
        let OpKind::StructuralScan {
            doc, steps, state, ..
        } = &mut self.kind
        else {
            return Ok(false);
        };
        if state.is_none() {
            let idx = ex
                .db
                .doc_idx(doc)
                .ok_or_else(|| QueryError::Dynamic(format!("no such document '{doc}'")))?;
            let sids = ex.structural_sids(idx, steps);
            *state = Some(ScanState {
                doc: idx,
                sids,
                next_sid: 0,
                blk: XPtr::NULL,
            });
        }
        let Some(st) = state else { unreachable!() };
        Ok(st.sids.len() <= 1)
    }

    /// Counted, optionally timed pull: the kind-specific work happens in
    /// [`OpKind::next`]; this wrapper maintains the operator's stats.
    fn next(&mut self, ex: &mut Executor<'_>) -> QueryResult<Option<Item>> {
        self.pulls += 1;
        let started = self.timed.then(Instant::now);
        let out = self.kind.next(ex);
        if let Some(t) = started {
            self.cum_ns += t.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        }
        if matches!(out, Ok(Some(_))) {
            self.items += 1;
        }
        out
    }
}

impl OpKind {
    /// Operator name + detail for the profile tree.
    fn label(&self) -> (&'static str, String) {
        match self {
            OpKind::DocRoot { name, .. } => ("DocRoot", format!("doc('{name}')")),
            OpKind::Step { step, .. } => ("Step", step_label(step)),
            OpKind::StructuralScan { doc, steps, .. } => {
                let path: Vec<String> = steps.iter().map(step_label).collect();
                ("StructuralScan", format!("doc('{doc}')/{}", path.join("/")))
            }
            OpKind::Filter { .. } => ("Filter", "predicate".into()),
            OpKind::For { clauses, .. } => ("For", format!("{} clauses", clauses.len())),
            OpKind::Range { .. } => ("Range", String::new()),
            OpKind::Concat { parts, .. } => ("Concat", format!("{} parts", parts.len())),
            OpKind::Ddo { passthrough, .. } => (
                "Ddo",
                match passthrough {
                    Some(true) => "streamed".into(),
                    Some(false) => "sorted".into(),
                    None => String::new(),
                },
            ),
            OpKind::Materialize { .. } => ("Materialize", "full evaluation".into()),
        }
    }

    fn next(&mut self, ex: &mut Executor<'_>) -> QueryResult<Option<Item>> {
        match self {
            OpKind::DocRoot { name, done } => {
                if *done {
                    return Ok(None);
                }
                *done = true;
                let idx = ex
                    .db
                    .doc_idx(name)
                    .ok_or_else(|| QueryError::Dynamic(format!("no such document '{name}'")))?;
                let node = ex.db.docs[idx].doc.doc_node(ex.db.vas)?;
                Ok(Some(Item::Node(crate::value::NodeId::Stored {
                    doc: idx,
                    node,
                })))
            }
            OpKind::Step { input, step, buf } => loop {
                if let Some(item) = buf.pop_front() {
                    return Ok(Some(item));
                }
                let node = match input.next(ex)? {
                    None => return Ok(None),
                    Some(Item::Node(n)) => n,
                    Some(Item::Atom(_)) => {
                        return Err(QueryError::Dynamic(
                            "path step applied to an atomic value".into(),
                        ))
                    }
                };
                let mut batch = ex.axis_nodes(node, step.axis, &step.test)?;
                ex.stats.nodes_scanned += batch.len() as u64;
                for p in &step.predicates {
                    batch = ex.apply_predicate(batch, p)?;
                }
                buf.extend(batch);
            },
            OpKind::StructuralScan {
                doc,
                steps,
                state,
                buf,
            } => loop {
                if let Some(item) = buf.pop_front() {
                    return Ok(Some(item));
                }
                if state.is_none() {
                    let idx = ex
                        .db
                        .doc_idx(doc)
                        .ok_or_else(|| QueryError::Dynamic(format!("no such document '{doc}'")))?;
                    let sids = ex.structural_sids(idx, steps);
                    *state = Some(ScanState {
                        doc: idx,
                        sids,
                        next_sid: 0,
                        blk: XPtr::NULL,
                    });
                }
                let Some(st) = state else { unreachable!() };
                if st.blk.is_null() {
                    if st.next_sid >= st.sids.len() {
                        return Ok(None);
                    }
                    st.blk = ex.first_block(st.doc, st.sids[st.next_sid]);
                    st.next_sid += 1;
                } else {
                    // One page pinned, for the duration of this refill
                    // only.
                    let mut batch = Vec::new();
                    st.blk = ex.scan_block(st.doc, st.blk, &mut batch)?;
                    buf.extend(batch);
                }
            },
            OpKind::Filter {
                input,
                predicate,
                pos,
            } => loop {
                let item = match input.next(ex)? {
                    None => return Ok(None),
                    Some(i) => i,
                };
                *pos += 1;
                // Size is unknowable without draining; compile_op
                // guarantees the predicate never calls last().
                ex.ctx.push((item.clone(), *pos, 0));
                let v = ex.eval(predicate);
                ex.ctx.pop();
                let v = v?;
                let keep = match v.as_slice() {
                    [Item::Atom(Atom::Number(n))] => (*n == *pos as f64) && n.fract() == 0.0,
                    _ => ex.ebv(&v)?,
                };
                if keep {
                    return Ok(Some(item));
                }
            },
            OpKind::For {
                clauses,
                where_,
                ret,
                state,
                buf,
            } => loop {
                if let Some(item) = buf.pop_front() {
                    return Ok(Some(item));
                }
                let st = state.get_or_insert_with(|| ForState {
                    seqs: vec![Vec::new(); clauses.len()],
                    idx: vec![0; clauses.len()],
                    started: false,
                });
                if !st.next_binding(ex, clauses)? {
                    return Ok(None);
                }
                if let Some(w) = where_ {
                    let c = ex.eval(w)?;
                    if !ex.ebv(&c)? {
                        continue;
                    }
                }
                buf.extend(ex.eval(ret)?);
            },
            OpKind::Range { lo, hi, state } => {
                if let RangeState::Unopened = state {
                    let va = ex.eval(lo)?;
                    let vb = ex.eval(hi)?;
                    *state = if va.is_empty() || vb.is_empty() {
                        RangeState::Done
                    } else {
                        RangeState::Running(
                            ex.atomize_number(&va)? as i64,
                            ex.atomize_number(&vb)? as i64,
                        )
                    };
                }
                match state {
                    RangeState::Running(cur, end) if *cur <= *end => {
                        let n = *cur;
                        *cur += 1;
                        Ok(Some(Item::number(n as f64)))
                    }
                    _ => {
                        *state = RangeState::Done;
                        Ok(None)
                    }
                }
            }
            OpKind::Concat { parts, idx } => {
                while *idx < parts.len() {
                    if let Some(item) = parts[*idx].next(ex)? {
                        return Ok(Some(item));
                    }
                    *idx += 1;
                }
                Ok(None)
            }
            OpKind::Ddo {
                input,
                passthrough,
                buf,
            } => {
                if passthrough.is_none() {
                    *passthrough = Some(input.single_chain_scan(ex)?);
                }
                if *passthrough == Some(true) {
                    return input.next(ex);
                }
                if buf.is_none() {
                    let mut seq = Vec::new();
                    while let Some(item) = input.next(ex)? {
                        seq.push(item);
                    }
                    *buf = Some(ex.ddo(seq)?.into());
                }
                Ok(buf.as_mut().and_then(VecDeque::pop_front))
            }
            OpKind::Materialize { expr, buf } => {
                if buf.is_none() {
                    *buf = Some(ex.eval(expr)?.into());
                }
                Ok(buf.as_mut().and_then(VecDeque::pop_front))
            }
        }
    }
}

impl ForState {
    /// Binds the clause variables to the next complete binding
    /// combination, returning false when the odometer is exhausted.
    /// Binding sequences are materialized per clause level (they carry
    /// node identities, not page pins) and re-evaluated whenever an
    /// outer clause advances, so inner clauses may reference outer
    /// variables.
    fn next_binding(
        &mut self,
        ex: &mut Executor<'_>,
        clauses: &[FlworClause],
    ) -> QueryResult<bool> {
        let n = clauses.len();
        // Down(i): (re-)open clause i; Up(i): backtrack into clause i-1.
        enum Dir {
            Down(usize),
            Up(usize),
        }
        let mut dir = if self.started {
            Dir::Up(n)
        } else {
            self.started = true;
            Dir::Down(0)
        };
        loop {
            match dir {
                Dir::Down(i) if i == n => return Ok(true),
                Dir::Down(i) => match &clauses[i] {
                    FlworClause::Let { slot, expr, .. } => {
                        let v = ex.eval(expr)?;
                        ex.slots[*slot] = Some(v);
                        dir = Dir::Down(i + 1);
                    }
                    FlworClause::For { expr, .. } => {
                        self.seqs[i] = ex.eval(expr)?;
                        self.idx[i] = 0;
                        if self.seqs[i].is_empty() {
                            dir = Dir::Up(i);
                        } else {
                            self.bind(ex, i, clauses);
                            dir = Dir::Down(i + 1);
                        }
                    }
                },
                Dir::Up(0) => return Ok(false),
                Dir::Up(i) => {
                    let k = i - 1;
                    match &clauses[k] {
                        FlworClause::Let { .. } => dir = Dir::Up(k),
                        FlworClause::For { .. } => {
                            self.idx[k] += 1;
                            if self.idx[k] < self.seqs[k].len() {
                                self.bind(ex, k, clauses);
                                dir = Dir::Down(k + 1);
                            } else {
                                dir = Dir::Up(k);
                            }
                        }
                    }
                }
            }
        }
    }

    fn bind(&self, ex: &mut Executor<'_>, i: usize, clauses: &[FlworClause]) {
        if let FlworClause::For { slot, at, .. } = &clauses[i] {
            ex.slots[*slot] = Some(vec![self.seqs[i][self.idx[i]].clone()]);
            if let Some((_, pslot)) = at {
                ex.slots[*pslot] = Some(vec![Item::number((self.idx[i] + 1) as f64)]);
            }
        }
    }
}

/// Whether any subexpression calls `last()` (by name; resolution does
/// not matter — a user function cannot shadow builtins here).
fn contains_last(e: &Expr) -> bool {
    let mut stack = vec![e];
    while let Some(e) = stack.pop() {
        match e {
            Expr::FnCall { name, args, .. } => {
                if name == "last" {
                    return true;
                }
                stack.extend(args.iter());
            }
            Expr::Sequence(v) => stack.extend(v.iter()),
            Expr::Flwor {
                clauses,
                where_,
                order,
                ret,
            } => {
                for c in clauses {
                    match c {
                        FlworClause::For { expr, .. } | FlworClause::Let { expr, .. } => {
                            stack.push(expr)
                        }
                    }
                }
                if let Some(w) = where_ {
                    stack.push(w);
                }
                for o in order {
                    stack.push(&o.key);
                }
                stack.push(ret);
            }
            Expr::Quantified {
                within, satisfies, ..
            } => {
                stack.push(within);
                stack.push(satisfies);
            }
            Expr::If { cond, then, els } => {
                stack.push(cond);
                stack.push(then);
                stack.push(els);
            }
            Expr::Or(a, b)
            | Expr::And(a, b)
            | Expr::Union(a, b)
            | Expr::Intersect(a, b)
            | Expr::Except(a, b)
            | Expr::Range(a, b)
            | Expr::GeneralCmp(_, a, b)
            | Expr::ValueCmp(_, a, b)
            | Expr::Arith(_, a, b) => {
                stack.push(a);
                stack.push(b);
            }
            Expr::Neg(a) | Expr::TextCtor(a) | Expr::Ddo(a) => stack.push(a),
            Expr::Cached { expr, .. } => stack.push(expr),
            Expr::Filter { input, predicates } => {
                stack.push(input);
                stack.extend(predicates.iter());
            }
            Expr::Path { start, steps } => {
                if let PathStart::Expr(inner) = start {
                    stack.push(inner);
                }
                for s in steps {
                    stack.extend(s.predicates.iter());
                }
            }
            Expr::ElementCtor {
                attrs, children, ..
            } => {
                for (_, parts) in attrs {
                    stack.extend(parts.iter());
                }
                stack.extend(children.iter());
            }
            Expr::StructuralPath { .. }
            | Expr::Literal(_)
            | Expr::Empty
            | Expr::VarRef { .. }
            | Expr::ContextItem => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Axis, FnResolution, NodeTest};

    fn doc_path(doc: &str, names: &[&str]) -> Expr {
        Expr::Path {
            start: PathStart::Doc(doc.into()),
            steps: names
                .iter()
                .map(|n| {
                    Step::plain(
                        Axis::Child,
                        NodeTest::Name(sedna_schema::SchemaName::local(*n)),
                    )
                })
                .collect(),
        }
    }

    #[test]
    fn path_compiles_to_streaming_step_chain() {
        let plan = Plan::compile(&doc_path("lib", &["a", "b", "c"]));
        assert!(plan.is_streaming());
        // DocRoot + three steps.
        assert_eq!(plan.depth(), 4);
    }

    #[test]
    fn last_predicate_forces_materialization() {
        let last = Expr::FnCall {
            name: "last".into(),
            args: vec![],
            resolved: FnResolution::Unresolved,
        };
        let filtered = Expr::Filter {
            input: doc_path("lib", &["a"]).boxed(),
            predicates: vec![last],
        };
        let plan = Plan::compile(&filtered);
        assert!(!plan.is_streaming());
        assert_eq!(plan.depth(), 1);
    }

    #[test]
    fn last_free_filter_streams() {
        let filtered = Expr::Filter {
            input: doc_path("lib", &["a"]).boxed(),
            predicates: vec![Expr::Literal(Atom::Number(2.0))],
        };
        let plan = Plan::compile(&filtered);
        assert!(plan.is_streaming());
        assert_eq!(plan.depth(), 3);
    }

    #[test]
    fn ddo_blocks_but_its_input_streams() {
        let plan = Plan::compile(&Expr::Ddo(doc_path("lib", &["a"]).boxed()));
        assert!(plan.is_streaming());
        assert_eq!(plan.depth(), 3);
    }

    #[test]
    fn order_by_flwor_materializes() {
        let flwor = Expr::Flwor {
            clauses: vec![FlworClause::For {
                var: "x".into(),
                slot: 0,
                at: None,
                expr: doc_path("lib", &["a"]),
            }],
            where_: None,
            order: vec![crate::ast::OrderSpec {
                key: Expr::ContextItem,
                descending: false,
            }],
            ret: Expr::ContextItem.boxed(),
        };
        assert!(!Plan::compile(&flwor).is_streaming());
        let unordered = Expr::Flwor {
            clauses: vec![FlworClause::For {
                var: "x".into(),
                slot: 0,
                at: None,
                expr: doc_path("lib", &["a"]),
            }],
            where_: None,
            order: vec![],
            ret: Expr::ContextItem.boxed(),
        };
        assert!(Plan::compile(&unordered).is_streaming());
    }

    #[test]
    fn profile_mirrors_the_operator_tree() {
        let plan = Plan::compile(&Expr::Ddo(doc_path("lib", &["a", "b"]).boxed()));
        let p = plan.profile();
        assert_eq!(p.name, "Ddo");
        assert_eq!(p.children.len(), 1);
        let step_b = &p.children[0];
        assert_eq!(step_b.name, "Step");
        assert_eq!(step_b.detail, "child::b");
        let step_a = &step_b.children[0];
        assert_eq!(step_a.detail, "child::a");
        let root = &step_a.children[0];
        assert_eq!(root.name, "DocRoot");
        assert_eq!(root.detail, "doc('lib')");
        assert!(root.children.is_empty());
        // Fresh plan: all counters zero, rendering still well-formed.
        assert_eq!((p.pulls, p.items, p.cum_ns, p.self_ns), (0, 0, 0, 0));
        let text = p.render();
        assert_eq!(text.lines().count(), 4);
        assert!(text.starts_with("Ddo  (pulls=0 items=0"));
        assert!(text.contains("\n      DocRoot doc('lib')  (pulls=0"));
    }

    #[test]
    fn estimates_annotate_the_tree_and_render() {
        let mut plan = Plan::compile(&Expr::Ddo(doc_path("lib", &["a", "b"]).boxed()));
        plan.annotate_estimates(&|doc: &str, steps: &[Step]| {
            assert_eq!(doc, "lib");
            Some(10u64.pow(steps.len() as u32))
        });
        let p = plan.profile();
        // Ddo passes its input's estimate through; each Step got the
        // oracle's answer for its own prefix length.
        assert_eq!(p.est, Some(100));
        assert_eq!(p.children[0].est, Some(100));
        assert_eq!(p.children[0].children[0].est, Some(10));
        assert_eq!(p.children[0].children[0].children[0].est, Some(1));
        let text = p.render();
        assert!(text.contains("est=100 act=0)"), "{text}");
        // An unannotated plan renders exactly as before.
        let plain = Plan::compile(&doc_path("lib", &["a"])).profile().render();
        assert!(!plain.contains("est="), "{plain}");
    }

    #[test]
    fn duration_rendering_scales_units() {
        assert_eq!(fmt_ns(640), "640ns");
        assert_eq!(fmt_ns(12_500), "12.5us");
        assert_eq!(fmt_ns(3_100_000), "3.1ms");
        assert_eq!(fmt_ns(1_200_000_000), "1.20s");
    }
}
