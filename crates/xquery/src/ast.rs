//! The uniform operation tree (§3: "the operation tree produced by the
//! parser is designed to provide uniform representation for all the 3
//! query/statement types" — queries, updates, DDL).

use sedna_schema::SchemaName;

use crate::value::Atom;

/// A complete statement: prolog + body.
#[derive(Clone, Debug, PartialEq)]
pub struct Statement {
    /// Prolog-declared global variables, in declaration order.
    pub vars: Vec<VarDecl>,
    /// Prolog-declared user functions.
    pub functions: Vec<UserFn>,
    /// The statement body.
    pub kind: StatementKind,
    /// Total variable slots allocated by static analysis.
    pub slot_count: usize,
    /// Cache slots allocated by the §5.1.3 lazy-evaluation rewrite.
    pub cache_count: usize,
}

/// A prolog variable declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct VarDecl {
    /// Variable name (without `$`).
    pub name: String,
    /// Slot assigned by static analysis.
    pub slot: usize,
    /// Initializer.
    pub init: Expr,
}

/// A prolog function declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct UserFn {
    /// Function name (the `local:` prefix is implied and stripped).
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Parameter slots.
    pub param_slots: Vec<usize>,
    /// Body.
    pub body: Expr,
}

/// The three statement classes of §3.
#[derive(Clone, Debug, PartialEq)]
pub enum StatementKind {
    /// An XQuery query.
    Query(Expr),
    /// An XUpdate statement.
    Update(UpdateStmt),
    /// A DDL statement.
    Ddl(DdlStmt),
}

/// XUpdate statements (§3: "our update language is syntactically close to
/// [Lehti's XUpdate]").
#[derive(Clone, Debug, PartialEq)]
pub enum UpdateStmt {
    /// `UPDATE insert Expr (into|following|preceding) Path`
    Insert {
        /// Content to insert (evaluated once).
        what: Expr,
        /// Placement relative to each target.
        pos: InsertPos,
        /// Target nodes.
        target: Expr,
    },
    /// `UPDATE delete Path`
    Delete {
        /// Target nodes (subtrees deleted).
        target: Expr,
    },
    /// `UPDATE replace value of Path with Expr`
    ReplaceValue {
        /// Target nodes.
        target: Expr,
        /// New value (atomized to a string).
        with: Expr,
    },
}

/// Placement of inserted content.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum InsertPos {
    /// As the last children of the target.
    Into,
    /// As following siblings of the target.
    Following,
    /// As preceding siblings of the target.
    Preceding,
}

/// Data-definition statements.
#[derive(Clone, Debug, PartialEq)]
pub enum DdlStmt {
    /// `CREATE DOCUMENT 'name'`
    CreateDocument(String),
    /// `DROP DOCUMENT 'name'`
    DropDocument(String),
    /// `CREATE INDEX 'name' ON doc('d')/path BY relative/path AS type`
    CreateIndex {
        /// Index name.
        name: String,
        /// Document the index covers.
        doc: String,
        /// Path from the document root selecting the indexed nodes.
        on: Vec<Step>,
        /// Relative path from each indexed node to its key value.
        by: Vec<Step>,
        /// Key type.
        key_type: IndexKeyType,
    },
    /// `DROP INDEX 'name'`
    DropIndex(String),
}

/// Index key types.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum IndexKeyType {
    /// `xs:string`
    String,
    /// `xs:double`
    Number,
}

/// XPath axes supported by the executor.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Axis {
    /// `child::`
    Child,
    /// `descendant::`
    Descendant,
    /// `descendant-or-self::`
    DescendantOrSelf,
    /// `self::`
    SelfAxis,
    /// `parent::`
    Parent,
    /// `ancestor::`
    Ancestor,
    /// `ancestor-or-self::`
    AncestorOrSelf,
    /// `following-sibling::`
    FollowingSibling,
    /// `preceding-sibling::`
    PrecedingSibling,
    /// `attribute::`
    Attribute,
}

impl Axis {
    /// Whether the axis yields nodes in reverse document order.
    pub fn is_reverse(self) -> bool {
        matches!(
            self,
            Axis::Parent | Axis::Ancestor | Axis::AncestorOrSelf | Axis::PrecedingSibling
        )
    }
}

/// Node tests.
#[derive(Clone, Debug, PartialEq)]
pub enum NodeTest {
    /// A name test (`para`, `pre:para`).
    Name(SchemaName),
    /// `*`
    Wildcard,
    /// `text()`
    Text,
    /// `comment()`
    Comment,
    /// `processing-instruction()` with optional target.
    Pi(Option<String>),
    /// `node()`
    AnyKind,
}

/// One path step.
#[derive(Clone, Debug, PartialEq)]
pub struct Step {
    /// The axis.
    pub axis: Axis,
    /// The node test.
    pub test: NodeTest,
    /// Predicates, applied in order.
    pub predicates: Vec<Expr>,
}

impl Step {
    /// A predicate-free step.
    pub fn plain(axis: Axis, test: NodeTest) -> Step {
        Step {
            axis,
            test,
            predicates: Vec::new(),
        }
    }
}

/// Where a path expression starts.
#[derive(Clone, Debug, PartialEq)]
pub enum PathStart {
    /// From the context item.
    Context,
    /// From `doc('name')` / `document('name')`.
    Doc(String),
    /// From `/` — the root of the context item's document.
    Root,
    /// From an arbitrary expression (`expr/step/...`).
    Expr(Box<Expr>),
}

/// Comparison operators.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `=` / `eq`
    Eq,
    /// `!=` / `ne`
    Ne,
    /// `<` / `lt`
    Lt,
    /// `<=` / `le`
    Le,
    /// `>` / `gt`
    Gt,
    /// `>=` / `ge`
    Ge,
}

/// Arithmetic operators.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `div`
    Div,
    /// `idiv`
    IDiv,
    /// `mod`
    Mod,
}

/// FLWOR clauses (for/let; where/order/return are on [`Expr::Flwor`]).
#[derive(Clone, Debug, PartialEq)]
pub enum FlworClause {
    /// `for $v [at $p] in Expr`
    For {
        /// Variable name.
        var: String,
        /// Variable slot.
        slot: usize,
        /// Positional variable, if declared.
        at: Option<(String, usize)>,
        /// Binding sequence.
        expr: Expr,
    },
    /// `let $v := Expr`
    Let {
        /// Variable name.
        var: String,
        /// Variable slot.
        slot: usize,
        /// Bound expression.
        expr: Expr,
        /// Marked by the §5.1.3 rewrite: the expression does not depend on
        /// enclosing for-variables and is evaluated once.
        lazy: bool,
    },
}

/// How a function call was resolved by static analysis.
#[derive(Clone, Debug, PartialEq)]
pub enum FnResolution {
    /// Not yet resolved (pre-analysis).
    Unresolved,
    /// A built-in function (index into the registry).
    Builtin(usize),
    /// A prolog-declared function (index into [`Statement::functions`]).
    User(usize),
}

/// An ordering key of `order by`.
#[derive(Clone, Debug, PartialEq)]
pub struct OrderSpec {
    /// Key expression.
    pub key: Expr,
    /// Descending order?
    pub descending: bool,
}

/// The expression tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A literal atom.
    Literal(Atom),
    /// The empty sequence `()`.
    Empty,
    /// Sequence concatenation `(a, b, c)`.
    Sequence(Vec<Expr>),
    /// `$name`
    VarRef {
        /// Variable name.
        name: String,
        /// Slot (usize::MAX before analysis).
        slot: usize,
    },
    /// `.`
    ContextItem,
    /// FLWOR expression.
    Flwor {
        /// for/let clauses in order.
        clauses: Vec<FlworClause>,
        /// `where`
        where_: Option<Box<Expr>>,
        /// `order by`
        order: Vec<OrderSpec>,
        /// `return`
        ret: Box<Expr>,
    },
    /// `some/every $v in E satisfies P`
    Quantified {
        /// `some` (true) or `every` (false).
        some: bool,
        /// Variable name.
        var: String,
        /// Variable slot.
        slot: usize,
        /// Binding sequence.
        within: Box<Expr>,
        /// Condition.
        satisfies: Box<Expr>,
    },
    /// `if (c) then t else e`
    If {
        /// Condition.
        cond: Box<Expr>,
        /// Then branch.
        then: Box<Expr>,
        /// Else branch.
        els: Box<Expr>,
    },
    /// Logical or.
    Or(Box<Expr>, Box<Expr>),
    /// Logical and.
    And(Box<Expr>, Box<Expr>),
    /// General comparison (existential over sequences).
    GeneralCmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Value comparison (singletons).
    ValueCmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Arithmetic.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Unary minus.
    Neg(Box<Expr>),
    /// `a to b`
    Range(Box<Expr>, Box<Expr>),
    /// `union` / `|`
    Union(Box<Expr>, Box<Expr>),
    /// `intersect`
    Intersect(Box<Expr>, Box<Expr>),
    /// `except`
    Except(Box<Expr>, Box<Expr>),
    /// A path expression.
    Path {
        /// Where the path starts.
        start: PathStart,
        /// The steps.
        steps: Vec<Step>,
    },
    /// A function call.
    FnCall {
        /// As written.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Filled by static analysis.
        resolved: FnResolution,
    },
    /// Direct element constructor with literal name.
    ElementCtor {
        /// Element name.
        name: SchemaName,
        /// Attributes: name and value parts (concatenated as strings).
        attrs: Vec<(SchemaName, Vec<Expr>)>,
        /// Content in order (literal text arrives as `Literal(String)`).
        children: Vec<Expr>,
    },
    /// `text { expr }` — or literal text inside a constructor.
    TextCtor(Box<Expr>),
    /// Explicit distinct-document-order operation (inserted around path
    /// steps; the §5.1.1 rewrite removes the redundant ones).
    Ddo(Box<Expr>),
    /// Marked by the optimizer: evaluate once and cache in `cache_slot`
    /// (§5.1.3 lazy invariant expressions).
    Cached {
        /// The invariant expression.
        expr: Box<Expr>,
        /// Cache slot.
        cache_slot: usize,
    },
    /// A filter expression: `primary[pred]...` on an arbitrary sequence.
    Filter {
        /// The filtered sequence.
        input: Box<Expr>,
        /// Predicates in order (numeric = positional).
        predicates: Vec<Expr>,
    },
    /// Marked by the §5.1.4 rewrite: a structural location path executed
    /// over the descriptive schema. `doc` names the document; `steps`
    /// hold only descending axes and no predicates.
    StructuralPath {
        /// Document name.
        doc: String,
        /// The structural steps.
        steps: Vec<Step>,
    },
}

impl Expr {
    /// Shorthand for a boxed expression.
    pub fn boxed(self) -> Box<Expr> {
        Box::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reverse_axes_flagged() {
        assert!(Axis::Ancestor.is_reverse());
        assert!(Axis::PrecedingSibling.is_reverse());
        assert!(!Axis::Child.is_reverse());
        assert!(!Axis::Descendant.is_reverse());
    }

    #[test]
    fn step_plain_has_no_predicates() {
        let s = Step::plain(Axis::Child, NodeTest::Wildcard);
        assert!(s.predicates.is_empty());
    }
}
