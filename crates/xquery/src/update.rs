//! The update executor (§5.2): "The statement of XUpdate-based language
//! is represented as an execution plan which consists of two parts. The
//! first part selects nodes that are target for the update, and the
//! second part updates the selected nodes. The selected nodes as well as
//! intermediate result of any query expression are represented by direct
//! pointers. Since direct node pointers are essentially invalidated after
//! a number of move operations are performed, the updated nodes are
//! referred to by **node handles**."
//!
//! Phase 1 ([`plan_update`]) evaluates the target path and the content
//! expression against an immutable [`Database`] view and converts every
//! selected node to its handle; phase 2 ([`execute_plan`]) applies the
//! mutations through `DocStorage` with `&mut` access.

use sedna_sas::{Vas, XPtr};
use sedna_schema::{NodeKind, SchemaName, SchemaTree};
use sedna_storage::DocStorage;

use crate::ast::{InsertPos, Statement, StatementKind, UpdateStmt};
use crate::error::{QueryError, QueryResult};
use crate::exec::{ConstructMode, Database, Executor};
use crate::value::{Item, NodeId};

/// A fully materialized node tree to insert (independent of the query's
/// arena and of the source documents).
#[derive(Clone, Debug, PartialEq)]
pub struct OwnedNode {
    /// Node kind.
    pub kind: NodeKind,
    /// Name for named kinds.
    pub name: Option<SchemaName>,
    /// String value for valued kinds.
    pub value: String,
    /// Children (attributes first).
    pub children: Vec<OwnedNode>,
}

/// The two-part update plan.
#[derive(Debug)]
pub enum UpdatePlan {
    /// Insert `content` at `pos` relative to each target handle.
    Insert {
        /// Materialized content roots.
        content: Vec<OwnedNode>,
        /// Placement.
        pos: InsertPos,
        /// Target node handles.
        targets: Vec<XPtr>,
    },
    /// Delete the subtrees behind the handles.
    Delete {
        /// Target node handles.
        targets: Vec<XPtr>,
    },
    /// Replace each target's value with the string.
    ReplaceValue {
        /// Target node handles.
        targets: Vec<XPtr>,
        /// The new value.
        value: String,
    },
}

impl UpdatePlan {
    /// Number of target nodes.
    pub fn target_count(&self) -> usize {
        match self {
            UpdatePlan::Insert { targets, .. }
            | UpdatePlan::Delete { targets }
            | UpdatePlan::ReplaceValue { targets, .. } => targets.len(),
        }
    }
}

/// Phase 1: select targets (converting direct pointers to handles) and
/// materialize insert content. All targets must be in one document; its
/// index in `db.docs` is returned with the plan.
pub fn plan_update(stmt: &Statement, db: &Database) -> QueryResult<(usize, UpdatePlan)> {
    let (doc, plan, _) = plan_update_with_stats(stmt, db)?;
    Ok((doc, plan))
}

/// [`plan_update`], additionally returning the planning executor's
/// counters (the target-selection phase IS a query; sessions fold these
/// into their per-statement profile).
pub fn plan_update_with_stats(
    stmt: &Statement,
    db: &Database,
) -> QueryResult<(usize, UpdatePlan, crate::exec::ExecStats)> {
    let StatementKind::Update(upd) = &stmt.kind else {
        return Err(QueryError::Dynamic("not an update statement".into()));
    };
    let mut ex = Executor::new(db, stmt, ConstructMode::Embedded);
    let (doc, plan) = match upd {
        UpdateStmt::Insert { what, pos, target } => {
            let content_seq = ex.eval_entry(what)?;
            let content = materialize(&ex, &content_seq)?;
            let target_seq = ex.eval_entry(target)?;
            let (doc, targets) = targets_to_handles(&ex, db, &target_seq)?;
            (
                doc,
                UpdatePlan::Insert {
                    content,
                    pos: *pos,
                    targets,
                },
            )
        }
        UpdateStmt::Delete { target } => {
            let target_seq = ex.eval_entry(target)?;
            let (doc, targets) = targets_to_handles(&ex, db, &target_seq)?;
            (doc, UpdatePlan::Delete { targets })
        }
        UpdateStmt::ReplaceValue { target, with } => {
            let v = ex.eval_entry(with)?;
            let value = match v.first() {
                None => String::new(),
                Some(item) => ex.atomize_item(item)?.to_string_value(),
            };
            let target_seq = ex.eval_entry(target)?;
            let (doc, targets) = targets_to_handles(&ex, db, &target_seq)?;
            (doc, UpdatePlan::ReplaceValue { targets, value })
        }
    };
    Ok((doc, plan, ex.stats))
}

fn targets_to_handles(
    ex: &Executor,
    db: &Database,
    seq: &[Item],
) -> QueryResult<(usize, Vec<XPtr>)> {
    let _ = ex;
    let mut doc_idx: Option<usize> = None;
    let mut handles = Vec::with_capacity(seq.len());
    for item in seq {
        match item {
            Item::Node(NodeId::Stored { doc, node }) => {
                if *doc_idx.get_or_insert(*doc) != *doc {
                    return Err(QueryError::Dynamic(
                        "update targets span multiple documents".into(),
                    ));
                }
                handles.push(node.handle(db.vas)?);
            }
            Item::Node(NodeId::Temp(_)) => {
                return Err(QueryError::Dynamic(
                    "constructed nodes cannot be update targets".into(),
                ))
            }
            Item::Atom(_) => return Err(QueryError::Dynamic("update target is not a node".into())),
        }
    }
    let doc = doc_idx.ok_or_else(|| QueryError::Dynamic("empty update target".into()))?;
    Ok((doc, handles))
}

/// Materializes a content sequence into owned trees.
fn materialize(ex: &Executor, seq: &[Item]) -> QueryResult<Vec<OwnedNode>> {
    let mut out = Vec::new();
    let mut text = String::new();
    for item in seq {
        match item {
            Item::Atom(a) => {
                if !text.is_empty() {
                    text.push(' ');
                }
                text.push_str(&a.to_string_value());
            }
            Item::Node(n) => {
                if !text.is_empty() {
                    out.push(OwnedNode {
                        kind: NodeKind::Text,
                        name: None,
                        value: std::mem::take(&mut text),
                        children: Vec::new(),
                    });
                }
                out.push(materialize_node(ex, *n)?);
            }
        }
    }
    if !text.is_empty() {
        out.push(OwnedNode {
            kind: NodeKind::Text,
            name: None,
            value: text,
            children: Vec::new(),
        });
    }
    Ok(out)
}

fn materialize_node(ex: &Executor, node: NodeId) -> QueryResult<OwnedNode> {
    let kind = ex.node_kind(node)?;
    let name = ex.node_name(node)?;
    let value = match kind {
        NodeKind::Element | NodeKind::Document => String::new(),
        _ => match node {
            NodeId::Stored { .. } => ex.string_value(node)?,
            NodeId::Temp(_) => ex.string_value(node)?,
        },
    };
    let mut children = Vec::new();
    if matches!(kind, NodeKind::Element | NodeKind::Document) {
        for c in ex.children_of(node)? {
            children.push(materialize_node(ex, c)?);
        }
    }
    Ok(OwnedNode {
        kind,
        name,
        value,
        children,
    })
}

/// What an executed plan did.
#[derive(Debug, Default)]
pub struct UpdateOutcome {
    /// Number of target nodes affected.
    pub affected: usize,
    /// Handles of the roots of newly inserted subtrees (for index
    /// maintenance).
    pub inserted_roots: Vec<XPtr>,
}

/// Phase 2: applies the plan. Returns what was done.
pub fn execute_plan(
    plan: &UpdatePlan,
    vas: &Vas,
    schema: &mut SchemaTree,
    doc: &mut DocStorage,
) -> QueryResult<UpdateOutcome> {
    let mut outcome = UpdateOutcome::default();
    match plan {
        UpdatePlan::Delete { targets } => {
            for &h in targets {
                doc.delete_subtree(vas, schema, h)?;
            }
            outcome.affected = targets.len();
            Ok(outcome)
        }
        UpdatePlan::ReplaceValue { targets, value } => {
            for &h in targets {
                let node =
                    sedna_storage::NodeRef(sedna_storage::indirection::deref_handle(vas, h)?);
                match node.kind(vas)? {
                    NodeKind::Element => {
                        // Replace all children with a single text node.
                        let kids: Vec<XPtr> = node
                            .children(vas)?
                            .into_iter()
                            .filter(|c| !matches!(c.kind(vas), Ok(NodeKind::Attribute)))
                            .map(|c| c.handle(vas))
                            .collect::<Result<_, _>>()?;
                        for k in kids {
                            doc.delete_subtree(vas, schema, k)?;
                        }
                        doc.insert_node(
                            vas,
                            schema,
                            h,
                            None,
                            None,
                            NodeKind::Text,
                            None,
                            Some(value.as_bytes()),
                        )?;
                    }
                    _ => doc.set_value(vas, schema, h, value.as_bytes())?,
                }
            }
            outcome.affected = targets.len();
            Ok(outcome)
        }
        UpdatePlan::Insert {
            content,
            pos,
            targets,
        } => {
            for &target in targets {
                match pos {
                    InsertPos::Into => {
                        // Append after the current last child.
                        let node = sedna_storage::NodeRef(
                            sedna_storage::indirection::deref_handle(vas, target)?,
                        );
                        let mut left = match node.children(vas)?.last() {
                            Some(last) => Some(last.handle(vas)?),
                            None => None,
                        };
                        for c in content {
                            let h = insert_owned(vas, schema, doc, target, left, None, c)?;
                            outcome.inserted_roots.push(h);
                            left = Some(h);
                        }
                    }
                    InsertPos::Following => {
                        let node = sedna_storage::NodeRef(
                            sedna_storage::indirection::deref_handle(vas, target)?,
                        );
                        let parent = node
                            .parent(vas, doc.mode)?
                            .ok_or_else(|| {
                                QueryError::Dynamic("cannot insert beside the root".into())
                            })?
                            .handle(vas)?;
                        let right = match node.right_sibling(vas)? {
                            Some(r) => Some(r.handle(vas)?),
                            None => None,
                        };
                        let mut left = Some(target);
                        for c in content {
                            let h = insert_owned(vas, schema, doc, parent, left, right, c)?;
                            outcome.inserted_roots.push(h);
                            left = Some(h);
                        }
                    }
                    InsertPos::Preceding => {
                        let node = sedna_storage::NodeRef(
                            sedna_storage::indirection::deref_handle(vas, target)?,
                        );
                        let parent = node
                            .parent(vas, doc.mode)?
                            .ok_or_else(|| {
                                QueryError::Dynamic("cannot insert beside the root".into())
                            })?
                            .handle(vas)?;
                        let mut left = match node.left_sibling(vas)? {
                            Some(l) => Some(l.handle(vas)?),
                            None => None,
                        };
                        for c in content {
                            let h = insert_owned(vas, schema, doc, parent, left, Some(target), c)?;
                            outcome.inserted_roots.push(h);
                            left = Some(h);
                        }
                    }
                }
            }
            outcome.affected = targets.len();
            Ok(outcome)
        }
    }
}

/// Recursively inserts an owned tree under `parent` between `left` and
/// `right` (handles). Returns the new node's handle.
fn insert_owned(
    vas: &Vas,
    schema: &mut SchemaTree,
    doc: &mut DocStorage,
    parent: XPtr,
    left: Option<XPtr>,
    right: Option<XPtr>,
    node: &OwnedNode,
) -> QueryResult<XPtr> {
    let value = match node.kind {
        NodeKind::Element | NodeKind::Document => None,
        _ => Some(node.value.as_bytes()),
    };
    let handle = doc.insert_node(
        vas,
        schema,
        parent,
        left,
        right,
        node.kind,
        node.name.clone(),
        value,
    )?;
    let mut last: Option<XPtr> = None;
    for c in &node.children {
        let h = insert_owned(vas, schema, doc, handle, last, None, c)?;
        last = Some(h);
    }
    Ok(handle)
}

/// One-call convenience used by the database core: plan against `db`,
/// then the caller re-invokes [`execute_plan`] with mutable storage.
pub struct UpdateTarget;

/// Plans and applies in one step when the caller can provide both the
/// read view and the mutable storage of the (single) target document.
/// `doc_idx` must identify `schema`/`doc` within the view used to build
/// `db` — verified against the plan.
pub fn apply_update(
    stmt: &Statement,
    db: &Database,
    doc_idx: usize,
    vas: &Vas,
    schema: &mut SchemaTree,
    doc: &mut DocStorage,
) -> QueryResult<usize> {
    let (planned_doc, plan) = plan_update(stmt, db)?;
    if planned_doc != doc_idx {
        return Err(QueryError::Dynamic(format!(
            "update targets document #{planned_doc}, but mutable access was provided for #{doc_idx}"
        )));
    }
    Ok(execute_plan(&plan, vas, schema, doc)?.affected)
}

// Silence the unused-type lint gracefully: UpdateTarget is part of the
// public API surface for naming symmetry.
const _: () = {
    let _ = std::mem::size_of::<UpdateTarget>;
};
