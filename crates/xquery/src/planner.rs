//! The cost-based planner, fed by the descriptive-schema statistics.
//!
//! The rule-based rewriter ([`crate::rewrite`]) implements the paper's
//! §5.1 optimizations, but it is blind to data volume: it always picks
//! the structural scan, and a B-tree index is only used when the query
//! spells out `index-scan(...)` by hand. This module adds the missing
//! half: after the rewriter runs, [`plan_statement`] walks the
//! statement once more and uses the statistics maintained on every
//! [`sedna_schema::SchemaNode`] (descriptor count, block count, fan-out
//! histogram — see [`crate::cost`]) to
//!
//! 1. **choose the access path** for equality-filtered paths: when the
//!    path prefix matches a declared index's `on` path and the
//!    predicate compares the index's `by` path against a literal, the
//!    planner compares the *exact* structural-scan cost against the
//!    estimated B-tree probe cost and, when the index wins, rewrites
//!    the path into the `index-scan` builtin (which the executor, the
//!    lock manager and the trace layer already understand);
//! 2. **reorder conjunctive predicates** — filter/step predicate lists
//!    and `where`-clause `and`-chains — most-selective-first, whenever
//!    no predicate can observe context position or size;
//! 3. **classify** the statement's dominant access path (structural
//!    scan / index / descendant expansion) and estimate its result
//!    cardinality, which the session layer exposes as metrics and as
//!    `est=…` annotations in `EXPLAIN ANALYZE`.
//!
//! Streaming clients (cursors) pass `streaming: true`, which penalizes
//! index access: index output is in key order and must be re-sorted
//! into document order, forfeiting the pull pipeline. A plan costed for
//! one client shape is never reused for the other (the plan-cache key
//! includes the flag).

use std::collections::HashMap;

use sedna_schema::SchemaTree;

use crate::ast::{
    Axis, CmpOp, Expr, FlworClause, FnResolution, IndexKeyType, PathStart, Statement,
    StatementKind, Step, UpdateStmt,
};
use crate::cost;
use crate::functions;
use crate::rewrite::{may_depend_on_position, visit};
use crate::value::Atom;

/// One declared index, as the planner sees it.
#[derive(Debug, Clone)]
pub struct IndexSpec {
    /// Index name (the first argument of the injected `index-scan`).
    pub name: String,
    /// Document the index covers.
    pub doc: String,
    /// Path from the document root to the indexed nodes.
    pub on: Vec<Step>,
    /// Relative path from an indexed node to its key value.
    pub by: Vec<Step>,
    /// Key type; a literal of the other type never matches this index.
    pub key_type: IndexKeyType,
}

/// The access path the planner chose for a statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AccessPath {
    /// Structural scan of schema-node block lists (§5.1.4).
    #[default]
    Scan,
    /// At least one path was routed through a B-tree index.
    Index,
    /// Descendant-axis expansion over the descriptive schema.
    Descendant,
}

/// What the planner decided for one statement (exposed as metrics, in
/// `EXPLAIN ANALYZE`, and asserted by the ablation benchmark).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PlanDecision {
    /// Dominant access path of the statement body.
    pub access_path: AccessPath,
    /// Paths rewritten into `index-scan` calls.
    pub index_rewrites: u64,
    /// Predicate lists / `and`-chains reordered by selectivity.
    pub predicates_reordered: u64,
    /// Estimated result cardinality of a query body (`None` when the
    /// body is not estimable from the schema statistics).
    pub estimated_rows: Option<u64>,
    /// Structural-scan cost of the last index candidate considered.
    pub scan_cost: Option<f64>,
    /// Index-access cost of the last index candidate considered.
    pub index_cost: Option<f64>,
}

/// Everything the planner needs from the database: per-document schema
/// trees (which carry the statistics), the declared indexes, and the
/// client shape.
#[derive(Debug, Default)]
pub struct PlannerInput<'a> {
    /// Document name → its descriptive schema.
    pub docs: HashMap<String, &'a SchemaTree>,
    /// Declared value indexes.
    pub indexes: Vec<IndexSpec>,
    /// Whether the plan serves a streaming cursor client.
    pub streaming: bool,
}

/// Runs the cost-based planning pass over a rewritten statement,
/// mutating it in place and returning what was decided.
pub fn plan_statement(stmt: &mut Statement, input: &PlannerInput<'_>) -> PlanDecision {
    let mut p = Planner {
        input,
        decision: PlanDecision::default(),
    };
    for v in &mut stmt.vars {
        p.plan_expr(&mut v.init);
    }
    for f in &mut stmt.functions {
        p.plan_expr(&mut f.body);
    }
    match &mut stmt.kind {
        StatementKind::Query(e) => {
            p.plan_expr(e);
            p.decision.estimated_rows = estimate_expr(e, input);
            p.decision.access_path = classify(e, p.decision.index_rewrites);
        }
        StatementKind::Update(u) => {
            match u {
                UpdateStmt::Insert { what, target, .. } => {
                    p.plan_expr(what);
                    p.plan_expr(target);
                }
                UpdateStmt::Delete { target } => p.plan_expr(target),
                UpdateStmt::ReplaceValue { target, with } => {
                    p.plan_expr(target);
                    p.plan_expr(with);
                }
            }
            let target = match u {
                UpdateStmt::Insert { target, .. }
                | UpdateStmt::Delete { target }
                | UpdateStmt::ReplaceValue { target, .. } => target,
            };
            p.decision.access_path = classify(target, p.decision.index_rewrites);
        }
        StatementKind::Ddl(_) => {}
    }
    p.decision
}

/// Estimated result cardinality of an expression, bottoming out in the
/// exact per-schema-node counters for descending paths. `None` means
/// "not estimable" — never a guess.
pub fn estimate_expr(e: &Expr, input: &PlannerInput<'_>) -> Option<u64> {
    match e {
        Expr::Ddo(inner) => estimate_expr(inner, input),
        Expr::Cached { expr, .. } => estimate_expr(expr, input),
        Expr::StructuralPath { doc, steps } => {
            let tree = input.docs.get(doc.as_str())?;
            cost::estimate_path_cardinality(tree, steps)
        }
        Expr::Path {
            start: PathStart::Doc(doc),
            steps,
        } => {
            let tree = input.docs.get(doc.as_str())?;
            cost::estimate_path_cardinality(tree, steps)
        }
        Expr::Filter {
            input: inner,
            predicates,
        } => {
            let base = estimate_expr(inner, input)?;
            let scaled = predicates
                .iter()
                .fold(base as f64, |acc, p| acc * cost::predicate_selectivity(p));
            Some(if base == 0 {
                0
            } else {
                (scaled.round() as u64).max(1)
            })
        }
        Expr::Sequence(items) => items
            .iter()
            .map(|i| estimate_expr(i, input))
            .sum::<Option<u64>>(),
        Expr::FnCall { name, args, .. } if name == "index-scan" => {
            let Some(Expr::Literal(Atom::String(iname))) = args.first() else {
                return None;
            };
            let spec = input.indexes.iter().find(|s| &s.name == iname)?;
            let tree = input.docs.get(spec.doc.as_str())?;
            let stats = cost::path_stats(tree, &spec.on)?;
            Some(cost::index_match_estimate(stats.nodes))
        }
        Expr::Literal(_) => Some(1),
        Expr::Empty => Some(0),
        _ => None,
    }
}

/// The statement's dominant access path: an index rewrite trumps
/// everything, then any descendant-axis step, then the structural scan.
fn classify(e: &Expr, index_rewrites: u64) -> AccessPath {
    if index_rewrites > 0 {
        return AccessPath::Index;
    }
    let mut descendant = false;
    visit(e, &mut |x| {
        let steps = match x {
            Expr::StructuralPath { steps, .. } => steps,
            Expr::Path { steps, .. } => steps,
            _ => return,
        };
        if steps
            .iter()
            .any(|s| matches!(s.axis, Axis::Descendant | Axis::DescendantOrSelf))
        {
            descendant = true;
        }
    });
    if descendant {
        AccessPath::Descendant
    } else {
        AccessPath::Scan
    }
}

struct Planner<'a, 'b> {
    input: &'b PlannerInput<'a>,
    decision: PlanDecision,
}

impl Planner<'_, '_> {
    /// Plans an expression bottom-up: children first, then predicate
    /// reordering, then the index rewrite attempt at this node.
    fn plan_expr(&mut self, e: &mut Expr) {
        match e {
            Expr::Sequence(items) => {
                for i in items {
                    self.plan_expr(i);
                }
            }
            Expr::Flwor {
                clauses,
                where_,
                order,
                ret,
            } => {
                for c in clauses {
                    match c {
                        FlworClause::For { expr, .. } | FlworClause::Let { expr, .. } => {
                            self.plan_expr(expr)
                        }
                    }
                }
                if let Some(w) = where_ {
                    self.plan_expr(w);
                    self.reorder_and_chain(w);
                }
                for o in order {
                    self.plan_expr(&mut o.key);
                }
                self.plan_expr(ret);
            }
            Expr::Quantified {
                within, satisfies, ..
            } => {
                self.plan_expr(within);
                self.plan_expr(satisfies);
            }
            Expr::If { cond, then, els } => {
                self.plan_expr(cond);
                self.plan_expr(then);
                self.plan_expr(els);
            }
            Expr::Or(a, b)
            | Expr::And(a, b)
            | Expr::GeneralCmp(_, a, b)
            | Expr::ValueCmp(_, a, b)
            | Expr::Arith(_, a, b)
            | Expr::Range(a, b)
            | Expr::Union(a, b)
            | Expr::Intersect(a, b)
            | Expr::Except(a, b) => {
                self.plan_expr(a);
                self.plan_expr(b);
            }
            Expr::Neg(a) | Expr::Ddo(a) | Expr::TextCtor(a) => self.plan_expr(a),
            Expr::Cached { expr, .. } => self.plan_expr(expr),
            Expr::Filter { input, predicates } => {
                self.plan_expr(input);
                for p in predicates.iter_mut() {
                    self.plan_expr(p);
                }
                self.reorder_predicates(predicates);
            }
            Expr::Path { start, steps } => {
                if let PathStart::Expr(inner) = start {
                    self.plan_expr(inner);
                }
                for s in steps.iter_mut() {
                    for p in &mut s.predicates {
                        self.plan_expr(p);
                    }
                    self.reorder_predicates(&mut s.predicates);
                }
            }
            Expr::FnCall { args, .. } => {
                for a in args {
                    self.plan_expr(a);
                }
            }
            Expr::ElementCtor {
                attrs, children, ..
            } => {
                for (_, parts) in attrs {
                    for p in parts {
                        self.plan_expr(p);
                    }
                }
                for c in children {
                    self.plan_expr(c);
                }
            }
            _ => {}
        }
        self.try_index_rewrite(e);
    }

    /// Reorders a conjunctive predicate list most-selective-first. Only
    /// legal when no predicate can observe context position or size —
    /// then the list is a pure conjunction and order affects cost only.
    fn reorder_predicates(&mut self, preds: &mut Vec<Expr>) {
        if preds.len() < 2 || preds.iter().any(may_depend_on_position) {
            return;
        }
        let sel: Vec<f64> = preds.iter().map(cost::predicate_selectivity).collect();
        if sel.windows(2).all(|w| w[0] <= w[1]) {
            return;
        }
        let mut order: Vec<usize> = (0..preds.len()).collect();
        // Stable: equal selectivities keep their written order.
        order.sort_by(|&a, &b| sel[a].total_cmp(&sel[b]));
        let mut drained: Vec<Option<Expr>> = preds.drain(..).map(Some).collect();
        preds.extend(
            order
                .into_iter()
                .map(|i| drained[i].take().expect("unique index")),
        );
        self.decision.predicates_reordered += 1;
    }

    /// Reorders a `where`-clause `and`-chain most-selective-first (the
    /// FLWOR counterpart of predicate reordering). `and` operands are
    /// effective-boolean-valued, so the conjunction is order-free.
    fn reorder_and_chain(&mut self, e: &mut Expr) {
        if !matches!(e, Expr::And(..)) {
            return;
        }
        fn flatten(e: Expr, out: &mut Vec<Expr>) {
            if let Expr::And(a, b) = e {
                flatten(*a, out);
                flatten(*b, out);
            } else {
                out.push(e);
            }
        }
        let mut parts = Vec::new();
        flatten(std::mem::replace(e, Expr::Empty), &mut parts);
        let sel: Vec<f64> = parts.iter().map(cost::predicate_selectivity).collect();
        if !sel.windows(2).all(|w| w[0] <= w[1]) {
            let mut order: Vec<usize> = (0..parts.len()).collect();
            order.sort_by(|&a, &b| sel[a].total_cmp(&sel[b]));
            let mut drained: Vec<Option<Expr>> = parts.drain(..).map(Some).collect();
            parts.extend(
                order
                    .into_iter()
                    .map(|i| drained[i].take().expect("unique index")),
            );
            self.decision.predicates_reordered += 1;
        }
        let mut it = parts.into_iter();
        let mut acc = it.next().expect("and-chain has >= 2 parts");
        for part in it {
            acc = Expr::And(acc.boxed(), part.boxed());
        }
        *e = acc;
    }

    /// Rewrites `doc('d')/on-path[by-path = literal]/rest` into
    /// `ddo(index-scan('name', literal)/rest)` when a matching index
    /// exists **and** the statistics say the B-tree probe is cheaper
    /// than scanning the path's block lists.
    fn try_index_rewrite(&mut self, e: &mut Expr) {
        let Expr::Path { start, steps } = e else {
            return;
        };
        let PathStart::Doc(doc) = start else {
            return;
        };
        let Some((k, spec_idx, key)) = self.find_index_candidate(doc, steps) else {
            return;
        };
        let spec = &self.input.indexes[spec_idx];
        let resolved = match functions::lookup("index-scan", 2) {
            Some(idx) => FnResolution::Builtin(idx),
            // The builtin table always has index-scan; stay safe anyway.
            None => return,
        };
        let call = Expr::FnCall {
            name: "index-scan".into(),
            args: vec![
                Expr::Literal(Atom::String(spec.name.clone())),
                Expr::Literal(key),
            ],
            resolved,
        };
        let rest: Vec<Step> = steps[k + 1..].to_vec();
        let inner = if rest.is_empty() {
            call
        } else {
            Expr::Path {
                start: PathStart::Expr(call.boxed()),
                steps: rest,
            }
        };
        // Index output is in key order; restore document order.
        *e = Expr::Ddo(inner.boxed());
        self.decision.index_rewrites += 1;
    }

    /// Finds the first (step index, index spec, key literal) triple
    /// where an index applies and wins the cost comparison. The costs of
    /// the comparison are recorded in the decision either way.
    fn find_index_candidate(&mut self, doc: &str, steps: &[Step]) -> Option<(usize, usize, Atom)> {
        let tree = *self.input.docs.get(doc)?;
        for k in 0..steps.len() {
            // The prefix must be bare except for exactly one predicate
            // on its last step — the one the index can answer.
            if steps[k].predicates.len() != 1 || steps[..k].iter().any(|s| !s.predicates.is_empty())
            {
                continue;
            }
            for (spec_idx, spec) in self.input.indexes.iter().enumerate() {
                if spec.doc != doc || !steps_match(&steps[..=k], &spec.on) {
                    continue;
                }
                let Some(key) = equality_key(&steps[k].predicates[0], &spec.by, &spec.key_type)
                else {
                    continue;
                };
                // Cost the two paths. The scan side is exact: the very
                // blocks and descriptors the structural scan would touch.
                let stats = match cost::path_stats(tree, &spec.on) {
                    Some(s) => s,
                    None => continue,
                };
                let scan = cost::scan_cost(&stats);
                // One key entry per indexed node (upper bound).
                let index = cost::index_cost(stats.nodes, self.input.streaming);
                self.decision.scan_cost = Some(scan);
                self.decision.index_cost = Some(index);
                if index < scan {
                    return Some((k, spec_idx, key));
                }
            }
        }
        None
    }
}

/// Axis/test equality between a query path prefix and an index's `on`
/// path (predicates already checked by the caller).
fn steps_match(query: &[Step], on: &[Step]) -> bool {
    query.len() == on.len()
        && query
            .iter()
            .zip(on)
            .all(|(a, b)| a.axis == b.axis && a.test == b.test)
}

/// Unwraps planner-transparent wrappers.
fn strip_wrappers(e: &Expr) -> &Expr {
    match e {
        Expr::Ddo(inner) => strip_wrappers(inner),
        Expr::Cached { expr, .. } => strip_wrappers(expr),
        other => other,
    }
}

/// If `pred` is `by-path = literal` (either side order) with the
/// literal's type matching the index key type, returns the key literal.
fn equality_key(pred: &Expr, by: &[Step], key_type: &IndexKeyType) -> Option<Atom> {
    let (Expr::GeneralCmp(CmpOp::Eq, a, b) | Expr::ValueCmp(CmpOp::Eq, a, b)) = pred else {
        return None;
    };
    let extract = |path_side: &Expr, lit_side: &Expr| -> Option<Atom> {
        let Expr::Path {
            start: PathStart::Context,
            steps,
        } = strip_wrappers(path_side)
        else {
            return None;
        };
        if steps.iter().any(|s| !s.predicates.is_empty()) || !steps_match(steps, by) {
            return None;
        }
        let Expr::Literal(atom) = strip_wrappers(lit_side) else {
            return None;
        };
        let type_ok = matches!(
            (atom, key_type),
            (Atom::String(_), IndexKeyType::String) | (Atom::Number(_), IndexKeyType::Number)
        );
        type_ok.then(|| atom.clone())
    };
    extract(a, b).or_else(|| extract(b, a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::NodeTest;
    use crate::parser::parse_statement;
    use crate::rewrite::rewrite_statement;
    use crate::static_ctx::analyze;
    use sedna_schema::{NodeKind, SchemaName};

    /// Schema: r → hot (3 nodes, 1 block), r → cold (`cold` nodes).
    fn tree(cold: u64) -> SchemaTree {
        let mut t = SchemaTree::new();
        let r = t
            .get_or_add_child(
                SchemaTree::ROOT,
                NodeKind::Element,
                Some(SchemaName::local("r")),
            )
            .0;
        let h = t
            .get_or_add_child(r, NodeKind::Element, Some(SchemaName::local("hot")))
            .0;
        let c = t
            .get_or_add_child(r, NodeKind::Element, Some(SchemaName::local("cold")))
            .0;
        t.node_mut(r).node_count = 1;
        t.node_mut(r).block_count = 1;
        t.node_mut(h).node_count = 3;
        t.node_mut(h).block_count = 1;
        t.node_mut(c).node_count = cold;
        t.node_mut(c).block_count = (cold / 100).max(1) as u32;
        t
    }

    fn child(name: &str) -> Step {
        Step::plain(Axis::Child, NodeTest::Name(SchemaName::local(name)))
    }

    fn spec(name: &str, leaf: &str) -> IndexSpec {
        IndexSpec {
            name: name.into(),
            doc: "d".into(),
            on: vec![child("r"), child(leaf)],
            by: vec![child("k")],
            key_type: IndexKeyType::String,
        }
    }

    fn input(tree: &SchemaTree, streaming: bool) -> PlannerInput<'_> {
        PlannerInput {
            docs: HashMap::from([("d".to_string(), tree)]),
            indexes: vec![spec("ixc", "cold"), spec("ixh", "hot")],
            streaming,
        }
    }

    fn planned(q: &str, input: &PlannerInput<'_>) -> (Statement, PlanDecision) {
        let mut stmt = rewrite_statement(analyze(parse_statement(q).unwrap()).unwrap());
        let d = plan_statement(&mut stmt, input);
        (stmt, d)
    }

    fn query_expr(stmt: &Statement) -> &Expr {
        match &stmt.kind {
            StatementKind::Query(e) => e,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cold_equality_path_routes_through_the_index() {
        let t = tree(10_000);
        let (stmt, d) = planned("doc('d')/r/cold[k = 'x']", &input(&t, false));
        assert_eq!(d.index_rewrites, 1, "{d:?}");
        assert_eq!(d.access_path, AccessPath::Index);
        assert!(d.index_cost.unwrap() < d.scan_cost.unwrap());
        match query_expr(&stmt) {
            Expr::Ddo(inner) => match inner.as_ref() {
                Expr::FnCall { name, args, .. } => {
                    assert_eq!(name, "index-scan");
                    assert_eq!(args[0], Expr::Literal(Atom::String("ixc".into())));
                    assert_eq!(args[1], Expr::Literal(Atom::String("x".into())));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn hot_equality_path_keeps_the_scan() {
        let t = tree(10_000);
        let (stmt, d) = planned("doc('d')/r/hot[k = 'x']", &input(&t, false));
        assert_eq!(d.index_rewrites, 0, "{d:?}");
        assert_eq!(d.access_path, AccessPath::Scan);
        assert!(d.scan_cost.unwrap() < d.index_cost.unwrap());
        assert!(!format!("{:?}", query_expr(&stmt)).contains("index-scan"));
    }

    #[test]
    fn streaming_penalty_can_flip_the_decision() {
        // 400 nodes / 4 blocks: index wins materialized, loses streaming.
        let t = tree(400);
        let (_, d) = planned("doc('d')/r/cold[k = 'x']", &input(&t, false));
        assert_eq!(d.index_rewrites, 1, "{d:?}");
        let (_, d) = planned("doc('d')/r/cold[k = 'x']", &input(&t, true));
        assert_eq!(d.index_rewrites, 0, "{d:?}");
    }

    #[test]
    fn trailing_steps_survive_the_rewrite() {
        let t = tree(10_000);
        let (stmt, d) = planned("doc('d')/r/cold[k = 'x']/t", &input(&t, false));
        assert_eq!(d.index_rewrites, 1);
        match query_expr(&stmt) {
            Expr::Ddo(inner) => match inner.as_ref() {
                Expr::Path {
                    start: PathStart::Expr(call),
                    steps,
                } => {
                    assert!(
                        matches!(call.as_ref(), Expr::FnCall { name, .. } if name == "index-scan")
                    );
                    assert_eq!(steps.len(), 1);
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn reversed_comparison_and_number_keys_match_types() {
        let t = tree(10_000);
        // Literal on the left works too.
        let (_, d) = planned("doc('d')/r/cold['x' = k]", &input(&t, false));
        assert_eq!(d.index_rewrites, 1, "{d:?}");
        // A number literal does not match a String-keyed index.
        let (_, d) = planned("doc('d')/r/cold[k = 7]", &input(&t, false));
        assert_eq!(d.index_rewrites, 0, "{d:?}");
    }

    #[test]
    fn safe_predicates_reorder_most_selective_first() {
        let t = tree(10_000);
        let (stmt, d) = planned("doc('d')/r/cold[t][k = 'x']", &input(&t, false));
        assert_eq!(d.predicates_reordered, 1, "{d:?}");
        // Two predicates on the step: no index rewrite, but eq now first.
        assert_eq!(d.index_rewrites, 0);
        let mut saw = false;
        visit(query_expr(&stmt), &mut |e| {
            let steps = match e {
                Expr::Path { steps, .. } => steps,
                _ => return,
            };
            if let Some(s) = steps.iter().find(|s| s.predicates.len() == 2) {
                assert!(matches!(s.predicates[0], Expr::GeneralCmp(CmpOp::Eq, ..)));
                saw = true;
            }
        });
        assert!(saw, "expected a two-predicate step: {stmt:?}");
    }

    #[test]
    fn positional_predicates_are_never_reordered() {
        let t = tree(10_000);
        let (_, d) = planned("doc('d')/r/cold[2][k = 'x']", &input(&t, false));
        assert_eq!(d.predicates_reordered, 0, "{d:?}");
    }

    #[test]
    fn where_clause_and_chain_reorders() {
        let t = tree(10_000);
        let q = "for $x in doc('d')/r/hot where $x/t < 3 and $x/k = 'a' return $x";
        let (stmt, d) = planned(q, &input(&t, false));
        assert_eq!(d.predicates_reordered, 1, "{d:?}");
        let mut ok = false;
        visit(query_expr(&stmt), &mut |e| {
            if let Expr::And(a, _) = e {
                // The equality moved to the front of the chain.
                if matches!(strip_wrappers(a), Expr::GeneralCmp(CmpOp::Eq, ..)) {
                    ok = true;
                }
            }
        });
        assert!(ok, "{stmt:?}");
    }

    #[test]
    fn descendant_paths_classify_as_descendant() {
        let t = tree(10);
        let (_, d) = planned("doc('d')//cold", &input(&t, false));
        assert_eq!(d.access_path, AccessPath::Descendant);
    }

    #[test]
    fn estimates_come_from_the_exact_counters() {
        let t = tree(10_000);
        let inp = input(&t, false);
        let (_, d) = planned("doc('d')/r/cold", &inp);
        assert_eq!(d.estimated_rows, Some(10_000));
        // Equality predicate scales by SEL_EQ — here via the index path.
        let (_, d) = planned("doc('d')/r/hot[k = 'x']", &inp);
        assert_eq!(
            d.estimated_rows,
            Some((3.0f64 * cost::SEL_EQ).round().max(1.0) as u64)
        );
    }
}
