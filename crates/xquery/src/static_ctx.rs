//! The static analyser (§3/§5: "the static analyzer accepts the parsed
//! query and is in charge of performing the complete static analysis
//! phase [...] all namespace prefixes, function names and variable names
//! are resolved. If a query contains any static errors, these are
//! detected and reported at this stage").
//!
//! Variables are resolved to flat runtime slots; function calls are
//! resolved to the built-in registry or to prolog-declared functions, with
//! arity checked statically.

use crate::ast::*;
use crate::error::{QueryError, QueryResult};
use crate::functions;

/// Runs static analysis over a parsed statement, resolving all names and
/// assigning variable slots. Returns the annotated statement.
pub fn analyze(mut stmt: Statement) -> QueryResult<Statement> {
    let signatures: Vec<(String, usize)> = stmt
        .functions
        .iter()
        .map(|f| (f.name.clone(), f.params.len()))
        .collect();
    let mut az = Analyzer {
        scopes: Vec::new(),
        next_slot: 0,
        user_fns: signatures,
    };
    // Global variables: each initializer sees the previous globals.
    for var in &mut stmt.vars {
        az.resolve(&mut var.init)?;
        var.slot = az.bind(&var.name);
    }
    // Function bodies: globals + parameters in scope.
    let globals_depth = az.scopes.len();
    for f in &mut stmt.functions {
        for i in 0..f.params.len() {
            let slot = az.bind(&f.params[i]);
            f.param_slots[i] = slot;
        }
        az.resolve(&mut f.body)?;
        az.scopes.truncate(globals_depth);
    }
    match &mut stmt.kind {
        StatementKind::Query(e) => az.resolve(e)?,
        StatementKind::Update(u) => match u {
            UpdateStmt::Insert { what, target, .. } => {
                az.resolve(what)?;
                az.resolve(target)?;
            }
            UpdateStmt::Delete { target } => az.resolve(target)?,
            UpdateStmt::ReplaceValue { target, with } => {
                az.resolve(target)?;
                az.resolve(with)?;
            }
        },
        StatementKind::Ddl(_) => {}
    }
    stmt.slot_count = az.next_slot;
    Ok(stmt)
}

struct Analyzer {
    /// In-scope variables: (name, slot), innermost last.
    scopes: Vec<(String, usize)>,
    next_slot: usize,
    user_fns: Vec<(String, usize)>,
}

impl Analyzer {
    fn bind(&mut self, name: &str) -> usize {
        let slot = self.next_slot;
        self.next_slot += 1;
        self.scopes.push((name.to_string(), slot));
        slot
    }

    fn lookup(&self, name: &str) -> Option<usize> {
        self.scopes
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|&(_, s)| s)
    }

    fn resolve(&mut self, e: &mut Expr) -> QueryResult<()> {
        match e {
            Expr::Literal(_) | Expr::Empty | Expr::ContextItem => Ok(()),
            Expr::Sequence(items) => {
                for i in items {
                    self.resolve(i)?;
                }
                Ok(())
            }
            Expr::VarRef { name, slot } => {
                *slot = self
                    .lookup(name)
                    .ok_or_else(|| QueryError::Static(format!("undeclared variable ${name}")))?;
                Ok(())
            }
            Expr::Flwor {
                clauses,
                where_,
                order,
                ret,
            } => {
                let depth = self.scopes.len();
                for clause in clauses.iter_mut() {
                    match clause {
                        FlworClause::For {
                            var,
                            slot,
                            at,
                            expr,
                            ..
                        } => {
                            self.resolve(expr)?;
                            *slot = self.bind(var);
                            if let Some((pvar, pslot)) = at {
                                *pslot = self.bind(pvar);
                            }
                        }
                        FlworClause::Let {
                            var, slot, expr, ..
                        } => {
                            self.resolve(expr)?;
                            *slot = self.bind(var);
                        }
                    }
                }
                if let Some(w) = where_ {
                    self.resolve(w)?;
                }
                for spec in order {
                    self.resolve(&mut spec.key)?;
                }
                self.resolve(ret)?;
                self.scopes.truncate(depth);
                Ok(())
            }
            Expr::Quantified {
                var,
                slot,
                within,
                satisfies,
                ..
            } => {
                self.resolve(within)?;
                let depth = self.scopes.len();
                *slot = self.bind(var);
                self.resolve(satisfies)?;
                self.scopes.truncate(depth);
                Ok(())
            }
            Expr::If { cond, then, els } => {
                self.resolve(cond)?;
                self.resolve(then)?;
                self.resolve(els)
            }
            Expr::Or(a, b)
            | Expr::And(a, b)
            | Expr::GeneralCmp(_, a, b)
            | Expr::ValueCmp(_, a, b)
            | Expr::Arith(_, a, b)
            | Expr::Range(a, b)
            | Expr::Union(a, b)
            | Expr::Intersect(a, b)
            | Expr::Except(a, b) => {
                self.resolve(a)?;
                self.resolve(b)
            }
            Expr::Neg(a) | Expr::Ddo(a) | Expr::TextCtor(a) => self.resolve(a),
            Expr::Cached { expr, .. } => self.resolve(expr),
            Expr::Path { start, steps } => {
                if let PathStart::Expr(e) = start {
                    self.resolve(e)?;
                }
                for step in steps {
                    for p in &mut step.predicates {
                        self.resolve(p)?;
                    }
                }
                Ok(())
            }
            Expr::StructuralPath { .. } => Ok(()),
            Expr::Filter { input, predicates } => {
                self.resolve(input)?;
                for p in predicates {
                    self.resolve(p)?;
                }
                Ok(())
            }
            Expr::FnCall {
                name,
                args,
                resolved,
            } => {
                for a in args.iter_mut() {
                    self.resolve(a)?;
                }
                // User functions shadow builtins only in the local: space.
                if let Some(stripped) = name.strip_prefix("local:") {
                    let idx = self
                        .user_fns
                        .iter()
                        .position(|(n, arity)| n == stripped && *arity == args.len())
                        .ok_or_else(|| {
                            QueryError::Static(format!(
                                "unknown function local:{stripped}#{}",
                                args.len()
                            ))
                        })?;
                    *resolved = FnResolution::User(idx);
                    return Ok(());
                }
                let idx = functions::lookup(name, args.len()).ok_or_else(|| {
                    QueryError::Static(format!("unknown function {name}#{}", args.len()))
                })?;
                *resolved = FnResolution::Builtin(idx);
                Ok(())
            }
            Expr::ElementCtor {
                attrs, children, ..
            } => {
                for (_, parts) in attrs {
                    for p in parts {
                        self.resolve(p)?;
                    }
                }
                for c in children {
                    self.resolve(c)?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;

    fn analyzed(q: &str) -> Statement {
        analyze(parse_statement(q).unwrap()).unwrap()
    }

    fn analyze_err(q: &str) -> QueryError {
        analyze(parse_statement(q).unwrap()).unwrap_err()
    }

    #[test]
    fn flwor_variables_get_slots() {
        let stmt = analyzed("for $x in (1,2) let $y := $x + 1 return $y");
        assert!(stmt.slot_count >= 2);
        match stmt.kind {
            StatementKind::Query(Expr::Flwor { clauses, ret, .. }) => {
                let (xs, ys) = match (&clauses[0], &clauses[1]) {
                    (FlworClause::For { slot: a, .. }, FlworClause::Let { slot: b, expr, .. }) => {
                        // $x inside the let initializer resolved to x's slot.
                        match expr {
                            Expr::Arith(_, lhs, _) => match lhs.as_ref() {
                                Expr::VarRef { slot, .. } => assert_eq!(slot, a),
                                other => panic!("{other:?}"),
                            },
                            other => panic!("{other:?}"),
                        }
                        (*a, *b)
                    }
                    other => panic!("{other:?}"),
                };
                assert_ne!(xs, ys);
                match *ret {
                    Expr::VarRef { slot, .. } => assert_eq!(slot, ys),
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn shadowing_resolves_innermost() {
        let stmt = analyzed("for $x in (1,2) return for $x in (3,4) return $x");
        match stmt.kind {
            StatementKind::Query(Expr::Flwor { clauses, ret, .. }) => {
                let FlworClause::For { slot: outer, .. } = &clauses[0] else {
                    panic!()
                };
                match *ret {
                    Expr::Flwor { clauses, ret, .. } => {
                        let FlworClause::For { slot: inner, .. } = &clauses[0] else {
                            panic!()
                        };
                        assert_ne!(outer, inner);
                        match *ret {
                            Expr::VarRef { slot, .. } => assert_eq!(slot, *inner),
                            other => panic!("{other:?}"),
                        }
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn undeclared_variable_is_static_error() {
        assert!(matches!(analyze_err("$nope"), QueryError::Static(_)));
    }

    #[test]
    fn unknown_function_is_static_error() {
        assert!(matches!(
            analyze_err("frobnicate(1)"),
            QueryError::Static(_)
        ));
        // Arity mismatch too.
        assert!(matches!(analyze_err("count(1, 2)"), QueryError::Static(_)));
    }

    #[test]
    fn builtins_resolve() {
        let stmt = analyzed("count((1, 2, 3))");
        match stmt.kind {
            StatementKind::Query(Expr::FnCall { resolved, .. }) => {
                assert!(matches!(resolved, FnResolution::Builtin(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn user_functions_resolve_with_recursion() {
        let stmt = analyzed(
            "declare function local:fact($n) { if ($n le 1) then 1 else $n * local:fact($n - 1) }; local:fact(5)",
        );
        match &stmt.kind {
            StatementKind::Query(Expr::FnCall { resolved, .. }) => {
                assert_eq!(*resolved, FnResolution::User(0));
            }
            other => panic!("{other:?}"),
        }
        // The recursive call inside the body also resolved.
        fn find_call(e: &Expr) -> bool {
            match e {
                Expr::FnCall { resolved, .. } => *resolved == FnResolution::User(0),
                Expr::If { cond, then, els } => {
                    find_call(cond) || find_call(then) || find_call(els)
                }
                Expr::Arith(_, a, b) | Expr::ValueCmp(_, a, b) => find_call(a) || find_call(b),
                _ => false,
            }
        }
        assert!(find_call(&stmt.functions[0].body));
    }

    #[test]
    fn global_variables_visible_in_body_and_functions() {
        let stmt = analyzed(
            "declare variable $base := 10; declare function local:f($x) { $x + $base }; local:f(1) + $base",
        );
        assert_eq!(stmt.vars[0].slot, 0);
        assert!(stmt.slot_count >= 2);
    }

    #[test]
    fn update_targets_analyzed() {
        assert!(matches!(
            analyze(parse_statement("UPDATE delete $undeclared").unwrap()),
            Err(QueryError::Static(_))
        ));
    }
}
