//! The executor's data model: items, sequences, and the arena of
//! constructed (temporary) nodes.
//!
//! Stored nodes are represented by **direct pointers** (`NodeRef`), per
//! §5.2: "the selected nodes as well as intermediate result of any query
//! expression are represented by direct pointers". Constructed nodes live
//! in a per-query [`TempArena`]; a constructed child may be a **virtual**
//! reference to a stored subtree (§5.2.1's virtual element constructor —
//! "it also does not perform deep copy of the content of constructed
//! node, but rather stores a pointer to it").

use sedna_numbering::Label;
use sedna_schema::{NodeKind, SchemaName};
use sedna_storage::NodeRef;

/// An atomic value.
#[derive(Clone, Debug, PartialEq)]
pub enum Atom {
    /// A string.
    String(String),
    /// A double-precision number (the numeric type of this subset).
    Number(f64),
    /// A boolean.
    Boolean(bool),
}

impl Atom {
    /// The string value.
    pub fn to_string_value(&self) -> String {
        match self {
            Atom::String(s) => s.clone(),
            Atom::Number(n) => format_number(*n),
            Atom::Boolean(b) => b.to_string(),
        }
    }

    /// Numeric value (`fn:number` semantics: NaN on failure).
    pub fn to_number(&self) -> f64 {
        match self {
            Atom::Number(n) => *n,
            Atom::String(s) => s.trim().parse().unwrap_or(f64::NAN),
            Atom::Boolean(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

/// Formats a number the XPath way: integers without a decimal point.
pub fn format_number(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 && !n.is_infinite() {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// Identifier of a constructed node in the query's [`TempArena`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct TempId(pub u32);

/// A node value: stored (direct pointer + owning document index) or
/// constructed.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum NodeId {
    /// A node in document `doc` of the query's database view.
    Stored {
        /// Index into the executor's document list.
        doc: usize,
        /// Direct descriptor pointer.
        node: NodeRef,
    },
    /// A constructed node.
    Temp(TempId),
}

/// One item of a sequence.
#[derive(Clone, Debug, PartialEq)]
pub enum Item {
    /// A node.
    Node(NodeId),
    /// An atomic value.
    Atom(Atom),
}

impl Item {
    /// Convenience constructors.
    pub fn string(s: impl Into<String>) -> Item {
        Item::Atom(Atom::String(s.into()))
    }
    /// A number item.
    pub fn number(n: f64) -> Item {
        Item::Atom(Atom::Number(n))
    }
    /// A boolean item.
    pub fn boolean(b: bool) -> Item {
        Item::Atom(Atom::Boolean(b))
    }
    /// Whether this item is a node.
    pub fn is_node(&self) -> bool {
        matches!(self, Item::Node(_))
    }
}

/// A (materialized) sequence of items.
pub type Sequence = Vec<Item>;

/// Total order key for distinct-document-order: stored nodes order by
/// (document, label); constructed nodes follow all stored nodes in arena
/// order (stable, implementation-defined across trees as XQuery allows).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OrderKey {
    /// Stored node: document index, then numbering-scheme label prefix.
    Stored(usize, Vec<u8>),
    /// Constructed node: arena order.
    Temp(u32),
}

impl PartialOrd for OrderKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use OrderKey::*;
        match (self, other) {
            (Stored(d1, l1), Stored(d2, l2)) => d1.cmp(d2).then_with(|| l1.cmp(l2)),
            (Stored(..), Temp(_)) => std::cmp::Ordering::Less,
            (Temp(_), Stored(..)) => std::cmp::Ordering::Greater,
            (Temp(a), Temp(b)) => a.cmp(b),
        }
    }
}

impl OrderKey {
    /// Key for a stored node from its label.
    pub fn stored(doc: usize, label: &Label) -> OrderKey {
        OrderKey::Stored(doc, label.prefix().to_vec())
    }
}

/// A child slot of a constructed node.
#[derive(Clone, Debug, PartialEq)]
pub enum TempChild {
    /// A constructed child.
    Temp(TempId),
    /// A **virtual** pointer to a stored subtree (no copy performed).
    StoredRef {
        /// Owning document index.
        doc: usize,
        /// The stored subtree's root.
        node: NodeRef,
    },
}

/// A constructed node.
#[derive(Clone, Debug)]
pub struct TempNode {
    /// Node kind.
    pub kind: NodeKind,
    /// Name for named kinds.
    pub name: Option<SchemaName>,
    /// String value (text/attribute/comment/PI content).
    pub value: String,
    /// Children in order (attributes first, as in storage).
    pub children: Vec<TempChild>,
    /// Parent link, set when this node was built *embedded* into another
    /// constructor (§5.2.1's embedded element constructors).
    pub parent: Option<TempId>,
}

/// Arena of constructed nodes, owned by one query execution.
#[derive(Default, Debug)]
pub struct TempArena {
    nodes: Vec<TempNode>,
    /// Copy accounting for experiment E9.
    pub nodes_copied: u64,
}

impl TempArena {
    /// Creates an empty arena.
    pub fn new() -> TempArena {
        TempArena::default()
    }

    /// Number of constructed nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether nothing has been constructed.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a node, returning its id.
    pub fn push(&mut self, node: TempNode) -> TempId {
        let id = TempId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// Immutable access.
    pub fn get(&self, id: TempId) -> &TempNode {
        &self.nodes[id.0 as usize]
    }

    /// Mutable access.
    pub fn get_mut(&mut self, id: TempId) -> &mut TempNode {
        &mut self.nodes[id.0 as usize]
    }

    /// Creates an element node.
    pub fn element(&mut self, name: SchemaName) -> TempId {
        self.push(TempNode {
            kind: NodeKind::Element,
            name: Some(name),
            value: String::new(),
            children: Vec::new(),
            parent: None,
        })
    }

    /// Creates a text node.
    pub fn text(&mut self, value: impl Into<String>) -> TempId {
        self.push(TempNode {
            kind: NodeKind::Text,
            name: None,
            value: value.into(),
            children: Vec::new(),
            parent: None,
        })
    }

    /// Creates an attribute node.
    pub fn attribute(&mut self, name: SchemaName, value: impl Into<String>) -> TempId {
        self.push(TempNode {
            kind: NodeKind::Attribute,
            name: Some(name),
            value: value.into(),
            children: Vec::new(),
            parent: None,
        })
    }

    /// Appends `child` under `parent`, maintaining the parent link.
    pub fn add_child(&mut self, parent: TempId, child: TempChild) {
        if let TempChild::Temp(c) = child {
            self.get_mut(c).parent = Some(parent);
        }
        self.get_mut(parent).children.push(child);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atom_conversions() {
        assert_eq!(Atom::Number(3.0).to_string_value(), "3");
        assert_eq!(Atom::Number(3.5).to_string_value(), "3.5");
        assert_eq!(Atom::String("  42 ".into()).to_number(), 42.0);
        assert!(Atom::String("nope".into()).to_number().is_nan());
        assert_eq!(Atom::Boolean(true).to_number(), 1.0);
        assert_eq!(Atom::Boolean(false).to_string_value(), "false");
    }

    #[test]
    fn order_keys_sort_stored_before_temp() {
        let a = OrderKey::Stored(0, vec![1, 2]);
        let b = OrderKey::Stored(0, vec![1, 3]);
        let c = OrderKey::Stored(1, vec![0]);
        let t = OrderKey::Temp(0);
        let t2 = OrderKey::Temp(5);
        let mut v = vec![t2.clone(), c.clone(), t.clone(), b.clone(), a.clone()];
        v.sort();
        assert_eq!(v, vec![a, b, c, t, t2]);
    }

    #[test]
    fn arena_builds_trees_with_parent_links() {
        let mut arena = TempArena::new();
        let root = arena.element(SchemaName::local("r"));
        let kid = arena.text("hello");
        arena.add_child(root, TempChild::Temp(kid));
        assert_eq!(arena.get(kid).parent, Some(root));
        assert_eq!(arena.get(root).children.len(), 1);
        assert_eq!(arena.len(), 2);
    }
}
