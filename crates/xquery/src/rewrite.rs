//! The optimizing rewriter (§5.1): "In Sedna, we have implemented a wide
//! set of rule-based query optimization techniques for XQuery."
//!
//! Four rewrites, exactly the ones the paper describes:
//!
//! 1. **Removing unnecessary ordering operations** (§5.1.1): for each
//!    operation the properties *(already in DDO; at most one item; nodes
//!    on a common level)* are inferred recursively; a DDO operation is
//!    removed when its argument is known to be in DDO, or when DDO is not
//!    required for the resulting sequence (aggregation/boolean contexts).
//! 2. **Abbreviated descendant-or-self combination** (§5.1.2):
//!    `//para` → `/descendant::para`, guarded by the counter-example of
//!    the spec — the rewrite is suppressed when the next step's
//!    predicates may depend on context position or size.
//! 3. **Nested for-clause laziness** (§5.1.3): binding expressions inside
//!    a repeated FLWOR that do not depend on outer iteration variables
//!    are marked lazy and evaluated just once.
//! 4. **Structural path extraction** (§5.1.4): paths from a document node
//!    with only descending axes and no predicates become schema-level
//!    access operations executed in main memory.
//! 5. **User-function inlining** — the §5.1 preamble's "inlining for
//!    user-defined XQuery functions" (Grinev & Lizorkin): calls to
//!    non-recursive prolog functions are replaced by let-bound copies of
//!    their bodies, exposing the body to the other rewrites.

use crate::ast::*;

/// Statistics of what the rewriter did (used by the rewrite tests and the
/// E5–E8 benchmarks to verify both variants really differ).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RewriteStats {
    /// DDO operations removed.
    pub ddo_removed: u64,
    /// `//`+step pairs combined into a descendant step.
    pub descendant_combined: u64,
    /// Binding expressions marked lazy.
    pub lazy_marked: u64,
    /// Paths mapped onto the descriptive schema.
    pub structural_extracted: u64,
    /// User-function calls inlined.
    pub functions_inlined: u64,
}

/// Options controlling which rewrites run (benchmarks disable individual
/// rules to measure them).
#[derive(Debug, Clone, Copy)]
pub struct RewriteOptions {
    /// §5.1.1 DDO removal.
    pub remove_ddo: bool,
    /// §5.1.2 descendant combination.
    pub combine_descendant: bool,
    /// §5.1.3 lazy invariants.
    pub lazy_invariants: bool,
    /// §5.1.4 structural paths.
    pub structural_paths: bool,
    /// User-function inlining (§5.1 preamble, reference \[11\]).
    pub inline_functions: bool,
}

impl Default for RewriteOptions {
    fn default() -> Self {
        RewriteOptions {
            remove_ddo: true,
            combine_descendant: true,
            lazy_invariants: true,
            structural_paths: true,
            inline_functions: true,
        }
    }
}

/// Rewrites a statement with default options.
pub fn rewrite_statement(stmt: Statement) -> Statement {
    rewrite_with(stmt, RewriteOptions::default()).0
}

/// Rewrites with explicit options, returning the statistics.
pub fn rewrite_with(mut stmt: Statement, opts: RewriteOptions) -> (Statement, RewriteStats) {
    let mut rw = Rewriter {
        opts,
        stats: RewriteStats::default(),
        next_cache: 0,
    };
    if opts.inline_functions {
        inline_functions(&mut stmt, &mut rw.stats);
    }
    for v in &mut stmt.vars {
        rw.rewrite_expr(&mut v.init, false);
    }
    for f in &mut stmt.functions {
        rw.rewrite_expr(&mut f.body, true);
    }
    match &mut stmt.kind {
        StatementKind::Query(e) => rw.rewrite_expr(e, false),
        StatementKind::Update(u) => match u {
            UpdateStmt::Insert { what, target, .. } => {
                rw.rewrite_expr(what, false);
                rw.rewrite_expr(target, false);
            }
            UpdateStmt::Delete { target } => rw.rewrite_expr(target, false),
            UpdateStmt::ReplaceValue { target, with } => {
                rw.rewrite_expr(target, false);
                rw.rewrite_expr(with, false);
            }
        },
        StatementKind::Ddl(_) => {}
    }
    stmt.cache_count = rw.next_cache;
    (stmt, rw.stats)
}

/// Inferred order properties of an expression's result (§5.1.1's three
/// recursive properties).
#[derive(Debug, Clone, Copy, Default)]
pub struct Props {
    /// The sequence is already in distinct document order.
    pub is_ddo: bool,
    /// The sequence has at most one item.
    pub max_one: bool,
    /// All nodes lie on a common level of an XML tree.
    pub single_level: bool,
}

/// Infers the §5.1.1 properties recursively.
pub fn infer_props(e: &Expr) -> Props {
    match e {
        Expr::Literal(_) | Expr::Empty | Expr::ContextItem | Expr::TextCtor(_) => Props {
            is_ddo: true,
            max_one: true,
            single_level: true,
        },
        Expr::ElementCtor { .. } => Props {
            is_ddo: true,
            max_one: true,
            single_level: true,
        },
        Expr::Ddo(inner) => {
            let p = infer_props(inner);
            Props {
                is_ddo: true,
                max_one: p.max_one,
                single_level: p.single_level,
            }
        }
        Expr::Cached { expr, .. } => infer_props(expr),
        Expr::Filter { input, .. } => {
            // Filtering preserves order and level; it can only shrink.
            let p = infer_props(input);
            Props {
                is_ddo: p.is_ddo,
                max_one: p.max_one,
                single_level: p.single_level,
            }
        }
        Expr::Path { start, steps } => {
            let mut p = match start {
                PathStart::Root | PathStart::Doc(_) => Props {
                    is_ddo: true,
                    max_one: true,
                    single_level: true,
                },
                PathStart::Context => Props {
                    is_ddo: true,
                    max_one: true,
                    single_level: true,
                },
                PathStart::Expr(e) => infer_props(e),
            };
            for step in steps {
                p = step_props(p, step);
            }
            p
        }
        Expr::StructuralPath { steps, .. } => {
            // Results are emitted per matched schema node, each list in
            // document order. A chain of child-axis *name* tests matches
            // at most one schema node (names are unique among a schema
            // node's children), so its single list is in DDO; anything
            // with descendant/wildcard steps may span schema nodes.
            let single_schema_node = steps
                .iter()
                .all(|s| s.axis == Axis::Child && matches!(s.test, NodeTest::Name(_)));
            Props {
                is_ddo: single_schema_node,
                max_one: false,
                single_level: single_schema_node,
            }
        }
        Expr::FnCall { name, .. } => {
            // Aggregates and scalar functions yield at most one item.
            const SCALAR: &[&str] = &[
                "count",
                "empty",
                "exists",
                "not",
                "true",
                "false",
                "boolean",
                "string",
                "number",
                "name",
                "local-name",
                "string-length",
                "concat",
                "contains",
                "starts-with",
                "ends-with",
                "substring",
                "substring-before",
                "substring-after",
                "normalize-space",
                "upper-case",
                "lower-case",
                "string-join",
                "sum",
                "avg",
                "min",
                "max",
                "round",
                "floor",
                "ceiling",
                "abs",
                "position",
                "last",
            ];
            if name == "doc" || name == "document" || SCALAR.contains(&name.as_str()) {
                Props {
                    is_ddo: true,
                    max_one: true,
                    single_level: true,
                }
            } else {
                Props::default()
            }
        }
        Expr::If { then, els, .. } => {
            let a = infer_props(then);
            let b = infer_props(els);
            Props {
                is_ddo: a.is_ddo && b.is_ddo,
                max_one: a.max_one && b.max_one,
                single_level: a.single_level && b.single_level,
            }
        }
        Expr::Or(..)
        | Expr::And(..)
        | Expr::GeneralCmp(..)
        | Expr::ValueCmp(..)
        | Expr::Arith(..)
        | Expr::Neg(_)
        | Expr::Quantified { .. } => Props {
            is_ddo: true,
            max_one: true,
            single_level: true,
        },
        Expr::Range(..) => Props {
            is_ddo: true, // atoms: order property vacuous but stable
            max_one: false,
            single_level: true,
        },
        // Unknown producers: conservative.
        Expr::VarRef { .. }
        | Expr::Sequence(_)
        | Expr::Flwor { .. }
        | Expr::Union(..)
        | Expr::Intersect(..)
        | Expr::Except(..) => Props::default(),
    }
}

fn step_props(input: Props, step: &Step) -> Props {
    match step.axis {
        Axis::SelfAxis => input,
        Axis::Child | Axis::Attribute => Props {
            // Children of distinct same-level nodes visited in document
            // order do not interleave: order and level are preserved one
            // level down.
            is_ddo: input.is_ddo && input.single_level,
            max_one: false,
            single_level: input.single_level,
        },
        Axis::Descendant | Axis::DescendantOrSelf => Props {
            // Subtrees of distinct same-level nodes are disjoint and
            // ordered, so the concatenation stays in DDO — but spans
            // levels.
            is_ddo: input.is_ddo && (input.single_level || input.max_one),
            max_one: false,
            single_level: false,
        },
        Axis::Parent => Props {
            // Siblings share parents: duplicates possible.
            is_ddo: input.max_one,
            max_one: input.max_one,
            single_level: input.single_level,
        },
        Axis::Ancestor | Axis::AncestorOrSelf | Axis::PrecedingSibling | Axis::FollowingSibling => {
            Props {
                is_ddo: false,
                max_one: false,
                single_level: false,
            }
        }
    }
}

/// Could evaluating `e` as a predicate depend on context position or size
/// (explicitly via `position()`/`last()`, or implicitly by yielding a
/// number, which XPath treats as a positional test)? Conservative: `true`
/// unless provably not.
pub fn may_depend_on_position(e: &Expr) -> bool {
    match e {
        Expr::Literal(Atom::Number(_)) => true,
        Expr::Literal(_) => false,
        Expr::Empty => false,
        // A node sequence as predicate is an existence test — safe. The
        // context item in a node predicate is a node.
        Expr::Path { .. } | Expr::StructuralPath { .. } | Expr::ContextItem => false,
        Expr::Filter { input, predicates } => {
            may_depend_on_position(input) || predicates.iter().any(may_depend_on_position)
        }
        Expr::Or(a, b) | Expr::And(a, b) => may_depend_on_position(a) || may_depend_on_position(b),
        Expr::GeneralCmp(..) | Expr::ValueCmp(..) | Expr::Quantified { .. } => {
            // Comparisons and quantifiers yield booleans — but their
            // operands may call position()/last() explicitly.
            contains_position_call(e)
        }
        Expr::FnCall { name, args, .. } => {
            if name == "position" || name == "last" {
                return true;
            }
            const BOOLEAN_FNS: &[&str] = &[
                "not",
                "boolean",
                "empty",
                "exists",
                "contains",
                "starts-with",
                "ends-with",
                "deep-equal",
            ];
            if BOOLEAN_FNS.contains(&name.as_str()) {
                return args.iter().any(contains_position_call);
            }
            // Anything else might be numeric.
            true
        }
        Expr::If { cond, then, els } => {
            contains_position_call(cond)
                || may_depend_on_position(then)
                || may_depend_on_position(els)
        }
        // Numbers, variables, everything else: assume positional.
        _ => true,
    }
}

fn contains_position_call(e: &Expr) -> bool {
    let mut found = false;
    visit(e, &mut |x| {
        if let Expr::FnCall { name, .. } = x {
            if name == "position" || name == "last" {
                found = true;
            }
        }
    });
    found
}

/// Generic immutable visitor (shared with the cost-based planner).
pub(crate) fn visit(e: &Expr, f: &mut impl FnMut(&Expr)) {
    f(e);
    match e {
        Expr::Sequence(items) => items.iter().for_each(|i| visit(i, f)),
        Expr::Flwor {
            clauses,
            where_,
            order,
            ret,
        } => {
            for c in clauses {
                match c {
                    FlworClause::For { expr, .. } | FlworClause::Let { expr, .. } => visit(expr, f),
                }
            }
            if let Some(w) = where_ {
                visit(w, f);
            }
            for o in order {
                visit(&o.key, f);
            }
            visit(ret, f);
        }
        Expr::Quantified {
            within, satisfies, ..
        } => {
            visit(within, f);
            visit(satisfies, f);
        }
        Expr::If { cond, then, els } => {
            visit(cond, f);
            visit(then, f);
            visit(els, f);
        }
        Expr::Or(a, b)
        | Expr::And(a, b)
        | Expr::GeneralCmp(_, a, b)
        | Expr::ValueCmp(_, a, b)
        | Expr::Arith(_, a, b)
        | Expr::Range(a, b)
        | Expr::Union(a, b)
        | Expr::Intersect(a, b)
        | Expr::Except(a, b) => {
            visit(a, f);
            visit(b, f);
        }
        Expr::Neg(a) | Expr::Ddo(a) | Expr::TextCtor(a) => visit(a, f),
        Expr::Cached { expr, .. } => visit(expr, f),
        Expr::Path { start, steps } => {
            if let PathStart::Expr(e) = start {
                visit(e, f);
            }
            for s in steps {
                s.predicates.iter().for_each(|p| visit(p, f));
            }
        }
        Expr::Filter { input, predicates } => {
            visit(input, f);
            predicates.iter().for_each(|p| visit(p, f));
        }
        Expr::FnCall { args, .. } => args.iter().for_each(|a| visit(a, f)),
        Expr::ElementCtor {
            attrs, children, ..
        } => {
            for (_, parts) in attrs {
                parts.iter().for_each(|p| visit(p, f));
            }
            children.iter().for_each(|c| visit(c, f));
        }
        _ => {}
    }
}

/// Free variable slots referenced by `e`.
pub fn free_slots(e: &Expr) -> Vec<usize> {
    let mut out = Vec::new();
    visit(e, &mut |x| {
        if let Expr::VarRef { slot, .. } = x {
            out.push(*slot);
        }
    });
    out.sort_unstable();
    out.dedup();
    out
}

/// Which user functions are (transitively) recursive — those cannot be
/// inlined.
fn recursive_functions(stmt: &Statement) -> Vec<bool> {
    let n = stmt.functions.len();
    // callees[i] = user functions directly called by function i.
    let mut callees: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, f) in stmt.functions.iter().enumerate() {
        visit(&f.body, &mut |e| {
            if let Expr::FnCall {
                resolved: FnResolution::User(j),
                ..
            } = e
            {
                callees[i].push(*j);
            }
        });
    }
    // A function is recursive if it can reach itself.
    (0..n)
        .map(|start| {
            let mut stack = callees[start].clone();
            let mut seen = vec![false; n];
            while let Some(f) = stack.pop() {
                if f == start {
                    return true;
                }
                if !std::mem::replace(&mut seen[f], true) {
                    stack.extend(callees[f].iter().copied());
                }
            }
            false
        })
        .collect()
}

/// Replaces calls to non-recursive user functions with let-bound copies
/// of their bodies. Parameters become let-clauses over the function's own
/// parameter slots, so the body works unmodified; the executor's slot
/// save/restore makes sibling call sites independent.
fn inline_functions(stmt: &mut Statement, stats: &mut RewriteStats) {
    let recursive = recursive_functions(stmt);
    // Iterate to a fixpoint (inlined bodies may contain further calls),
    // with a depth cap as a safety net.
    for _round in 0..8 {
        let mut changed = false;
        let functions = stmt.functions.clone();
        let mut rewrite_in =
            |e: &mut Expr| inline_in_expr(e, &functions, &recursive, stats, &mut changed);
        match &mut stmt.kind {
            StatementKind::Query(e) => rewrite_in(e),
            StatementKind::Update(u) => match u {
                UpdateStmt::Insert { what, target, .. } => {
                    rewrite_in(what);
                    rewrite_in(target);
                }
                UpdateStmt::Delete { target } => rewrite_in(target),
                UpdateStmt::ReplaceValue { target, with } => {
                    rewrite_in(target);
                    rewrite_in(with);
                }
            },
            StatementKind::Ddl(_) => {}
        }
        for v in &mut stmt.vars {
            inline_in_expr(&mut v.init, &functions, &recursive, stats, &mut changed);
        }
        if !changed {
            break;
        }
    }
}

fn inline_in_expr(
    e: &mut Expr,
    functions: &[UserFn],
    recursive: &[bool],
    stats: &mut RewriteStats,
    changed: &mut bool,
) {
    // Children first (bottom-up), via a small mutable walker.
    match e {
        Expr::Sequence(items) => {
            for i in items {
                inline_in_expr(i, functions, recursive, stats, changed);
            }
        }
        Expr::Flwor {
            clauses,
            where_,
            order,
            ret,
        } => {
            for c in clauses {
                match c {
                    FlworClause::For { expr, .. } | FlworClause::Let { expr, .. } => {
                        inline_in_expr(expr, functions, recursive, stats, changed)
                    }
                }
            }
            if let Some(w) = where_ {
                inline_in_expr(w, functions, recursive, stats, changed);
            }
            for o in order {
                inline_in_expr(&mut o.key, functions, recursive, stats, changed);
            }
            inline_in_expr(ret, functions, recursive, stats, changed);
        }
        Expr::Quantified {
            within, satisfies, ..
        } => {
            inline_in_expr(within, functions, recursive, stats, changed);
            inline_in_expr(satisfies, functions, recursive, stats, changed);
        }
        Expr::If { cond, then, els } => {
            inline_in_expr(cond, functions, recursive, stats, changed);
            inline_in_expr(then, functions, recursive, stats, changed);
            inline_in_expr(els, functions, recursive, stats, changed);
        }
        Expr::Or(a, b)
        | Expr::And(a, b)
        | Expr::GeneralCmp(_, a, b)
        | Expr::ValueCmp(_, a, b)
        | Expr::Arith(_, a, b)
        | Expr::Range(a, b)
        | Expr::Union(a, b)
        | Expr::Intersect(a, b)
        | Expr::Except(a, b) => {
            inline_in_expr(a, functions, recursive, stats, changed);
            inline_in_expr(b, functions, recursive, stats, changed);
        }
        Expr::Neg(a) | Expr::Ddo(a) | Expr::TextCtor(a) => {
            inline_in_expr(a, functions, recursive, stats, changed)
        }
        Expr::Cached { expr, .. } => inline_in_expr(expr, functions, recursive, stats, changed),
        Expr::Path { start, steps } => {
            if let PathStart::Expr(inner) = start {
                inline_in_expr(inner, functions, recursive, stats, changed);
            }
            for s in steps {
                for p in &mut s.predicates {
                    inline_in_expr(p, functions, recursive, stats, changed);
                }
            }
        }
        Expr::Filter { input, predicates } => {
            inline_in_expr(input, functions, recursive, stats, changed);
            for p in predicates {
                inline_in_expr(p, functions, recursive, stats, changed);
            }
        }
        Expr::ElementCtor {
            attrs, children, ..
        } => {
            for (_, parts) in attrs {
                for p in parts {
                    inline_in_expr(p, functions, recursive, stats, changed);
                }
            }
            for c in children {
                inline_in_expr(c, functions, recursive, stats, changed);
            }
        }
        Expr::FnCall { args, .. } => {
            for a in args.iter_mut() {
                inline_in_expr(a, functions, recursive, stats, changed);
            }
        }
        _ => {}
    }
    // The node itself.
    if let Expr::FnCall {
        resolved: FnResolution::User(idx),
        args,
        ..
    } = e
    {
        let idx = *idx;
        if !recursive[idx] {
            let f = &functions[idx];
            let clauses: Vec<FlworClause> = f
                .param_slots
                .iter()
                .zip(f.params.iter())
                .zip(args.drain(..))
                .map(|((&slot, name), arg)| FlworClause::Let {
                    var: name.clone(),
                    slot,
                    expr: arg,
                    lazy: false,
                })
                .collect();
            let body = f.body.clone();
            *e = if clauses.is_empty() {
                body
            } else {
                Expr::Flwor {
                    clauses,
                    where_: None,
                    order: Vec::new(),
                    ret: body.boxed(),
                }
            };
            stats.functions_inlined += 1;
            *changed = true;
        }
    }
}

struct Rewriter {
    opts: RewriteOptions,
    stats: RewriteStats,
    next_cache: usize,
}

impl Rewriter {
    /// Rewrites `e`; `repeated` is true when `e` sits in a context that is
    /// re-evaluated (a for-loop body or a function body).
    fn rewrite_expr(&mut self, e: &mut Expr, repeated: bool) {
        // Bottom-up: children first.
        match e {
            Expr::Sequence(items) => {
                for i in items {
                    self.rewrite_expr(i, repeated);
                }
            }
            Expr::Flwor {
                clauses,
                where_,
                order,
                ret,
            } => {
                let mut inside_loop = repeated;
                for clause in clauses.iter_mut() {
                    match clause {
                        FlworClause::For { expr, .. } => {
                            self.rewrite_expr(expr, inside_loop);
                            // §5.1.3: a binding sequence inside a repeated
                            // context that doesn't use outer variables is
                            // evaluated once.
                            if self.opts.lazy_invariants
                                && inside_loop
                                && free_slots(expr).is_empty()
                                && !matches!(
                                    expr,
                                    Expr::Cached { .. } | Expr::Literal(_) | Expr::Empty
                                )
                            {
                                let inner = std::mem::replace(expr, Expr::Empty);
                                *expr = Expr::Cached {
                                    expr: inner.boxed(),
                                    cache_slot: self.next_cache,
                                };
                                self.next_cache += 1;
                                self.stats.lazy_marked += 1;
                            }
                            inside_loop = true;
                        }
                        FlworClause::Let { expr, lazy, .. } => {
                            self.rewrite_expr(expr, inside_loop);
                            if self.opts.lazy_invariants
                                && inside_loop
                                && free_slots(expr).is_empty()
                                && !matches!(
                                    expr,
                                    Expr::Cached { .. } | Expr::Literal(_) | Expr::Empty
                                )
                            {
                                let inner = std::mem::replace(expr, Expr::Empty);
                                *expr = Expr::Cached {
                                    expr: inner.boxed(),
                                    cache_slot: self.next_cache,
                                };
                                self.next_cache += 1;
                                self.stats.lazy_marked += 1;
                                *lazy = true;
                            }
                        }
                    }
                }
                if let Some(w) = where_ {
                    self.rewrite_expr(w, true);
                    // Order is irrelevant in the where condition.
                    self.strip_ddo(w);
                }
                for spec in order.iter_mut() {
                    self.rewrite_expr(&mut spec.key, true);
                }
                self.rewrite_expr(ret, true);
            }
            Expr::Quantified {
                within, satisfies, ..
            } => {
                self.rewrite_expr(within, repeated);
                // Quantification doesn't care about order.
                self.strip_ddo(within);
                self.rewrite_expr(satisfies, true);
                self.strip_ddo(satisfies);
            }
            Expr::If { cond, then, els } => {
                self.rewrite_expr(cond, repeated);
                self.strip_ddo(cond);
                self.rewrite_expr(then, repeated);
                self.rewrite_expr(els, repeated);
            }
            Expr::Or(a, b) | Expr::And(a, b) => {
                self.rewrite_expr(a, repeated);
                self.rewrite_expr(b, repeated);
                self.strip_ddo(a);
                self.strip_ddo(b);
            }
            Expr::GeneralCmp(_, a, b)
            | Expr::ValueCmp(_, a, b)
            | Expr::Arith(_, a, b)
            | Expr::Range(a, b)
            | Expr::Union(a, b)
            | Expr::Intersect(a, b)
            | Expr::Except(a, b) => {
                self.rewrite_expr(a, repeated);
                self.rewrite_expr(b, repeated);
            }
            Expr::Neg(a) | Expr::TextCtor(a) => self.rewrite_expr(a, repeated),
            Expr::Cached { expr, .. } => self.rewrite_expr(expr, false),
            Expr::Path { start, steps } => {
                if let PathStart::Expr(inner) = start {
                    self.rewrite_expr(inner, repeated);
                }
                for step in steps.iter_mut() {
                    for p in &mut step.predicates {
                        self.rewrite_expr(p, true);
                        if !may_depend_on_position(p) {
                            self.strip_ddo(p);
                        }
                    }
                }
                if self.opts.combine_descendant {
                    self.combine_descendant_steps(steps);
                }
            }
            Expr::Filter { input, predicates } => {
                self.rewrite_expr(input, repeated);
                for p in predicates {
                    self.rewrite_expr(p, true);
                }
            }
            Expr::FnCall { name, args, .. } => {
                for a in args.iter_mut() {
                    self.rewrite_expr(a, repeated);
                }
                // §5.1.1: DDO is not required for aggregation inputs.
                const ORDER_BLIND: &[&str] = &[
                    "count",
                    "empty",
                    "exists",
                    "not",
                    "boolean",
                    "sum",
                    "avg",
                    "min",
                    "max",
                    "distinct-values",
                ];
                if self.opts.remove_ddo && ORDER_BLIND.contains(&name.as_str()) {
                    for a in args.iter_mut() {
                        self.strip_ddo(a);
                    }
                }
            }
            Expr::ElementCtor {
                attrs, children, ..
            } => {
                for (_, parts) in attrs {
                    for p in parts {
                        self.rewrite_expr(p, repeated);
                    }
                }
                for c in children {
                    self.rewrite_expr(c, repeated);
                }
            }
            Expr::Ddo(inner) => {
                self.rewrite_expr(inner, repeated);
            }
            _ => {}
        }
        // Now this node itself.
        if self.opts.structural_paths {
            self.try_structural(e);
        }
        if self.opts.remove_ddo {
            if let Expr::Ddo(inner) = e {
                let p = infer_props(inner);
                if p.is_ddo || p.max_one {
                    let inner = std::mem::replace(inner.as_mut(), Expr::Empty);
                    *e = inner;
                    self.stats.ddo_removed += 1;
                }
            }
        }
    }

    /// Removes a top-level DDO in an order-blind context.
    fn strip_ddo(&mut self, e: &mut Expr) {
        if !self.opts.remove_ddo {
            return;
        }
        if let Expr::Ddo(inner) = e {
            let inner = std::mem::replace(inner.as_mut(), Expr::Empty);
            *e = inner;
            self.stats.ddo_removed += 1;
        }
    }

    /// §5.1.2: collapse `descendant-or-self::node()/child::X` into
    /// `descendant::X` when X's predicates cannot observe position/size.
    fn combine_descendant_steps(&mut self, steps: &mut Vec<Step>) {
        let mut i = 0;
        while i + 1 < steps.len() {
            let combinable = steps[i].axis == Axis::DescendantOrSelf
                && steps[i].test == NodeTest::AnyKind
                && steps[i].predicates.is_empty()
                && steps[i + 1].axis == Axis::Child
                && !steps[i + 1].predicates.iter().any(may_depend_on_position);
            if combinable {
                let next = steps.remove(i + 1);
                steps[i] = Step {
                    axis: Axis::Descendant,
                    test: next.test,
                    predicates: next.predicates,
                };
                self.stats.descendant_combined += 1;
            } else {
                i += 1;
            }
        }
    }

    /// §5.1.4: a path from a document node with only descending axes and
    /// no predicates is mapped to a schema access operation.
    fn try_structural(&mut self, e: &mut Expr) {
        let Expr::Path { start, steps } = e else {
            return;
        };
        let PathStart::Doc(doc) = start else {
            return;
        };
        let structural = !steps.is_empty()
            && steps.iter().all(|s| {
                s.predicates.is_empty()
                    && matches!(
                        s.axis,
                        Axis::Child | Axis::Descendant | Axis::DescendantOrSelf | Axis::Attribute
                    )
            });
        if structural {
            *e = Expr::StructuralPath {
                doc: doc.clone(),
                steps: std::mem::take(steps),
            };
            self.stats.structural_extracted += 1;
        }
    }
}

// Re-export used by infer_props.
use crate::value::Atom;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;
    use crate::static_ctx::analyze;

    fn rewrite(q: &str) -> (Statement, RewriteStats) {
        let stmt = analyze(parse_statement(q).unwrap()).unwrap();
        rewrite_with(stmt, RewriteOptions::default())
    }

    fn query_expr(stmt: &Statement) -> &Expr {
        match &stmt.kind {
            StatementKind::Query(e) => e,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn child_paths_lose_their_ddo() {
        // /library/book/title from a doc root is provably in DDO.
        let (stmt, stats) = rewrite("doc('l')/library/book/title");
        assert!(stats.ddo_removed >= 1, "{stats:?}");
        // And (with structural extraction) became a schema access op.
        assert!(matches!(
            query_expr(&stmt),
            Expr::StructuralPath { .. } | Expr::Path { .. }
        ));
    }

    #[test]
    fn count_argument_needs_no_ddo() {
        let (stmt, stats) = rewrite("count(doc('l')//book/author)");
        assert!(stats.ddo_removed >= 1, "{stats:?}");
        match query_expr(&stmt) {
            Expr::FnCall { args, .. } => {
                assert!(!matches!(&args[0], Expr::Ddo(_)), "{:?}", args[0]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn descendant_combination_applies() {
        let (stmt, stats) = rewrite("doc('l')//para");
        assert_eq!(stats.descendant_combined, 1);
        // A descendant step may span several schema nodes, so the Ddo
        // stays; the path itself must have collapsed to one step.
        match query_expr(&stmt) {
            Expr::Ddo(inner) => match inner.as_ref() {
                Expr::StructuralPath { steps, .. } => {
                    assert_eq!(steps.len(), 1);
                    assert_eq!(steps[0].axis, Axis::Descendant);
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn positional_predicate_blocks_combination() {
        // The spec's counter-example: //para[1] ≠ /descendant::para[1].
        let (stmt, stats) = rewrite("doc('l')//para[1]");
        assert_eq!(stats.descendant_combined, 0, "{stats:?}");
        match query_expr(&stmt) {
            Expr::Ddo(inner) => match inner.as_ref() {
                Expr::Path { steps, .. } => {
                    assert_eq!(steps.len(), 2);
                    assert_eq!(steps[0].axis, Axis::DescendantOrSelf);
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn position_call_blocks_combination() {
        let (_, stats) = rewrite("doc('l')//para[position() = 2]");
        assert_eq!(stats.descendant_combined, 0);
        let (_, stats) = rewrite("doc('l')//para[last()]");
        assert_eq!(stats.descendant_combined, 0);
    }

    #[test]
    fn safe_predicate_allows_combination() {
        let (_, stats) = rewrite("doc('l')//para[kind = 'x']");
        assert_eq!(stats.descendant_combined, 1);
        let (_, stats) = rewrite("doc('l')//para[@id]");
        assert_eq!(stats.descendant_combined, 1);
    }

    #[test]
    fn invariant_inner_binding_marked_lazy() {
        let q = "for $x in doc('a')/r/x for $y in doc('b')/r/y return $x";
        let (stmt, stats) = rewrite(q);
        assert_eq!(stats.lazy_marked, 1);
        assert_eq!(stmt.cache_count, 1);
        match query_expr(&stmt) {
            Expr::Flwor { clauses, .. } => {
                // First for-binding is top-level: not cached.
                assert!(matches!(
                    &clauses[0],
                    FlworClause::For { expr, .. } if !matches!(expr, Expr::Cached { .. })
                ));
                assert!(matches!(
                    &clauses[1],
                    FlworClause::For {
                        expr: Expr::Cached { .. },
                        ..
                    }
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn dependent_inner_binding_not_lazy() {
        let q = "for $x in doc('a')/r/x for $y in $x/y return $y";
        let (_, stats) = rewrite(q);
        assert_eq!(stats.lazy_marked, 0);
    }

    #[test]
    fn structural_extraction_requires_no_predicates() {
        let (_, stats) = rewrite("doc('l')/library/book");
        assert_eq!(stats.structural_extracted, 1);
        let (_, stats) = rewrite("doc('l')/library/book[title = 'x']/title");
        assert_eq!(stats.structural_extracted, 0);
        // Parent axis disqualifies.
        let (_, stats) = rewrite("doc('l')/library/book/..");
        assert_eq!(stats.structural_extracted, 0);
    }

    #[test]
    fn options_disable_rules() {
        let q = "count(doc('l')//para)";
        let stmt = analyze(parse_statement(q).unwrap()).unwrap();
        let (_, stats) = rewrite_with(
            stmt,
            RewriteOptions {
                remove_ddo: false,
                combine_descendant: false,
                lazy_invariants: false,
                structural_paths: false,
                inline_functions: false,
            },
        );
        assert_eq!(stats, RewriteStats::default());
    }

    #[test]
    fn props_inference_cases() {
        use crate::parser::parse_expr;
        // Child chain from root: DDO.
        let e = parse_expr("doc('l')/a/b/c").unwrap();
        let Expr::Ddo(inner) = e else { panic!() };
        assert!(infer_props(&inner).is_ddo);
        // Descendant from root: DDO but multi-level.
        let e = parse_expr("doc('l')/descendant::x").unwrap();
        let Expr::Ddo(inner) = e else { panic!() };
        let p = infer_props(&inner);
        assert!(p.is_ddo);
        assert!(!p.single_level);
        // Child after descendant: not provably DDO.
        let e = parse_expr("doc('l')/descendant::x/child::y/child::z").unwrap();
        let Expr::Ddo(inner) = e else { panic!() };
        assert!(!infer_props(&inner).is_ddo);
        // Variables are unknown.
        assert!(
            !infer_props(&Expr::VarRef {
                name: "v".into(),
                slot: 0
            })
            .is_ddo
        );
    }

    #[test]
    fn non_recursive_functions_inline() {
        let q = "declare function local:price($b) { $b * 2 }; local:price(21)";
        let (stmt, stats) = rewrite(q);
        assert_eq!(stats.functions_inlined, 1);
        // The call is gone from the body.
        fn has_user_call(e: &Expr) -> bool {
            let mut found = false;
            visit(e, &mut |x| {
                if matches!(
                    x,
                    Expr::FnCall {
                        resolved: FnResolution::User(_),
                        ..
                    }
                ) {
                    found = true;
                }
            });
            found
        }
        assert!(!has_user_call(query_expr(&stmt)));
    }

    #[test]
    fn recursive_functions_not_inlined() {
        let q =
            "declare function local:f($n) { if ($n le 0) then 0 else local:f($n - 1) }; local:f(3)";
        let (_, stats) = rewrite(q);
        assert_eq!(stats.functions_inlined, 0);
    }

    #[test]
    fn mutually_recursive_functions_not_inlined() {
        let q = "declare function local:a($n) { local:b($n) }; declare function local:b($n) { local:a($n) }; local:a(1)";
        let (_, stats) = rewrite(q);
        assert_eq!(stats.functions_inlined, 0);
    }

    #[test]
    fn nested_inlining_reaches_fixpoint() {
        let q = "declare function local:one() { 1 }; declare function local:two() { local:one() + local:one() }; local:two()";
        let (stmt, stats) = rewrite(q);
        assert!(stats.functions_inlined >= 3, "{stats:?}");
        fn has_user_call(e: &Expr) -> bool {
            let mut found = false;
            visit(e, &mut |x| {
                if matches!(
                    x,
                    Expr::FnCall {
                        resolved: FnResolution::User(_),
                        ..
                    }
                ) {
                    found = true;
                }
            });
            found
        }
        assert!(!has_user_call(query_expr(&stmt)));
    }

    #[test]
    fn parent_after_children_keeps_ddo_wrapper() {
        // book/.. has duplicates: the Ddo must survive.
        let (stmt, _) = rewrite("doc('l')/library/book/..");
        assert!(matches!(query_expr(&stmt), Expr::Ddo(_)));
    }
}
