//! Query-processing errors.

use sedna_storage::StorageError;

/// Errors across the query pipeline.
#[derive(Debug)]
pub enum QueryError {
    /// Lexical/grammatical error.
    Parse {
        /// Byte offset.
        pos: usize,
        /// Description.
        msg: String,
    },
    /// Static error (§3): unresolved names, arity mismatches, etc.
    Static(String),
    /// Dynamic (runtime) error: type errors, bad casts, missing documents.
    Dynamic(String),
    /// Underlying storage failure.
    Storage(StorageError),
}

/// Result alias for the query pipeline.
pub type QueryResult<T> = Result<T, QueryError>;

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Parse { pos, msg } => write!(f, "parse error at byte {pos}: {msg}"),
            QueryError::Static(msg) => write!(f, "static error: {msg}"),
            QueryError::Dynamic(msg) => write!(f, "dynamic error: {msg}"),
            QueryError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for QueryError {
    fn from(e: StorageError) -> Self {
        QueryError::Storage(e)
    }
}

impl From<sedna_sas::SasError> for QueryError {
    fn from(e: sedna_sas::SasError) -> Self {
        QueryError::Storage(StorageError::Sas(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        for e in [
            QueryError::Parse {
                pos: 3,
                msg: "x".into(),
            },
            QueryError::Static("y".into()),
            QueryError::Dynamic("z".into()),
            QueryError::Storage(StorageError::TooLarge("w".into())),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
