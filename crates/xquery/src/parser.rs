//! The query parser (§3): turns XQuery queries, XUpdate statements, and
//! DDL statements into the uniform operation tree of [`crate::ast`].
//!
//! Grammar: a practical XQuery 1.0 subset — prolog (variable and function
//! declarations), FLWOR with positional variables / where / order by,
//! quantified expressions, if/then/else, full logical / comparison /
//! arithmetic / range / set operators, path expressions with the ten
//! supported axes and predicates, filter expressions, direct element
//! constructors with enclosed expressions, `text {}` constructors, and
//! function calls. Paths are wrapped in explicit [`Expr::Ddo`] operations
//! exactly where the XQuery semantics requires distinct-document-order —
//! the rewriter's job (§5.1.1) is to take the redundant ones back out.

use sedna_schema::SchemaName;

use crate::ast::*;
use crate::error::{QueryError, QueryResult};
use crate::token::{is_name_start, Scanner};
use crate::value::Atom;

/// Parses a complete statement (query, update, or DDL).
pub fn parse_statement(input: &str) -> QueryResult<Statement> {
    let mut p = Parser {
        s: Scanner::new(input),
        depth: 0,
    };
    let stmt = p.statement()?;
    p.s.skip_ws();
    if !p.s.at_end() {
        return p.err("unexpected trailing input");
    }
    Ok(stmt)
}

/// Parses a standalone expression (test support).
pub fn parse_expr(input: &str) -> QueryResult<Expr> {
    let mut p = Parser {
        s: Scanner::new(input),
        depth: 0,
    };
    let e = p.expr()?;
    if !p.s.at_end() {
        return p.err("unexpected trailing input");
    }
    Ok(e)
}

/// Maximum expression-nesting depth accepted by the parser (a guard
/// against stack exhaustion on adversarial inputs).
const MAX_PARSE_DEPTH: usize = 48;

struct Parser<'a> {
    s: Scanner<'a>,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> QueryResult<T> {
        Err(QueryError::Parse {
            pos: self.s.pos(),
            msg: msg.into(),
        })
    }

    fn expect(&mut self, sym: &str) -> QueryResult<()> {
        if self.s.eat(sym) {
            Ok(())
        } else {
            self.err(format!("expected '{sym}'"))
        }
    }

    fn expect_kw(&mut self, kw: &str) -> QueryResult<()> {
        if self.s.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected keyword '{kw}'"))
        }
    }

    fn string_lit(&mut self) -> QueryResult<String> {
        match self.s.string_literal() {
            Some(Ok(s)) => Ok(s),
            Some(Err(at)) => Err(QueryError::Parse {
                pos: at,
                msg: "bad string literal".into(),
            }),
            None => self.err("expected a string literal"),
        }
    }

    fn qname(&mut self) -> QueryResult<SchemaName> {
        match self.s.qname() {
            Some((prefix, local)) => Ok(SchemaName {
                // Prefix resolution against in-scope namespaces is not
                // modeled in this subset; prefixes are carried as part of
                // a synthetic URI to keep distinct names distinct.
                uri: prefix.map(|p| format!("prefix:{p}")),
                local: local.to_string(),
            }),
            None => self.err("expected a name"),
        }
    }

    // -------------------------------------------------------------
    // Statements
    // -------------------------------------------------------------

    fn statement(&mut self) -> QueryResult<Statement> {
        self.s.skip_ws();
        if self.s.looking_at_kw("UPDATE") {
            let upd = self.update_stmt()?;
            return Ok(Statement {
                vars: Vec::new(),
                functions: Vec::new(),
                kind: StatementKind::Update(upd),
                slot_count: 0,
                cache_count: 0,
            });
        }
        if self.s.looking_at_kw("CREATE") || self.s.looking_at_kw("DROP") {
            let ddl = self.ddl_stmt()?;
            return Ok(Statement {
                vars: Vec::new(),
                functions: Vec::new(),
                kind: StatementKind::Ddl(ddl),
                slot_count: 0,
                cache_count: 0,
            });
        }
        let (vars, functions) = self.prolog()?;
        let body = self.expr()?;
        Ok(Statement {
            vars,
            functions,
            kind: StatementKind::Query(body),
            slot_count: 0,
            cache_count: 0,
        })
    }

    fn prolog(&mut self) -> QueryResult<(Vec<VarDecl>, Vec<UserFn>)> {
        let mut vars = Vec::new();
        let mut functions = Vec::new();
        loop {
            let save = self.s.pos();
            if !self.s.eat_kw("declare") {
                break;
            }
            if self.s.eat_kw("variable") {
                self.expect("$")?;
                let name = self
                    .s
                    .ncname()
                    .ok_or(QueryError::Parse {
                        pos: self.s.pos(),
                        msg: "expected a variable name".into(),
                    })?
                    .to_string();
                self.expect(":=")?;
                let init = self.expr_single()?;
                self.expect(";")?;
                vars.push(VarDecl {
                    name,
                    slot: usize::MAX,
                    init,
                });
            } else if self.s.eat_kw("function") {
                // `local:` prefix optional.
                let (prefix, local) = self.s.qname().ok_or(QueryError::Parse {
                    pos: self.s.pos(),
                    msg: "expected a function name".into(),
                })?;
                if prefix.is_some_and(|p| p != "local") {
                    return self.err("user functions must be in the 'local' namespace");
                }
                let name = local.to_string();
                self.expect("(")?;
                let mut params = Vec::new();
                if !self.s.looking_at(")") {
                    loop {
                        self.expect("$")?;
                        let p = self
                            .s
                            .ncname()
                            .ok_or(QueryError::Parse {
                                pos: self.s.pos(),
                                msg: "expected a parameter name".into(),
                            })?
                            .to_string();
                        params.push(p);
                        if !self.s.eat(",") {
                            break;
                        }
                    }
                }
                self.expect(")")?;
                self.expect("{")?;
                let body = self.expr()?;
                self.expect("}")?;
                self.expect(";")?;
                let n = params.len();
                functions.push(UserFn {
                    name,
                    params,
                    param_slots: vec![usize::MAX; n],
                    body,
                });
            } else {
                self.s.seek(save);
                break;
            }
        }
        Ok((vars, functions))
    }

    fn update_stmt(&mut self) -> QueryResult<UpdateStmt> {
        self.expect_kw("UPDATE")?;
        if self.s.eat_kw("insert") {
            let what = self.expr_single()?;
            let pos = if self.s.eat_kw("into") {
                InsertPos::Into
            } else if self.s.eat_kw("following") {
                InsertPos::Following
            } else if self.s.eat_kw("preceding") {
                InsertPos::Preceding
            } else {
                return self.err("expected 'into', 'following' or 'preceding'");
            };
            let target = self.expr_single()?;
            return Ok(UpdateStmt::Insert { what, pos, target });
        }
        if self.s.eat_kw("delete") {
            let target = self.expr_single()?;
            return Ok(UpdateStmt::Delete { target });
        }
        if self.s.eat_kw("replace") {
            self.expect_kw("value")?;
            self.expect_kw("of")?;
            let target = self.expr_single()?;
            self.expect_kw("with")?;
            let with = self.expr_single()?;
            return Ok(UpdateStmt::ReplaceValue { target, with });
        }
        self.err("expected 'insert', 'delete' or 'replace' after UPDATE")
    }

    fn ddl_stmt(&mut self) -> QueryResult<DdlStmt> {
        if self.s.eat_kw("CREATE") {
            if self.s.eat_kw("DOCUMENT") || self.s.eat_kw("document") {
                return Ok(DdlStmt::CreateDocument(self.string_lit()?));
            }
            if self.s.eat_kw("INDEX") || self.s.eat_kw("index") {
                let name = self.string_lit()?;
                self.expect_kw("ON")?;
                self.expect_kw("doc")?;
                self.expect("(")?;
                let doc = self.string_lit()?;
                self.expect(")")?;
                let on = self.structural_steps()?;
                self.expect_kw("BY")?;
                let by = self.structural_steps_relative()?;
                self.expect_kw("AS")?;
                let key_type = if self.s.eat_kw("xs") {
                    self.expect(":")?;
                    if self.s.eat_kw("string") {
                        IndexKeyType::String
                    } else if self.s.eat_kw("double") || self.s.eat_kw("decimal") {
                        IndexKeyType::Number
                    } else {
                        return self.err("expected xs:string or xs:double");
                    }
                } else {
                    return self.err("expected a type (xs:string | xs:double)");
                };
                return Ok(DdlStmt::CreateIndex {
                    name,
                    doc,
                    on,
                    by,
                    key_type,
                });
            }
            return self.err("expected DOCUMENT or INDEX after CREATE");
        }
        self.expect_kw("DROP")?;
        if self.s.eat_kw("DOCUMENT") || self.s.eat_kw("document") {
            return Ok(DdlStmt::DropDocument(self.string_lit()?));
        }
        if self.s.eat_kw("INDEX") || self.s.eat_kw("index") {
            return Ok(DdlStmt::DropIndex(self.string_lit()?));
        }
        self.err("expected DOCUMENT or INDEX after DROP")
    }

    /// `/a/b` or `//a` — structural steps for DDL paths.
    fn structural_steps(&mut self) -> QueryResult<Vec<Step>> {
        let mut steps = Vec::new();
        loop {
            if self.s.eat("//") {
                steps.push(Step::plain(Axis::DescendantOrSelf, NodeTest::AnyKind));
            } else if !self.s.eat("/") {
                break;
            }
            steps.push(self.axis_step_plain()?);
        }
        if steps.is_empty() {
            return self.err("expected a path");
        }
        Ok(steps)
    }

    /// `a/b` (relative) for the BY clause.
    fn structural_steps_relative(&mut self) -> QueryResult<Vec<Step>> {
        let mut steps = vec![self.axis_step_plain()?];
        loop {
            if self.s.eat("//") {
                steps.push(Step::plain(Axis::DescendantOrSelf, NodeTest::AnyKind));
                steps.push(self.axis_step_plain()?);
            } else if self.s.eat("/") {
                steps.push(self.axis_step_plain()?);
            } else {
                break;
            }
        }
        Ok(steps)
    }

    fn axis_step_plain(&mut self) -> QueryResult<Step> {
        if self.s.eat("@") {
            let test = self.node_test()?;
            return Ok(Step::plain(Axis::Attribute, test));
        }
        let test = self.node_test()?;
        Ok(Step::plain(Axis::Child, test))
    }

    // -------------------------------------------------------------
    // Expressions
    // -------------------------------------------------------------

    fn expr(&mut self) -> QueryResult<Expr> {
        let first = self.expr_single()?;
        if !self.s.looking_at(",") {
            return Ok(first);
        }
        let mut items = vec![first];
        while self.s.eat(",") {
            items.push(self.expr_single()?);
        }
        Ok(Expr::Sequence(items))
    }

    fn expr_single(&mut self) -> QueryResult<Expr> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            self.depth -= 1;
            return self.err("expression nesting too deep");
        }
        let result = self.expr_single_inner();
        self.depth -= 1;
        result
    }

    fn expr_single_inner(&mut self) -> QueryResult<Expr> {
        if self.s.looking_at_kw("for") || self.s.looking_at_kw("let") {
            return self.flwor();
        }
        if self.s.looking_at_kw("some") || self.s.looking_at_kw("every") {
            return self.quantified();
        }
        if self.s.looking_at_kw("if") {
            // Lookahead: `if` must be followed by `(` to be a conditional.
            let save = self.s.pos();
            self.s.eat_kw("if");
            let is_if = self.s.looking_at("(");
            self.s.seek(save);
            if is_if {
                return self.if_expr();
            }
        }
        self.or_expr()
    }

    fn flwor(&mut self) -> QueryResult<Expr> {
        let mut clauses = Vec::new();
        loop {
            if self.s.eat_kw("for") {
                loop {
                    self.expect("$")?;
                    let var = self.var_name()?;
                    let at = if self.s.eat_kw("at") {
                        self.expect("$")?;
                        Some((self.var_name()?, usize::MAX))
                    } else {
                        None
                    };
                    self.expect_kw("in")?;
                    let expr = self.expr_single()?;
                    clauses.push(FlworClause::For {
                        var,
                        slot: usize::MAX,
                        at,
                        expr,
                    });
                    if !self.s.eat(",") {
                        break;
                    }
                }
            } else if self.s.eat_kw("let") {
                loop {
                    self.expect("$")?;
                    let var = self.var_name()?;
                    self.expect(":=")?;
                    let expr = self.expr_single()?;
                    clauses.push(FlworClause::Let {
                        var,
                        slot: usize::MAX,
                        expr,
                        lazy: false,
                    });
                    if !self.s.eat(",") {
                        break;
                    }
                }
            } else {
                break;
            }
        }
        if clauses.is_empty() {
            return self.err("expected for/let clauses");
        }
        let where_ = if self.s.eat_kw("where") {
            Some(self.expr_single()?.boxed())
        } else {
            None
        };
        let mut order = Vec::new();
        if self.s.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let key = self.expr_single()?;
                let descending = if self.s.eat_kw("descending") {
                    true
                } else {
                    self.s.eat_kw("ascending");
                    false
                };
                order.push(OrderSpec { key, descending });
                if !self.s.eat(",") {
                    break;
                }
            }
        }
        self.expect_kw("return")?;
        let ret = self.expr_single()?.boxed();
        Ok(Expr::Flwor {
            clauses,
            where_,
            order,
            ret,
        })
    }

    fn quantified(&mut self) -> QueryResult<Expr> {
        let some = self.s.eat_kw("some");
        if !some {
            self.expect_kw("every")?;
        }
        self.expect("$")?;
        let var = self.var_name()?;
        self.expect_kw("in")?;
        let within = self.expr_single()?.boxed();
        self.expect_kw("satisfies")?;
        let satisfies = self.expr_single()?.boxed();
        Ok(Expr::Quantified {
            some,
            var,
            slot: usize::MAX,
            within,
            satisfies,
        })
    }

    fn if_expr(&mut self) -> QueryResult<Expr> {
        self.expect_kw("if")?;
        self.expect("(")?;
        let cond = self.expr()?.boxed();
        self.expect(")")?;
        self.expect_kw("then")?;
        let then = self.expr_single()?.boxed();
        self.expect_kw("else")?;
        let els = self.expr_single()?.boxed();
        Ok(Expr::If { cond, then, els })
    }

    fn var_name(&mut self) -> QueryResult<String> {
        self.s
            .ncname()
            .map(|s| s.to_string())
            .ok_or(QueryError::Parse {
                pos: self.s.pos(),
                msg: "expected a variable name".into(),
            })
    }

    fn or_expr(&mut self) -> QueryResult<Expr> {
        let mut lhs = self.and_expr()?;
        while self.s.eat_kw("or") {
            let rhs = self.and_expr()?;
            lhs = Expr::Or(lhs.boxed(), rhs.boxed());
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> QueryResult<Expr> {
        let mut lhs = self.cmp_expr()?;
        while self.s.eat_kw("and") {
            let rhs = self.cmp_expr()?;
            lhs = Expr::And(lhs.boxed(), rhs.boxed());
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> QueryResult<Expr> {
        let lhs = self.range_expr()?;
        // Value comparisons.
        for (kw, op) in [
            ("eq", CmpOp::Eq),
            ("ne", CmpOp::Ne),
            ("lt", CmpOp::Lt),
            ("le", CmpOp::Le),
            ("gt", CmpOp::Gt),
            ("ge", CmpOp::Ge),
        ] {
            if self.s.eat_kw(kw) {
                let rhs = self.range_expr()?;
                return Ok(Expr::ValueCmp(op, lhs.boxed(), rhs.boxed()));
            }
        }
        // General comparisons (multi-char symbols first).
        for (sym, op) in [
            ("!=", CmpOp::Ne),
            ("<=", CmpOp::Le),
            (">=", CmpOp::Ge),
            ("=", CmpOp::Eq),
            ("<", CmpOp::Lt),
            (">", CmpOp::Gt),
        ] {
            if self.s.looking_at(sym) {
                // `<` followed by a name-start char is a constructor, not
                // a comparison — but constructors cannot appear here
                // (operator position), so consume it as comparison.
                self.s.eat(sym);
                let rhs = self.range_expr()?;
                return Ok(Expr::GeneralCmp(op, lhs.boxed(), rhs.boxed()));
            }
        }
        Ok(lhs)
    }

    fn range_expr(&mut self) -> QueryResult<Expr> {
        let lhs = self.additive_expr()?;
        if self.s.eat_kw("to") {
            let rhs = self.additive_expr()?;
            return Ok(Expr::Range(lhs.boxed(), rhs.boxed()));
        }
        Ok(lhs)
    }

    fn additive_expr(&mut self) -> QueryResult<Expr> {
        let mut lhs = self.multiplicative_expr()?;
        loop {
            if self.s.eat("+") {
                let rhs = self.multiplicative_expr()?;
                lhs = Expr::Arith(ArithOp::Add, lhs.boxed(), rhs.boxed());
            } else if self.s.eat("-") {
                let rhs = self.multiplicative_expr()?;
                lhs = Expr::Arith(ArithOp::Sub, lhs.boxed(), rhs.boxed());
            } else {
                return Ok(lhs);
            }
        }
    }

    fn multiplicative_expr(&mut self) -> QueryResult<Expr> {
        let mut lhs = self.union_expr()?;
        loop {
            let op = if self.s.eat_kw("div") {
                ArithOp::Div
            } else if self.s.eat_kw("idiv") {
                ArithOp::IDiv
            } else if self.s.eat_kw("mod") {
                ArithOp::Mod
            } else if self.s.eat("*") {
                ArithOp::Mul
            } else {
                return Ok(lhs);
            };
            let rhs = self.union_expr()?;
            lhs = Expr::Arith(op, lhs.boxed(), rhs.boxed());
        }
    }

    fn union_expr(&mut self) -> QueryResult<Expr> {
        let mut lhs = self.intersect_expr()?;
        loop {
            if self.s.eat_kw("union") || self.s.eat("|") {
                let rhs = self.intersect_expr()?;
                lhs = Expr::Ddo(Expr::Union(lhs.boxed(), rhs.boxed()).boxed());
            } else {
                return Ok(lhs);
            }
        }
    }

    fn intersect_expr(&mut self) -> QueryResult<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            if self.s.eat_kw("intersect") {
                let rhs = self.unary_expr()?;
                lhs = Expr::Ddo(Expr::Intersect(lhs.boxed(), rhs.boxed()).boxed());
            } else if self.s.eat_kw("except") {
                let rhs = self.unary_expr()?;
                lhs = Expr::Ddo(Expr::Except(lhs.boxed(), rhs.boxed()).boxed());
            } else {
                return Ok(lhs);
            }
        }
    }

    fn unary_expr(&mut self) -> QueryResult<Expr> {
        if self.s.eat("-") {
            let e = self.unary_expr()?;
            return Ok(Expr::Neg(e.boxed()));
        }
        let _ = self.s.eat("+");
        self.path_expr()
    }

    // -------------------------------------------------------------
    // Paths
    // -------------------------------------------------------------

    fn path_expr(&mut self) -> QueryResult<Expr> {
        // Leading '/' or '//'.
        if self.s.looking_at("//") {
            self.s.eat("//");
            let mut steps = vec![Step::plain(Axis::DescendantOrSelf, NodeTest::AnyKind)];
            self.relative_path_into(&mut steps)?;
            return Ok(Expr::Ddo(
                Expr::Path {
                    start: PathStart::Root,
                    steps,
                }
                .boxed(),
            ));
        }
        if self.s.looking_at("/") {
            let save = self.s.pos();
            self.s.eat("/");
            // Bare '/' (document root) vs '/step...'.
            self.s.skip_ws();
            let has_step = self
                .s
                .peek()
                .is_some_and(|c| is_name_start(c) || matches!(c, '@' | '*' | '.'));
            if !has_step {
                self.s.seek(save);
                self.s.eat("/");
                return Ok(Expr::Path {
                    start: PathStart::Root,
                    steps: Vec::new(),
                });
            }
            let mut steps = Vec::new();
            self.relative_path_into(&mut steps)?;
            return Ok(Expr::Ddo(
                Expr::Path {
                    start: PathStart::Root,
                    steps,
                }
                .boxed(),
            ));
        }
        // Relative path starting from a step or a postfix expression.
        let first = self.step_or_postfix()?;
        match first {
            StepOrExpr::Step(step) => {
                let mut steps = vec![step];
                self.continue_path(&mut steps)?;
                Ok(Expr::Ddo(
                    Expr::Path {
                        start: PathStart::Context,
                        steps,
                    }
                    .boxed(),
                ))
            }
            StepOrExpr::Expr(e) => {
                // Possibly `expr/more/steps`.
                if self.s.looking_at("/") || self.s.looking_at("//") {
                    let mut steps = Vec::new();
                    self.continue_path(&mut steps)?;
                    // doc('x')/... becomes a Doc-rooted path.
                    let start = match &e {
                        Expr::FnCall { name, args, .. }
                            if (name == "doc" || name == "document") && args.len() == 1 =>
                        {
                            if let Expr::Literal(Atom::String(d)) = &args[0] {
                                PathStart::Doc(d.clone())
                            } else {
                                PathStart::Expr(e.boxed())
                            }
                        }
                        _ => PathStart::Expr(e.boxed()),
                    };
                    Ok(Expr::Ddo(Expr::Path { start, steps }.boxed()))
                } else {
                    Ok(e)
                }
            }
        }
    }

    fn continue_path(&mut self, steps: &mut Vec<Step>) -> QueryResult<()> {
        loop {
            if self.s.eat("//") {
                steps.push(Step::plain(Axis::DescendantOrSelf, NodeTest::AnyKind));
                steps.push(self.axis_step()?);
            } else if self.s.eat("/") {
                steps.push(self.axis_step()?);
            } else {
                return Ok(());
            }
        }
    }

    fn relative_path_into(&mut self, steps: &mut Vec<Step>) -> QueryResult<()> {
        steps.push(self.axis_step()?);
        self.continue_path(steps)
    }

    fn axis_step(&mut self) -> QueryResult<Step> {
        self.s.skip_ws();
        // Abbreviations.
        if self.s.eat("..") {
            let mut step = Step::plain(Axis::Parent, NodeTest::AnyKind);
            self.predicates_into(&mut step.predicates)?;
            return Ok(step);
        }
        if self.s.eat("@") {
            let test = self.node_test()?;
            let mut step = Step::plain(Axis::Attribute, test);
            self.predicates_into(&mut step.predicates)?;
            return Ok(step);
        }
        // Named axis?
        let save = self.s.pos();
        if let Some(name) = self.s.ncname() {
            if self.s.rest().starts_with("::") {
                self.s.eat("::");
                let axis = match name {
                    "child" => Axis::Child,
                    "descendant" => Axis::Descendant,
                    "descendant-or-self" => Axis::DescendantOrSelf,
                    "self" => Axis::SelfAxis,
                    "parent" => Axis::Parent,
                    "ancestor" => Axis::Ancestor,
                    "ancestor-or-self" => Axis::AncestorOrSelf,
                    "following-sibling" => Axis::FollowingSibling,
                    "preceding-sibling" => Axis::PrecedingSibling,
                    "attribute" => Axis::Attribute,
                    other => return self.err(format!("unsupported axis '{other}'")),
                };
                let test = self.node_test()?;
                let mut step = Step::plain(axis, test);
                self.predicates_into(&mut step.predicates)?;
                return Ok(step);
            }
        }
        self.s.seek(save);
        let test = self.node_test()?;
        let mut step = Step::plain(Axis::Child, test);
        self.predicates_into(&mut step.predicates)?;
        Ok(step)
    }

    fn node_test(&mut self) -> QueryResult<NodeTest> {
        self.s.skip_ws();
        if self.s.eat("*") {
            return Ok(NodeTest::Wildcard);
        }
        let save = self.s.pos();
        if let Some((prefix, local)) = self.s.qname() {
            if prefix.is_some() && self.s.looking_at("(") {
                // A prefixed name followed by '(' can only be a function
                // call (prefixed kind tests do not exist).
                self.s.seek(save);
                return self.err("function call in step position");
            }
            if prefix.is_none() && self.s.looking_at("(") {
                match local {
                    "text" => {
                        self.expect("(")?;
                        self.expect(")")?;
                        return Ok(NodeTest::Text);
                    }
                    "comment" => {
                        self.expect("(")?;
                        self.expect(")")?;
                        return Ok(NodeTest::Comment);
                    }
                    "node" => {
                        self.expect("(")?;
                        self.expect(")")?;
                        return Ok(NodeTest::AnyKind);
                    }
                    "processing-instruction" => {
                        self.expect("(")?;
                        let target = if !self.s.looking_at(")") {
                            Some(self.string_lit()?)
                        } else {
                            None
                        };
                        self.expect(")")?;
                        return Ok(NodeTest::Pi(target));
                    }
                    _ => {
                        // A function call, not a node test: rewind so the
                        // caller's postfix path handles it.
                        self.s.seek(save);
                        return self.err("function call in step position");
                    }
                }
            }
            return Ok(NodeTest::Name(SchemaName {
                uri: prefix.map(|p| format!("prefix:{p}")),
                local: local.to_string(),
            }));
        }
        self.err("expected a node test")
    }

    fn predicates_into(&mut self, preds: &mut Vec<Expr>) -> QueryResult<()> {
        while self.s.eat("[") {
            preds.push(self.expr()?);
            self.expect("]")?;
        }
        Ok(())
    }

    /// A step (name test or axis) or a postfix/primary expression —
    /// disambiguated by lookahead.
    fn step_or_postfix(&mut self) -> QueryResult<StepOrExpr> {
        self.s.skip_ws();
        match self.s.peek() {
            Some('.') if !self.s.rest().starts_with("..") => {
                // Context item (possibly with predicates → filter).
                self.s.eat(".");
                let mut preds = Vec::new();
                self.predicates_into(&mut preds)?;
                let e = Expr::ContextItem;
                if preds.is_empty() {
                    return Ok(StepOrExpr::Expr(e));
                }
                return Ok(StepOrExpr::Expr(Expr::Filter {
                    input: e.boxed(),
                    predicates: preds,
                }));
            }
            Some('.') => {
                return Ok(StepOrExpr::Step(self.axis_step()?));
            }
            Some('@' | '*') => {
                return Ok(StepOrExpr::Step(self.axis_step()?));
            }
            Some(c) if is_name_start(c) => {
                // `text { ... }` is a computed constructor, not a step.
                let save = self.s.pos();
                if self.s.eat_kw("text") && self.s.looking_at("{") {
                    self.s.seek(save);
                    return Ok(StepOrExpr::Expr(self.postfix_expr()?));
                }
                self.s.seek(save);
                // Could be: axis::, name-test step, function call, or a
                // keyword expression (handled upstream). Try step first;
                // on "function call in step position" fall back.
                match self.axis_step() {
                    Ok(step) => return Ok(StepOrExpr::Step(step)),
                    Err(QueryError::Parse { msg, .. })
                        if msg.contains("function call in step position") =>
                    {
                        self.s.seek(save);
                    }
                    Err(e) => return Err(e),
                }
                let e = self.postfix_expr()?;
                return Ok(StepOrExpr::Expr(e));
            }
            _ => {}
        }
        Ok(StepOrExpr::Expr(self.postfix_expr()?))
    }

    fn postfix_expr(&mut self) -> QueryResult<Expr> {
        let primary = self.primary_expr()?;
        let mut preds = Vec::new();
        self.predicates_into(&mut preds)?;
        if preds.is_empty() {
            Ok(primary)
        } else {
            Ok(Expr::Filter {
                input: primary.boxed(),
                predicates: preds,
            })
        }
    }

    fn primary_expr(&mut self) -> QueryResult<Expr> {
        self.s.skip_ws();
        match self.s.peek() {
            Some('\'' | '"') => {
                let s = self.string_lit()?;
                return Ok(Expr::Literal(Atom::String(s)));
            }
            Some('$') => {
                self.s.eat("$");
                let name = self.var_name()?;
                return Ok(Expr::VarRef {
                    name,
                    slot: usize::MAX,
                });
            }
            Some('(') => {
                self.s.eat("(");
                if self.s.eat(")") {
                    return Ok(Expr::Empty);
                }
                let e = self.expr()?;
                self.expect(")")?;
                return Ok(e);
            }
            Some('<') => {
                return self.direct_constructor();
            }
            _ => {}
        }
        if let Some(n) = self.s.number_literal() {
            return Ok(Expr::Literal(Atom::Number(n)));
        }
        // text { expr } constructor.
        if self.s.looking_at_kw("text") {
            let save = self.s.pos();
            self.s.eat_kw("text");
            if self.s.eat("{") {
                let e = self.expr()?;
                self.expect("}")?;
                return Ok(Expr::TextCtor(e.boxed()));
            }
            self.s.seek(save);
        }
        // Function call.
        let save = self.s.pos();
        if let Some((prefix, local)) = self.s.qname() {
            if self.s.looking_at("(") {
                let name = match prefix {
                    Some("fn") | None => local.to_string(),
                    Some("local") => format!("local:{local}"),
                    Some(p) => format!("{p}:{local}"),
                };
                self.expect("(")?;
                let mut args = Vec::new();
                if !self.s.looking_at(")") {
                    loop {
                        args.push(self.expr_single()?);
                        if !self.s.eat(",") {
                            break;
                        }
                    }
                }
                self.expect(")")?;
                return Ok(Expr::FnCall {
                    name,
                    args,
                    resolved: FnResolution::Unresolved,
                });
            }
            self.s.seek(save);
        }
        self.err("expected an expression")
    }

    // -------------------------------------------------------------
    // Direct constructors
    // -------------------------------------------------------------

    fn direct_constructor(&mut self) -> QueryResult<Expr> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            self.depth -= 1;
            return self.err("constructor nesting too deep");
        }
        let result = self.direct_constructor_inner();
        self.depth -= 1;
        result
    }

    fn direct_constructor_inner(&mut self) -> QueryResult<Expr> {
        self.expect("<")?;
        let name = self.qname()?;
        let mut attrs = Vec::new();
        loop {
            self.s.skip_ws();
            if self.s.eat("/>") {
                return Ok(Expr::ElementCtor {
                    name,
                    attrs,
                    children: Vec::new(),
                });
            }
            if self.s.eat(">") {
                break;
            }
            let attr_name = self.qname()?;
            self.expect("=")?;
            let parts = self.attr_value_parts()?;
            attrs.push((attr_name, parts));
        }
        // Content until the matching end tag.
        let children = self.ctor_content(&name)?;
        Ok(Expr::ElementCtor {
            name,
            attrs,
            children,
        })
    }

    fn attr_value_parts(&mut self) -> QueryResult<Vec<Expr>> {
        self.s.skip_ws();
        let quote = match self.s.bump() {
            Some(q @ ('\'' | '"')) => q,
            _ => return self.err("expected a quoted attribute value"),
        };
        let mut parts = Vec::new();
        let mut lit = String::new();
        loop {
            match self.s.peek() {
                None => return self.err("unterminated attribute value"),
                Some(c) if c == quote => {
                    self.s.bump();
                    break;
                }
                Some('{') => {
                    self.s.bump();
                    if self.s.peek() == Some('{') {
                        self.s.bump();
                        lit.push('{');
                        continue;
                    }
                    if !lit.is_empty() {
                        parts.push(Expr::Literal(Atom::String(std::mem::take(&mut lit))));
                    }
                    let e = self.expr()?;
                    self.expect("}")?;
                    parts.push(e);
                }
                Some('}') => {
                    self.s.bump();
                    if self.s.peek() == Some('}') {
                        self.s.bump();
                    }
                    lit.push('}');
                }
                Some('&') => {
                    let start = self.s.pos();
                    let mut ent = String::new();
                    loop {
                        match self.s.bump() {
                            Some(';') => {
                                ent.push(';');
                                break;
                            }
                            Some(c) => ent.push(c),
                            None => {
                                return Err(QueryError::Parse {
                                    pos: start,
                                    msg: "bad entity reference".into(),
                                })
                            }
                        }
                    }
                    match sedna_xml::unescape(&ent) {
                        Some(s) => lit.push_str(&s),
                        None => {
                            return Err(QueryError::Parse {
                                pos: start,
                                msg: "bad entity reference".into(),
                            })
                        }
                    }
                }
                Some(c) => {
                    lit.push(c);
                    self.s.bump();
                }
            }
        }
        if !lit.is_empty() || parts.is_empty() {
            parts.push(Expr::Literal(Atom::String(lit)));
        }
        Ok(parts)
    }

    fn ctor_content(&mut self, open: &SchemaName) -> QueryResult<Vec<Expr>> {
        let mut children = Vec::new();
        let mut text = String::new();
        macro_rules! flush_text {
            () => {
                if !text.is_empty() {
                    // Boundary whitespace between constructors is dropped,
                    // per the default XQuery boundary-space policy.
                    if !text.chars().all(char::is_whitespace) {
                        children.push(Expr::TextCtor(
                            Expr::Literal(Atom::String(std::mem::take(&mut text))).boxed(),
                        ));
                    } else {
                        text.clear();
                    }
                }
            };
        }
        loop {
            match self.s.peek() {
                None => return self.err("unterminated element constructor"),
                Some('<') => {
                    if self.s.rest().starts_with("</") {
                        flush_text!();
                        self.s.eat("</");
                        let close = self.qname()?;
                        self.s.skip_ws();
                        self.expect(">")?;
                        if close != *open {
                            return self.err(format!(
                                "mismatched constructor tags: <{}> vs </{}>",
                                open.local, close.local
                            ));
                        }
                        return Ok(children);
                    }
                    flush_text!();
                    children.push(self.direct_constructor()?);
                }
                Some('{') => {
                    self.s.bump();
                    if self.s.peek() == Some('{') {
                        self.s.bump();
                        text.push('{');
                        continue;
                    }
                    flush_text!();
                    let e = self.expr()?;
                    self.expect("}")?;
                    children.push(e);
                }
                Some('}') => {
                    self.s.bump();
                    if self.s.peek() == Some('}') {
                        self.s.bump();
                    }
                    text.push('}');
                }
                Some('&') => {
                    let start = self.s.pos();
                    let mut ent = String::new();
                    loop {
                        match self.s.bump() {
                            Some(';') => {
                                ent.push(';');
                                break;
                            }
                            Some(c) => ent.push(c),
                            None => {
                                return Err(QueryError::Parse {
                                    pos: start,
                                    msg: "bad entity reference".into(),
                                })
                            }
                        }
                    }
                    match sedna_xml::unescape(&ent) {
                        Some(s) => text.push_str(&s),
                        None => {
                            return Err(QueryError::Parse {
                                pos: start,
                                msg: "bad entity reference".into(),
                            })
                        }
                    }
                }
                Some(c) => {
                    text.push(c);
                    self.s.bump();
                }
            }
        }
    }
}

enum StepOrExpr {
    Step(Step),
    Expr(Expr),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(q: &str) -> Expr {
        parse_expr(q).unwrap()
    }

    #[test]
    fn literals_and_sequences() {
        assert_eq!(parse("42"), Expr::Literal(Atom::Number(42.0)));
        assert_eq!(parse("'hi'"), Expr::Literal(Atom::String("hi".into())));
        assert_eq!(parse("()"), Expr::Empty);
        match parse("(1, 2, 3)") {
            Expr::Sequence(items) => assert_eq!(items.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        // 1 + 2 * 3 parses as 1 + (2 * 3)
        match parse("1 + 2 * 3") {
            Expr::Arith(ArithOp::Add, _, rhs) => {
                assert!(matches!(*rhs, Expr::Arith(ArithOp::Mul, _, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn comparisons_general_and_value() {
        assert!(matches!(parse("1 = 2"), Expr::GeneralCmp(CmpOp::Eq, _, _)));
        assert!(matches!(parse("1 eq 2"), Expr::ValueCmp(CmpOp::Eq, _, _)));
        assert!(matches!(parse("1 <= 2"), Expr::GeneralCmp(CmpOp::Le, _, _)));
    }

    #[test]
    fn paths_are_ddo_wrapped() {
        match parse("doc('lib')/library/book") {
            Expr::Ddo(inner) => match *inner {
                Expr::Path { start, steps } => {
                    assert_eq!(start, PathStart::Doc("lib".into()));
                    assert_eq!(steps.len(), 2);
                    assert_eq!(steps[0].axis, Axis::Child);
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn abbreviated_descendant_expands() {
        match parse("//para") {
            Expr::Ddo(inner) => match *inner {
                Expr::Path { steps, .. } => {
                    assert_eq!(steps.len(), 2);
                    assert_eq!(steps[0].axis, Axis::DescendantOrSelf);
                    assert_eq!(steps[0].test, NodeTest::AnyKind);
                    assert_eq!(steps[1].axis, Axis::Child);
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn axes_and_tests() {
        let q = "child::a/descendant::b/ancestor::*/@id/../self::node()/text()";
        match parse(q) {
            Expr::Ddo(inner) => match *inner {
                Expr::Path { steps, .. } => {
                    assert_eq!(steps[0].axis, Axis::Child);
                    assert_eq!(steps[1].axis, Axis::Descendant);
                    assert_eq!(steps[2].axis, Axis::Ancestor);
                    assert_eq!(steps[3].axis, Axis::Attribute);
                    assert_eq!(steps[4].axis, Axis::Parent);
                    assert_eq!(steps[5].axis, Axis::SelfAxis);
                    assert_eq!(steps[6].test, NodeTest::Text);
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn predicates_attach_to_steps() {
        match parse("book[price > 10][2]") {
            Expr::Ddo(inner) => match *inner {
                Expr::Path { steps, .. } => {
                    assert_eq!(steps.len(), 1);
                    assert_eq!(steps[0].predicates.len(), 2);
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn flwor_full_shape() {
        let q = "for $b at $i in doc('l')/lib/book let $t := $b/title where $i > 1 order by $t descending return $t";
        match parse(q) {
            Expr::Flwor {
                clauses,
                where_,
                order,
                ..
            } => {
                assert_eq!(clauses.len(), 2);
                assert!(matches!(&clauses[0], FlworClause::For { at: Some(_), .. }));
                assert!(where_.is_some());
                assert_eq!(order.len(), 1);
                assert!(order[0].descending);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn quantified_and_if() {
        assert!(matches!(
            parse("some $x in (1,2) satisfies $x = 2"),
            Expr::Quantified { some: true, .. }
        ));
        assert!(matches!(
            parse("every $x in (1,2) satisfies $x > 0"),
            Expr::Quantified { some: false, .. }
        ));
        assert!(matches!(parse("if (1) then 2 else 3"), Expr::If { .. }));
    }

    #[test]
    fn constructors_with_enclosed_exprs() {
        let q = r#"<book id="{1 + 1}" lang="en">Title: {$t}<sub/></book>"#;
        match parse(q) {
            Expr::ElementCtor {
                name,
                attrs,
                children,
            } => {
                assert_eq!(name.local, "book");
                assert_eq!(attrs.len(), 2);
                assert_eq!(attrs[0].1.len(), 1); // single enclosed expr
                assert_eq!(children.len(), 3); // text, var, nested ctor
                assert!(matches!(&children[0], Expr::TextCtor(_)));
                assert!(matches!(&children[2], Expr::ElementCtor { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn constructor_brace_escapes() {
        match parse("<a>{{literal}}</a>") {
            Expr::ElementCtor { children, .. } => {
                assert_eq!(children.len(), 1);
                match &children[0] {
                    Expr::TextCtor(t) => {
                        assert_eq!(**t, Expr::Literal(Atom::String("{literal}".into())))
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn union_intersect_except() {
        assert!(matches!(parse("a | b"), Expr::Ddo(_)));
        assert!(matches!(parse("a intersect b"), Expr::Ddo(_)));
        assert!(matches!(parse("a except b"), Expr::Ddo(_)));
    }

    #[test]
    fn filter_on_primary() {
        match parse("(1, 2, 3)[2]") {
            Expr::Filter { predicates, .. } => assert_eq!(predicates.len(), 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn prolog_declarations() {
        let q = "declare variable $depth := 3; declare function local:twice($x) { $x * 2 }; local:twice($depth)";
        let stmt = parse_statement(q).unwrap();
        assert_eq!(stmt.vars.len(), 1);
        assert_eq!(stmt.functions.len(), 1);
        assert_eq!(stmt.functions[0].params, ["x"]);
        assert!(matches!(stmt.kind, StatementKind::Query(_)));
    }

    #[test]
    fn update_statements() {
        let s = parse_statement("UPDATE insert <author>New</author> into doc('l')/lib/book[1]")
            .unwrap();
        assert!(matches!(
            s.kind,
            StatementKind::Update(UpdateStmt::Insert {
                pos: InsertPos::Into,
                ..
            })
        ));
        let s = parse_statement("UPDATE delete doc('l')//book[title = 'Old']").unwrap();
        assert!(matches!(
            s.kind,
            StatementKind::Update(UpdateStmt::Delete { .. })
        ));
        let s = parse_statement("UPDATE replace value of doc('l')//year with '2005'").unwrap();
        assert!(matches!(
            s.kind,
            StatementKind::Update(UpdateStmt::ReplaceValue { .. })
        ));
    }

    #[test]
    fn ddl_statements() {
        let s = parse_statement("CREATE DOCUMENT 'catalog'").unwrap();
        assert_eq!(
            s.kind,
            StatementKind::Ddl(DdlStmt::CreateDocument("catalog".into()))
        );
        let s = parse_statement(
            "CREATE INDEX 'byyear' ON doc('lib')/library/book BY issue/year AS xs:double",
        )
        .unwrap();
        match s.kind {
            StatementKind::Ddl(DdlStmt::CreateIndex {
                name,
                doc,
                on,
                by,
                key_type,
            }) => {
                assert_eq!(name, "byyear");
                assert_eq!(doc, "lib");
                assert_eq!(on.len(), 2);
                assert_eq!(by.len(), 2);
                assert_eq!(key_type, IndexKeyType::Number);
            }
            other => panic!("{other:?}"),
        }
        let s = parse_statement("DROP INDEX 'byyear'").unwrap();
        assert_eq!(
            s.kind,
            StatementKind::Ddl(DdlStmt::DropIndex("byyear".into()))
        );
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_expr("for $x in").is_err());
        assert!(parse_expr("(1, 2").is_err());
        assert!(parse_expr("<a></b>").is_err());
        assert!(parse_expr("1 +").is_err());
        assert!(parse_statement("UPDATE frobnicate x").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(parse("1 (: comment (: nested :) :) + 2"), parse("1 + 2"));
    }
}
