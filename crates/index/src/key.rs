//! Order-preserving key encoding.

/// A typed index key.
#[derive(Clone, PartialEq, Debug)]
pub enum IndexKey {
    /// A string key (compared by UTF-8 bytes).
    String(String),
    /// A numeric key (totally ordered; NaN is rejected at construction).
    Number(f64),
}

impl IndexKey {
    /// Builds a numeric key; returns `None` for NaN (which has no place in
    /// a total order).
    pub fn number(v: f64) -> Option<IndexKey> {
        (!v.is_nan()).then_some(IndexKey::Number(v))
    }

    /// Builds a string key.
    pub fn string(s: impl Into<String>) -> IndexKey {
        IndexKey::String(s.into())
    }

    /// Encodes the key so that `encode(a) < encode(b)` (byte-wise) iff
    /// `a < b`: numbers sort before strings; within numbers, IEEE-754 bits
    /// with sign fix-up preserve numeric order.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            IndexKey::Number(v) => {
                let bits = v.to_bits();
                // Standard order-preserving transform: flip all bits of
                // negatives, flip only the sign bit of non-negatives.
                let ordered = if bits & (1 << 63) != 0 {
                    !bits
                } else {
                    bits ^ (1 << 63)
                };
                let mut out = Vec::with_capacity(9);
                out.push(0);
                out.extend_from_slice(&ordered.to_be_bytes());
                out
            }
            IndexKey::String(s) => {
                let mut out = Vec::with_capacity(1 + s.len());
                out.push(1);
                out.extend_from_slice(s.as_bytes());
                out
            }
        }
    }

    /// Decodes [`IndexKey::encode`] output.
    pub fn decode(bytes: &[u8]) -> Option<IndexKey> {
        match bytes.first()? {
            0 => {
                let arr: [u8; 8] = bytes.get(1..9)?.try_into().ok()?;
                let ordered = u64::from_be_bytes(arr);
                let bits = if ordered & (1 << 63) != 0 {
                    ordered ^ (1 << 63)
                } else {
                    !ordered
                };
                Some(IndexKey::Number(f64::from_bits(bits)))
            }
            1 => Some(IndexKey::String(
                String::from_utf8(bytes[1..].to_vec()).ok()?,
            )),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_encoding_preserves_order() {
        let values = [
            f64::NEG_INFINITY,
            -1e300,
            -2.5,
            -1.0,
            -0.0,
            0.0,
            1e-300,
            1.0,
            2.5,
            1e300,
            f64::INFINITY,
        ];
        for w in values.windows(2) {
            let (a, b) = (IndexKey::Number(w[0]), IndexKey::Number(w[1]));
            assert!(
                a.encode() <= b.encode(),
                "{} should encode <= {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn strings_sort_after_numbers() {
        assert!(IndexKey::Number(f64::INFINITY).encode() < IndexKey::string("").encode());
    }

    #[test]
    fn string_encoding_is_bytewise() {
        assert!(IndexKey::string("abc").encode() < IndexKey::string("abd").encode());
        assert!(IndexKey::string("ab").encode() < IndexKey::string("abc").encode());
    }

    #[test]
    fn round_trips() {
        for k in [
            IndexKey::Number(-42.5),
            IndexKey::Number(0.0),
            IndexKey::Number(3.25),
            IndexKey::string("hello"),
            IndexKey::string(""),
        ] {
            assert_eq!(IndexKey::decode(&k.encode()), Some(k));
        }
    }

    #[test]
    fn nan_rejected() {
        assert!(IndexKey::number(f64::NAN).is_none());
        assert!(IndexKey::number(1.5).is_some());
    }
}
