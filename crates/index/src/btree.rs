//! The paged B+-tree.
//!
//! Layout (after the 16-byte SAS page header):
//!
//! ```text
//! 16  u8   page kind (3 = index)
//! 17  u8   node type (0 = leaf, 1 = internal)
//! 18  u16  entry count
//! 20  u64  leaf: next-leaf XPtr / internal: leftmost child XPtr
//! 28  ..   entries, length-prefixed, sorted by encoded key
//!          leaf entry:     key_len u16 | key | handle u64
//!          internal entry: key_len u16 | key | child u64
//! ```
//!
//! Internal entries route: keys `< entry0.key` go to the leftmost child;
//! keys in `[entry_i.key, entry_{i+1}.key)` go to `entry_i.child`.
//! Inserts split full pages bottom-up; deletes do not rebalance (empty
//! pages are reclaimed only when the whole index is dropped), which keeps
//! the structure simple and is the behaviour of several production
//! B-trees' lazy modes.

use sedna_obs::{Counter, Registry};
use sedna_sas::{SasError, Vas, XPtr};

use crate::key::IndexKey;

/// Live metric handles shared by every index of a database
/// (`sedna_index_*`). Cloning shares the underlying counters, so the
/// catalog can attach one set of handles to every [`BTreeIndex`] it
/// holds.
#[derive(Clone, Debug, Default)]
pub struct IndexMetrics {
    /// Point lookups (`lookup`).
    pub lookups: Counter,
    /// Range scans (`range`).
    pub range_scans: Counter,
    /// Entries inserted.
    pub inserts: Counter,
    /// Entries removed.
    pub removes: Counter,
    /// Page splits (including root growth).
    pub splits: Counter,
}

impl IndexMetrics {
    /// Registers every counter under its canonical `sedna_index_*` name
    /// (see `docs/metrics.md`).
    pub fn register_into(&self, reg: &Registry) {
        reg.register_counter(
            "sedna_index_lookups_total",
            "B-tree point lookups",
            &self.lookups,
        );
        reg.register_counter(
            "sedna_index_range_scans_total",
            "B-tree range scans",
            &self.range_scans,
        );
        reg.register_counter(
            "sedna_index_inserts_total",
            "B-tree entries inserted",
            &self.inserts,
        );
        reg.register_counter(
            "sedna_index_removes_total",
            "B-tree entries removed",
            &self.removes,
        );
        reg.register_counter(
            "sedna_index_splits_total",
            "B-tree page splits (including root growth)",
            &self.splits,
        );
    }
}

const IH_KIND: usize = 16;
const IH_NODE_TYPE: usize = 17;
const IH_COUNT: usize = 18;
const IH_LINK: usize = 20;
const IH_ENTRIES: usize = 28;

const KIND_INDEX_BLOCK: u8 = 3;
const TYPE_LEAF: u8 = 0;
const TYPE_INTERNAL: u8 = 1;

/// Errors raised by index operations.
#[derive(Debug)]
pub enum IndexError {
    /// Propagated SAS error.
    Sas(SasError),
    /// A key too large for the page size.
    KeyTooLarge(usize),
    /// Structural corruption.
    Corrupt(String),
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::Sas(e) => write!(f, "address-space error: {e}"),
            IndexError::KeyTooLarge(n) => write!(f, "index key of {n} bytes exceeds page capacity"),
            IndexError::Corrupt(m) => write!(f, "index corruption: {m}"),
        }
    }
}

impl std::error::Error for IndexError {}

impl From<SasError> for IndexError {
    fn from(e: SasError) -> Self {
        IndexError::Sas(e)
    }
}

/// Result alias for index operations.
pub type IndexResult<T> = Result<T, IndexError>;

/// One entry parsed from a page.
#[derive(Clone, Debug)]
struct Entry {
    key: Vec<u8>,
    ptr: u64, // handle (leaf) or child page (internal)
}

fn parse_page(bytes: &[u8]) -> (u8, XPtr, Vec<Entry>) {
    let node_type = bytes[IH_NODE_TYPE];
    let count = u16::from_le_bytes([bytes[IH_COUNT], bytes[IH_COUNT + 1]]) as usize;
    let link = XPtr::read_at(bytes, IH_LINK);
    let mut entries = Vec::with_capacity(count);
    let mut at = IH_ENTRIES;
    for _ in 0..count {
        let klen = u16::from_le_bytes([bytes[at], bytes[at + 1]]) as usize;
        let key = bytes[at + 2..at + 2 + klen].to_vec();
        let ptr = u64::from_le_bytes(bytes[at + 2 + klen..at + 10 + klen].try_into().unwrap());
        entries.push(Entry { key, ptr });
        at += 2 + klen + 8;
    }
    (node_type, link, entries)
}

fn entries_size(entries: &[Entry]) -> usize {
    entries.iter().map(|e| 2 + e.key.len() + 8).sum()
}

fn write_page(bytes: &mut [u8], node_type: u8, link: XPtr, entries: &[Entry]) {
    bytes[IH_KIND] = KIND_INDEX_BLOCK;
    bytes[IH_NODE_TYPE] = node_type;
    bytes[IH_COUNT..IH_COUNT + 2].copy_from_slice(&(entries.len() as u16).to_le_bytes());
    link.write_at(bytes, IH_LINK);
    let mut at = IH_ENTRIES;
    for e in entries {
        bytes[at..at + 2].copy_from_slice(&(e.key.len() as u16).to_le_bytes());
        bytes[at + 2..at + 2 + e.key.len()].copy_from_slice(&e.key);
        bytes[at + 2 + e.key.len()..at + 10 + e.key.len()].copy_from_slice(&e.ptr.to_le_bytes());
        at += 2 + e.key.len() + 8;
    }
}

/// A B+-tree index over `(IndexKey, node handle)` pairs.
#[derive(Clone, Debug)]
pub struct BTreeIndex {
    /// The root page (changes when the root splits).
    pub root: XPtr,
    /// Number of live entries.
    pub entries: u64,
    /// Metric handles (shared across indexes; see [`IndexMetrics`]).
    metrics: IndexMetrics,
}

enum InsertResult {
    Done,
    /// The child split: promote `key` with the new right sibling.
    Split(Vec<u8>, XPtr),
}

impl BTreeIndex {
    /// Creates an empty index.
    pub fn create(vas: &Vas) -> IndexResult<BTreeIndex> {
        let (root, mut page) = vas.alloc_page()?;
        write_page(&mut page, TYPE_LEAF, XPtr::NULL, &[]);
        drop(page);
        Ok(BTreeIndex {
            root,
            entries: 0,
            metrics: IndexMetrics::default(),
        })
    }

    /// Reopens an index from its root pointer and entry count (catalog).
    pub fn open(root: XPtr, entries: u64) -> BTreeIndex {
        BTreeIndex {
            root,
            entries,
            metrics: IndexMetrics::default(),
        }
    }

    /// Attaches metric handles (typically a database-wide shared set).
    pub fn set_metrics(&mut self, metrics: IndexMetrics) {
        self.metrics = metrics;
    }

    /// The index's live metric handles.
    pub fn metrics(&self) -> &IndexMetrics {
        &self.metrics
    }

    fn capacity(vas: &Vas) -> usize {
        vas.page_size() - IH_ENTRIES
    }

    /// Inserts `(key, handle)`. Duplicates (same key and handle) are kept
    /// — callers that need set semantics remove first.
    pub fn insert(&mut self, vas: &Vas, key: &IndexKey, handle: XPtr) -> IndexResult<()> {
        let encoded = key.encode();
        if 2 + encoded.len() + 8 > Self::capacity(vas) / 4 {
            return Err(IndexError::KeyTooLarge(encoded.len()));
        }
        match self.insert_rec(vas, self.root, &encoded, handle.raw())? {
            InsertResult::Done => {}
            InsertResult::Split(sep, right) => {
                // Grow a new root.
                self.metrics.splits.inc();
                let (new_root, mut page) = vas.alloc_page()?;
                let entries = vec![Entry {
                    key: sep,
                    ptr: right.raw(),
                }];
                write_page(&mut page, TYPE_INTERNAL, self.root, &entries);
                drop(page);
                self.root = new_root;
            }
        }
        self.entries += 1;
        self.metrics.inserts.inc();
        Ok(())
    }

    fn insert_rec(
        &mut self,
        vas: &Vas,
        page_ptr: XPtr,
        key: &[u8],
        ptr_val: u64,
    ) -> IndexResult<InsertResult> {
        let (node_type, link, mut entries) = {
            let page = vas.read(page_ptr)?;
            parse_page(&page)
        };
        if node_type == TYPE_LEAF {
            let pos = entries.partition_point(|e| (e.key.as_slice(), e.ptr) < (key, ptr_val));
            entries.insert(
                pos,
                Entry {
                    key: key.to_vec(),
                    ptr: ptr_val,
                },
            );
            return self.store_maybe_split(vas, page_ptr, TYPE_LEAF, link, entries);
        }
        // Internal: route to child.
        let idx = entries.partition_point(|e| e.key.as_slice() <= key);
        let child = if idx == 0 {
            link
        } else {
            XPtr::from_raw(entries[idx - 1].ptr)
        };
        match self.insert_rec(vas, child, key, ptr_val)? {
            InsertResult::Done => Ok(InsertResult::Done),
            InsertResult::Split(sep, right) => {
                let pos = entries.partition_point(|e| e.key.as_slice() <= sep.as_slice());
                entries.insert(
                    pos,
                    Entry {
                        key: sep,
                        ptr: right.raw(),
                    },
                );
                self.store_maybe_split(vas, page_ptr, TYPE_INTERNAL, link, entries)
            }
        }
    }

    fn store_maybe_split(
        &mut self,
        vas: &Vas,
        page_ptr: XPtr,
        node_type: u8,
        link: XPtr,
        entries: Vec<Entry>,
    ) -> IndexResult<InsertResult> {
        let cap = Self::capacity(vas);
        if entries_size(&entries) <= cap {
            let mut page = vas.write(page_ptr)?;
            write_page(&mut page, node_type, link, &entries);
            return Ok(InsertResult::Done);
        }
        // Split in half by entry count.
        self.metrics.splits.inc();
        let mid = entries.len() / 2;
        let (left, right): (Vec<Entry>, Vec<Entry>) = {
            let mut l = entries;
            let r = l.split_off(mid);
            (l, r)
        };
        let (right_ptr, sep, right_link, left_link, right_entries) = if node_type == TYPE_LEAF {
            let (rp, _pg) = vas.alloc_page()?;
            // Leaf chain: left -> right -> old next.
            (rp, right[0].key.clone(), link, rp, right)
        } else {
            // Internal split: the middle key moves up; the right node's
            // leftmost child is the promoted entry's child.
            let mut right = right;
            let promoted = right.remove(0);
            let (rp, _pg) = vas.alloc_page()?;
            (rp, promoted.key, XPtr::from_raw(promoted.ptr), link, right)
        };
        {
            let mut page = vas.write(right_ptr)?;
            write_page(&mut page, node_type, right_link, &right_entries);
        }
        {
            let mut page = vas.write(page_ptr)?;
            let ll = if node_type == TYPE_LEAF {
                left_link
            } else {
                link
            };
            write_page(&mut page, node_type, ll, &left);
        }
        let _ = left_link;
        Ok(InsertResult::Split(sep, right_ptr))
    }

    /// Removes one `(key, handle)` pair; returns whether it was present.
    /// Walks the leaf chain forward past equal keys, since duplicates may
    /// span several leaves.
    pub fn remove(&mut self, vas: &Vas, key: &IndexKey, handle: XPtr) -> IndexResult<bool> {
        let encoded = key.encode();
        let mut leaf = self.find_leaf(vas, &encoded)?;
        loop {
            let (node_type, link, mut entries) = {
                let page = vas.read(leaf)?;
                parse_page(&page)
            };
            debug_assert_eq!(node_type, TYPE_LEAF);
            let target = (encoded.as_slice(), handle.raw());
            if let Some(pos) = entries
                .iter()
                .position(|e| (e.key.as_slice(), e.ptr) == target)
            {
                entries.remove(pos);
                let mut page = vas.write(leaf)?;
                write_page(&mut page, TYPE_LEAF, link, &entries);
                self.entries -= 1;
                self.metrics.removes.inc();
                return Ok(true);
            }
            // Stop once this leaf's keys have moved past the target.
            if entries
                .last()
                .is_some_and(|e| e.key.as_slice() > encoded.as_slice())
                || link.is_null()
            {
                return Ok(false);
            }
            leaf = link;
        }
    }

    /// Descends to the **leftmost** leaf that can contain `key`: equal
    /// separator keys route left, because duplicates of a split separator
    /// live on both sides.
    fn find_leaf(&self, vas: &Vas, key: &[u8]) -> IndexResult<XPtr> {
        let mut cur = self.root;
        loop {
            let (node_type, link, entries) = {
                let page = vas.read(cur)?;
                parse_page(&page)
            };
            if node_type == TYPE_LEAF {
                return Ok(cur);
            }
            let idx = entries.partition_point(|e| e.key.as_slice() < key);
            cur = if idx == 0 {
                link
            } else {
                XPtr::from_raw(entries[idx - 1].ptr)
            };
        }
    }

    /// All handles stored under `key`.
    pub fn lookup(&self, vas: &Vas, key: &IndexKey) -> IndexResult<Vec<XPtr>> {
        self.metrics.lookups.inc();
        let encoded = key.encode();
        self.range_scan(vas, Some(&encoded), true, Some(&encoded), true)
    }

    /// Handles whose keys lie in the given range (encoded-bound form used
    /// internally; `None` = unbounded).
    fn range_scan(
        &self,
        vas: &Vas,
        lo: Option<&[u8]>,
        lo_inclusive: bool,
        hi: Option<&[u8]>,
        hi_inclusive: bool,
    ) -> IndexResult<Vec<XPtr>> {
        let mut out = Vec::new();
        let mut leaf = match lo {
            Some(k) => self.find_leaf(vas, k)?,
            None => {
                // Leftmost leaf.
                let mut cur = self.root;
                loop {
                    let (node_type, link, _) = {
                        let page = vas.read(cur)?;
                        parse_page(&page)
                    };
                    if node_type == TYPE_LEAF {
                        break cur;
                    }
                    cur = link;
                }
            }
        };
        loop {
            let (node_type, next, entries) = {
                let page = vas.read(leaf)?;
                parse_page(&page)
            };
            if node_type != TYPE_LEAF {
                return Err(IndexError::Corrupt(
                    "leaf chain reached an internal page".into(),
                ));
            }
            for e in &entries {
                if let Some(lo) = lo {
                    let below = if lo_inclusive {
                        e.key.as_slice() < lo
                    } else {
                        e.key.as_slice() <= lo
                    };
                    if below {
                        continue;
                    }
                }
                if let Some(hi) = hi {
                    let above = if hi_inclusive {
                        e.key.as_slice() > hi
                    } else {
                        e.key.as_slice() >= hi
                    };
                    if above {
                        return Ok(out);
                    }
                }
                out.push(XPtr::from_raw(e.ptr));
            }
            if next.is_null() {
                return Ok(out);
            }
            leaf = next;
        }
    }

    /// Handles with `lo <= key <= hi` (either bound optional; `inclusive`
    /// flags control strictness).
    pub fn range(
        &self,
        vas: &Vas,
        lo: Option<&IndexKey>,
        lo_inclusive: bool,
        hi: Option<&IndexKey>,
        hi_inclusive: bool,
    ) -> IndexResult<Vec<XPtr>> {
        self.metrics.range_scans.inc();
        let lo_enc = lo.map(|k| k.encode());
        let hi_enc = hi.map(|k| k.encode());
        self.range_scan(
            vas,
            lo_enc.as_deref(),
            lo_inclusive,
            hi_enc.as_deref(),
            hi_inclusive,
        )
    }

    /// Frees every page of the index (DROP INDEX). The tree must not be
    /// used afterwards.
    pub fn destroy(self, vas: &Vas) -> IndexResult<()> {
        let mut stack = vec![self.root];
        while let Some(p) = stack.pop() {
            let (node_type, link, entries) = {
                let page = vas.read(p)?;
                parse_page(&page)
            };
            if node_type == TYPE_INTERNAL {
                stack.push(link);
                for e in &entries {
                    stack.push(XPtr::from_raw(e.ptr));
                }
            }
            vas.free_page(p)?;
        }
        Ok(())
    }

    /// Every `(key, handle)` pair in key order (test/diagnostic support).
    pub fn scan_all(&self, vas: &Vas) -> IndexResult<Vec<(IndexKey, XPtr)>> {
        let mut out = Vec::new();
        let mut cur = self.root;
        loop {
            let (node_type, link, entries) = {
                let page = vas.read(cur)?;
                parse_page(&page)
            };
            if node_type == TYPE_LEAF {
                let mut leaf = cur;
                loop {
                    let (_, next, entries) = {
                        let page = vas.read(leaf)?;
                        parse_page(&page)
                    };
                    for e in entries {
                        let key = IndexKey::decode(&e.key)
                            .ok_or_else(|| IndexError::Corrupt("bad key bytes".into()))?;
                        out.push((key, XPtr::from_raw(e.ptr)));
                    }
                    if next.is_null() {
                        return Ok(out);
                    }
                    leaf = next;
                }
            }
            let _ = entries;
            cur = link;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedna_sas::{Sas, SasConfig, TxnToken, View};
    use std::sync::Arc;

    fn setup() -> (Arc<Sas>, Vas) {
        let sas = Sas::in_memory(SasConfig {
            page_size: 512,
            layer_size: 512 * 4096,
            buffer_frames: 4096,
            buffer_shards: 0,
        })
        .unwrap();
        let vas = sas.session();
        vas.begin(View::LATEST, Some(TxnToken(1)));
        (sas, vas)
    }

    fn h(i: u64) -> XPtr {
        XPtr::from_raw(0x1000 + i * 8)
    }

    #[test]
    fn insert_and_lookup_small() {
        let (_sas, vas) = setup();
        let mut idx = BTreeIndex::create(&vas).unwrap();
        idx.insert(&vas, &IndexKey::string("b"), h(2)).unwrap();
        idx.insert(&vas, &IndexKey::string("a"), h(1)).unwrap();
        idx.insert(&vas, &IndexKey::string("c"), h(3)).unwrap();
        assert_eq!(
            idx.lookup(&vas, &IndexKey::string("a")).unwrap(),
            vec![h(1)]
        );
        assert_eq!(
            idx.lookup(&vas, &IndexKey::string("b")).unwrap(),
            vec![h(2)]
        );
        assert!(idx
            .lookup(&vas, &IndexKey::string("zz"))
            .unwrap()
            .is_empty());
        assert_eq!(idx.entries, 3);
    }

    #[test]
    fn many_inserts_split_pages() {
        let (_sas, vas) = setup();
        let mut idx = BTreeIndex::create(&vas).unwrap();
        let n = 2000u64;
        // Insert in a scrambled order.
        for i in 0..n {
            let k = (i * 7919) % n;
            idx.insert(&vas, &IndexKey::Number(k as f64), h(k)).unwrap();
        }
        assert_eq!(idx.entries, n);
        for probe in [0u64, 1, 500, 1234, n - 1] {
            assert_eq!(
                idx.lookup(&vas, &IndexKey::Number(probe as f64)).unwrap(),
                vec![h(probe)],
                "probe {probe}"
            );
        }
        // Full scan is sorted.
        let all = idx.scan_all(&vas).unwrap();
        assert_eq!(all.len(), n as usize);
        for w in all.windows(2) {
            assert!(w[0].0.encode() <= w[1].0.encode());
        }
    }

    #[test]
    fn duplicate_keys_accumulate() {
        let (_sas, vas) = setup();
        let mut idx = BTreeIndex::create(&vas).unwrap();
        for i in 0..50 {
            idx.insert(&vas, &IndexKey::string("dup"), h(i)).unwrap();
        }
        let handles = idx.lookup(&vas, &IndexKey::string("dup")).unwrap();
        assert_eq!(handles.len(), 50);
        // Sorted by handle (insertion used (key, handle) order).
        for w in handles.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn remove_specific_pairs() {
        let (_sas, vas) = setup();
        let mut idx = BTreeIndex::create(&vas).unwrap();
        for i in 0..10 {
            idx.insert(&vas, &IndexKey::Number(i as f64), h(i)).unwrap();
        }
        assert!(idx.remove(&vas, &IndexKey::Number(4.0), h(4)).unwrap());
        assert!(!idx.remove(&vas, &IndexKey::Number(4.0), h(4)).unwrap());
        assert!(idx.lookup(&vas, &IndexKey::Number(4.0)).unwrap().is_empty());
        assert_eq!(idx.entries, 9);
        // Removing one duplicate leaves the others.
        idx.insert(&vas, &IndexKey::string("x"), h(100)).unwrap();
        idx.insert(&vas, &IndexKey::string("x"), h(101)).unwrap();
        assert!(idx.remove(&vas, &IndexKey::string("x"), h(100)).unwrap());
        assert_eq!(
            idx.lookup(&vas, &IndexKey::string("x")).unwrap(),
            vec![h(101)]
        );
    }

    #[test]
    fn range_queries() {
        let (_sas, vas) = setup();
        let mut idx = BTreeIndex::create(&vas).unwrap();
        for i in 0..100u64 {
            idx.insert(&vas, &IndexKey::Number(i as f64), h(i)).unwrap();
        }
        let mid = idx
            .range(
                &vas,
                Some(&IndexKey::Number(10.0)),
                true,
                Some(&IndexKey::Number(20.0)),
                false,
            )
            .unwrap();
        assert_eq!(mid.len(), 10);
        assert_eq!(mid[0], h(10));
        assert_eq!(mid[9], h(19));
        let from = idx
            .range(&vas, Some(&IndexKey::Number(95.0)), false, None, true)
            .unwrap();
        assert_eq!(from.len(), 4);
        let all = idx.range(&vas, None, true, None, true).unwrap();
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn mixed_types_partition() {
        let (_sas, vas) = setup();
        let mut idx = BTreeIndex::create(&vas).unwrap();
        idx.insert(&vas, &IndexKey::Number(5.0), h(1)).unwrap();
        idx.insert(&vas, &IndexKey::string("5"), h(2)).unwrap();
        assert_eq!(
            idx.lookup(&vas, &IndexKey::Number(5.0)).unwrap(),
            vec![h(1)]
        );
        assert_eq!(
            idx.lookup(&vas, &IndexKey::string("5")).unwrap(),
            vec![h(2)]
        );
    }

    #[test]
    fn oversized_keys_rejected() {
        let (_sas, vas) = setup();
        let mut idx = BTreeIndex::create(&vas).unwrap();
        let huge = "k".repeat(4096);
        assert!(matches!(
            idx.insert(&vas, &IndexKey::string(huge), h(1)),
            Err(IndexError::KeyTooLarge(_))
        ));
    }

    #[test]
    fn string_keys_with_long_values_split_correctly() {
        let (_sas, vas) = setup();
        let mut idx = BTreeIndex::create(&vas).unwrap();
        for i in 0..300 {
            let key = format!("prefix-{:04}-{}", i, "pad".repeat(3));
            idx.insert(&vas, &IndexKey::string(key), h(i)).unwrap();
        }
        for i in [0, 123, 299] {
            let key = format!("prefix-{:04}-{}", i, "pad".repeat(3));
            assert_eq!(
                idx.lookup(&vas, &IndexKey::string(key)).unwrap(),
                vec![h(i)]
            );
        }
    }
}
