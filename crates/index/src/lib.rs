//! # sedna-index
//!
//! A paged B+-tree value index. Section 4.1.2 motivates node handles with
//! "node handle is used to refer to an XML node from index structures" —
//! this crate is that index structure: it maps typed values (strings or
//! numbers) to **node handles**, which stay valid however the underlying
//! descriptors move. Backs the `CREATE INDEX` DDL statement and
//! index-backed predicate scans in the query executor.
//!
//! Pages live in the same Sedna Address Space as everything else; keys are
//! stored order-preservingly encoded so comparisons are plain byte
//! comparisons. Non-unique keys are supported (entries are ordered by
//! `(key, handle)`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod btree;
mod key;

pub use btree::{BTreeIndex, IndexError, IndexMetrics, IndexResult};
pub use key::IndexKey;
