//! Structural-path evaluation over the descriptive schema (§5.1.4).
//!
//! "We call a location path a *structural* one if it starts from a
//! document node and contains only descending axes and no predicates.
//! [...] These are automatically mapped to Sedna access operations over
//! descriptive schema and can thus be executed very quickly, since they
//! are executed in main memory."
//!
//! A structural path evaluated here yields the set of schema nodes whose
//! data-block lists hold exactly the path's result nodes — the query
//! executor then scans those lists directly, never touching non-matching
//! data.

use crate::tree::{NodeKind, SchemaName, SchemaNodeId, SchemaTree};

/// Axes usable in a structural path.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SchemaAxis {
    /// Direct children.
    Child,
    /// All descendants.
    Descendant,
    /// Self or any descendant (`descendant-or-self::`).
    DescendantOrSelf,
    /// Attributes.
    Attribute,
}

/// Node test of a structural-path step.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SchemaTest {
    /// `name` — elements (or attributes, on the attribute axis) with this
    /// expanded name.
    Name(SchemaName),
    /// `*` — any element (or any attribute on the attribute axis).
    AnyName,
    /// `text()`
    Text,
    /// `comment()`
    Comment,
    /// `processing-instruction()`
    Pi,
    /// `node()` — any node kind.
    AnyKind,
}

impl SchemaTest {
    fn matches(&self, tree: &SchemaTree, id: SchemaNodeId, axis: SchemaAxis) -> bool {
        let node = tree.node(id);
        let name_kind = if axis == SchemaAxis::Attribute {
            NodeKind::Attribute
        } else {
            NodeKind::Element
        };
        match self {
            SchemaTest::Name(n) => node.kind == name_kind && node.name.as_ref() == Some(n),
            SchemaTest::AnyName => node.kind == name_kind,
            SchemaTest::Text => node.kind == NodeKind::Text,
            SchemaTest::Comment => node.kind == NodeKind::Comment,
            SchemaTest::Pi => node.kind == NodeKind::ProcessingInstruction,
            SchemaTest::AnyKind => {
                if axis == SchemaAxis::Attribute {
                    node.kind == NodeKind::Attribute
                } else {
                    node.kind != NodeKind::Attribute
                }
            }
        }
    }
}

/// One step of a structural path.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PathStep {
    /// The step's axis.
    pub axis: SchemaAxis,
    /// The step's node test.
    pub test: SchemaTest,
}

impl PathStep {
    /// `child::name`
    pub fn child(name: impl Into<String>) -> PathStep {
        PathStep {
            axis: SchemaAxis::Child,
            test: SchemaTest::Name(SchemaName::local(name)),
        }
    }

    /// `descendant::name`
    pub fn descendant(name: impl Into<String>) -> PathStep {
        PathStep {
            axis: SchemaAxis::Descendant,
            test: SchemaTest::Name(SchemaName::local(name)),
        }
    }
}

/// Evaluates a structural path from the document node, returning the
/// matching schema nodes **in document order of their first appearance**
/// (schema creation order is first-appearance order, and the result is
/// sorted by id). Runs entirely in main memory — no data blocks touched.
pub fn eval_structural_path(tree: &SchemaTree, steps: &[PathStep]) -> Vec<SchemaNodeId> {
    let mut current: Vec<SchemaNodeId> = vec![SchemaTree::ROOT];
    for step in steps {
        let mut next: Vec<SchemaNodeId> = Vec::new();
        for &ctx in &current {
            match step.axis {
                SchemaAxis::Child | SchemaAxis::Attribute => {
                    for &c in &tree.node(ctx).children {
                        if step.test.matches(tree, c, step.axis) {
                            next.push(c);
                        }
                    }
                }
                SchemaAxis::Descendant => {
                    for d in tree.descendants(ctx) {
                        if step.test.matches(tree, d, step.axis) {
                            next.push(d);
                        }
                    }
                }
                SchemaAxis::DescendantOrSelf => {
                    if step.test.matches(tree, ctx, step.axis) {
                        next.push(ctx);
                    }
                    for d in tree.descendants(ctx) {
                        if step.test.matches(tree, d, step.axis) {
                            next.push(d);
                        }
                    }
                }
            }
        }
        next.sort_unstable();
        next.dedup();
        current = next;
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SchemaTree {
        // /library/{book{title,author,issue{publisher,year}}, paper{title,author}}
        let mut t = SchemaTree::new();
        let lib = t
            .get_or_add_child(
                SchemaTree::ROOT,
                NodeKind::Element,
                Some(SchemaName::local("library")),
            )
            .0;
        let book = t
            .get_or_add_child(lib, NodeKind::Element, Some(SchemaName::local("book")))
            .0;
        t.get_or_add_child(book, NodeKind::Element, Some(SchemaName::local("title")));
        t.get_or_add_child(book, NodeKind::Element, Some(SchemaName::local("author")));
        let issue = t
            .get_or_add_child(book, NodeKind::Element, Some(SchemaName::local("issue")))
            .0;
        t.get_or_add_child(
            issue,
            NodeKind::Element,
            Some(SchemaName::local("publisher")),
        );
        t.get_or_add_child(issue, NodeKind::Element, Some(SchemaName::local("year")));
        let paper = t
            .get_or_add_child(lib, NodeKind::Element, Some(SchemaName::local("paper")))
            .0;
        t.get_or_add_child(paper, NodeKind::Element, Some(SchemaName::local("title")));
        t.get_or_add_child(paper, NodeKind::Element, Some(SchemaName::local("author")));
        t.get_or_add_child(book, NodeKind::Attribute, Some(SchemaName::local("id")));
        t
    }

    fn locals(t: &SchemaTree, ids: &[SchemaNodeId]) -> Vec<String> {
        ids.iter()
            .map(|&id| t.node(id).name.as_ref().unwrap().local.clone())
            .collect()
    }

    #[test]
    fn child_steps() {
        let t = sample();
        let r = eval_structural_path(
            &t,
            &[
                PathStep::child("library"),
                PathStep::child("book"),
                PathStep::child("title"),
            ],
        );
        assert_eq!(locals(&t, &r), ["title"]);
    }

    #[test]
    fn descendant_finds_both_titles() {
        let t = sample();
        let r = eval_structural_path(&t, &[PathStep::descendant("title")]);
        assert_eq!(r.len(), 2, "book/title and paper/title");
    }

    #[test]
    fn descendant_mid_path() {
        let t = sample();
        let r = eval_structural_path(
            &t,
            &[PathStep::child("library"), PathStep::descendant("year")],
        );
        assert_eq!(locals(&t, &r), ["year"]);
    }

    #[test]
    fn descendant_or_self_includes_context() {
        let t = sample();
        let r = eval_structural_path(
            &t,
            &[
                PathStep::descendant("book"),
                PathStep {
                    axis: SchemaAxis::DescendantOrSelf,
                    test: SchemaTest::AnyName,
                },
            ],
        );
        let names = locals(&t, &r);
        assert!(names.contains(&"book".to_string()));
        assert!(names.contains(&"issue".to_string()));
        assert!(names.contains(&"year".to_string()));
    }

    #[test]
    fn attribute_axis() {
        let t = sample();
        let r = eval_structural_path(
            &t,
            &[
                PathStep::descendant("book"),
                PathStep {
                    axis: SchemaAxis::Attribute,
                    test: SchemaTest::Name(SchemaName::local("id")),
                },
            ],
        );
        assert_eq!(r.len(), 1);
        assert_eq!(t.node(r[0]).kind, NodeKind::Attribute);
    }

    #[test]
    fn wildcard_excludes_attributes() {
        let t = sample();
        let r = eval_structural_path(
            &t,
            &[
                PathStep::descendant("book"),
                PathStep {
                    axis: SchemaAxis::Child,
                    test: SchemaTest::AnyName,
                },
            ],
        );
        assert_eq!(locals(&t, &r), ["title", "author", "issue"]);
    }

    #[test]
    fn no_match_is_empty_not_error() {
        let t = sample();
        let r = eval_structural_path(&t, &[PathStep::child("nonexistent")]);
        assert!(r.is_empty());
    }

    #[test]
    fn duplicate_contexts_deduplicated() {
        let t = sample();
        // descendant::* then descendant::title — both book and library
        // reach the titles; result must still list each title once.
        let r = eval_structural_path(
            &t,
            &[
                PathStep {
                    axis: SchemaAxis::Descendant,
                    test: SchemaTest::AnyName,
                },
                PathStep::descendant("title"),
            ],
        );
        assert_eq!(r.len(), 2);
    }
}
