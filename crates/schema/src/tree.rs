//! The descriptive-schema tree and its incremental maintenance.

use sedna_sas::XPtr;

/// XDM node kinds stored in the database (Figure 2 labels schema nodes
/// with these).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum NodeKind {
    /// The document node (one per document; root of the schema).
    Document,
    /// An element node.
    Element,
    /// An attribute node.
    Attribute,
    /// A text node.
    Text,
    /// A comment node.
    Comment,
    /// A processing-instruction node.
    ProcessingInstruction,
}

impl NodeKind {
    /// Whether nodes of this kind carry a name.
    pub fn is_named(self) -> bool {
        matches!(
            self,
            NodeKind::Element | NodeKind::Attribute | NodeKind::ProcessingInstruction
        )
    }

    /// Whether nodes of this kind carry a text value.
    pub fn has_value(self) -> bool {
        matches!(
            self,
            NodeKind::Attribute
                | NodeKind::Text
                | NodeKind::Comment
                | NodeKind::ProcessingInstruction
        )
    }

    /// Compact on-disk encoding.
    pub fn to_u8(self) -> u8 {
        match self {
            NodeKind::Document => 0,
            NodeKind::Element => 1,
            NodeKind::Attribute => 2,
            NodeKind::Text => 3,
            NodeKind::Comment => 4,
            NodeKind::ProcessingInstruction => 5,
        }
    }

    /// Decodes [`NodeKind::to_u8`].
    pub fn from_u8(b: u8) -> Option<NodeKind> {
        Some(match b {
            0 => NodeKind::Document,
            1 => NodeKind::Element,
            2 => NodeKind::Attribute,
            3 => NodeKind::Text,
            4 => NodeKind::Comment,
            5 => NodeKind::ProcessingInstruction,
            _ => return None,
        })
    }
}

/// An expanded name: namespace URI plus local part (prefixes are a
/// serialization artifact and are not part of node identity).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct SchemaName {
    /// Namespace URI (`None` = no namespace).
    pub uri: Option<String>,
    /// Local part.
    pub local: String,
}

impl SchemaName {
    /// A name with no namespace.
    pub fn local(name: impl Into<String>) -> SchemaName {
        SchemaName {
            uri: None,
            local: name.into(),
        }
    }
}

impl std::fmt::Display for SchemaName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(uri) = &self.uri {
            write!(f, "{{{uri}}}")?;
        }
        write!(f, "{}", self.local)
    }
}

/// Index of a schema node within its [`SchemaTree`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct SchemaNodeId(pub u32);

/// Number of log₂ buckets in a schema node's child fan-out histogram.
/// Bucket *i* counts parent instances having `2^i ..= 2^(i+1)-1` children
/// of this schema node; the last bucket absorbs everything larger.
pub const FANOUT_BUCKETS: usize = 8;

/// The log₂ bucket a fan-out of `count` (≥ 1) falls into.
pub fn fanout_bucket(count: u64) -> usize {
    debug_assert!(count >= 1, "bucket of a zero fan-out");
    (63 - count.leading_zeros() as usize).min(FANOUT_BUCKETS - 1)
}

/// One node of the descriptive schema.
#[derive(Clone, Debug)]
pub struct SchemaNode {
    /// Node kind.
    pub kind: NodeKind,
    /// Name, for named kinds.
    pub name: Option<SchemaName>,
    /// Parent schema node (`None` for the document root).
    pub parent: Option<SchemaNodeId>,
    /// Child schema nodes **in order of first appearance** — this order
    /// defines the child-pointer slots of node descriptors and must only
    /// ever grow by appending.
    pub children: Vec<SchemaNodeId>,
    /// Head of the bidirectional data-block list.
    pub first_block: XPtr,
    /// Tail of the data-block list.
    pub last_block: XPtr,
    /// Number of data nodes currently described by this schema node.
    pub node_count: u64,
    /// Number of data blocks in the list.
    pub block_count: u32,
    /// Total byte length of the text values carried by this schema
    /// node's data nodes (0 for kinds without values).
    pub text_len: u64,
    /// Child fan-out histogram: bucket *i* counts **parent instances**
    /// currently having `2^i ..` children of this schema node (see
    /// [`fanout_bucket`]). Parents with zero such children are not
    /// counted, so the bucket sum is the number of distinct parent
    /// instances owning at least one child here.
    pub fanout: [u32; FANOUT_BUCKETS],
}

impl SchemaNode {
    /// Average text length per node (0 when the list is empty).
    pub fn avg_text_len(&self) -> u64 {
        self.text_len.checked_div(self.node_count).unwrap_or(0)
    }

    /// Number of parent instances with at least one child of this
    /// schema node (the fan-out histogram's bucket sum).
    pub fn parents_with_children(&self) -> u64 {
        self.fanout.iter().map(|&b| b as u64).sum()
    }

    /// Average fan-out: children of this schema node per parent
    /// instance that has any (1 when no histogram data exists yet).
    pub fn avg_fanout(&self) -> f64 {
        let parents = self.parents_with_children();
        if parents == 0 {
            1.0
        } else {
            self.node_count as f64 / parents as f64
        }
    }

    /// Moves one parent instance between fan-out buckets as its count of
    /// children under this schema node changes from `old` to `new`
    /// (either may be 0 — entering/leaving the histogram).
    pub fn fanout_transition(&mut self, old: u64, new: u64) {
        if old >= 1 {
            let b = fanout_bucket(old);
            self.fanout[b] = self.fanout[b].saturating_sub(1);
        }
        if new >= 1 {
            self.fanout[fanout_bucket(new)] += 1;
        }
    }
}

/// A read-only statistics snapshot of one schema node, as surfaced by
/// `Database::schema_stats` for introspection and the cost-based planner
/// tests.
#[derive(Clone, Debug, PartialEq)]
pub struct SchemaNodeStats {
    /// Schema node id.
    pub id: SchemaNodeId,
    /// Slash-separated path from the root (`/library/book`; text and
    /// other unnamed kinds render as `#text`-style kind markers).
    pub path: String,
    /// Node kind.
    pub kind: NodeKind,
    /// Data nodes described by this schema node.
    pub node_count: u64,
    /// Data blocks in its list.
    pub block_count: u32,
    /// Total text bytes across its data nodes.
    pub text_len: u64,
    /// Child fan-out histogram (see [`SchemaNode::fanout`]).
    pub fanout: [u32; FANOUT_BUCKETS],
}

/// The descriptive schema of one document: a tree of [`SchemaNode`]s.
#[derive(Clone, Debug)]
pub struct SchemaTree {
    nodes: Vec<SchemaNode>,
}

impl SchemaTree {
    /// The document root's id.
    pub const ROOT: SchemaNodeId = SchemaNodeId(0);

    /// Creates a schema containing only the document node.
    pub fn new() -> SchemaTree {
        SchemaTree {
            nodes: vec![SchemaNode {
                kind: NodeKind::Document,
                name: None,
                parent: None,
                children: Vec::new(),
                first_block: XPtr::NULL,
                last_block: XPtr::NULL,
                node_count: 0,
                block_count: 0,
                text_len: 0,
                fanout: [0; FANOUT_BUCKETS],
            }],
        }
    }

    /// Number of schema nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the schema holds only the document node.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Immutable access to a schema node.
    pub fn node(&self, id: SchemaNodeId) -> &SchemaNode {
        &self.nodes[id.0 as usize]
    }

    /// Mutable access to a schema node.
    pub fn node_mut(&mut self, id: SchemaNodeId) -> &mut SchemaNode {
        &mut self.nodes[id.0 as usize]
    }

    /// Finds the child of `parent` matching `(kind, name)`.
    pub fn find_child(
        &self,
        parent: SchemaNodeId,
        kind: NodeKind,
        name: Option<&SchemaName>,
    ) -> Option<SchemaNodeId> {
        self.node(parent).children.iter().copied().find(|&c| {
            let n = self.node(c);
            n.kind == kind && n.name.as_deref_name() == name
        })
    }

    /// Incremental maintenance: returns the child of `parent` for
    /// `(kind, name)`, creating it if this path is new. The second result
    /// is `true` when a schema node was created — the event that triggers
    /// the delayed per-block descriptor widening in the storage layer.
    pub fn get_or_add_child(
        &mut self,
        parent: SchemaNodeId,
        kind: NodeKind,
        name: Option<SchemaName>,
    ) -> (SchemaNodeId, bool) {
        debug_assert_eq!(kind.is_named(), name.is_some(), "kind/name mismatch");
        if let Some(existing) = self.find_child(parent, kind, name.as_ref()) {
            return (existing, false);
        }
        let id = SchemaNodeId(self.nodes.len() as u32);
        self.nodes.push(SchemaNode {
            kind,
            name,
            parent: Some(parent),
            children: Vec::new(),
            first_block: XPtr::NULL,
            last_block: XPtr::NULL,
            node_count: 0,
            block_count: 0,
            text_len: 0,
            fanout: [0; FANOUT_BUCKETS],
        });
        self.node_mut(parent).children.push(id);
        (id, true)
    }

    /// The position of `child` among `parent`'s children — the
    /// child-pointer slot index in node descriptors of `parent`.
    pub fn child_slot(&self, parent: SchemaNodeId, child: SchemaNodeId) -> Option<usize> {
        self.node(parent).children.iter().position(|&c| c == child)
    }

    /// Number of child schema nodes of `parent` (the full descriptor
    /// width for freshly allocated blocks of `parent`).
    pub fn child_count(&self, parent: SchemaNodeId) -> usize {
        self.node(parent).children.len()
    }

    /// The path from the root to `id`, inclusive.
    pub fn path_of(&self, id: SchemaNodeId) -> Vec<SchemaNodeId> {
        let mut path = vec![id];
        let mut cur = id;
        while let Some(p) = self.node(cur).parent {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }

    /// Depth of `id` (root = 0).
    pub fn depth(&self, id: SchemaNodeId) -> usize {
        self.path_of(id).len() - 1
    }

    /// Iterates over every schema node id in creation order.
    pub fn ids(&self) -> impl Iterator<Item = SchemaNodeId> {
        (0..self.nodes.len() as u32).map(SchemaNodeId)
    }

    /// All descendants of `id` (excluding `id`), preorder.
    pub fn descendants(&self, id: SchemaNodeId) -> Vec<SchemaNodeId> {
        let mut out = Vec::new();
        let mut stack: Vec<SchemaNodeId> = self.node(id).children.iter().rev().copied().collect();
        while let Some(n) = stack.pop() {
            out.push(n);
            for &c in self.node(n).children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Serializes the schema into a byte vector (catalog persistence).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.nodes.len() as u32).to_le_bytes());
        for node in &self.nodes {
            out.push(node.kind.to_u8());
            match &node.name {
                Some(name) => {
                    out.push(1);
                    write_opt_str(&mut out, name.uri.as_deref());
                    write_str(&mut out, &name.local);
                }
                None => out.push(0),
            }
            out.extend_from_slice(&node.parent.map_or(u32::MAX, |p| p.0).to_le_bytes());
            out.extend_from_slice(&(node.children.len() as u32).to_le_bytes());
            for c in &node.children {
                out.extend_from_slice(&c.0.to_le_bytes());
            }
            out.extend_from_slice(&node.first_block.to_bytes());
            out.extend_from_slice(&node.last_block.to_bytes());
            out.extend_from_slice(&node.node_count.to_le_bytes());
            out.extend_from_slice(&node.block_count.to_le_bytes());
            out.extend_from_slice(&node.text_len.to_le_bytes());
            for b in &node.fanout {
                out.extend_from_slice(&b.to_le_bytes());
            }
        }
        out
    }

    /// Deserializes [`SchemaTree::to_bytes`] output.
    pub fn from_bytes(buf: &[u8]) -> Option<SchemaTree> {
        let mut r = Reader { buf, pos: 0 };
        let n = r.u32()? as usize;
        let mut nodes = Vec::with_capacity(n);
        for _ in 0..n {
            let kind = NodeKind::from_u8(r.u8()?)?;
            let name = if r.u8()? == 1 {
                let uri = r.opt_str()?;
                let local = r.str()?;
                Some(SchemaName { uri, local })
            } else {
                None
            };
            let parent_raw = r.u32()?;
            let parent = (parent_raw != u32::MAX).then_some(SchemaNodeId(parent_raw));
            let n_children = r.u32()? as usize;
            let mut children = Vec::with_capacity(n_children);
            for _ in 0..n_children {
                children.push(SchemaNodeId(r.u32()?));
            }
            let first_block = XPtr::from_raw(r.u64()?);
            let last_block = XPtr::from_raw(r.u64()?);
            let node_count = r.u64()?;
            let block_count = r.u32()?;
            let text_len = r.u64()?;
            let mut fanout = [0u32; FANOUT_BUCKETS];
            for b in &mut fanout {
                *b = r.u32()?;
            }
            nodes.push(SchemaNode {
                kind,
                name,
                parent,
                children,
                first_block,
                last_block,
                node_count,
                block_count,
                text_len,
                fanout,
            });
        }
        if nodes.is_empty() {
            return None;
        }
        Some(SchemaTree { nodes })
    }

    /// A statistics snapshot of every schema node, in creation order,
    /// with human-readable root paths.
    pub fn stats_snapshot(&self) -> Vec<SchemaNodeStats> {
        self.ids()
            .map(|id| {
                let n = self.node(id);
                let path = self
                    .path_of(id)
                    .into_iter()
                    .skip(1) // the document root contributes no segment
                    .map(|p| {
                        let node = self.node(p);
                        match &node.name {
                            Some(name) => format!("/{name}"),
                            None => format!("/#{:?}", node.kind).to_lowercase(),
                        }
                    })
                    .collect::<String>();
                SchemaNodeStats {
                    id,
                    path: if path.is_empty() { "/".into() } else { path },
                    kind: n.kind,
                    node_count: n.node_count,
                    block_count: n.block_count,
                    text_len: n.text_len,
                    fanout: n.fanout,
                }
            })
            .collect()
    }
}

impl Default for SchemaTree {
    fn default() -> Self {
        SchemaTree::new()
    }
}

/// Helper so `find_child` can compare `Option<&SchemaName>`.
trait AsDerefName {
    fn as_deref_name(&self) -> Option<&SchemaName>;
}

impl AsDerefName for Option<SchemaName> {
    fn as_deref_name(&self) -> Option<&SchemaName> {
        self.as_ref()
    }
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn write_opt_str(out: &mut Vec<u8>, s: Option<&str>) {
    match s {
        Some(s) => {
            out.push(1);
            write_str(out, s);
        }
        None => out.push(0),
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.buf.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(s)
    }
    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }
    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }
    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
    fn str(&mut self) -> Option<String> {
        let n = self.u32()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).ok()
    }
    fn opt_str(&mut self) -> Option<Option<String>> {
        match self.u8()? {
            0 => Some(None),
            1 => Some(Some(self.str()?)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the Figure-2 schema: library with books (title, author,
    /// issue/publisher, issue/year) and papers (title, author).
    fn fig2_schema() -> SchemaTree {
        let mut t = SchemaTree::new();
        let lib = t
            .get_or_add_child(
                SchemaTree::ROOT,
                NodeKind::Element,
                Some(SchemaName::local("library")),
            )
            .0;
        let book = t
            .get_or_add_child(lib, NodeKind::Element, Some(SchemaName::local("book")))
            .0;
        t.get_or_add_child(book, NodeKind::Element, Some(SchemaName::local("title")));
        let author = t
            .get_or_add_child(book, NodeKind::Element, Some(SchemaName::local("author")))
            .0;
        t.get_or_add_child(author, NodeKind::Text, None);
        let issue = t
            .get_or_add_child(book, NodeKind::Element, Some(SchemaName::local("issue")))
            .0;
        t.get_or_add_child(
            issue,
            NodeKind::Element,
            Some(SchemaName::local("publisher")),
        );
        t.get_or_add_child(issue, NodeKind::Element, Some(SchemaName::local("year")));
        let paper = t
            .get_or_add_child(lib, NodeKind::Element, Some(SchemaName::local("paper")))
            .0;
        t.get_or_add_child(paper, NodeKind::Element, Some(SchemaName::local("title")));
        t.get_or_add_child(paper, NodeKind::Element, Some(SchemaName::local("author")));
        t
    }

    #[test]
    fn every_path_appears_once() {
        let mut t = fig2_schema();
        let before = t.len();
        // Re-adding existing paths creates nothing.
        let lib = t
            .find_child(
                SchemaTree::ROOT,
                NodeKind::Element,
                Some(&SchemaName::local("library")),
            )
            .unwrap();
        let (book, added) =
            t.get_or_add_child(lib, NodeKind::Element, Some(SchemaName::local("book")));
        assert!(!added);
        assert_eq!(t.len(), before);
        // The library element has exactly 2 element children in the schema
        // (book, paper) no matter how many books the data holds — the
        // paper's Figure 2 point.
        assert_eq!(t.child_count(lib), 2);
        assert_eq!(t.child_slot(lib, book), Some(0));
    }

    #[test]
    fn new_paths_append_and_report_added() {
        let mut t = fig2_schema();
        let lib = t
            .find_child(
                SchemaTree::ROOT,
                NodeKind::Element,
                Some(&SchemaName::local("library")),
            )
            .unwrap();
        let (dvd, added) =
            t.get_or_add_child(lib, NodeKind::Element, Some(SchemaName::local("dvd")));
        assert!(added);
        // Appended after existing children: slots of existing children are
        // stable (descriptor layout invariant).
        assert_eq!(t.child_slot(lib, dvd), Some(2));
    }

    #[test]
    fn kinds_distinguish_same_name() {
        let mut t = SchemaTree::new();
        let e = t
            .get_or_add_child(
                SchemaTree::ROOT,
                NodeKind::Element,
                Some(SchemaName::local("x")),
            )
            .0;
        let (a1, added1) =
            t.get_or_add_child(e, NodeKind::Attribute, Some(SchemaName::local("id")));
        let (e1, added2) = t.get_or_add_child(e, NodeKind::Element, Some(SchemaName::local("id")));
        assert!(added1 && added2);
        assert_ne!(a1, e1);
    }

    #[test]
    fn namespaced_names_are_distinct() {
        let mut t = SchemaTree::new();
        let (a, _) = t.get_or_add_child(
            SchemaTree::ROOT,
            NodeKind::Element,
            Some(SchemaName {
                uri: Some("urn:a".into()),
                local: "x".into(),
            }),
        );
        let (b, added) = t.get_or_add_child(
            SchemaTree::ROOT,
            NodeKind::Element,
            Some(SchemaName {
                uri: Some("urn:b".into()),
                local: "x".into(),
            }),
        );
        assert!(added);
        assert_ne!(a, b);
    }

    #[test]
    fn path_and_depth() {
        let t = fig2_schema();
        let lib = t
            .find_child(
                SchemaTree::ROOT,
                NodeKind::Element,
                Some(&SchemaName::local("library")),
            )
            .unwrap();
        let book = t
            .find_child(lib, NodeKind::Element, Some(&SchemaName::local("book")))
            .unwrap();
        let title = t
            .find_child(book, NodeKind::Element, Some(&SchemaName::local("title")))
            .unwrap();
        assert_eq!(t.path_of(title), vec![SchemaTree::ROOT, lib, book, title]);
        assert_eq!(t.depth(title), 3);
        assert_eq!(t.depth(SchemaTree::ROOT), 0);
    }

    #[test]
    fn descendants_preorder() {
        let t = fig2_schema();
        let lib = t
            .find_child(
                SchemaTree::ROOT,
                NodeKind::Element,
                Some(&SchemaName::local("library")),
            )
            .unwrap();
        let descs = t.descendants(lib);
        // book subtree first (book, title, author, text, issue, publisher,
        // year), then paper subtree.
        let names: Vec<String> = descs
            .iter()
            .map(|&d| {
                t.node(d)
                    .name
                    .as_ref()
                    .map(|n| n.local.clone())
                    .unwrap_or_else(|| format!("{:?}", t.node(d).kind))
            })
            .collect();
        assert_eq!(
            names,
            [
                "book",
                "title",
                "author",
                "Text",
                "issue",
                "publisher",
                "year",
                "paper",
                "title",
                "author"
            ]
        );
    }

    #[test]
    fn serialization_round_trip() {
        let mut t = fig2_schema();
        // Give some nodes block pointers and counts.
        let lib = t
            .find_child(
                SchemaTree::ROOT,
                NodeKind::Element,
                Some(&SchemaName::local("library")),
            )
            .unwrap();
        t.node_mut(lib).first_block = XPtr::new(1, 0x4000);
        t.node_mut(lib).last_block = XPtr::new(1, 0x8000);
        t.node_mut(lib).node_count = 7;
        t.node_mut(lib).block_count = 2;
        t.node_mut(lib).text_len = 12345;
        t.node_mut(lib).fanout = [1, 0, 3, 0, 0, 0, 0, 9];
        let bytes = t.to_bytes();
        let back = SchemaTree::from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), t.len());
        let lib2 = back
            .find_child(
                SchemaTree::ROOT,
                NodeKind::Element,
                Some(&SchemaName::local("library")),
            )
            .unwrap();
        assert_eq!(back.node(lib2).first_block, XPtr::new(1, 0x4000));
        assert_eq!(back.node(lib2).node_count, 7);
        assert_eq!(back.child_count(lib2), 2);
        assert_eq!(back.node(lib2).text_len, 12345);
        assert_eq!(back.node(lib2).fanout, [1, 0, 3, 0, 0, 0, 0, 9]);
    }

    #[test]
    fn fanout_buckets_are_log2() {
        assert_eq!(fanout_bucket(1), 0);
        assert_eq!(fanout_bucket(2), 1);
        assert_eq!(fanout_bucket(3), 1);
        assert_eq!(fanout_bucket(4), 2);
        assert_eq!(fanout_bucket(127), 6);
        assert_eq!(fanout_bucket(128), 7);
        assert_eq!(fanout_bucket(u64::MAX), FANOUT_BUCKETS - 1);
    }

    #[test]
    fn fanout_transitions_move_parents_between_buckets() {
        let mut t = SchemaTree::new();
        let e = t
            .get_or_add_child(
                SchemaTree::ROOT,
                NodeKind::Element,
                Some(SchemaName::local("x")),
            )
            .0;
        // A parent grows from 0 to 1 to 2 children.
        t.node_mut(e).fanout_transition(0, 1);
        assert_eq!(t.node(e).fanout[0], 1);
        t.node_mut(e).fanout_transition(1, 2);
        assert_eq!(t.node(e).fanout[0], 0);
        assert_eq!(t.node(e).fanout[1], 1);
        assert_eq!(t.node(e).parents_with_children(), 1);
        // And shrinks back out of the histogram.
        t.node_mut(e).fanout_transition(2, 0);
        assert_eq!(t.node(e).parents_with_children(), 0);
    }

    #[test]
    fn stats_snapshot_paths_and_averages() {
        let mut t = fig2_schema();
        let lib = t
            .find_child(
                SchemaTree::ROOT,
                NodeKind::Element,
                Some(&SchemaName::local("library")),
            )
            .unwrap();
        let book = t
            .find_child(lib, NodeKind::Element, Some(&SchemaName::local("book")))
            .unwrap();
        t.node_mut(book).node_count = 10;
        t.node_mut(book).text_len = 250;
        t.node_mut(book).fanout_transition(0, 10);
        let snap = t.stats_snapshot();
        assert_eq!(snap[0].path, "/");
        let b = snap
            .iter()
            .find(|s| s.path == "/library/book")
            .expect("book stats present");
        assert_eq!(b.node_count, 10);
        assert_eq!(b.text_len, 250);
        assert_eq!(t.node(book).avg_text_len(), 25);
        assert!((t.node(book).avg_fanout() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn corrupt_bytes_rejected() {
        assert!(SchemaTree::from_bytes(&[]).is_none());
        assert!(SchemaTree::from_bytes(&[1, 2, 3]).is_none());
        let mut good = fig2_schema().to_bytes();
        good.truncate(good.len() / 2);
        assert!(SchemaTree::from_bytes(&good).is_none());
    }

    #[test]
    fn node_kind_codec() {
        for k in [
            NodeKind::Document,
            NodeKind::Element,
            NodeKind::Attribute,
            NodeKind::Text,
            NodeKind::Comment,
            NodeKind::ProcessingInstruction,
        ] {
            assert_eq!(NodeKind::from_u8(k.to_u8()), Some(k));
        }
        assert_eq!(NodeKind::from_u8(99), None);
    }
}
