//! # sedna-schema
//!
//! The **descriptive schema** of Section 4.1: "a relaxed variation of
//! DataGuides: every path in an XML document has exactly one path in the
//! descriptive schema", hence a tree. In contrast to a prescriptive schema
//! (DTD/XML Schema), the descriptive schema is generated from the data
//! dynamically and maintained incrementally, and is therefore applicable
//! to any document.
//!
//! Each [`SchemaNode`] is labeled with a node kind and (for elements,
//! attributes and PIs) a name, and heads the bidirectional list of data
//! blocks storing the XML nodes that correspond to it — "the descriptive
//! schema plays a role of a naturally built index for evaluating XPath
//! expressions". The structural-path evaluator in [`path`] exploits
//! exactly that: location paths made of descending axes and name tests
//! are answered entirely in main memory over this tree (optimization
//! §5.1.4, experiment E8).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod path;
mod tree;

pub use path::{PathStep, SchemaAxis, SchemaTest};
pub use tree::{
    fanout_bucket, NodeKind, SchemaName, SchemaNode, SchemaNodeId, SchemaNodeStats, SchemaTree,
    FANOUT_BUCKETS,
};
