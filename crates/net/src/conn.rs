//! Per-connection state for the readiness-loop server.
//!
//! A connection's life is split between two threads. The **event
//! thread** owns the socket, the inbound byte buffer, and the queue of
//! parsed-but-unserved frames; it never executes a request. A **worker**
//! borrows the request-visible half — the wire session, its database
//! name, and the pending result ([`SessionState`]) — for the duration of
//! one dispatched batch, then posts it back. The split is what makes
//! pipelining possible: the event thread keeps reading and parsing
//! frames for a connection while a worker is still executing its earlier
//! requests.

use std::collections::VecDeque;
use std::io::{self, Read};
use std::net::TcpStream;
use std::time::Instant;

use sedna::{CancelFlag, DbResult, QueryCursor, Session};

use crate::metrics::NetMetrics;

/// One complete wire frame, parsed off a connection's byte stream.
pub(crate) struct Frame {
    /// Message code (the byte after the length prefix).
    pub(crate) code: u8,
    /// Message body (frame payload after the code byte).
    pub(crate) body: Vec<u8>,
}

/// A framing violation found while parsing the inbound buffer. The
/// connection is past saving (the byte stream can no longer be
/// delimited), but the fault is still *queued behind* the frames parsed
/// before it so the client sees every earlier response, then the error.
pub(crate) enum Fault {
    /// Zero-length frame.
    Malformed,
    /// Declared frame length exceeds the configured cap.
    Oversize(usize),
}

/// The last query's result state.
///
/// Auto-commit queries arrive as a live [`QueryCursor`]: items are
/// pulled from the executor pipeline one fetch at a time, and the
/// cursor's read-only transaction (with its page pins) stays open
/// between fetches. Replacing or clearing the state drops the cursor,
/// which releases every pin and commits its transaction — so a client
/// that executes a new statement, closes the session, cancels, or
/// disconnects mid-stream never leaks the snapshot.
pub(crate) enum Pending {
    /// No result, or the previous result is drained.
    None,
    /// Materialized items (queries inside an explicit transaction).
    Buffered(VecDeque<String>),
    /// A live streaming cursor (auto-commit queries).
    Stream(Box<QueryCursor>),
}

/// The request-visible half of a connection: everything a worker needs
/// to serve its frames. Travels to the worker inside a job and comes
/// back with the completion notice.
pub(crate) struct SessionState {
    /// The wire session, once `StartSession`/`AsOf` succeeded.
    pub(crate) session: Option<Session>,
    /// Name of the database the session is on (for introspection
    /// requests that need the [`sedna::Database`] handle).
    pub(crate) db_name: Option<String>,
    /// The last query's result, streamed out via `FetchNext`/`FetchBatch`.
    pub(crate) pending: Pending,
}

impl SessionState {
    pub(crate) fn new() -> SessionState {
        SessionState {
            session: None,
            db_name: None,
            pending: Pending::None,
        }
    }
}

/// Pulls up to `max` items from the connection's pending result,
/// returning the batch and whether the result is now exhausted. On a
/// mid-stream error the cursor has already finished itself (transaction
/// committed, pins released); the pending state is cleared so later
/// fetches see a clean end-of-result.
pub(crate) fn fetch_items(
    pending: &mut Pending,
    max: usize,
    m: &NetMetrics,
) -> DbResult<(Vec<String>, bool)> {
    match pending {
        Pending::None => Ok((Vec::new(), true)),
        Pending::Buffered(items) => {
            let n = max.min(items.len());
            let batch: Vec<String> = items.drain(..n).collect();
            m.items_streamed.add(batch.len() as u64);
            let done = items.is_empty();
            if done {
                *pending = Pending::None;
            }
            Ok((batch, done))
        }
        Pending::Stream(cur) => {
            let mut batch = Vec::new();
            let mut done = false;
            let mut err = None;
            while batch.len() < max {
                match cur.next_item() {
                    Ok(Some(item)) => batch.push(item),
                    Ok(None) => {
                        done = true;
                        break;
                    }
                    Err(e) => {
                        err = Some(e);
                        break;
                    }
                }
            }
            m.items_streamed.add(batch.len() as u64);
            if let Some(e) = err {
                *pending = Pending::None;
                return Err(e);
            }
            if done {
                *pending = Pending::None;
            }
            Ok((batch, done))
        }
    }
}

/// Event-thread-side state of one connection.
pub(crate) struct Conn {
    /// The socket (non-blocking; workers write through a clone).
    pub(crate) stream: TcpStream,
    /// Unparsed inbound bytes.
    pub(crate) buf: Vec<u8>,
    /// Complete frames awaiting dispatch to a worker.
    pub(crate) queue: VecDeque<Frame>,
    /// A batch is currently at a worker ([`Conn::state`] is `None`).
    pub(crate) busy: bool,
    /// The oneshot readiness registration is currently armed.
    pub(crate) armed: bool,
    /// No more reads; tear down once the worker (if any) reports back.
    pub(crate) closing: bool,
    /// Framing violation pending delivery after the queued frames.
    pub(crate) fault: Option<Fault>,
    /// The request-visible half; `None` while a worker holds it.
    pub(crate) state: Option<SessionState>,
    /// Connection-level cancel flag: set by the event thread the moment
    /// a `Cancel` frame is *parsed* (out-of-band), observed by the
    /// statement executing on a worker, cleared when the `Cancel` is
    /// served in order.
    pub(crate) cancel: CancelFlag,
    /// Last inbound byte, for the idle clock.
    pub(crate) last_activity: Instant,
    /// When the oldest incomplete frame started arriving, for the
    /// stalled-frame clock.
    pub(crate) frame_started: Option<Instant>,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            buf: Vec::new(),
            queue: VecDeque::new(),
            busy: false,
            armed: true,
            closing: false,
            fault: None,
            state: Some(SessionState::new()),
            cancel: CancelFlag::new(),
            last_activity: Instant::now(),
            frame_started: None,
        }
    }

    /// Drains the readable socket into the inbound buffer. Returns
    /// `false` when the peer closed or the read hard-failed (the
    /// connection should stop reading and tear down at the next frame
    /// boundary).
    pub(crate) fn read_ready(&mut self) -> bool {
        let mut chunk = [0u8; 8192];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return false,
                Ok(n) => {
                    if self.buf.is_empty() {
                        self.frame_started = Some(Instant::now());
                    }
                    self.buf.extend_from_slice(&chunk[..n]);
                    self.last_activity = Instant::now();
                    // A short read means the kernel buffer is (almost
                    // certainly) drained: skip the confirming syscall.
                    // If more bytes did land in between, the level-
                    // triggered rearm reports them immediately.
                    if n < chunk.len() {
                        return true;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
    }

    /// Parses every complete frame out of the inbound buffer. Returns
    /// the new frames (the caller counts them and appends them to the
    /// queue); a framing violation ends the parse — bytes after it are
    /// undelimitable and discarded.
    pub(crate) fn parse_frames(&mut self, max_frame: usize) -> (Vec<Frame>, Option<Fault>) {
        let mut frames = Vec::new();
        let mut consumed = 0usize;
        let mut fault = None;
        while self.buf.len() - consumed >= 5 {
            let rest = &self.buf[consumed..];
            let len = u32::from_be_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
            if len == 0 {
                fault = Some(Fault::Malformed);
                break;
            }
            if len > max_frame {
                fault = Some(Fault::Oversize(len));
                break;
            }
            if rest.len() < 4 + len {
                break;
            }
            frames.push(Frame {
                code: rest[4],
                body: rest[5..4 + len].to_vec(),
            });
            consumed += 4 + len;
        }
        if fault.is_some() {
            self.buf.clear();
        } else {
            self.buf.drain(..consumed);
        }
        self.frame_started = if self.buf.is_empty() {
            None
        } else {
            Some(Instant::now())
        };
        (frames, fault)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The parser never touches the socket, but `Conn` owns one; a
    /// loopback connect (never accepted) stands in.
    fn conn_with_bytes(bytes: &[u8]) -> (Conn, std::net::TcpListener) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = std::net::TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let mut conn = Conn::new(stream);
        conn.buf.extend_from_slice(bytes);
        (conn, listener)
    }

    fn frame_bytes(code: u8, body: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(1 + body.len() as u32).to_be_bytes());
        out.push(code);
        out.extend_from_slice(body);
        out
    }

    #[test]
    fn parses_multiple_frames_and_keeps_the_tail() {
        let mut bytes = frame_bytes(0x10, b"abc");
        bytes.extend(frame_bytes(0x11, b""));
        bytes.extend(&frame_bytes(0x12, b"tail")[..6]); // incomplete
        let (mut conn, _g) = conn_with_bytes(&bytes);
        let (frames, fault) = conn.parse_frames(1024);
        assert!(fault.is_none());
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].code, 0x10);
        assert_eq!(frames[0].body, b"abc");
        assert_eq!(frames[1].code, 0x11);
        assert!(frames[1].body.is_empty());
        assert_eq!(conn.buf.len(), 6);
        assert!(conn.frame_started.is_some());
    }

    #[test]
    fn zero_length_frame_is_malformed() {
        let mut bytes = frame_bytes(0x10, b"ok");
        bytes.extend_from_slice(&0u32.to_be_bytes());
        bytes.push(0x11);
        let (mut conn, _g) = conn_with_bytes(&bytes);
        let (frames, fault) = conn.parse_frames(1024);
        assert_eq!(frames.len(), 1);
        assert!(matches!(fault, Some(Fault::Malformed)));
        assert!(conn.buf.is_empty(), "undelimitable bytes discarded");
    }

    #[test]
    fn oversize_frame_is_rejected_with_its_length() {
        let (mut conn, _g) = conn_with_bytes(&frame_bytes(0x10, &[0u8; 64]));
        let (frames, fault) = conn.parse_frames(16);
        assert!(frames.is_empty());
        assert!(matches!(fault, Some(Fault::Oversize(65))));
    }
}
