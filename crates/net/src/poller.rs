//! A minimal readiness poller: the one OS-facing corner of the event
//! loop (`epoll(7)` on Linux, portable `poll(2)` elsewhere), with a
//! self-wake channel so other threads can interrupt a blocked wait.
//!
//! The abstraction is deliberately tiny — register / rearm / deregister
//! / wait / wake — because the server's event thread is the only
//! consumer. Connection sockets are registered **oneshot**: after a
//! readiness report the kernel disarms the interest, and the event loop
//! re-arms it once it has drained the socket. That gives N idle
//! connections a cost of N kernel registrations and zero syscalls per
//! poll tick, which is the whole point of the readiness rebuild (the
//! old server burned one `read` timeout per idle connection per tick).
//!
//! The `poll(2)` backend is compiled (and unit-tested) on every
//! platform so the non-Linux path can never rot; Linux builds merely
//! don't select it as [`Poller`].
#![allow(unsafe_code)]

use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// Token the wake channel is registered under; never reported to the
/// caller and never assigned to a connection.
pub(crate) const WAKE_TOKEN: u64 = u64::MAX;

/// One readiness report: the registered token, plus whether the kernel
/// flagged hangup/error alongside readability (the socket read will
/// surface the detail; the flag lets callers skip pointless rearms).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Event {
    pub(crate) token: u64,
    pub(crate) hup: bool,
}

/// The poller the server compiles against.
#[cfg(target_os = "linux")]
pub(crate) type Poller = epoll::EpollPoller;
/// The poller the server compiles against.
#[cfg(not(target_os = "linux"))]
pub(crate) type Poller = pollfd::PollPoller;

/// Builds the nonblocking self-wake socketpair both backends share.
fn wake_pair() -> io::Result<(UnixStream, UnixStream)> {
    let (r, w) = UnixStream::pair()?;
    r.set_nonblocking(true)?;
    w.set_nonblocking(true)?;
    Ok((r, w))
}

/// Drains every pending wake byte (the channel is level-readable until
/// empty; leaving bytes behind would spin the wait).
fn drain_wake(r: &mut &UnixStream) {
    let mut buf = [0u8; 64];
    while matches!(r.read(&mut buf), Ok(n) if n > 0) {}
}

/// Sends one wake byte. A full pipe or closed peer both mean a wake is
/// already pending (or the poller is gone), so errors are ignored.
fn send_wake(w: &UnixStream) {
    let _ = (&*w).write(&[1u8]);
}

/// Clamps a timeout to the millisecond `int` both syscalls take.
fn timeout_ms(timeout: Duration) -> i32 {
    i32::try_from(timeout.as_millis())
        .unwrap_or(i32::MAX)
        .max(1)
}

/// A cloneable cross-thread handle onto a poller's wake channel, so
/// worker threads can interrupt the event thread's wait without owning
/// the poller.
#[derive(Clone)]
pub(crate) struct Waker(std::sync::Arc<UnixStream>);

impl Waker {
    /// Interrupts a blocked wait (best-effort: a full channel means a
    /// wake is already pending).
    pub(crate) fn wake(&self) {
        send_wake(&self.0);
    }
}

/// Blocks until `fd` is writable or `timeout` elapses; `Ok(false)` on
/// timeout. Used by workers to pace blocking writes over the event
/// thread's nonblocking sockets.
pub(crate) fn wait_writable(fd: RawFd, timeout: Duration) -> io::Result<bool> {
    let mut p = libc::pollfd {
        fd,
        events: libc::POLLOUT,
        revents: 0,
    };
    let r = unsafe { libc::poll(&mut p, 1, timeout_ms(timeout)) };
    if r < 0 {
        let e = io::Error::last_os_error();
        if e.kind() == io::ErrorKind::Interrupted {
            return Ok(false);
        }
        return Err(e);
    }
    Ok(r > 0)
}

#[cfg(target_os = "linux")]
pub(crate) mod epoll {
    use super::*;

    /// `epoll(7)`-backed poller: one epoll instance owns every
    /// registration; connection sockets use `EPOLLONESHOT`.
    pub(crate) struct EpollPoller {
        ep: RawFd,
        wake_r: UnixStream,
        wake_w: UnixStream,
    }

    fn cvt(r: i32) -> io::Result<i32> {
        if r < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(r)
        }
    }

    impl EpollPoller {
        pub(crate) fn new() -> io::Result<EpollPoller> {
            let ep = cvt(unsafe { libc::epoll_create1(libc::EPOLL_CLOEXEC) })?;
            let (wake_r, wake_w) = match wake_pair() {
                Ok(pair) => pair,
                Err(e) => {
                    unsafe { libc::close(ep) };
                    return Err(e);
                }
            };
            let poller = EpollPoller { ep, wake_r, wake_w };
            poller.ctl(
                libc::EPOLL_CTL_ADD,
                poller.wake_r.as_raw_fd(),
                libc::EPOLLIN as u32,
                WAKE_TOKEN,
            )?;
            Ok(poller)
        }

        fn ctl(&self, op: libc::c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            let mut ev = libc::epoll_event { events, u64: token };
            cvt(unsafe { libc::epoll_ctl(self.ep, op, fd, &mut ev) }).map(|_| ())
        }

        fn oneshot_interest() -> u32 {
            (libc::EPOLLIN | libc::EPOLLRDHUP | libc::EPOLLONESHOT) as u32
        }

        /// Registers a connection socket for exactly one readability
        /// report; [`EpollPoller::rearm`] re-enables it.
        pub(crate) fn register(&self, fd: RawFd, token: u64) -> io::Result<()> {
            self.ctl(libc::EPOLL_CTL_ADD, fd, Self::oneshot_interest(), token)
        }

        /// Registers a listener-style fd level-triggered: it stays armed
        /// across waits.
        pub(crate) fn register_persistent(&self, fd: RawFd, token: u64) -> io::Result<()> {
            self.ctl(libc::EPOLL_CTL_ADD, fd, libc::EPOLLIN as u32, token)
        }

        /// Re-enables a oneshot registration after its report was
        /// handled.
        pub(crate) fn rearm(&self, fd: RawFd, token: u64) -> io::Result<()> {
            self.ctl(libc::EPOLL_CTL_MOD, fd, Self::oneshot_interest(), token)
        }

        /// Removes a registration; harmless if the fd was never added.
        pub(crate) fn deregister(&self, fd: RawFd) {
            let mut ev = libc::epoll_event { events: 0, u64: 0 };
            let _ = unsafe { libc::epoll_ctl(self.ep, libc::EPOLL_CTL_DEL, fd, &mut ev) };
        }

        /// Waits for readiness, filling `out` (wake reports are drained
        /// internally and not surfaced). An interrupted wait returns
        /// empty rather than erroring.
        pub(crate) fn wait(&mut self, out: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
            out.clear();
            const CAP: usize = 256;
            let mut buf = [libc::epoll_event { events: 0, u64: 0 }; CAP];
            let n = {
                let r = unsafe {
                    libc::epoll_wait(self.ep, buf.as_mut_ptr(), CAP as i32, timeout_ms(timeout))
                };
                if r < 0 {
                    let e = io::Error::last_os_error();
                    if e.kind() == io::ErrorKind::Interrupted {
                        return Ok(());
                    }
                    return Err(e);
                }
                r as usize
            };
            for ev in &buf[..n] {
                let token = ev.u64;
                let events = ev.events;
                if token == WAKE_TOKEN {
                    drain_wake(&mut &self.wake_r);
                    continue;
                }
                let hup = events & (libc::EPOLLHUP | libc::EPOLLERR | libc::EPOLLRDHUP) as u32 != 0;
                out.push(Event { token, hup });
            }
            Ok(())
        }

        /// Interrupts a blocked [`EpollPoller::wait`] from any thread.
        /// Production code wakes through a [`Waker`] clone instead; the
        /// direct form exists for the shared readiness test suite.
        #[cfg_attr(not(test), allow(dead_code))]
        pub(crate) fn wake(&self) {
            send_wake(&self.wake_w);
        }

        /// A cloneable wake handle for other threads.
        pub(crate) fn waker(&self) -> io::Result<Waker> {
            Ok(Waker(std::sync::Arc::new(self.wake_w.try_clone()?)))
        }
    }

    impl Drop for EpollPoller {
        fn drop(&mut self) {
            unsafe { libc::close(self.ep) };
        }
    }
}

// On Linux the epoll backend is selected, so this one is only reached
// by its unit tests — which is exactly why it stays compiled.
#[cfg_attr(target_os = "linux", allow(dead_code))]
pub(crate) mod pollfd {
    use super::*;
    use parking_lot::Mutex;

    struct Slot {
        fd: RawFd,
        token: u64,
        armed: bool,
        oneshot: bool,
    }

    /// Portable `poll(2)`-backed poller: keeps the registration table in
    /// user space and rebuilds the pollfd array per wait. O(N) per wait
    /// rather than epoll's O(ready), but correct everywhere `poll`
    /// exists; oneshot semantics are emulated by disarming a slot when
    /// its readiness is reported.
    pub(crate) struct PollPoller {
        slots: Mutex<Vec<Slot>>,
        wake_r: UnixStream,
        wake_w: UnixStream,
    }

    impl PollPoller {
        pub(crate) fn new() -> io::Result<PollPoller> {
            let (wake_r, wake_w) = wake_pair()?;
            Ok(PollPoller {
                slots: Mutex::new(Vec::new()),
                wake_r,
                wake_w,
            })
        }

        fn add(&self, fd: RawFd, token: u64, oneshot: bool) -> io::Result<()> {
            let mut slots = self.slots.lock();
            if slots.iter().any(|s| s.fd == fd) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            slots.push(Slot {
                fd,
                token,
                armed: true,
                oneshot,
            });
            Ok(())
        }

        /// Registers a connection socket for exactly one readability
        /// report; [`PollPoller::rearm`] re-enables it.
        pub(crate) fn register(&self, fd: RawFd, token: u64) -> io::Result<()> {
            self.add(fd, token, true)
        }

        /// Registers a listener-style fd that stays armed across waits.
        pub(crate) fn register_persistent(&self, fd: RawFd, token: u64) -> io::Result<()> {
            self.add(fd, token, false)
        }

        /// Re-enables a oneshot registration after its report was
        /// handled.
        pub(crate) fn rearm(&self, fd: RawFd, token: u64) -> io::Result<()> {
            let mut slots = self.slots.lock();
            match slots.iter_mut().find(|s| s.fd == fd) {
                Some(slot) => {
                    slot.token = token;
                    slot.armed = true;
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        /// Removes a registration; harmless if the fd was never added.
        pub(crate) fn deregister(&self, fd: RawFd) {
            self.slots.lock().retain(|s| s.fd != fd);
        }

        /// Waits for readiness, filling `out` (wake reports are drained
        /// internally and not surfaced). An interrupted wait returns
        /// empty rather than erroring.
        pub(crate) fn wait(&mut self, out: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
            out.clear();
            let mut fds: Vec<libc::pollfd> = vec![libc::pollfd {
                fd: self.wake_r.as_raw_fd(),
                events: libc::POLLIN,
                revents: 0,
            }];
            {
                let slots = self.slots.lock();
                fds.extend(slots.iter().filter(|s| s.armed).map(|s| libc::pollfd {
                    fd: s.fd,
                    events: libc::POLLIN,
                    revents: 0,
                }));
            }
            let r = unsafe {
                libc::poll(
                    fds.as_mut_ptr(),
                    fds.len() as libc::nfds_t,
                    timeout_ms(timeout),
                )
            };
            if r < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            if fds[0].revents != 0 {
                drain_wake(&mut &self.wake_r);
            }
            let mut slots = self.slots.lock();
            for p in &fds[1..] {
                if p.revents == 0 {
                    continue;
                }
                let hup = p.revents & (libc::POLLHUP | libc::POLLERR) != 0;
                if let Some(slot) = slots.iter_mut().find(|s| s.fd == p.fd) {
                    if slot.oneshot {
                        slot.armed = false;
                    }
                    out.push(Event {
                        token: slot.token,
                        hup,
                    });
                }
            }
            Ok(())
        }

        /// Interrupts a blocked [`PollPoller::wait`] from any thread.
        /// Production code wakes through a [`Waker`] clone instead; the
        /// direct form exists for the shared readiness test suite.
        #[cfg_attr(not(test), allow(dead_code))]
        pub(crate) fn wake(&self) {
            send_wake(&self.wake_w);
        }

        /// A cloneable wake handle for other threads.
        pub(crate) fn waker(&self) -> io::Result<Waker> {
            Ok(Waker(std::sync::Arc::new(self.wake_w.try_clone()?)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    fn pair() -> (UnixStream, UnixStream) {
        let (a, b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        (a, b)
    }

    /// Both backends must pass the same behavioral checks; `run` takes
    /// constructor-erased closures so the suite stays in one place.
    fn readiness_suite<P>(
        new: impl Fn() -> P,
        register: impl Fn(&P, RawFd, u64) -> io::Result<()>,
        rearm: impl Fn(&P, RawFd, u64) -> io::Result<()>,
        deregister: impl Fn(&P, RawFd),
        wait: impl Fn(&mut P, &mut Vec<Event>, Duration) -> io::Result<()>,
        wake: impl Fn(&P),
    ) {
        let mut poller = new();
        let mut events = Vec::new();

        // Idle wait times out empty.
        wait(&mut poller, &mut events, Duration::from_millis(10)).unwrap();
        assert!(events.is_empty());

        // A readable registered fd is reported with its token.
        let (r, w) = pair();
        register(&poller, r.as_raw_fd(), 7).unwrap();
        (&w).write_all(b"x").unwrap();
        wait(&mut poller, &mut events, Duration::from_millis(1000)).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);

        // Oneshot: without a rearm the same readiness is not re-reported.
        wait(&mut poller, &mut events, Duration::from_millis(10)).unwrap();
        assert!(events.is_empty(), "oneshot fd reported twice");

        // Rearm re-enables the report (the byte is still unread).
        rearm(&poller, r.as_raw_fd(), 9).unwrap();
        wait(&mut poller, &mut events, Duration::from_millis(1000)).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 9);

        // Peer hangup is flagged.
        rearm(&poller, r.as_raw_fd(), 9).unwrap();
        drop(w);
        wait(&mut poller, &mut events, Duration::from_millis(1000)).unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].hup);

        // Deregistered fds go silent.
        deregister(&poller, r.as_raw_fd());
        wait(&mut poller, &mut events, Duration::from_millis(10)).unwrap();
        assert!(events.is_empty());

        // wake() interrupts a long wait promptly and is not surfaced as
        // an event.
        let started = Instant::now();
        wake(&poller);
        wait(&mut poller, &mut events, Duration::from_millis(5000)).unwrap();
        assert!(events.is_empty());
        assert!(started.elapsed() < Duration::from_millis(1000));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_backend_reports_readiness() {
        readiness_suite(
            || epoll::EpollPoller::new().unwrap(),
            |p, fd, t| p.register(fd, t),
            |p, fd, t| p.rearm(fd, t),
            |p, fd| p.deregister(fd),
            |p, out, d| p.wait(out, d),
            |p| p.wake(),
        );
    }

    #[test]
    fn poll_backend_reports_readiness() {
        readiness_suite(
            || pollfd::PollPoller::new().unwrap(),
            |p, fd, t| p.register(fd, t),
            |p, fd, t| p.rearm(fd, t),
            |p, fd| p.deregister(fd),
            |p, out, d| p.wait(out, d),
            |p| p.wake(),
        );
    }

    #[test]
    fn wait_writable_reports_a_writable_socket() {
        let (a, _b) = pair();
        assert!(wait_writable(a.as_raw_fd(), Duration::from_millis(100)).unwrap());
    }
}
