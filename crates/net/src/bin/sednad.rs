//! `sednad` — the standalone Sedna server process.
//!
//! Opens (or creates) one or more databases under the governor, starts
//! the network listener, and serves until SIGTERM/SIGINT or a client's
//! `Shutdown` request, then drains: the listener stops accepting,
//! in-flight requests finish, and every database is closed with a WAL
//! flush and a final checkpoint.
//!
//! ```text
//! sednad --dir ./data --db mydb --create --addr 127.0.0.1:5050
//! sednad --dir ./data --db a,b,c --create --auth admin:s3cret
//! ```
//!
//! With a single `--db name` the database lives directly in `--dir`;
//! with a comma-separated list each database gets its own subdirectory
//! `<dir>/<name>`, and clients pick one at `StartSession`.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use sedna::{DbConfig, Governor, SamplingPolicy};
use sedna_net::{Credentials, NetConfig, Server};

/// Flipped by the signal handler; the main loop polls it.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: libc::c_int) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

struct Args {
    dir: PathBuf,
    dbs: Vec<String>,
    addr: String,
    create: bool,
    workers: usize,
    pipeline_depth: usize,
    max_conns: usize,
    auth: Option<Credentials>,
    max_sessions: usize,
    slow_query_ms: u64,
    trace_sample: SamplingPolicy,
    retain_snapshots: usize,
    retain_ms: u64,
}

const USAGE: &str = "\
sednad — Sedna server

USAGE:
    sednad [OPTIONS]

OPTIONS:
    --dir <PATH>          Data directory (default: ./sedna-data)
    --db <NAMES>          Database name, or a comma-separated list to
                          serve several databases from one process; each
                          of a list gets its own <dir>/<name>
                          subdirectory (default: db)
    --addr <HOST:PORT>    Listen address (default: 127.0.0.1:5050)
    --create              Create the database(s) instead of opening
                          (implied when a database's directory is missing)
    --workers <N>         Worker threads, i.e. concurrently executing
                          requests; idle connections cost no thread
                          (default: 8)
    --pipeline-depth <N>  Requests a client may pipeline on one
                          connection before the server stops reading
                          from it (default: 16)
    --max-conns <N>       Connections the server will carry; beyond this
                          new connections are rejected with `overloaded`
                          (default: 4096)
    --auth <USER:PASS>    Require these credentials at StartSession
                          (protocol v2; v1 clients are turned away)
    --max-sessions <N>    Per-database session limit, 0 = unlimited (default: 0)
    --slow-query-ms <N>   Slow-query threshold in ms; offenders land in the
                          slow-query log with their trace. 0 = off (default: 0)
    --trace-sample <P>    Query-trace sampling policy: off, slow, always,
                          or 1-in-<N> (default: off)
    --retain-snapshots <N> Committed snapshots retained per database for
                          AS OF time-travel reads. 0 = off (default: 0)
    --retain-ms <N>       Age cap in ms on retained snapshots. 0 = no
                          age cap (default: 0)
    --help                Show this help
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        dir: PathBuf::from("./sedna-data"),
        dbs: vec!["db".to_string()],
        addr: "127.0.0.1:5050".to_string(),
        create: false,
        workers: 8,
        pipeline_depth: 16,
        max_conns: 4096,
        auth: None,
        max_sessions: 0,
        slow_query_ms: 0,
        trace_sample: SamplingPolicy::Off,
        retain_snapshots: 0,
        retain_ms: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--dir" => args.dir = PathBuf::from(value("--dir")?),
            "--db" => {
                args.dbs = value("--db")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                if args.dbs.is_empty() {
                    return Err("--db: expected at least one database name".into());
                }
            }
            "--addr" => args.addr = value("--addr")?,
            "--create" => args.create = true,
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--pipeline-depth" => {
                args.pipeline_depth = value("--pipeline-depth")?
                    .parse()
                    .map_err(|e| format!("--pipeline-depth: {e}"))?;
            }
            "--max-conns" => {
                args.max_conns = value("--max-conns")?
                    .parse()
                    .map_err(|e| format!("--max-conns: {e}"))?;
            }
            "--auth" => {
                let v = value("--auth")?;
                let (user, password) = v
                    .split_once(':')
                    .ok_or_else(|| "--auth: expected USER:PASS".to_string())?;
                args.auth = Some(Credentials {
                    user: user.to_string(),
                    password: password.to_string(),
                });
            }
            "--max-sessions" => {
                args.max_sessions = value("--max-sessions")?
                    .parse()
                    .map_err(|e| format!("--max-sessions: {e}"))?;
            }
            "--slow-query-ms" => {
                args.slow_query_ms = value("--slow-query-ms")?
                    .parse()
                    .map_err(|e| format!("--slow-query-ms: {e}"))?;
            }
            "--trace-sample" => {
                let v = value("--trace-sample")?;
                args.trace_sample = SamplingPolicy::parse(&v)
                    .ok_or_else(|| format!("--trace-sample: unknown policy '{v}'"))?;
            }
            "--retain-snapshots" => {
                args.retain_snapshots = value("--retain-snapshots")?
                    .parse()
                    .map_err(|e| format!("--retain-snapshots: {e}"))?;
            }
            "--retain-ms" => {
                args.retain_ms = value("--retain-ms")?
                    .parse()
                    .map_err(|e| format!("--retain-ms: {e}"))?;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

fn run(args: Args) -> Result<(), String> {
    let governor = Governor::new();
    let cfg = DbConfig {
        max_sessions: args.max_sessions,
        slow_query_ms: args.slow_query_ms,
        trace_sample: args.trace_sample,
        retain_snapshots: args.retain_snapshots,
        retain_ms: args.retain_ms,
        ..DbConfig::default()
    };
    for db in &args.dbs {
        // One database lives directly in --dir (the historical layout);
        // several share it through per-database subdirectories.
        let dir = if args.dbs.len() == 1 {
            args.dir.clone()
        } else {
            args.dir.join(db)
        };
        let create = args.create || !dir.exists();
        if create {
            governor
                .create_database(db, &dir, cfg.clone())
                .map_err(|e| format!("creating database '{db}': {e}"))?;
            eprintln!("sednad: created database '{db}' in {}", dir.display());
        } else {
            governor
                .open_database(db, &dir, cfg.clone())
                .map_err(|e| format!("opening database '{db}': {e}"))?;
            eprintln!("sednad: opened database '{db}' from {}", dir.display());
        }
    }

    let net = NetConfig {
        addr: args.addr,
        workers: args.workers,
        pipeline_depth: args.pipeline_depth,
        max_conns: args.max_conns,
        auth: args.auth,
        ..NetConfig::default()
    };
    let handle = Server::start(governor, net).map_err(|e| format!("starting listener: {e}"))?;
    eprintln!("sednad: listening on {}", handle.addr());

    // SAFETY: installing a signal handler that only stores to an atomic.
    unsafe {
        libc::signal(libc::SIGTERM, on_signal as *const () as libc::sighandler_t);
        libc::signal(libc::SIGINT, on_signal as *const () as libc::sighandler_t);
    }

    while !SHUTDOWN.load(Ordering::SeqCst) && !handle.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(100));
    }

    eprintln!("sednad: draining (flushing WAL, final checkpoint)");
    handle.shutdown().map_err(|e| format!("shutdown: {e}"))?;
    eprintln!("sednad: stopped");
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("sednad: {msg}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("sednad: {msg}");
            ExitCode::FAILURE
        }
    }
}
