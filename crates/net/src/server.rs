//! The network listener: a non-blocking readiness loop feeding a
//! bounded worker pool.
//!
//! Figure 1 of the paper puts a *listener* in the governor process that
//! accepts client connections and hands each one to a per-client session
//! component. This module reproduces that shape with a readiness-loop
//! split: one **event thread** owns every socket in non-blocking mode
//! behind a small poller abstraction (`epoll(7)` on Linux, `poll(2)`
//! elsewhere — see [`crate::poller`]), parses frames incrementally per
//! connection, and hands complete requests to `workers` **worker
//! threads** that execute them against the wire session
//! ([`sedna::Session`]) and write the responses. N idle connections cost
//! O(N) kernel registrations and zero per-tick syscalls — there is no
//! per-connection read-timeout poll, so the server's thread count is
//! independent of its connection count.
//!
//! Because the event thread keeps reading while a worker executes, a
//! client may **pipeline** up to `pipeline_depth` requests; responses
//! come back strictly in request order (one worker serves one
//! connection's batch at a time). A `Cancel` frame is special: the event
//! thread raises the connection's cancel flag the moment the frame is
//! *parsed*, which aborts the statement currently executing on a worker;
//! the `Cancelled` acknowledgement is still delivered in order.
//!
//! Admission control happens twice: at accept (`max_conns` registered
//! connections; beyond that the listener answers `overloaded` and
//! closes) and at `StartSession` (the database's
//! [`sedna::DbConfig::max_sessions`] limit, enforced through
//! `Governor::try_connect`, plus optional credential checks when
//! [`NetConfig::auth`] is set).
//!
//! Shutdown is a drain: a shared flag flips and the poller is woken; the
//! event thread stops accepting, tells idle connections
//! [`Response::ShuttingDown`], lets in-flight batches finish (the drain
//! is honored at frame-batch boundaries), and exits once the connection
//! table is empty. [`ServerHandle::shutdown`] then closes every database
//! through `Governor::shutdown` (WAL flush + final checkpoint).

use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use sedna::{chrome_trace_json, CancelFlag, DbError, DbResult, Governor, StreamOutcome};

use crate::conn::{fetch_items, Conn, Fault, Frame, Pending, SessionState};
use crate::metrics::NetMetrics;
use crate::poller::{self, Poller, Waker};
use crate::protocol::{
    codes, ActivityRow, Request, Response, SlowLogRow, DEFAULT_MAX_FRAME, PROTOCOL_VERSION,
};

/// Credentials a v2 client must present at `StartSession`/`AsOf` when
/// the server is started with [`NetConfig::auth`] set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Credentials {
    /// Expected user name.
    pub user: String,
    /// Expected password.
    pub password: String,
}

/// Listener configuration.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Bind address (`127.0.0.1:0` picks a free port; see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads, i.e. concurrently *executing* requests. Idle
    /// connections don't occupy a worker.
    pub workers: usize,
    /// Cap on a single frame in either direction.
    pub max_frame: usize,
    /// Upper bound on one event-loop wait: the drain flag and the
    /// idle/stalled-frame clocks are checked at least this often. Not a
    /// per-connection tick — idle connections cost no syscalls.
    pub poll_interval: Duration,
    /// Close connections that stay silent between requests this long.
    pub idle_timeout: Duration,
    /// Deadline for completing a frame once its first byte arrived, and
    /// for writing a response.
    pub request_timeout: Duration,
    /// Requests a client may have in flight on one connection before
    /// the server stops reading from it (backpressure).
    pub pipeline_depth: usize,
    /// Registered connections the event thread will carry; beyond this
    /// the listener rejects with `overloaded`.
    pub max_conns: usize,
    /// When set, `StartSession`/`AsOf` must carry these credentials
    /// (protocol v2); v1 clients, which cannot, are turned away.
    pub auth: Option<Credentials>,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            addr: "127.0.0.1:0".into(),
            workers: 8,
            max_frame: DEFAULT_MAX_FRAME,
            poll_interval: Duration::from_millis(25),
            idle_timeout: Duration::from_secs(300),
            request_timeout: Duration::from_secs(30),
            pipeline_depth: 16,
            max_conns: 4096,
            auth: None,
        }
    }
}

/// State shared by the event thread, the workers, and the handle.
struct Shared {
    governor: Arc<Governor>,
    metrics: NetMetrics,
    cfg: NetConfig,
    shutdown: AtomicBool,
    addr: SocketAddr,
}

/// A batch of parsed frames for one connection, handed to a worker.
struct Job {
    token: u64,
    frames: Vec<Frame>,
    /// Framing violation to report (and close on) after the frames.
    fault: Option<Fault>,
    state: SessionState,
    /// Clone of the connection's socket for writing responses.
    stream: TcpStream,
    cancel: CancelFlag,
}

/// A worker's completion notice, returning the session state.
struct Done {
    token: u64,
    state: SessionState,
    close: bool,
}

/// The network server: [`Server::start`] binds, spawns the event thread
/// and worker pool, and returns a [`ServerHandle`].
pub struct Server;

/// Token the listener is registered under (connections start at 1).
const LISTENER_TOKEN: u64 = 0;

impl Server {
    /// Binds `cfg.addr`, registers the `sedna_net_*` metrics into the
    /// governor's registry, and spawns the event thread plus worker
    /// pool.
    pub fn start(governor: Arc<Governor>, cfg: NetConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let metrics = NetMetrics::new();
        metrics.register_into(governor.registry());
        let shared = Arc::new(Shared {
            governor,
            metrics,
            cfg,
            shutdown: AtomicBool::new(false),
            addr,
        });
        let poller = Poller::new()?;
        let waker = poller.waker()?;
        poller.register_persistent(listener.as_raw_fd(), LISTENER_TOKEN)?;
        let (work_tx, work_rx) = mpsc::channel::<Job>();
        let (done_tx, done_rx) = mpsc::channel::<Done>();
        let work_rx = Arc::new(Mutex::new(work_rx));
        let mut workers = Vec::with_capacity(shared.cfg.workers.max(1));
        for i in 0..shared.cfg.workers.max(1) {
            let shared = Arc::clone(&shared);
            let work_rx = Arc::clone(&work_rx);
            let done_tx = done_tx.clone();
            let waker = waker.clone();
            let handle = thread::Builder::new()
                .name(format!("sedna-net-worker-{i}"))
                .spawn(move || worker_loop(&shared, &work_rx, &done_tx, &waker))?;
            workers.push(handle);
        }
        let event = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("sedna-net-event".into())
                .spawn(move || {
                    EventLoop {
                        shared,
                        listener,
                        poller,
                        work_tx,
                        done_rx,
                        conns: HashMap::new(),
                        next_token: 1,
                    }
                    .run()
                })?
        };
        Ok(ServerHandle {
            shared,
            waker,
            event: Some(event),
            workers,
        })
    }
}

/// A running server. Dropping the handle drains the listener (without
/// closing databases); call [`ServerHandle::shutdown`] for the full
/// orderly stop.
pub struct ServerHandle {
    shared: Arc<Shared>,
    waker: Waker,
    event: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with an `:0` bind).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The server's metric handles (shared with the event thread and
    /// the workers).
    pub fn metrics(&self) -> &NetMetrics {
        &self.shared.metrics
    }

    /// Whether a drain has been requested — by [`ServerHandle::shutdown`],
    /// or by a client's `Shutdown` request. `sednad` polls this.
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Graceful stop: drain the listener (stop accepting, let in-flight
    /// requests finish, join every thread), then close every registered
    /// database via `Governor::shutdown` — WAL forced, final checkpoint
    /// taken.
    pub fn shutdown(mut self) -> DbResult<()> {
        self.drain();
        self.shared.governor.shutdown()
    }

    fn drain(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.waker.wake();
        if let Some(h) = self.event.take() {
            let _ = h.join();
        }
        // The event thread's exit dropped the job channel, so the
        // workers' queue pops fail and they return.
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.drain();
    }
}

/// The event thread: owns the poller, the listener, and every
/// connection's socket-side state.
struct EventLoop {
    shared: Arc<Shared>,
    listener: TcpListener,
    poller: Poller,
    work_tx: Sender<Job>,
    done_rx: Receiver<Done>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
}

impl EventLoop {
    fn run(mut self) {
        let mut events = Vec::new();
        let mut last_sweep = Instant::now();
        loop {
            if self
                .poller
                .wait(&mut events, self.shared.cfg.poll_interval)
                .is_err()
            {
                // The poller is unrecoverable; fall into the drain path
                // so the server stops instead of spinning.
                self.shared.shutdown.store(true, Ordering::SeqCst);
            }
            self.shared.metrics.event_wakeups.inc();
            // Completions first, so busy flags are fresh before events.
            self.drain_done();
            for &ev in &events {
                if ev.token == LISTENER_TOKEN {
                    self.accept_ready();
                } else {
                    self.conn_ready(ev.token, ev.hup);
                }
            }
            self.drain_done();
            if self.shared.shutdown.load(Ordering::SeqCst) {
                self.drain_idle_conns();
                if self.conns.is_empty() {
                    break;
                }
            }
            if last_sweep.elapsed() >= self.shared.cfg.poll_interval {
                self.sweep_timeouts();
                last_sweep = Instant::now();
            }
        }
        // Dropping `self` drops `work_tx`, which ends the workers.
    }

    fn drain_done(&mut self) {
        while let Ok(done) = self.done_rx.try_recv() {
            self.handle_done(done);
        }
    }

    fn accept_ready(&mut self) {
        loop {
            let stream = match self.listener.accept() {
                Ok((s, _)) => s,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient accept failure (e.g. fd pressure): leave the
                // listener armed and retry at the next wakeup.
                Err(_) => break,
            };
            if self.shared.shutdown.load(Ordering::SeqCst) {
                continue;
            }
            let m = &self.shared.metrics;
            m.connections_opened.inc();
            if self.conns.len() >= self.shared.cfg.max_conns.max(1) {
                reject_overloaded(&self.shared, stream);
                continue;
            }
            let _ = stream.set_nodelay(true);
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let token = self.next_token;
            self.next_token += 1;
            if self.poller.register(stream.as_raw_fd(), token).is_err() {
                continue;
            }
            self.conns.insert(token, Conn::new(stream));
            m.connections_active.add(1);
        }
    }

    /// A connection's socket reported readable: drain it, parse frames,
    /// dispatch, and rearm.
    fn conn_ready(&mut self, token: u64, hup: bool) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.armed = false;
        // A hangup still gets its read: the kernel may hold final bytes
        // (data-then-FIN), and the read is what observes the EOF.
        let alive = conn.read_ready() && !hup;
        let (frames, fault) = conn.parse_frames(self.shared.cfg.max_frame);
        let m = &self.shared.metrics;
        for frame in frames {
            m.bytes_in.add((frame.body.len() + 5) as u64);
            if let Some(c) = m.msg_counter(frame.code) {
                c.inc();
            }
            if frame.code == codes::CANCEL {
                // Out-of-band: abort the statement executing right now;
                // the ordered Cancelled ack follows through the queue.
                conn.cancel.cancel();
            }
            if conn.busy || !conn.queue.is_empty() {
                m.pipelined_requests.inc();
            }
            conn.queue.push_back(frame);
        }
        if fault.is_some() {
            conn.fault = fault;
        }
        if !alive {
            // Peer closed (or the read hard-failed). Frames already
            // queued still get served — the drain below tears the
            // connection down once they are.
            conn.closing = true;
        }
        self.pump(token);
    }

    /// Dispatches queued work if the connection is idle, rearms the
    /// readiness registration unless backpressured, and tears down
    /// connections with nothing left to do.
    fn pump(&mut self, token: u64) {
        if !self.dispatch(token) {
            return;
        }
        let depth = self.shared.cfg.pipeline_depth.max(1);
        let mut rearm = None;
        let mut teardown = false;
        if let Some(conn) = self.conns.get_mut(&token) {
            if conn.closing && !conn.busy && conn.queue.is_empty() {
                teardown = true;
            } else if !conn.armed
                && !conn.closing
                && conn.fault.is_none()
                && conn.queue.len() < depth
            {
                rearm = Some(conn.stream.as_raw_fd());
            }
        }
        if teardown {
            self.teardown(token);
            return;
        }
        if let Some(fd) = rearm {
            let ok = self.poller.rearm(fd, token).is_ok();
            if let Some(conn) = self.conns.get_mut(&token) {
                if ok {
                    conn.armed = true;
                } else if conn.busy {
                    conn.closing = true;
                } else {
                    self.teardown(token);
                }
            }
        }
    }

    /// Hands the connection's queued frames (and any trailing fault) to
    /// the worker pool as one in-order batch. Returns `false` if the
    /// connection vanished.
    fn dispatch(&mut self, token: u64) -> bool {
        let depth = self.shared.cfg.pipeline_depth.max(1);
        let job = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return false;
            };
            if conn.busy || (conn.queue.is_empty() && conn.fault.is_none()) {
                return true;
            }
            let n = conn.queue.len().min(depth);
            let frames: Vec<Frame> = conn.queue.drain(..n).collect();
            // A fault closes the connection, so it only ships once every
            // queued frame ahead of it has shipped too.
            let fault = if conn.queue.is_empty() {
                conn.fault.take()
            } else {
                None
            };
            let Some(state) = conn.state.take() else {
                return true;
            };
            let stream = match conn.stream.try_clone() {
                Ok(s) => s,
                Err(_) => {
                    conn.state = Some(state);
                    self.teardown(token);
                    return false;
                }
            };
            conn.busy = true;
            Job {
                token,
                frames,
                fault,
                state,
                stream,
                cancel: conn.cancel.clone(),
            }
        };
        self.shared.metrics.dispatches.inc();
        if let Err(lost) = self.work_tx.send(job) {
            // Workers are gone (drain): restore the state so teardown
            // accounts the session, then close.
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.busy = false;
                conn.state = Some(lost.0.state);
            }
            self.teardown(token);
            return false;
        }
        true
    }

    fn handle_done(&mut self, done: Done) {
        let token = done.token;
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.busy = false;
        conn.state = Some(done.state);
        if done.close {
            self.teardown(token);
            return;
        }
        if self.shared.shutdown.load(Ordering::SeqCst) {
            // Drain honored at the batch boundary: the batch's responses
            // are written; anything still queued is refused.
            self.notify(token, &Response::ShuttingDown);
            self.teardown(token);
            return;
        }
        self.pump(token);
    }

    /// During a drain, closes every connection that is not executing.
    fn drain_idle_conns(&mut self) {
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| !c.busy)
            .map(|(t, _)| *t)
            .collect();
        for token in idle {
            self.notify(token, &Response::ShuttingDown);
            self.teardown(token);
        }
    }

    /// Closes connections that idled out, or stalled mid-frame past the
    /// request deadline.
    fn sweep_timeouts(&mut self) {
        let cfg = &self.shared.cfg;
        let mut idle = Vec::new();
        let mut stalled = Vec::new();
        for (token, conn) in &self.conns {
            if conn.busy || conn.closing || !conn.queue.is_empty() {
                continue;
            }
            if let Some(started) = conn.frame_started {
                if started.elapsed() >= cfg.request_timeout {
                    stalled.push(*token);
                }
            } else if conn.last_activity.elapsed() >= cfg.idle_timeout {
                idle.push(*token);
            }
        }
        for token in idle {
            self.notify(
                token,
                &Response::Error {
                    kind: "timeout".into(),
                    message: "idle timeout".into(),
                },
            );
            self.teardown(token);
        }
        for token in stalled {
            self.notify(
                token,
                &Response::Error {
                    kind: "protocol".into(),
                    message: "malformed or timed-out frame".into(),
                },
            );
            self.teardown(token);
        }
    }

    /// Best-effort, non-blocking notification from the event thread
    /// (only used on paths where the connection closes right after, so a
    /// full send buffer just loses a courtesy message).
    fn notify(&mut self, token: u64, resp: &Response) {
        let m = &self.shared.metrics;
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if matches!(resp, Response::Error { .. }) {
            m.errors.inc();
        }
        let mut buf = Vec::new();
        if resp.write_to(&mut buf).is_err() {
            return;
        }
        let mut off = 0usize;
        while off < buf.len() {
            match conn.stream.write(&buf[off..]) {
                Ok(0) => break,
                Ok(n) => off += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
        m.bytes_out.add(off as u64);
    }

    /// Removes a connection: deregisters the socket, accounts the
    /// session, and drops the state (rolling back any open transaction
    /// and releasing any live cursor's pins).
    fn teardown(&mut self, token: u64) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return;
        };
        self.poller.deregister(conn.stream.as_raw_fd());
        let m = &self.shared.metrics;
        if let Some(state) = conn.state.take() {
            if state.session.is_some() {
                // Dropping the Session rolls back any open transaction
                // and releases the admission slot; mirror that in the
                // wire metrics so opened == closed + active stays an
                // invariant even for aborted connections.
                m.sessions_active.sub(1);
                m.sessions_closed.inc();
            }
        }
        m.connections_active.sub(1);
    }
}

fn reject_overloaded(shared: &Shared, mut stream: TcpStream) {
    shared.metrics.connections_rejected.inc();
    shared.metrics.errors.inc();
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let resp = Response::Error {
        kind: "overloaded".into(),
        message: "server connection limit reached; retry later".into(),
    };
    if let Ok(n) = resp.write_to(&mut stream) {
        shared.metrics.bytes_out.add(n as u64);
    }
}

fn worker_loop(shared: &Shared, rx: &Mutex<Receiver<Job>>, done_tx: &Sender<Done>, waker: &Waker) {
    loop {
        // The guard drops at the end of this statement, so a worker
        // serving a batch never blocks its peers' queue pops. A poisoned
        // lock (a peer panicked mid-pop) is recovered rather than
        // unwrapped: the receiver is still structurally sound, and
        // killing every worker over one bad connection would turn a
        // single panic into a full outage.
        let next = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(poisoned) => poisoned.into_inner().recv(),
        };
        let mut job = match next {
            Ok(job) => job,
            Err(_) => break,
        };
        let close = serve_batch(shared, waker, &mut job);
        let _ = done_tx.send(Done {
            token: job.token,
            state: job.state,
            close,
        });
        waker.wake();
    }
}

/// Serves one dispatched batch in order. Returns whether the connection
/// should close; once a request closes the connection, the rest of the
/// batch is dropped (the client's pipelined successors die with it, as
/// they would have on a serial connection).
fn serve_batch(shared: &Shared, waker: &Waker, job: &mut Job) -> bool {
    let m = &shared.metrics;
    let timeout = shared.cfg.request_timeout;
    let frames: Vec<Frame> = job.frames.drain(..).collect();
    let mut close = false;
    for frame in frames {
        if close {
            break;
        }
        let span = m.request_ns.span();
        let outcome = match Request::decode(frame.code, &frame.body) {
            Ok(req) => handle_request(job, req, shared, waker),
            Err(e) => send(
                &mut job.stream,
                m,
                &Response::Error {
                    kind: "protocol".into(),
                    message: e.to_string(),
                },
                timeout,
            )
            .map(|()| true),
        };
        drop(span);
        close = outcome.unwrap_or(true);
    }
    if !close {
        if let Some(fault) = job.fault.take() {
            let resp = match fault {
                Fault::Malformed => Response::Error {
                    kind: "protocol".into(),
                    message: "malformed frame".into(),
                },
                Fault::Oversize(len) => Response::Error {
                    kind: "protocol".into(),
                    message: format!(
                        "frame of {len} bytes exceeds the {}-byte limit",
                        shared.cfg.max_frame
                    ),
                },
            };
            let _ = send(&mut job.stream, m, &resp, timeout);
            close = true;
        }
    }
    close
}

/// Gates a session-open on protocol version and credentials. Returns the
/// refusal to send (the connection closes) or `None` to proceed.
fn session_gate(version: u8, user: &str, password: &str, shared: &Shared) -> Option<Response> {
    let m = &shared.metrics;
    if version == 0 || version > PROTOCOL_VERSION {
        return Some(Response::Error {
            kind: "protocol".into(),
            message: format!(
                "protocol version {version} unsupported (server speaks 1..={PROTOCOL_VERSION})"
            ),
        });
    }
    let creds = shared.cfg.auth.as_ref()?;
    if version < 2 {
        m.auth_failures.inc();
        return Some(Response::Error {
            kind: "auth".into(),
            message: "authentication required; protocol v1 carries no credentials — reconnect \
                      with protocol v2"
                .into(),
        });
    }
    if user != creds.user || password != creds.password {
        m.auth_failures.inc();
        return Some(Response::Error {
            kind: "auth".into(),
            message: "authentication failed".into(),
        });
    }
    None
}

/// Serves one decoded request. `Ok(true)` means close the connection
/// afterwards; `Err` means the response could not be written (peer gone).
fn handle_request(job: &mut Job, req: Request, shared: &Shared, waker: &Waker) -> io::Result<bool> {
    let m = &shared.metrics;
    let timeout = shared.cfg.request_timeout;
    let Job {
        state,
        stream,
        cancel,
        ..
    } = job;
    match req {
        Request::StartSession {
            version,
            database,
            user,
            password,
        } => {
            if let Some(refusal) = session_gate(version, &user, &password, shared) {
                send(stream, m, &refusal, timeout)?;
                return Ok(true);
            }
            if state.session.is_some() {
                send(
                    stream,
                    m,
                    &Response::Error {
                        kind: "conflict".into(),
                        message: "session already started on this connection".into(),
                    },
                    timeout,
                )?;
                return Ok(false);
            }
            match shared.governor.try_connect(&database) {
                Ok(mut sess) => {
                    // The connection's cancel flag reaches the executor
                    // through the session, so a parsed Cancel aborts the
                    // running statement.
                    sess.set_cancel_flag(cancel.clone());
                    state.session = Some(sess);
                    state.db_name = Some(database);
                    m.sessions_opened.inc();
                    m.sessions_active.add(1);
                    send(stream, m, &Response::SessionStarted, timeout)?;
                    Ok(false)
                }
                Err(e) => {
                    if matches!(e, DbError::Conflict(_)) {
                        // The database's session limit turned us away.
                        m.connections_rejected.inc();
                    }
                    send_db_error(stream, m, &e, timeout)?;
                    Ok(true)
                }
            }
        }
        Request::CloseSession => {
            if state.session.take().is_some() {
                m.sessions_active.sub(1);
                m.sessions_closed.inc();
            }
            // Drops any live cursor: pins released, transaction committed.
            state.pending = Pending::None;
            send(stream, m, &Response::SessionClosed, timeout)?;
            Ok(true)
        }
        Request::Cancel => {
            // Served strictly in order, so every request queued before
            // the Cancel has already been answered: dropping the pending
            // result here aborts exactly the statement the client raced
            // against (a live cursor's Drop commits its transaction and
            // releases its pins). The flag itself was raised out-of-band
            // when the frame was parsed; clearing it re-arms the
            // connection for later statements.
            state.pending = Pending::None;
            cancel.clear();
            send(stream, m, &Response::Cancelled, timeout)?;
            Ok(false)
        }
        Request::Ping => {
            send(stream, m, &Response::Pong, timeout)?;
            Ok(false)
        }
        Request::GetMetrics => {
            let text = shared.governor.render_prometheus();
            send(stream, m, &Response::Metrics(text), timeout)?;
            Ok(false)
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            // Wake the event thread so the drain starts immediately.
            waker.wake();
            send(stream, m, &Response::ShuttingDown, timeout)?;
            Ok(true)
        }
        Request::AsOf {
            version,
            database,
            ts,
            user,
            password,
        } => {
            if let Some(refusal) = session_gate(version, &user, &password, shared) {
                send(stream, m, &refusal, timeout)?;
                return Ok(true);
            }
            if state.session.is_some() {
                send(
                    stream,
                    m,
                    &Response::Error {
                        kind: "conflict".into(),
                        message: "session already started on this connection".into(),
                    },
                    timeout,
                )?;
                return Ok(false);
            }
            match shared
                .governor
                .database(&database)
                .and_then(|db| db.session_as_of(ts))
            {
                Ok(mut sess) => {
                    sess.set_cancel_flag(cancel.clone());
                    state.session = Some(sess);
                    state.db_name = Some(database);
                    m.sessions_opened.inc();
                    m.sessions_active.add(1);
                    send(stream, m, &Response::SessionStarted, timeout)?;
                    Ok(false)
                }
                Err(e) => {
                    send_db_error(stream, m, &e, timeout)?;
                    Ok(true)
                }
            }
        }
        // Admin requests: sessionless, so a tool connection can manage
        // forks without opening a wire session first.
        Request::Fork { parent, name } => {
            match shared.governor.fork_database(&parent, &name) {
                Ok(fork) => {
                    let ts = fork.fork_point().unwrap_or(0);
                    send(stream, m, &Response::ForkOk { ts }, timeout)?;
                }
                Err(e) => send_db_error(stream, m, &e, timeout)?,
            }
            Ok(false)
        }
        Request::DropFork { name } => {
            let result = shared.governor.database(&name).and_then(|db| {
                if !db.is_fork() {
                    return Err(DbError::Conflict(format!(
                        "database '{name}' is not a fork; use DropDatabase"
                    )));
                }
                shared.governor.drop_database(&name)
            });
            match result {
                Ok(()) => send(stream, m, &Response::ForkDropped, timeout)?,
                Err(e) => send_db_error(stream, m, &e, timeout)?,
            }
            Ok(false)
        }
        Request::DropDatabase { name } => {
            match shared.governor.drop_database(&name) {
                Ok(()) => send(stream, m, &Response::DatabaseDropped, timeout)?,
                Err(e) => send_db_error(stream, m, &e, timeout)?,
            }
            Ok(false)
        }
        other => {
            let Some(sess) = state.session.as_mut() else {
                send(
                    stream,
                    m,
                    &Response::Error {
                        kind: "conflict".into(),
                        message: "no session started on this connection".into(),
                    },
                    timeout,
                )?;
                return Ok(false);
            };
            let resp = match other {
                Request::Begin { read_only } => if read_only {
                    sess.begin_read_only()
                } else {
                    sess.begin_update()
                }
                .map(|_| Response::TxnOk),
                Request::Commit => sess.commit().map(|_| Response::TxnOk),
                Request::Rollback => sess.rollback().map(|_| Response::TxnOk),
                Request::Execute { stmt, trace } => {
                    // The force flag lives only for this one statement.
                    sess.set_trace_forced(trace);
                    let executed = sess.execute_stream(&stmt);
                    sess.set_trace_forced(false);
                    match executed {
                        Ok(StreamOutcome::Items(items)) => {
                            let n = items.len() as u64;
                            state.pending = Pending::Buffered(items.into_iter().collect());
                            Ok(Response::QueryOk(n))
                        }
                        Ok(StreamOutcome::Cursor(cur)) => {
                            // A live cursor: nothing has executed yet, so the
                            // cardinality is unknown — the sentinel tells the
                            // client to fetch until end-of-result.
                            state.pending = Pending::Stream(cur);
                            Ok(Response::QueryOk(u64::MAX))
                        }
                        Ok(StreamOutcome::Updated(n)) => {
                            state.pending = Pending::None;
                            Ok(Response::Updated(n as u64))
                        }
                        Ok(StreamOutcome::Done) => {
                            state.pending = Pending::None;
                            Ok(Response::Done)
                        }
                        Err(e) => Err(e),
                    }
                }
                Request::FetchNext => match fetch_items(&mut state.pending, 1, m) {
                    Ok((mut batch, _)) => match batch.pop() {
                        Some(item) => Ok(Response::Item(item)),
                        None => Ok(Response::ResultEnd),
                    },
                    Err(e) => Err(e),
                },
                Request::FetchBatch { max } => {
                    if max == 0 {
                        Ok(Response::Error {
                            kind: "protocol".into(),
                            message: "fetch batch size must be at least 1".into(),
                        })
                    } else {
                        fetch_items(&mut state.pending, max as usize, m)
                            .map(|(items, done)| Response::ItemBatch { items, done })
                    }
                }
                Request::LoadXml { doc, xml } => sess.load_xml(&doc, &xml).map(Response::Loaded),
                Request::Activity => database_of(state.db_name.as_deref(), shared).map(|db| {
                    let report = db.activity();
                    Response::ActivityReply {
                        sessions: report
                            .sessions
                            .into_iter()
                            .map(|s| ActivityRow {
                                session_id: s.session_id,
                                statement: s.statement,
                                statement_age_ms: s.statement_age.as_millis() as u64,
                                txn: s.txn.as_str().to_string(),
                                items_streamed: s.items_streamed,
                            })
                            .collect(),
                        pinned_pages: report.pinned_pages,
                    }
                }),
                Request::SlowLog => database_of(state.db_name.as_deref(), shared).map(|db| {
                    Response::SlowLogReply(
                        db.slow_log()
                            .into_iter()
                            .map(|e| SlowLogRow {
                                statement: e.statement,
                                total_ns: e.total_ns,
                                trace_id: e.trace_id,
                            })
                            .collect(),
                    )
                }),
                Request::GetTrace { trace_id } => {
                    let id = if trace_id == 0 {
                        sess.last_trace_id()
                    } else {
                        trace_id
                    };
                    database_of(state.db_name.as_deref(), shared).and_then(|db| {
                        db.get_trace(id)
                            .map(|events| Response::Trace {
                                trace_id: id,
                                json: chrome_trace_json(&events),
                            })
                            .ok_or_else(|| {
                                DbError::NotFound(if trace_id == 0 {
                                    "no trace published by this session yet".into()
                                } else {
                                    format!("trace {id} (evicted from the ring, or never kept)")
                                })
                            })
                    })
                }
                Request::ExplainAnalyze { stmt } => {
                    // Replaces any pending result, exactly like Execute.
                    state.pending = Pending::None;
                    sess.explain_analyze(&stmt).map(Response::Explain)
                }
                // Every sessionless request was handled above; this arm
                // is structurally unreachable but kept total so the
                // match needs no panic.
                _ => Err(DbError::Conflict(
                    "request cannot be served on a session connection".into(),
                )),
            };
            match resp {
                Ok(r) => send(stream, m, &r, timeout)?,
                Err(e) => send_db_error(stream, m, &e, timeout)?,
            }
            Ok(false)
        }
    }
}

/// Resolves the connection's database handle for introspection requests.
/// The name is always set once a session started; the governor lookup
/// can still fail if the database was shut down underneath us.
fn database_of(name: Option<&str>, shared: &Shared) -> DbResult<sedna::Database> {
    let name = name.ok_or_else(|| DbError::Conflict("no session started".into()))?;
    shared.governor.database(name)
}

/// Serializes `resp` and writes it to the (non-blocking) socket,
/// waiting for writability between short writes up to `timeout`.
fn send(
    stream: &mut TcpStream,
    m: &NetMetrics,
    resp: &Response,
    timeout: Duration,
) -> io::Result<()> {
    if matches!(resp, Response::Error { .. }) {
        m.errors.inc();
    }
    let mut buf = Vec::new();
    let n = resp.write_to(&mut buf)?;
    write_all_nb(stream, &buf, timeout)?;
    m.bytes_out.add(n as u64);
    Ok(())
}

fn send_db_error(
    stream: &mut TcpStream,
    m: &NetMetrics,
    e: &DbError,
    timeout: Duration,
) -> io::Result<()> {
    send(
        stream,
        m,
        &Response::Error {
            kind: error_kind(e).into(),
            message: e.to_string(),
        },
        timeout,
    )
}

/// Writes the whole buffer to a non-blocking socket, parking on
/// `poll(2)` writability whenever the send buffer fills, within a total
/// deadline of `timeout`.
fn write_all_nb(stream: &mut TcpStream, buf: &[u8], timeout: Duration) -> io::Result<()> {
    let deadline = Instant::now() + timeout;
    let mut off = 0usize;
    while off < buf.len() {
        match stream.write(&buf[off..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => off += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                let now = Instant::now();
                if now >= deadline {
                    return Err(io::ErrorKind::TimedOut.into());
                }
                poller::wait_writable(stream.as_raw_fd(), deadline - now)?;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Stable machine-readable class for a [`DbError`], carried in the wire
/// error envelope's `kind` field.
pub fn error_kind(e: &DbError) -> &'static str {
    match e {
        DbError::Sas(_) => "sas",
        DbError::Storage(_) => "storage",
        DbError::Query(_) => "query",
        DbError::Wal(_) => "wal",
        DbError::Index(_) => "index",
        DbError::Lock(_) => "lock",
        DbError::Io(_) => "io",
        DbError::NotFound(_) => "not_found",
        DbError::Conflict(_) => "conflict",
        DbError::Cancelled => "cancelled",
    }
}
