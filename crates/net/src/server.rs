//! The network listener and its bounded worker pool.
//!
//! Figure 1 of the paper puts a *listener* in the governor process that
//! accepts client connections and hands each one to a per-client session
//! component. This module reproduces that shape with a thread-per-worker
//! pool: an acceptor thread pushes accepted sockets onto a bounded queue
//! and `workers` threads pop from it, each serving one connection at a
//! time through the request loop in [`serve_conn`] (wire session →
//! [`sedna::Session`]).
//!
//! Admission control happens twice: at the queue (a full queue rejects
//! the connection with an `overloaded` error before any protocol
//! exchange) and at `StartSession` (the database's
//! [`sedna::DbConfig::max_sessions`] limit, enforced through
//! `Governor::try_connect`).
//!
//! Shutdown is a drain: a shared flag flips, the acceptor wakes (poked
//! with a loopback connect) and stops accepting, idle connections are
//! told [`Response::ShuttingDown`] at their next poll tick, in-flight
//! requests finish, and then [`ServerHandle::shutdown`] closes every
//! database through `Governor::shutdown` (WAL flush + final checkpoint).

use std::collections::VecDeque;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use sedna::{chrome_trace_json, DbError, DbResult, Governor, QueryCursor, Session, StreamOutcome};

use crate::metrics::NetMetrics;
use crate::protocol::{
    ActivityRow, Request, Response, SlowLogRow, DEFAULT_MAX_FRAME, PROTOCOL_VERSION,
};

/// Listener configuration.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Bind address (`127.0.0.1:0` picks a free port; see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads, i.e. concurrently served connections.
    pub workers: usize,
    /// Accepted connections that may wait for a free worker before the
    /// listener starts rejecting with `overloaded`.
    pub queue_depth: usize,
    /// Cap on a single frame in either direction.
    pub max_frame: usize,
    /// Socket read-timeout tick: how often an idle worker re-checks the
    /// drain flag and the idle clock.
    pub poll_interval: Duration,
    /// Close connections that stay silent between requests this long.
    pub idle_timeout: Duration,
    /// Deadline for reading the rest of a frame once its first byte
    /// arrived, and for writing a response.
    pub request_timeout: Duration,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            addr: "127.0.0.1:0".into(),
            workers: 8,
            queue_depth: 16,
            max_frame: DEFAULT_MAX_FRAME,
            poll_interval: Duration::from_millis(25),
            idle_timeout: Duration::from_secs(300),
            request_timeout: Duration::from_secs(30),
        }
    }
}

/// State shared by the acceptor, the workers, and the handle.
struct Shared {
    governor: Arc<Governor>,
    metrics: NetMetrics,
    cfg: NetConfig,
    shutdown: AtomicBool,
    addr: SocketAddr,
}

/// The network server: [`Server::start`] binds, spawns the acceptor and
/// worker threads, and returns a [`ServerHandle`].
pub struct Server;

impl Server {
    /// Binds `cfg.addr`, registers the `sedna_net_*` metrics into the
    /// governor's registry, and spawns the acceptor plus worker pool.
    pub fn start(governor: Arc<Governor>, cfg: NetConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let metrics = NetMetrics::new();
        metrics.register_into(governor.registry());
        let shared = Arc::new(Shared {
            governor,
            metrics,
            cfg,
            shutdown: AtomicBool::new(false),
            addr,
        });
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(shared.cfg.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(shared.cfg.workers.max(1));
        for i in 0..shared.cfg.workers.max(1) {
            let shared = Arc::clone(&shared);
            let rx = Arc::clone(&rx);
            let handle = thread::Builder::new()
                .name(format!("sedna-net-worker-{i}"))
                .spawn(move || worker_loop(&shared, &rx))?;
            workers.push(handle);
        }
        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("sedna-net-acceptor".into())
                .spawn(move || acceptor_loop(&shared, listener, tx))?
        };
        Ok(ServerHandle {
            shared,
            acceptor: Some(acceptor),
            workers,
        })
    }
}

/// A running server. Dropping the handle drains the listener (without
/// closing databases); call [`ServerHandle::shutdown`] for the full
/// orderly stop.
pub struct ServerHandle {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with an `:0` bind).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The server's metric handles (shared with the worker threads).
    pub fn metrics(&self) -> &NetMetrics {
        &self.shared.metrics
    }

    /// Whether a drain has been requested — by [`ServerHandle::shutdown`],
    /// or by a client's `Shutdown` request. `sednad` polls this.
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Graceful stop: drain the listener (stop accepting, let in-flight
    /// requests finish, join every thread), then close every registered
    /// database via `Governor::shutdown` — WAL forced, final checkpoint
    /// taken.
    pub fn shutdown(mut self) -> DbResult<()> {
        self.drain();
        self.shared.governor.shutdown()
    }

    fn drain(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the acceptor out of its blocking accept().
        let _ = TcpStream::connect(self.shared.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.drain();
    }
}

fn acceptor_loop(shared: &Shared, listener: TcpListener, tx: SyncSender<TcpStream>) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                // Transient accept failure (e.g. fd pressure): back off.
                thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            // Either the drain poke or a late client; both just close.
            break;
        }
        shared.metrics.connections_opened.inc();
        match tx.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(stream)) => reject_overloaded(shared, stream),
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
    // Dropping `tx` here lets the workers drain the queue and exit.
}

fn reject_overloaded(shared: &Shared, mut stream: TcpStream) {
    shared.metrics.connections_rejected.inc();
    shared.metrics.errors.inc();
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let resp = Response::Error {
        kind: "overloaded".into(),
        message: "server worker queue is full; retry later".into(),
    };
    if let Ok(n) = resp.write_to(&mut stream) {
        shared.metrics.bytes_out.add(n as u64);
    }
}

fn worker_loop(shared: &Shared, rx: &Mutex<Receiver<TcpStream>>) {
    loop {
        // The guard drops at the end of this statement, so a worker
        // serving a connection never blocks its peers' queue pops. A
        // poisoned lock (a peer panicked mid-pop) is recovered rather
        // than unwrapped: the receiver is still structurally sound, and
        // killing every worker over one bad connection would turn a
        // single panic into a full outage.
        let next = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(poisoned) => poisoned.into_inner().recv(),
        };
        match next {
            Ok(stream) => serve_conn(shared, stream),
            Err(_) => break,
        }
    }
}

/// One connection's server-side state: the wire session and the result
/// of its last query, streamed out via `FetchNext` / `FetchBatch`.
struct Conn {
    stream: TcpStream,
    session: Option<Session>,
    /// Name of the database the session is on (for introspection
    /// requests that need the [`sedna::Database`] handle).
    db_name: Option<String>,
    pending: Pending,
}

/// The last query's result state.
///
/// Auto-commit queries arrive as a live [`QueryCursor`]: items are
/// pulled from the executor pipeline one fetch at a time, and the
/// cursor's read-only transaction (with its page pins) stays open
/// between fetches. Replacing or clearing the state drops the cursor,
/// which releases every pin and commits its transaction — so a client
/// that executes a new statement, closes the session, or disconnects
/// mid-stream never leaks the snapshot.
enum Pending {
    /// No result, or the previous result is drained.
    None,
    /// Materialized items (queries inside an explicit transaction).
    Buffered(VecDeque<String>),
    /// A live streaming cursor (auto-commit queries).
    Stream(Box<QueryCursor>),
}

/// Pulls up to `max` items from the connection's pending result,
/// returning the batch and whether the result is now exhausted. On a
/// mid-stream error the cursor has already finished itself (transaction
/// committed, pins released); the pending state is cleared so later
/// fetches see a clean end-of-result.
fn fetch_items(pending: &mut Pending, max: usize, m: &NetMetrics) -> DbResult<(Vec<String>, bool)> {
    match pending {
        Pending::None => Ok((Vec::new(), true)),
        Pending::Buffered(items) => {
            let n = max.min(items.len());
            let batch: Vec<String> = items.drain(..n).collect();
            m.items_streamed.add(batch.len() as u64);
            let done = items.is_empty();
            if done {
                *pending = Pending::None;
            }
            Ok((batch, done))
        }
        Pending::Stream(cur) => {
            let mut batch = Vec::new();
            let mut done = false;
            let mut err = None;
            while batch.len() < max {
                match cur.next_item() {
                    Ok(Some(item)) => batch.push(item),
                    Ok(None) => {
                        done = true;
                        break;
                    }
                    Err(e) => {
                        err = Some(e);
                        break;
                    }
                }
            }
            m.items_streamed.add(batch.len() as u64);
            if let Some(e) = err {
                *pending = Pending::None;
                return Err(e);
            }
            if done {
                *pending = Pending::None;
            }
            Ok((batch, done))
        }
    }
}

fn serve_conn(shared: &Shared, stream: TcpStream) {
    let m = &shared.metrics;
    m.connections_active.add(1);
    let mut conn = Conn {
        stream,
        session: None,
        db_name: None,
        pending: Pending::None,
    };
    let _ = conn.stream.set_nodelay(true);
    let _ = conn.stream.set_read_timeout(Some(shared.cfg.poll_interval));
    let _ = conn
        .stream
        .set_write_timeout(Some(shared.cfg.request_timeout));
    loop {
        match read_frame_interruptible(&mut conn.stream, &shared.cfg, &shared.shutdown) {
            ReadOutcome::Frame(code, body) => {
                m.bytes_in.add((body.len() + 5) as u64);
                if let Some(c) = m.msg_counter(code) {
                    c.inc();
                }
                let span = m.request_ns.span();
                let close = match Request::decode(code, &body) {
                    Ok(req) => handle_request(&mut conn, req, shared).unwrap_or(true),
                    Err(e) => {
                        let _ = send(
                            &mut conn,
                            m,
                            &Response::Error {
                                kind: "protocol".into(),
                                message: e.to_string(),
                            },
                        );
                        true
                    }
                };
                drop(span);
                if close {
                    break;
                }
            }
            ReadOutcome::ShutdownTick => {
                let _ = send(&mut conn, m, &Response::ShuttingDown);
                break;
            }
            ReadOutcome::IdleTimeout => {
                let _ = send(
                    &mut conn,
                    m,
                    &Response::Error {
                        kind: "timeout".into(),
                        message: "idle timeout".into(),
                    },
                );
                break;
            }
            ReadOutcome::Oversize(len) => {
                let _ = send(
                    &mut conn,
                    m,
                    &Response::Error {
                        kind: "protocol".into(),
                        message: format!(
                            "frame of {len} bytes exceeds the {}-byte limit",
                            shared.cfg.max_frame
                        ),
                    },
                );
                break;
            }
            ReadOutcome::Malformed => {
                let _ = send(
                    &mut conn,
                    m,
                    &Response::Error {
                        kind: "protocol".into(),
                        message: "malformed or timed-out frame".into(),
                    },
                );
                break;
            }
            ReadOutcome::Closed => break,
        }
    }
    if conn.session.take().is_some() {
        // Dropping the Session rolls back any open transaction and
        // releases the admission slot; mirror that in the wire metrics
        // so opened == closed + active stays an invariant even for
        // aborted connections.
        m.sessions_active.sub(1);
        m.sessions_closed.inc();
    }
    m.connections_active.sub(1);
}

/// Serves one decoded request. `Ok(true)` means close the connection
/// afterwards; `Err` means the response could not be written (peer gone).
fn handle_request(conn: &mut Conn, req: Request, shared: &Shared) -> io::Result<bool> {
    let m = &shared.metrics;
    match req {
        Request::StartSession { version, database } => {
            if version != PROTOCOL_VERSION {
                send(
                    conn,
                    m,
                    &Response::Error {
                        kind: "protocol".into(),
                        message: format!(
                            "protocol version {version} unsupported (server speaks {PROTOCOL_VERSION})"
                        ),
                    },
                )?;
                return Ok(true);
            }
            if conn.session.is_some() {
                send(
                    conn,
                    m,
                    &Response::Error {
                        kind: "conflict".into(),
                        message: "session already started on this connection".into(),
                    },
                )?;
                return Ok(false);
            }
            match shared.governor.try_connect(&database) {
                Ok(sess) => {
                    conn.session = Some(sess);
                    conn.db_name = Some(database);
                    m.sessions_opened.inc();
                    m.sessions_active.add(1);
                    send(conn, m, &Response::SessionStarted)?;
                    Ok(false)
                }
                Err(e) => {
                    if matches!(e, DbError::Conflict(_)) {
                        // The database's session limit turned us away.
                        m.connections_rejected.inc();
                    }
                    send_db_error(conn, m, &e)?;
                    Ok(true)
                }
            }
        }
        Request::CloseSession => {
            if conn.session.take().is_some() {
                m.sessions_active.sub(1);
                m.sessions_closed.inc();
            }
            // Drops any live cursor: pins released, transaction committed.
            conn.pending = Pending::None;
            send(conn, m, &Response::SessionClosed)?;
            Ok(true)
        }
        Request::Ping => {
            send(conn, m, &Response::Pong)?;
            Ok(false)
        }
        Request::GetMetrics => {
            let text = shared.governor.render_prometheus();
            send(conn, m, &Response::Metrics(text))?;
            Ok(false)
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            // Wake the acceptor so the drain starts immediately.
            let _ = TcpStream::connect(shared.addr);
            send(conn, m, &Response::ShuttingDown)?;
            Ok(true)
        }
        Request::AsOf {
            version,
            database,
            ts,
        } => {
            if version != PROTOCOL_VERSION {
                send(
                    conn,
                    m,
                    &Response::Error {
                        kind: "protocol".into(),
                        message: format!(
                            "protocol version {version} unsupported (server speaks {PROTOCOL_VERSION})"
                        ),
                    },
                )?;
                return Ok(true);
            }
            if conn.session.is_some() {
                send(
                    conn,
                    m,
                    &Response::Error {
                        kind: "conflict".into(),
                        message: "session already started on this connection".into(),
                    },
                )?;
                return Ok(false);
            }
            match shared
                .governor
                .database(&database)
                .and_then(|db| db.session_as_of(ts))
            {
                Ok(sess) => {
                    conn.session = Some(sess);
                    conn.db_name = Some(database);
                    m.sessions_opened.inc();
                    m.sessions_active.add(1);
                    send(conn, m, &Response::SessionStarted)?;
                    Ok(false)
                }
                Err(e) => {
                    send_db_error(conn, m, &e)?;
                    Ok(true)
                }
            }
        }
        // Admin requests: sessionless, so a tool connection can manage
        // forks without opening a wire session first.
        Request::Fork { parent, name } => {
            match shared.governor.fork_database(&parent, &name) {
                Ok(fork) => {
                    let ts = fork.fork_point().unwrap_or(0);
                    send(conn, m, &Response::ForkOk { ts })?;
                }
                Err(e) => send_db_error(conn, m, &e)?,
            }
            Ok(false)
        }
        Request::DropFork { name } => {
            let result = shared.governor.database(&name).and_then(|db| {
                if !db.is_fork() {
                    return Err(DbError::Conflict(format!(
                        "database '{name}' is not a fork; use DropDatabase"
                    )));
                }
                shared.governor.drop_database(&name)
            });
            match result {
                Ok(()) => send(conn, m, &Response::ForkDropped)?,
                Err(e) => send_db_error(conn, m, &e)?,
            }
            Ok(false)
        }
        Request::DropDatabase { name } => {
            match shared.governor.drop_database(&name) {
                Ok(()) => send(conn, m, &Response::DatabaseDropped)?,
                Err(e) => send_db_error(conn, m, &e)?,
            }
            Ok(false)
        }
        other => {
            let Some(sess) = conn.session.as_mut() else {
                send(
                    conn,
                    m,
                    &Response::Error {
                        kind: "conflict".into(),
                        message: "no session started on this connection".into(),
                    },
                )?;
                return Ok(false);
            };
            let resp = match other {
                Request::Begin { read_only } => if read_only {
                    sess.begin_read_only()
                } else {
                    sess.begin_update()
                }
                .map(|_| Response::TxnOk),
                Request::Commit => sess.commit().map(|_| Response::TxnOk),
                Request::Rollback => sess.rollback().map(|_| Response::TxnOk),
                Request::Execute { stmt, trace } => {
                    // The force flag lives only for this one statement.
                    sess.set_trace_forced(trace);
                    let executed = sess.execute_stream(&stmt);
                    sess.set_trace_forced(false);
                    match executed {
                        Ok(StreamOutcome::Items(items)) => {
                            let n = items.len() as u64;
                            conn.pending = Pending::Buffered(items.into_iter().collect());
                            Ok(Response::QueryOk(n))
                        }
                        Ok(StreamOutcome::Cursor(cur)) => {
                            // A live cursor: nothing has executed yet, so the
                            // cardinality is unknown — the sentinel tells the
                            // client to fetch until end-of-result.
                            conn.pending = Pending::Stream(cur);
                            Ok(Response::QueryOk(u64::MAX))
                        }
                        Ok(StreamOutcome::Updated(n)) => {
                            conn.pending = Pending::None;
                            Ok(Response::Updated(n as u64))
                        }
                        Ok(StreamOutcome::Done) => {
                            conn.pending = Pending::None;
                            Ok(Response::Done)
                        }
                        Err(e) => Err(e),
                    }
                }
                Request::FetchNext => match fetch_items(&mut conn.pending, 1, m) {
                    Ok((mut batch, _)) => match batch.pop() {
                        Some(item) => Ok(Response::Item(item)),
                        None => Ok(Response::ResultEnd),
                    },
                    Err(e) => Err(e),
                },
                Request::FetchBatch { max } => {
                    if max == 0 {
                        Ok(Response::Error {
                            kind: "protocol".into(),
                            message: "fetch batch size must be at least 1".into(),
                        })
                    } else {
                        fetch_items(&mut conn.pending, max as usize, m)
                            .map(|(items, done)| Response::ItemBatch { items, done })
                    }
                }
                Request::LoadXml { doc, xml } => sess.load_xml(&doc, &xml).map(Response::Loaded),
                Request::Activity => database_of(conn.db_name.as_deref(), shared).map(|db| {
                    let report = db.activity();
                    Response::ActivityReply {
                        sessions: report
                            .sessions
                            .into_iter()
                            .map(|s| ActivityRow {
                                session_id: s.session_id,
                                statement: s.statement,
                                statement_age_ms: s.statement_age.as_millis() as u64,
                                txn: s.txn.as_str().to_string(),
                                items_streamed: s.items_streamed,
                            })
                            .collect(),
                        pinned_pages: report.pinned_pages,
                    }
                }),
                Request::SlowLog => database_of(conn.db_name.as_deref(), shared).map(|db| {
                    Response::SlowLogReply(
                        db.slow_log()
                            .into_iter()
                            .map(|e| SlowLogRow {
                                statement: e.statement,
                                total_ns: e.total_ns,
                                trace_id: e.trace_id,
                            })
                            .collect(),
                    )
                }),
                Request::GetTrace { trace_id } => {
                    let id = if trace_id == 0 {
                        sess.last_trace_id()
                    } else {
                        trace_id
                    };
                    database_of(conn.db_name.as_deref(), shared).and_then(|db| {
                        db.get_trace(id)
                            .map(|events| Response::Trace {
                                trace_id: id,
                                json: chrome_trace_json(&events),
                            })
                            .ok_or_else(|| {
                                DbError::NotFound(if trace_id == 0 {
                                    "no trace published by this session yet".into()
                                } else {
                                    format!("trace {id} (evicted from the ring, or never kept)")
                                })
                            })
                    })
                }
                Request::ExplainAnalyze { stmt } => {
                    // Replaces any pending result, exactly like Execute.
                    conn.pending = Pending::None;
                    sess.explain_analyze(&stmt).map(Response::Explain)
                }
                _ => unreachable!("sessionless requests handled above"),
            };
            match resp {
                Ok(r) => send(conn, m, &r)?,
                Err(e) => send_db_error(conn, m, &e)?,
            }
            Ok(false)
        }
    }
}

/// Resolves the connection's database handle for introspection requests.
/// The name is always set once a session started; the governor lookup
/// can still fail if the database was shut down underneath us.
fn database_of(name: Option<&str>, shared: &Shared) -> DbResult<sedna::Database> {
    let name = name.ok_or_else(|| DbError::Conflict("no session started".into()))?;
    shared.governor.database(name)
}

fn send(conn: &mut Conn, m: &NetMetrics, resp: &Response) -> io::Result<()> {
    if matches!(resp, Response::Error { .. }) {
        m.errors.inc();
    }
    let n = resp.write_to(&mut conn.stream)?;
    m.bytes_out.add(n as u64);
    Ok(())
}

fn send_db_error(conn: &mut Conn, m: &NetMetrics, e: &DbError) -> io::Result<()> {
    send(
        conn,
        m,
        &Response::Error {
            kind: error_kind(e).into(),
            message: e.to_string(),
        },
    )
}

/// Stable machine-readable class for a [`DbError`], carried in the wire
/// error envelope's `kind` field.
pub fn error_kind(e: &DbError) -> &'static str {
    match e {
        DbError::Sas(_) => "sas",
        DbError::Storage(_) => "storage",
        DbError::Query(_) => "query",
        DbError::Wal(_) => "wal",
        DbError::Index(_) => "index",
        DbError::Lock(_) => "lock",
        DbError::Io(_) => "io",
        DbError::NotFound(_) => "not_found",
        DbError::Conflict(_) => "conflict",
    }
}

enum ReadOutcome {
    /// A complete frame: `(code, body)`.
    Frame(u8, Vec<u8>),
    /// Clean EOF or peer reset.
    Closed,
    /// Drain flag observed at a frame boundary.
    ShutdownTick,
    /// No request arrived within the idle timeout.
    IdleTimeout,
    /// Declared frame length exceeds the configured cap.
    Oversize(usize),
    /// Zero-length frame, or the frame stalled past the request timeout.
    Malformed,
}

/// Reads one frame with a short socket read-timeout as the poll tick, so
/// the worker notices the drain flag and the idle clock between frames.
/// The drain flag is only honored at frame *boundaries*: once the first
/// header byte of a frame arrived, the read switches to the request
/// deadline so a partially read frame is never abandoned mid-stream
/// (which would desynchronize the connection).
fn read_frame_interruptible(
    stream: &mut TcpStream,
    cfg: &NetConfig,
    shutdown: &AtomicBool,
) -> ReadOutcome {
    let mut hdr = [0u8; 5];
    let mut got = 0usize;
    let idle_start = Instant::now();
    let mut frame_start: Option<Instant> = None;
    while got < 5 {
        match stream.read(&mut hdr[got..]) {
            Ok(0) => return ReadOutcome::Closed,
            Ok(n) => {
                if frame_start.is_none() {
                    frame_start = Some(Instant::now());
                }
                got += n;
            }
            Err(e) if is_timeout(&e) => match frame_start {
                None => {
                    if shutdown.load(Ordering::SeqCst) {
                        return ReadOutcome::ShutdownTick;
                    }
                    if idle_start.elapsed() >= cfg.idle_timeout {
                        return ReadOutcome::IdleTimeout;
                    }
                }
                Some(t) => {
                    if t.elapsed() >= cfg.request_timeout {
                        return ReadOutcome::Malformed;
                    }
                }
            },
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Closed,
        }
    }
    let len = u32::from_be_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]) as usize;
    if len == 0 {
        return ReadOutcome::Malformed;
    }
    if len > cfg.max_frame {
        return ReadOutcome::Oversize(len);
    }
    let mut body = vec![0u8; len - 1];
    let mut got = 0usize;
    let deadline = Instant::now() + cfg.request_timeout;
    while got < body.len() {
        match stream.read(&mut body[got..]) {
            Ok(0) => return ReadOutcome::Closed,
            Ok(n) => got += n,
            Err(e) if is_timeout(&e) => {
                if Instant::now() >= deadline {
                    return ReadOutcome::Malformed;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Closed,
        }
    }
    ReadOutcome::Frame(hdr[4], body)
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}
