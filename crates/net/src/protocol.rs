//! The Sedna wire protocol: length-prefixed binary frames.
//!
//! Every message — request or response — is one *frame*:
//!
//! ```text
//! +----------------+-----------+----------------------+
//! | length: u32 BE | code: u8  | body: length-1 bytes |
//! +----------------+-----------+----------------------+
//! ```
//!
//! The length covers the code byte plus the body, so an empty-bodied
//! message has length 1. Within bodies, integers are big-endian and
//! strings are a `u32` byte length followed by UTF-8 bytes. The original
//! Sedna protocol works the same way (se_ErrorResponse, se_Execute,
//! se_GetNextItem, ... message codes over length-prefixed packets); the
//! codes here are this reproduction's own numbering.
//!
//! Requests occupy `0x01..=0x7F`, responses `0x80..=0xFF`, with
//! [`codes::ERROR`] (`0xEE`) as the structured error envelope carrying a
//! machine-readable kind plus a human-readable message.

use std::io::{self, Read, Write};

/// Protocol revision carried in [`Request::StartSession`]. Version 2
/// adds request pipelining, [`Request::Cancel`], and credentials on
/// [`Request::StartSession`] / [`Request::AsOf`]. The server still
/// accepts version-1 clients (whose session-open bodies simply omit the
/// credential fields) unless it is configured to require authentication;
/// versions above [`PROTOCOL_VERSION`] are refused with a `protocol`
/// error.
pub const PROTOCOL_VERSION: u8 = 2;

/// Default cap on a single frame (length field), applied by both ends.
pub const DEFAULT_MAX_FRAME: usize = 16 * 1024 * 1024;

/// Message codes, one byte at the head of every frame.
pub mod codes {
    /// Open a session: `version: u8`, `database: str`, then (version 2)
    /// `user: str`, `password: str`. Version-1 bodies end after the
    /// database name.
    pub const START_SESSION: u8 = 0x01;
    /// Close the session gracefully (empty body).
    pub const CLOSE_SESSION: u8 = 0x02;
    /// Begin a transaction: `read_only: u8` (0 = update, 1 = read-only).
    pub const BEGIN: u8 = 0x03;
    /// Commit the open transaction (empty body).
    pub const COMMIT: u8 = 0x04;
    /// Roll back the open transaction (empty body).
    pub const ROLLBACK: u8 = 0x05;
    /// Execute a statement: `stmt: str`, then an optional trailing
    /// `trace: u8` flag (absent = 0; 1 forces a trace of this statement
    /// to be captured and published, retrievable via [`GET_TRACE`]).
    pub const EXECUTE: u8 = 0x06;
    /// Pull the next result item of the last query (empty body).
    pub const FETCH_NEXT: u8 = 0x07;
    /// Liveness probe (empty body).
    pub const PING: u8 = 0x08;
    /// Fetch the system-wide Prometheus metrics text (empty body).
    pub const GET_METRICS: u8 = 0x09;
    /// Ask the server to drain and shut down (empty body).
    pub const SHUTDOWN: u8 = 0x0A;
    /// Bulk-load a document: `doc: str`, `xml: str`.
    pub const LOAD_XML: u8 = 0x0B;
    /// Pull up to `max: u32` result items in one frame.
    pub const FETCH_BATCH: u8 = 0x0C;
    /// Fetch the database's live session-activity view (empty body).
    pub const ACTIVITY: u8 = 0x0D;
    /// Fetch the database's slow-query log (empty body).
    pub const SLOW_LOG: u8 = 0x0E;
    /// Fetch a query trace from the trace ring: `trace_id: u64`
    /// (`0` = this session's most recent trace).
    pub const GET_TRACE: u8 = 0x0F;
    /// Execute a statement with per-operator timing and return the
    /// rendered report: `stmt: str`.
    pub const EXPLAIN_ANALYZE: u8 = 0x10;
    /// Fork a database copy-on-write (sessionless admin request):
    /// `parent: str`, `name: str`.
    pub const FORK: u8 = 0x11;
    /// Drop a fork (sessionless admin request): `name: str`.
    pub const DROP_FORK: u8 = 0x12;
    /// Drop a database — a fork, or a root without live forks
    /// (sessionless admin request): `name: str`.
    pub const DROP_DATABASE: u8 = 0x13;
    /// Open an `AS OF` time-travel session pinned to the newest retained
    /// snapshot at or before `ts`: `version: u8`, `database: str`,
    /// `ts: u64`, then (version 2) `user: str`, `password: str`.
    /// Answered with [`SESSION_STARTED`], like [`START_SESSION`].
    pub const AS_OF: u8 = 0x14;
    /// Abort the running (or queued) statement out-of-band: the server
    /// reads ahead of in-flight requests, flags the session, and the
    /// statement fails with a `cancelled` error at its next pull or
    /// statement boundary. Answered in request order with [`CANCELLED`]
    /// once the abort has taken effect and any open cursor is dropped.
    /// Empty body. Protocol version 2.
    pub const CANCEL: u8 = 0x15;

    /// Session opened.
    pub const SESSION_STARTED: u8 = 0x81;
    /// Session closed.
    pub const SESSION_CLOSED: u8 = 0x82;
    /// Transaction control acknowledged.
    pub const TXN_OK: u8 = 0x83;
    /// Statement was an update: `count: u64` nodes affected.
    pub const UPDATED: u8 = 0x84;
    /// Statement produced no result (DDL, load).
    pub const DONE: u8 = 0x85;
    /// Statement was a query: `items: u64` available for fetching.
    /// `u64::MAX` means the result is a live streaming cursor whose
    /// cardinality is unknown until drained.
    pub const QUERY_OK: u8 = 0x86;
    /// One result item: `text: str`.
    pub const ITEM: u8 = 0x87;
    /// No more result items.
    pub const RESULT_END: u8 = 0x88;
    /// Liveness reply.
    pub const PONG: u8 = 0x89;
    /// Prometheus metrics text: `text: str`.
    pub const METRICS: u8 = 0x8A;
    /// Server is draining; the connection will close.
    pub const SHUTTING_DOWN: u8 = 0x8B;
    /// Document loaded: `nodes: u64` stored.
    pub const LOADED: u8 = 0x8C;
    /// A batch of result items: `count: u32`, `count` strings,
    /// `done: u8` (1 = the result is exhausted; no RESULT_END follows).
    pub const ITEM_BATCH: u8 = 0x8D;
    /// The live activity view: `pinned_pages: i64`, `count: u32`, then
    /// per session `id: u64`, `has_stmt: u8` (+ `stmt: str` when 1),
    /// `age_ms: u64`, `txn: str`, `items_streamed: u64`.
    pub const ACTIVITY_REPLY: u8 = 0x8E;
    /// The slow-query log, most recent first: `count: u32`, then per
    /// entry `stmt: str`, `total_ns: u64`, `trace_id: u64`.
    pub const SLOW_LOG_REPLY: u8 = 0x8F;
    /// A query trace: `trace_id: u64`, `json: str` (Chrome trace-event
    /// format).
    pub const TRACE: u8 = 0x90;
    /// An `EXPLAIN ANALYZE` report: `report: str`.
    pub const EXPLAIN: u8 = 0x91;
    /// Fork created: `ts: u64`, the fork's branch-point commit
    /// timestamp.
    pub const FORK_OK: u8 = 0x92;
    /// Fork dropped.
    pub const FORK_DROPPED: u8 = 0x93;
    /// Database dropped.
    pub const DATABASE_DROPPED: u8 = 0x94;
    /// A [`CANCEL`] took effect: the statement (if any) was aborted,
    /// its cursor dropped, and the session is ready for more work.
    /// Protocol version 2.
    pub const CANCELLED: u8 = 0x95;
    /// Structured error envelope: `kind: str`, `message: str`.
    pub const ERROR: u8 = 0xEE;
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Open a session on `database`, announcing the client's protocol
    /// `version` and (version 2) its credentials.
    StartSession {
        /// Client protocol revision ([`PROTOCOL_VERSION`]).
        version: u8,
        /// Name of the database registered at the governor.
        database: String,
        /// User name (empty on version-1 frames and unauthenticated
        /// version-2 clients).
        user: String,
        /// Password (empty like `user`).
        password: String,
    },
    /// Close the session gracefully.
    CloseSession,
    /// Begin a transaction.
    Begin {
        /// `true` for a read-only (snapshot) transaction.
        read_only: bool,
    },
    /// Commit the open transaction.
    Commit,
    /// Roll back the open transaction.
    Rollback,
    /// Execute one statement (query, update, or DDL).
    Execute {
        /// Statement text.
        stmt: String,
        /// Force a trace of this statement to be captured and
        /// published, regardless of the server's sampling policy.
        /// Encoded as an optional trailing byte, so `false` is
        /// wire-compatible with version-1 peers that omit it.
        trace: bool,
    },
    /// Pull the next buffered result item.
    FetchNext,
    /// Pull up to `max` result items in one frame.
    FetchBatch {
        /// Maximum number of items to return (the server may send
        /// fewer; `0` is rejected).
        max: u32,
    },
    /// Liveness probe.
    Ping,
    /// Fetch the system-wide Prometheus metrics text.
    GetMetrics,
    /// Ask the server to drain and shut down.
    Shutdown,
    /// Bulk-load an XML document.
    LoadXml {
        /// Target document name (must already exist).
        doc: String,
        /// Document text.
        xml: String,
    },
    /// Fetch the session database's live activity view.
    Activity,
    /// Fetch the session database's slow-query log.
    SlowLog,
    /// Fetch a query trace from the database's trace ring.
    GetTrace {
        /// The trace to fetch; `0` means this session's most recent.
        trace_id: u64,
    },
    /// Execute a statement with per-operator timing and return the
    /// rendered `EXPLAIN ANALYZE` report. The statement really runs.
    ExplainAnalyze {
        /// Statement text.
        stmt: String,
    },
    /// Fork a registered database copy-on-write under a new name
    /// (sessionless admin request).
    Fork {
        /// The database (root or fork) to fork from.
        parent: String,
        /// The new fork's name (must be free at the governor).
        name: String,
    },
    /// Drop a fork by name (sessionless admin request).
    DropFork {
        /// The fork to drop.
        name: String,
    },
    /// Drop a database by name — a fork, or a root database without
    /// live forks (sessionless admin request).
    DropDatabase {
        /// The database to drop.
        name: String,
    },
    /// Open an `AS OF` time-travel session on `database`, pinned to the
    /// newest retained snapshot with commit timestamp `<= ts`. Answered
    /// with [`Response::SessionStarted`]; the session is read-only.
    AsOf {
        /// Client protocol revision ([`PROTOCOL_VERSION`]).
        version: u8,
        /// Name of the database registered at the governor.
        database: String,
        /// The time-travel target commit timestamp.
        ts: u64,
        /// User name (empty on version-1 frames and unauthenticated
        /// version-2 clients).
        user: String,
        /// Password (empty like `user`).
        password: String,
    },
    /// Abort the running (or queued) statement out-of-band. Answered in
    /// request order with [`Response::Cancelled`] once any open cursor
    /// has been dropped; the connection stays usable.
    Cancel,
}

/// One session's row in an [`Response::ActivityReply`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActivityRow {
    /// Stable per-database session id.
    pub session_id: u64,
    /// The statement currently executing (or streaming), if any.
    pub statement: Option<String>,
    /// How long the current statement has been running, in
    /// milliseconds (zero when idle).
    pub statement_age_ms: u64,
    /// Transaction mode (`none`, `read-only`, `update`).
    pub txn: String,
    /// Items streamed through the session's cursors so far.
    pub items_streamed: u64,
}

/// One entry of a [`Response::SlowLogReply`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowLogRow {
    /// The statement text.
    pub statement: String,
    /// Wall-clock pipeline total in nanoseconds.
    pub total_ns: u64,
    /// Id of the trace captured for this statement (`0` = none kept).
    pub trace_id: u64,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Session opened.
    SessionStarted,
    /// Session closed.
    SessionClosed,
    /// Transaction control acknowledged.
    TxnOk,
    /// Update applied to this many nodes.
    Updated(u64),
    /// Statement produced no result.
    Done,
    /// Query succeeded with this many items buffered for fetching.
    QueryOk(u64),
    /// One result item.
    Item(String),
    /// No more result items.
    ResultEnd,
    /// A batch of result items.
    ItemBatch {
        /// The items, in result order.
        items: Vec<String>,
        /// `true` when the result is exhausted — the client must not
        /// fetch again (no separate [`Response::ResultEnd`] follows).
        done: bool,
    },
    /// Liveness reply.
    Pong,
    /// Prometheus metrics text.
    Metrics(String),
    /// Server is draining; the connection will close.
    ShuttingDown,
    /// Document loaded with this many nodes stored.
    Loaded(u64),
    /// The live activity view of the session's database.
    ActivityReply {
        /// One row per live session, ordered by session id.
        sessions: Vec<ActivityRow>,
        /// Buffer pages currently pinned across the database.
        pinned_pages: i64,
    },
    /// The slow-query log, most recent first.
    SlowLogReply(Vec<SlowLogRow>),
    /// A query trace in Chrome trace-event JSON.
    Trace {
        /// The resolved trace id (useful after a `GetTrace(0)`).
        trace_id: u64,
        /// The trace, Chrome trace-event JSON.
        json: String,
    },
    /// A rendered `EXPLAIN ANALYZE` report.
    Explain(String),
    /// Fork created; carries the branch-point commit timestamp (usable
    /// as an `AS OF` target on the parent).
    ForkOk {
        /// The fork's branch-point commit timestamp.
        ts: u64,
    },
    /// Fork dropped.
    ForkDropped,
    /// Database dropped.
    DatabaseDropped,
    /// A [`Request::Cancel`] took effect: the statement (if any) was
    /// aborted and the session is ready for more work.
    Cancelled,
    /// Structured error: machine-readable `kind` plus human `message`.
    Error {
        /// Stable error class (`query`, `conflict`, `not_found`, ...).
        kind: String,
        /// Human-readable description.
        message: String,
    },
}

impl Request {
    /// This request's frame code.
    pub fn code(&self) -> u8 {
        match self {
            Request::StartSession { .. } => codes::START_SESSION,
            Request::CloseSession => codes::CLOSE_SESSION,
            Request::Begin { .. } => codes::BEGIN,
            Request::Commit => codes::COMMIT,
            Request::Rollback => codes::ROLLBACK,
            Request::Execute { .. } => codes::EXECUTE,
            Request::FetchNext => codes::FETCH_NEXT,
            Request::FetchBatch { .. } => codes::FETCH_BATCH,
            Request::Ping => codes::PING,
            Request::GetMetrics => codes::GET_METRICS,
            Request::Shutdown => codes::SHUTDOWN,
            Request::LoadXml { .. } => codes::LOAD_XML,
            Request::Activity => codes::ACTIVITY,
            Request::SlowLog => codes::SLOW_LOG,
            Request::GetTrace { .. } => codes::GET_TRACE,
            Request::ExplainAnalyze { .. } => codes::EXPLAIN_ANALYZE,
            Request::Fork { .. } => codes::FORK,
            Request::DropFork { .. } => codes::DROP_FORK,
            Request::DropDatabase { .. } => codes::DROP_DATABASE,
            Request::AsOf { .. } => codes::AS_OF,
            Request::Cancel => codes::CANCEL,
        }
    }

    /// Serializes the body (everything after the code byte).
    pub fn encode_body(&self) -> Vec<u8> {
        let mut b = Vec::new();
        match self {
            Request::StartSession {
                version,
                database,
                user,
                password,
            } => {
                b.push(*version);
                put_str(&mut b, database);
                // Credentials exist from version 2 on; a version-1 frame
                // must stay byte-identical to what version-1 peers emit.
                if *version >= 2 {
                    put_str(&mut b, user);
                    put_str(&mut b, password);
                }
            }
            Request::Begin { read_only } => b.push(u8::from(*read_only)),
            Request::Execute { stmt, trace } => {
                put_str(&mut b, stmt);
                // The flag is a trailing optional byte: omitted when off,
                // so untraced frames match the version-1 encoding.
                if *trace {
                    b.push(1);
                }
            }
            Request::FetchBatch { max } => b.extend_from_slice(&max.to_be_bytes()),
            Request::LoadXml { doc, xml } => {
                put_str(&mut b, doc);
                put_str(&mut b, xml);
            }
            Request::GetTrace { trace_id } => b.extend_from_slice(&trace_id.to_be_bytes()),
            Request::ExplainAnalyze { stmt } => put_str(&mut b, stmt),
            Request::Fork { parent, name } => {
                put_str(&mut b, parent);
                put_str(&mut b, name);
            }
            Request::DropFork { name } | Request::DropDatabase { name } => put_str(&mut b, name),
            Request::AsOf {
                version,
                database,
                ts,
                user,
                password,
            } => {
                b.push(*version);
                put_str(&mut b, database);
                b.extend_from_slice(&ts.to_be_bytes());
                if *version >= 2 {
                    put_str(&mut b, user);
                    put_str(&mut b, password);
                }
            }
            Request::CloseSession
            | Request::Commit
            | Request::Rollback
            | Request::FetchNext
            | Request::Ping
            | Request::GetMetrics
            | Request::Shutdown
            | Request::Activity
            | Request::SlowLog
            | Request::Cancel => {}
        }
        b
    }

    /// Parses a request from a frame's code and body.
    pub fn decode(code: u8, body: &[u8]) -> io::Result<Request> {
        let mut c = Cursor::new(body);
        let req = match code {
            codes::START_SESSION => {
                let version = c.take_u8()?;
                let database = c.take_str()?;
                // Version-1 bodies end here; version-2 carries creds.
                let (user, password) = if c.remaining() > 0 {
                    (c.take_str()?, c.take_str()?)
                } else {
                    (String::new(), String::new())
                };
                Request::StartSession {
                    version,
                    database,
                    user,
                    password,
                }
            }
            codes::CLOSE_SESSION => Request::CloseSession,
            codes::BEGIN => Request::Begin {
                read_only: c.take_u8()? != 0,
            },
            codes::COMMIT => Request::Commit,
            codes::ROLLBACK => Request::Rollback,
            codes::EXECUTE => {
                let stmt = c.take_str()?;
                let trace = if c.remaining() > 0 {
                    c.take_u8()? != 0
                } else {
                    false
                };
                Request::Execute { stmt, trace }
            }
            codes::FETCH_NEXT => Request::FetchNext,
            codes::FETCH_BATCH => Request::FetchBatch { max: c.take_u32()? },
            codes::PING => Request::Ping,
            codes::GET_METRICS => Request::GetMetrics,
            codes::SHUTDOWN => Request::Shutdown,
            codes::LOAD_XML => Request::LoadXml {
                doc: c.take_str()?,
                xml: c.take_str()?,
            },
            codes::ACTIVITY => Request::Activity,
            codes::SLOW_LOG => Request::SlowLog,
            codes::GET_TRACE => Request::GetTrace {
                trace_id: c.take_u64()?,
            },
            codes::EXPLAIN_ANALYZE => Request::ExplainAnalyze {
                stmt: c.take_str()?,
            },
            codes::FORK => Request::Fork {
                parent: c.take_str()?,
                name: c.take_str()?,
            },
            codes::DROP_FORK => Request::DropFork {
                name: c.take_str()?,
            },
            codes::DROP_DATABASE => Request::DropDatabase {
                name: c.take_str()?,
            },
            codes::AS_OF => {
                let version = c.take_u8()?;
                let database = c.take_str()?;
                let ts = c.take_u64()?;
                let (user, password) = if c.remaining() > 0 {
                    (c.take_str()?, c.take_str()?)
                } else {
                    (String::new(), String::new())
                };
                Request::AsOf {
                    version,
                    database,
                    ts,
                    user,
                    password,
                }
            }
            codes::CANCEL => Request::Cancel,
            other => return Err(bad(format!("unknown request code {other:#04x}"))),
        };
        c.finish()?;
        Ok(req)
    }

    /// Writes the request as one frame.
    ///
    /// Returns the number of bytes put on the wire.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<usize> {
        write_frame(w, self.code(), &self.encode_body())
    }

    /// Reads one request frame (frames larger than `max_frame` are
    /// rejected without being read).
    pub fn read_from(r: &mut impl Read, max_frame: usize) -> io::Result<Request> {
        let (code, body) = read_frame(r, max_frame)?;
        Request::decode(code, &body)
    }
}

impl Response {
    /// This response's frame code.
    pub fn code(&self) -> u8 {
        match self {
            Response::SessionStarted => codes::SESSION_STARTED,
            Response::SessionClosed => codes::SESSION_CLOSED,
            Response::TxnOk => codes::TXN_OK,
            Response::Updated(_) => codes::UPDATED,
            Response::Done => codes::DONE,
            Response::QueryOk(_) => codes::QUERY_OK,
            Response::Item(_) => codes::ITEM,
            Response::ResultEnd => codes::RESULT_END,
            Response::ItemBatch { .. } => codes::ITEM_BATCH,
            Response::Pong => codes::PONG,
            Response::Metrics(_) => codes::METRICS,
            Response::ShuttingDown => codes::SHUTTING_DOWN,
            Response::Loaded(_) => codes::LOADED,
            Response::ActivityReply { .. } => codes::ACTIVITY_REPLY,
            Response::SlowLogReply(_) => codes::SLOW_LOG_REPLY,
            Response::Trace { .. } => codes::TRACE,
            Response::Explain(_) => codes::EXPLAIN,
            Response::ForkOk { .. } => codes::FORK_OK,
            Response::ForkDropped => codes::FORK_DROPPED,
            Response::DatabaseDropped => codes::DATABASE_DROPPED,
            Response::Cancelled => codes::CANCELLED,
            Response::Error { .. } => codes::ERROR,
        }
    }

    /// Serializes the body (everything after the code byte).
    pub fn encode_body(&self) -> Vec<u8> {
        let mut b = Vec::new();
        match self {
            Response::Updated(n) | Response::QueryOk(n) | Response::Loaded(n) => {
                b.extend_from_slice(&n.to_be_bytes());
            }
            Response::Item(s) | Response::Metrics(s) | Response::Explain(s) => put_str(&mut b, s),
            Response::ActivityReply {
                sessions,
                pinned_pages,
            } => {
                b.extend_from_slice(&pinned_pages.to_be_bytes());
                b.extend_from_slice(&(sessions.len() as u32).to_be_bytes());
                for row in sessions {
                    b.extend_from_slice(&row.session_id.to_be_bytes());
                    match &row.statement {
                        Some(stmt) => {
                            b.push(1);
                            put_str(&mut b, stmt);
                        }
                        None => b.push(0),
                    }
                    b.extend_from_slice(&row.statement_age_ms.to_be_bytes());
                    put_str(&mut b, &row.txn);
                    b.extend_from_slice(&row.items_streamed.to_be_bytes());
                }
            }
            Response::SlowLogReply(entries) => {
                b.extend_from_slice(&(entries.len() as u32).to_be_bytes());
                for e in entries {
                    put_str(&mut b, &e.statement);
                    b.extend_from_slice(&e.total_ns.to_be_bytes());
                    b.extend_from_slice(&e.trace_id.to_be_bytes());
                }
            }
            Response::Trace { trace_id, json } => {
                b.extend_from_slice(&trace_id.to_be_bytes());
                put_str(&mut b, json);
            }
            Response::ItemBatch { items, done } => {
                b.extend_from_slice(&(items.len() as u32).to_be_bytes());
                for item in items {
                    put_str(&mut b, item);
                }
                b.push(u8::from(*done));
            }
            Response::ForkOk { ts } => b.extend_from_slice(&ts.to_be_bytes()),
            Response::Error { kind, message } => {
                put_str(&mut b, kind);
                put_str(&mut b, message);
            }
            Response::SessionStarted
            | Response::SessionClosed
            | Response::TxnOk
            | Response::Done
            | Response::ResultEnd
            | Response::Pong
            | Response::ForkDropped
            | Response::DatabaseDropped
            | Response::Cancelled
            | Response::ShuttingDown => {}
        }
        b
    }

    /// Parses a response from a frame's code and body.
    pub fn decode(code: u8, body: &[u8]) -> io::Result<Response> {
        let mut c = Cursor::new(body);
        let resp = match code {
            codes::SESSION_STARTED => Response::SessionStarted,
            codes::SESSION_CLOSED => Response::SessionClosed,
            codes::TXN_OK => Response::TxnOk,
            codes::UPDATED => Response::Updated(c.take_u64()?),
            codes::DONE => Response::Done,
            codes::QUERY_OK => Response::QueryOk(c.take_u64()?),
            codes::ITEM => Response::Item(c.take_str()?),
            codes::RESULT_END => Response::ResultEnd,
            codes::ITEM_BATCH => {
                let count = c.take_u32()? as usize;
                // Each item costs at least 4 length bytes; an absurd
                // count in a small frame fails here, not on allocation.
                if count > body.len() / 4 {
                    return Err(bad("item batch count exceeds frame size"));
                }
                let mut items = Vec::with_capacity(count);
                for _ in 0..count {
                    items.push(c.take_str()?);
                }
                Response::ItemBatch {
                    items,
                    done: c.take_u8()? != 0,
                }
            }
            codes::PONG => Response::Pong,
            codes::METRICS => Response::Metrics(c.take_str()?),
            codes::SHUTTING_DOWN => Response::ShuttingDown,
            codes::LOADED => Response::Loaded(c.take_u64()?),
            codes::ACTIVITY_REPLY => {
                let pinned_pages = i64::from_be_bytes(c.take_u64()?.to_be_bytes());
                let count = c.take_u32()? as usize;
                // Each row costs at least id + flag + age + txn-len +
                // items = 29 bytes; bogus counts fail before allocation.
                if count > body.len() / 29 {
                    return Err(bad("activity row count exceeds frame size"));
                }
                let mut sessions = Vec::with_capacity(count);
                for _ in 0..count {
                    let session_id = c.take_u64()?;
                    let statement = if c.take_u8()? != 0 {
                        Some(c.take_str()?)
                    } else {
                        None
                    };
                    sessions.push(ActivityRow {
                        session_id,
                        statement,
                        statement_age_ms: c.take_u64()?,
                        txn: c.take_str()?,
                        items_streamed: c.take_u64()?,
                    });
                }
                Response::ActivityReply {
                    sessions,
                    pinned_pages,
                }
            }
            codes::SLOW_LOG_REPLY => {
                let count = c.take_u32()? as usize;
                // Each entry costs at least 4 + 8 + 8 = 20 bytes.
                if count > body.len() / 20 {
                    return Err(bad("slow-log entry count exceeds frame size"));
                }
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    entries.push(SlowLogRow {
                        statement: c.take_str()?,
                        total_ns: c.take_u64()?,
                        trace_id: c.take_u64()?,
                    });
                }
                Response::SlowLogReply(entries)
            }
            codes::TRACE => Response::Trace {
                trace_id: c.take_u64()?,
                json: c.take_str()?,
            },
            codes::EXPLAIN => Response::Explain(c.take_str()?),
            codes::FORK_OK => Response::ForkOk { ts: c.take_u64()? },
            codes::FORK_DROPPED => Response::ForkDropped,
            codes::DATABASE_DROPPED => Response::DatabaseDropped,
            codes::CANCELLED => Response::Cancelled,
            codes::ERROR => Response::Error {
                kind: c.take_str()?,
                message: c.take_str()?,
            },
            other => return Err(bad(format!("unknown response code {other:#04x}"))),
        };
        c.finish()?;
        Ok(resp)
    }

    /// Writes the response as one frame.
    ///
    /// Returns the number of bytes put on the wire.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<usize> {
        write_frame(w, self.code(), &self.encode_body())
    }

    /// Reads one response frame (frames larger than `max_frame` are
    /// rejected without being read).
    pub fn read_from(r: &mut impl Read, max_frame: usize) -> io::Result<Response> {
        let (code, body) = read_frame(r, max_frame)?;
        Response::decode(code, &body)
    }
}

/// Writes one frame: `u32` BE length, code byte, body. Returns the total
/// bytes written (`body.len() + 5`).
pub fn write_frame(w: &mut impl Write, code: u8, body: &[u8]) -> io::Result<usize> {
    let len = u32::try_from(body.len() + 1).map_err(|_| bad("frame too large to encode"))?;
    let mut frame = Vec::with_capacity(body.len() + 5);
    frame.extend_from_slice(&len.to_be_bytes());
    frame.push(code);
    frame.extend_from_slice(body);
    w.write_all(&frame)?;
    Ok(frame.len())
}

/// Reads one frame, returning `(code, body)`. Frames whose declared
/// length exceeds `max_frame` are rejected with `InvalidData` before any
/// body bytes are read.
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> io::Result<(u8, Vec<u8>)> {
    let mut hdr = [0u8; 5];
    r.read_exact(&mut hdr)?;
    let len = u32::from_be_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]) as usize;
    if len == 0 {
        return Err(bad("zero-length frame"));
    }
    if len > max_frame {
        return Err(bad(format!(
            "frame of {len} bytes exceeds the {max_frame}-byte limit"
        )));
    }
    let mut body = vec![0u8; len - 1];
    r.read_exact(&mut body)?;
    Ok((hdr[4], body))
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_be_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// A bounds-checked reader over a frame body.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| bad("truncated frame body"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn take_u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn take_u32(&mut self) -> io::Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn take_u64(&mut self) -> io::Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn take_str(&mut self) -> io::Result<String> {
        let len = self.take_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad("invalid UTF-8 in string field"))
    }

    /// Bytes left unconsumed in the body.
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Asserts the body was consumed exactly.
    fn finish(self) -> io::Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(bad("trailing bytes after frame body"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let mut wire = Vec::new();
        let n = req.write_to(&mut wire).unwrap();
        assert_eq!(n, wire.len());
        let back = Request::read_from(&mut wire.as_slice(), DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(back, req);
    }

    fn roundtrip_response(resp: Response) {
        let mut wire = Vec::new();
        let n = resp.write_to(&mut wire).unwrap();
        assert_eq!(n, wire.len());
        let back = Response::read_from(&mut wire.as_slice(), DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::StartSession {
            version: PROTOCOL_VERSION,
            database: "db".into(),
            user: "admin".into(),
            password: "s3cret".into(),
        });
        roundtrip_request(Request::StartSession {
            version: PROTOCOL_VERSION,
            database: "db".into(),
            user: String::new(),
            password: String::new(),
        });
        roundtrip_request(Request::StartSession {
            version: 1,
            database: "db".into(),
            user: String::new(),
            password: String::new(),
        });
        roundtrip_request(Request::CloseSession);
        roundtrip_request(Request::Begin { read_only: true });
        roundtrip_request(Request::Begin { read_only: false });
        roundtrip_request(Request::Commit);
        roundtrip_request(Request::Rollback);
        roundtrip_request(Request::Execute {
            stmt: "doc('d')//title/text()".into(),
            trace: false,
        });
        roundtrip_request(Request::Execute {
            stmt: "doc('d')//title".into(),
            trace: true,
        });
        roundtrip_request(Request::FetchNext);
        roundtrip_request(Request::FetchBatch { max: 128 });
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::GetMetrics);
        roundtrip_request(Request::Shutdown);
        roundtrip_request(Request::LoadXml {
            doc: "d".into(),
            xml: "<r><x>héllo</x></r>".into(),
        });
        roundtrip_request(Request::Activity);
        roundtrip_request(Request::SlowLog);
        roundtrip_request(Request::GetTrace { trace_id: 0 });
        roundtrip_request(Request::GetTrace { trace_id: 42 });
        roundtrip_request(Request::ExplainAnalyze {
            stmt: "doc('d')//title".into(),
        });
        roundtrip_request(Request::Fork {
            parent: "db".into(),
            name: "db-staging".into(),
        });
        roundtrip_request(Request::DropFork {
            name: "db-staging".into(),
        });
        roundtrip_request(Request::DropDatabase { name: "db".into() });
        roundtrip_request(Request::AsOf {
            version: PROTOCOL_VERSION,
            database: "db".into(),
            ts: 41,
            user: "admin".into(),
            password: "s3cret".into(),
        });
        roundtrip_request(Request::AsOf {
            version: 1,
            database: "db".into(),
            ts: 41,
            user: String::new(),
            password: String::new(),
        });
        roundtrip_request(Request::Cancel);
    }

    #[test]
    fn version_1_session_open_has_no_credential_bytes() {
        // A version-1 peer encodes `version, database` and nothing else;
        // both directions must keep that byte layout.
        let body = Request::StartSession {
            version: 1,
            database: "db".into(),
            user: String::new(),
            password: String::new(),
        }
        .encode_body();
        let mut expected = vec![1u8];
        put_str(&mut expected, "db");
        assert_eq!(body, expected);
        // And a bare version-1 body decodes with empty credentials.
        let req = Request::decode(codes::START_SESSION, &expected).unwrap();
        assert_eq!(
            req,
            Request::StartSession {
                version: 1,
                database: "db".into(),
                user: String::new(),
                password: String::new(),
            }
        );
    }

    #[test]
    fn version_2_session_open_carries_credentials() {
        let body = Request::StartSession {
            version: 2,
            database: "db".into(),
            user: "u".into(),
            password: "p".into(),
        }
        .encode_body();
        let mut expected = vec![2u8];
        put_str(&mut expected, "db");
        put_str(&mut expected, "u");
        put_str(&mut expected, "p");
        assert_eq!(body, expected);
    }

    #[test]
    fn version_1_as_of_body_decodes_with_empty_credentials() {
        let mut body = vec![1u8];
        put_str(&mut body, "db");
        body.extend_from_slice(&99u64.to_be_bytes());
        let req = Request::decode(codes::AS_OF, &body).unwrap();
        assert_eq!(
            req,
            Request::AsOf {
                version: 1,
                database: "db".into(),
                ts: 99,
                user: String::new(),
                password: String::new(),
            }
        );
    }

    #[test]
    fn untraced_execute_matches_the_version_1_encoding() {
        // The trace flag must be absent when off, so old peers that
        // encode only the statement string stay wire-compatible.
        let body = Request::Execute {
            stmt: "1 to 3".into(),
            trace: false,
        }
        .encode_body();
        let mut expected = Vec::new();
        put_str(&mut expected, "1 to 3");
        assert_eq!(body, expected);
        // And a bare-string frame decodes with the flag off.
        let req = Request::decode(codes::EXECUTE, &expected).unwrap();
        assert_eq!(
            req,
            Request::Execute {
                stmt: "1 to 3".into(),
                trace: false
            }
        );
    }

    #[test]
    fn explicit_zero_trace_flag_decodes_off() {
        let mut body = Vec::new();
        put_str(&mut body, "1 to 3");
        body.push(0);
        let req = Request::decode(codes::EXECUTE, &body).unwrap();
        assert_eq!(
            req,
            Request::Execute {
                stmt: "1 to 3".into(),
                trace: false
            }
        );
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_response(Response::SessionStarted);
        roundtrip_response(Response::SessionClosed);
        roundtrip_response(Response::TxnOk);
        roundtrip_response(Response::Updated(42));
        roundtrip_response(Response::Done);
        roundtrip_response(Response::QueryOk(u64::MAX));
        roundtrip_response(Response::Item("<x>1</x>".into()));
        roundtrip_response(Response::ResultEnd);
        roundtrip_response(Response::ItemBatch {
            items: vec!["<x>1</x>".into(), "two".into(), String::new()],
            done: true,
        });
        roundtrip_response(Response::ItemBatch {
            items: Vec::new(),
            done: false,
        });
        roundtrip_response(Response::Pong);
        roundtrip_response(Response::Metrics("# HELP x\nx 1\n".into()));
        roundtrip_response(Response::ShuttingDown);
        roundtrip_response(Response::Loaded(7));
        roundtrip_response(Response::ActivityReply {
            sessions: vec![
                ActivityRow {
                    session_id: 1,
                    statement: Some("doc('d')//x".into()),
                    statement_age_ms: 1500,
                    txn: "read-only".into(),
                    items_streamed: 12,
                },
                ActivityRow {
                    session_id: 2,
                    statement: None,
                    statement_age_ms: 0,
                    txn: "none".into(),
                    items_streamed: 0,
                },
            ],
            pinned_pages: -3,
        });
        roundtrip_response(Response::ActivityReply {
            sessions: Vec::new(),
            pinned_pages: 0,
        });
        roundtrip_response(Response::SlowLogReply(vec![SlowLogRow {
            statement: "doc('d')//slow".into(),
            total_ns: 12_345_678,
            trace_id: 9,
        }]));
        roundtrip_response(Response::SlowLogReply(Vec::new()));
        roundtrip_response(Response::Trace {
            trace_id: 17,
            json: "{\"traceEvents\":[]}".into(),
        });
        roundtrip_response(Response::Explain("phase execute 12 ns".into()));
        roundtrip_response(Response::ForkOk { ts: 7 });
        roundtrip_response(Response::ForkDropped);
        roundtrip_response(Response::DatabaseDropped);
        roundtrip_response(Response::Cancelled);
        roundtrip_response(Response::Error {
            kind: "query".into(),
            message: "parse error at offset 3".into(),
        });
    }

    #[test]
    fn absurd_activity_count_is_rejected_without_allocation() {
        // ACTIVITY_REPLY claiming u32::MAX rows in a 12-byte body.
        let mut body = Vec::new();
        body.extend_from_slice(&0i64.to_be_bytes());
        body.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut wire = Vec::new();
        write_frame(&mut wire, codes::ACTIVITY_REPLY, &body).unwrap();
        let err = Response::read_from(&mut wire.as_slice(), DEFAULT_MAX_FRAME).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn absurd_slow_log_count_is_rejected_without_allocation() {
        let mut wire = Vec::new();
        write_frame(&mut wire, codes::SLOW_LOG_REPLY, &u32::MAX.to_be_bytes()).unwrap();
        let err = Response::read_from(&mut wire.as_slice(), DEFAULT_MAX_FRAME).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversize_frame_is_rejected_before_body_read() {
        let req = Request::Execute {
            stmt: "x".repeat(100),
            trace: false,
        };
        let mut wire = Vec::new();
        req.write_to(&mut wire).unwrap();
        let err = Request::read_from(&mut wire.as_slice(), 16).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_body_is_invalid_data() {
        // EXECUTE frame claiming an 8-byte string but carrying 2 bytes.
        let mut wire = Vec::new();
        write_frame(&mut wire, codes::EXECUTE, &[0, 0, 0, 8, b'a', b'b']).unwrap();
        let err = Request::read_from(&mut wire.as_slice(), DEFAULT_MAX_FRAME).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn trailing_garbage_is_invalid_data() {
        let mut body = Request::Ping.encode_body();
        body.push(0xFF);
        let mut wire = Vec::new();
        write_frame(&mut wire, codes::PING, &body).unwrap();
        let err = Request::read_from(&mut wire.as_slice(), DEFAULT_MAX_FRAME).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn absurd_batch_count_is_rejected_without_allocation() {
        // ITEM_BATCH frame claiming u32::MAX items in a 5-byte body.
        let mut wire = Vec::new();
        write_frame(&mut wire, codes::ITEM_BATCH, &[0xFF, 0xFF, 0xFF, 0xFF, 1]).unwrap();
        let err = Response::read_from(&mut wire.as_slice(), DEFAULT_MAX_FRAME).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn unknown_code_is_invalid_data() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 0x7E, &[]).unwrap();
        let err = Request::read_from(&mut wire.as_slice(), DEFAULT_MAX_FRAME).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
