//! `SednaClient`: a blocking Rust client for the Sedna wire protocol.
//!
//! One client owns one TCP connection carrying one wire session. Results
//! are pulled item-at-a-time with [`SednaClient::fetch_next`] (the
//! protocol's `FetchNext`), or drained in one go with
//! [`SednaClient::query`].
//!
//! ```no_run
//! use sedna_net::SednaClient;
//!
//! let mut c = SednaClient::connect("127.0.0.1:5050", "mydb").unwrap();
//! c.execute("doc('library')//title/text()").unwrap();
//! while let Some(item) = c.fetch_next().unwrap() {
//!     println!("{item}");
//! }
//! c.close().unwrap();
//! ```

use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{
    ActivityRow, Request, Response, SlowLogRow, DEFAULT_MAX_FRAME, PROTOCOL_VERSION,
};

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, framing).
    Io(io::Error),
    /// The server answered with a structured error envelope.
    Server {
        /// Stable error class (`query`, `conflict`, `overloaded`, ...).
        kind: String,
        /// Human-readable description.
        message: String,
    },
    /// The server is draining and refused further work.
    ServerShutdown,
    /// The server sent a response that does not fit the request.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "I/O error: {e}"),
            ClientError::Server { kind, message } => write!(f, "server error ({kind}): {message}"),
            ClientError::ServerShutdown => write!(f, "server is shutting down"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Outcome of [`SednaClient::execute`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecReply {
    /// The statement was a query; pull items with
    /// [`SednaClient::fetch_next`] or [`SednaClient::fetch_batch`]. The
    /// count is the number of items available, or [`u64::MAX`] when the
    /// result is a live streaming cursor whose cardinality is unknown
    /// until drained.
    Query(u64),
    /// The statement was an update touching this many nodes.
    Updated(u64),
    /// The statement completed without a result (DDL).
    Done,
}

/// A connected wire session.
#[derive(Debug)]
pub struct SednaClient {
    stream: TcpStream,
    max_frame: usize,
}

impl SednaClient {
    /// Connects to `addr` and starts a session on `database` with empty
    /// credentials (sufficient unless the server was started with
    /// authentication; then use [`SednaClient::connect_with_auth`]).
    pub fn connect(addr: impl ToSocketAddrs, database: &str) -> Result<SednaClient, ClientError> {
        SednaClient::connect_with_auth(addr, database, "", "")
    }

    /// Connects to `addr` and starts a session on `database`,
    /// authenticating with `user`/`password` (protocol v2 carries the
    /// credentials in `StartSession`).
    pub fn connect_with_auth(
        addr: impl ToSocketAddrs,
        database: &str,
        user: &str,
        password: &str,
    ) -> Result<SednaClient, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let mut client = SednaClient {
            stream,
            max_frame: DEFAULT_MAX_FRAME,
        };
        client.send(&Request::StartSession {
            version: PROTOCOL_VERSION,
            database: database.to_string(),
            user: user.to_string(),
            password: password.to_string(),
        })?;
        match client.recv()? {
            Response::SessionStarted => Ok(client),
            other => Err(unexpected("SessionStarted", &other)),
        }
    }

    /// Connects to `addr` and opens a read-only time-travel session on
    /// `database`, pinned to the newest retained snapshot with commit
    /// timestamp `<= ts` (`AS OF` reads). Transaction control and
    /// updates are rejected on the session; queries see the historical
    /// state while concurrent writers proceed non-blocking.
    pub fn connect_as_of(
        addr: impl ToSocketAddrs,
        database: &str,
        ts: u64,
    ) -> Result<SednaClient, ClientError> {
        SednaClient::connect_as_of_with_auth(addr, database, ts, "", "")
    }

    /// [`SednaClient::connect_as_of`] with credentials, for servers
    /// started with authentication.
    pub fn connect_as_of_with_auth(
        addr: impl ToSocketAddrs,
        database: &str,
        ts: u64,
        user: &str,
        password: &str,
    ) -> Result<SednaClient, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let mut client = SednaClient {
            stream,
            max_frame: DEFAULT_MAX_FRAME,
        };
        client.send(&Request::AsOf {
            version: PROTOCOL_VERSION,
            database: database.to_string(),
            ts,
            user: user.to_string(),
            password: password.to_string(),
        })?;
        match client.recv()? {
            Response::SessionStarted => Ok(client),
            other => Err(unexpected("SessionStarted", &other)),
        }
    }

    /// Connects without starting a wire session. The admin requests —
    /// [`SednaClient::fork`], [`SednaClient::drop_fork`],
    /// [`SednaClient::drop_database`], plus `ping`, `metrics`, and
    /// `shutdown_server` — are sessionless, so they work on such a
    /// connection; anything else is refused by the server.
    pub fn connect_admin(addr: impl ToSocketAddrs) -> Result<SednaClient, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(SednaClient {
            stream,
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    /// Forks the database `parent` into a new copy-on-write database
    /// named `name` (instant; shares all pages until either side
    /// diverges). Returns the branch-point commit timestamp.
    pub fn fork(&mut self, parent: &str, name: &str) -> Result<u64, ClientError> {
        self.send(&Request::Fork {
            parent: parent.to_string(),
            name: name.to_string(),
        })?;
        match self.recv()? {
            Response::ForkOk { ts } => Ok(ts),
            other => Err(unexpected("ForkOk", &other)),
        }
    }

    /// Drops the fork `name` (refused for root databases, forks with
    /// child forks, and forks with active sessions).
    pub fn drop_fork(&mut self, name: &str) -> Result<(), ClientError> {
        self.send(&Request::DropFork {
            name: name.to_string(),
        })?;
        match self.recv()? {
            Response::ForkDropped => Ok(()),
            other => Err(unexpected("ForkDropped", &other)),
        }
    }

    /// Drops the database `name`: a fork is removed from its family; a
    /// root database is closed (final checkpoint) and unregistered —
    /// refused while it still has live forks.
    pub fn drop_database(&mut self, name: &str) -> Result<(), ClientError> {
        self.send(&Request::DropDatabase {
            name: name.to_string(),
        })?;
        match self.recv()? {
            Response::DatabaseDropped => Ok(()),
            other => Err(unexpected("DatabaseDropped", &other)),
        }
    }

    /// Begins an update transaction.
    pub fn begin(&mut self) -> Result<(), ClientError> {
        self.txn_op(Request::Begin { read_only: false })
    }

    /// Begins a read-only (snapshot) transaction.
    pub fn begin_read_only(&mut self) -> Result<(), ClientError> {
        self.txn_op(Request::Begin { read_only: true })
    }

    /// Commits the open transaction.
    pub fn commit(&mut self) -> Result<(), ClientError> {
        self.txn_op(Request::Commit)
    }

    /// Rolls back the open transaction.
    pub fn rollback(&mut self) -> Result<(), ClientError> {
        self.txn_op(Request::Rollback)
    }

    fn txn_op(&mut self, req: Request) -> Result<(), ClientError> {
        self.send(&req)?;
        match self.recv()? {
            Response::TxnOk => Ok(()),
            other => Err(unexpected("TxnOk", &other)),
        }
    }

    /// Executes one statement (query, update, or DDL).
    pub fn execute(&mut self, stmt: &str) -> Result<ExecReply, ClientError> {
        self.execute_opts(stmt, false)
    }

    /// Executes one statement with the per-request trace flag set: the
    /// server captures and publishes a trace of this statement
    /// regardless of its sampling policy. Retrieve it afterwards with
    /// [`SednaClient::get_trace`]`(0)` — for a streamed query, after
    /// draining the result (the trace is published when the cursor
    /// finishes).
    pub fn execute_traced(&mut self, stmt: &str) -> Result<ExecReply, ClientError> {
        self.execute_opts(stmt, true)
    }

    fn execute_opts(&mut self, stmt: &str, trace: bool) -> Result<ExecReply, ClientError> {
        self.send(&Request::Execute {
            stmt: stmt.to_string(),
            trace,
        })?;
        match self.recv()? {
            Response::QueryOk(n) => Ok(ExecReply::Query(n)),
            Response::Updated(n) => Ok(ExecReply::Updated(n)),
            Response::Done => Ok(ExecReply::Done),
            other => Err(unexpected("QueryOk/Updated/Done", &other)),
        }
    }

    /// Executes the statement with per-operator timing and returns the
    /// rendered `EXPLAIN ANALYZE` report. The statement really runs —
    /// updates apply.
    pub fn explain_analyze(&mut self, stmt: &str) -> Result<String, ClientError> {
        self.send(&Request::ExplainAnalyze {
            stmt: stmt.to_string(),
        })?;
        match self.recv()? {
            Response::Explain(report) => Ok(report),
            other => Err(unexpected("Explain", &other)),
        }
    }

    /// Fetches the live session-activity view of the session's
    /// database: one row per session plus the database-wide pinned-page
    /// count.
    pub fn activity(&mut self) -> Result<(Vec<ActivityRow>, i64), ClientError> {
        self.send(&Request::Activity)?;
        match self.recv()? {
            Response::ActivityReply {
                sessions,
                pinned_pages,
            } => Ok((sessions, pinned_pages)),
            other => Err(unexpected("ActivityReply", &other)),
        }
    }

    /// Fetches the database's slow-query log, most recent first.
    pub fn slow_log(&mut self) -> Result<Vec<SlowLogRow>, ClientError> {
        self.send(&Request::SlowLog)?;
        match self.recv()? {
            Response::SlowLogReply(entries) => Ok(entries),
            other => Err(unexpected("SlowLogReply", &other)),
        }
    }

    /// Fetches a query trace as Chrome trace-event JSON, returning the
    /// resolved `(trace_id, json)`. Pass `0` for this session's most
    /// recent trace.
    pub fn get_trace(&mut self, trace_id: u64) -> Result<(u64, String), ClientError> {
        self.send(&Request::GetTrace { trace_id })?;
        match self.recv()? {
            Response::Trace { trace_id, json } => Ok((trace_id, json)),
            other => Err(unexpected("Trace", &other)),
        }
    }

    /// Pulls the next result item of the last query, or `None` when the
    /// result is exhausted.
    pub fn fetch_next(&mut self) -> Result<Option<String>, ClientError> {
        self.send(&Request::FetchNext)?;
        match self.recv()? {
            Response::Item(s) => Ok(Some(s)),
            Response::ResultEnd => Ok(None),
            other => Err(unexpected("Item/ResultEnd", &other)),
        }
    }

    /// Pulls up to `max` result items in one round trip. Returns the
    /// batch and `true` once the result is exhausted (after which no
    /// further fetch is needed — a final empty batch is also `done`).
    pub fn fetch_batch(&mut self, max: u32) -> Result<(Vec<String>, bool), ClientError> {
        self.send(&Request::FetchBatch { max })?;
        match self.recv()? {
            Response::ItemBatch { items, done } => Ok((items, done)),
            other => Err(unexpected("ItemBatch", &other)),
        }
    }

    /// Drains the remaining result items.
    pub fn fetch_all(&mut self) -> Result<Vec<String>, ClientError> {
        let mut items = Vec::new();
        loop {
            let (batch, done) = self.fetch_batch(64)?;
            items.extend(batch);
            if done {
                return Ok(items);
            }
        }
    }

    /// Executes a query statement and drains its full result.
    pub fn query(&mut self, stmt: &str) -> Result<Vec<String>, ClientError> {
        match self.execute(stmt)? {
            ExecReply::Query(_) => self.fetch_all(),
            other => Err(ClientError::Protocol(format!(
                "statement was not a query (got {other:?})"
            ))),
        }
    }

    /// Bulk-loads an XML document, returning the node count stored.
    pub fn load_xml(&mut self, doc: &str, xml: &str) -> Result<u64, ClientError> {
        self.send(&Request::LoadXml {
            doc: doc.to_string(),
            xml: xml.to_string(),
        })?;
        match self.recv()? {
            Response::Loaded(n) => Ok(n),
            other => Err(unexpected("Loaded", &other)),
        }
    }

    /// Requests cancellation of the statement currently executing on
    /// this connection (typically one whose result is being streamed).
    /// Fire-and-forget: the server raises the cancel flag the moment the
    /// frame is parsed — ahead of everything queued — but acknowledges
    /// with `Cancelled` strictly *in order*, after the responses to
    /// every request sent before the cancel. Interleaved pulls observe a
    /// `cancelled` error; use [`SednaClient::recv_response`] to consume
    /// the pipelined replies.
    pub fn cancel(&mut self) -> Result<(), ClientError> {
        self.send(&Request::Cancel)
    }

    /// Sends a request without waiting for its response, for pipelining:
    /// several requests may be in flight on the connection at once, and
    /// the server answers each in order. Pair with
    /// [`SednaClient::recv_response`].
    pub fn send_request(&mut self, req: &Request) -> Result<(), ClientError> {
        self.send(req)
    }

    /// Receives the next raw response in order, without converting error
    /// envelopes or drain notices into `Err` — a pipelined batch can
    /// interleave successes and errors, and the caller matching them up
    /// wants both as values.
    pub fn recv_response(&mut self) -> Result<Response, ClientError> {
        Ok(Response::read_from(&mut self.stream, self.max_frame)?)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.send(&Request::Ping)?;
        match self.recv()? {
            Response::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Fetches the server's system-wide Prometheus metrics text.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        self.send(&Request::GetMetrics)?;
        match self.recv()? {
            Response::Metrics(text) => Ok(text),
            other => Err(unexpected("Metrics", &other)),
        }
    }

    /// Closes the session gracefully; the server closes the connection.
    pub fn close(mut self) -> Result<(), ClientError> {
        self.send(&Request::CloseSession)?;
        match self.recv()? {
            Response::SessionClosed => Ok(()),
            other => Err(unexpected("SessionClosed", &other)),
        }
    }

    /// Asks the server to drain and shut down, consuming this client.
    pub fn shutdown_server(mut self) -> Result<(), ClientError> {
        self.send(&Request::Shutdown)?;
        // Read raw: here ShuttingDown is the acknowledgement, not a
        // refusal, so bypass recv()'s conversion to Err.
        match Response::read_from(&mut self.stream, self.max_frame)? {
            Response::ShuttingDown => Ok(()),
            Response::Error { kind, message } => Err(ClientError::Server { kind, message }),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }

    fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        req.write_to(&mut self.stream)?;
        Ok(())
    }

    /// Receives one response, converting error envelopes and drain
    /// notices into `Err`.
    fn recv(&mut self) -> Result<Response, ClientError> {
        match Response::read_from(&mut self.stream, self.max_frame)? {
            Response::Error { kind, message } => Err(ClientError::Server { kind, message }),
            Response::ShuttingDown => Err(ClientError::ServerShutdown),
            resp => Ok(resp),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    ClientError::Protocol(format!("expected {wanted}, got {got:?}"))
}
