//! Network-layer metrics, registered into the governor-level registry so
//! they surface through `Governor::render_prometheus` next to every
//! database's metrics.

use sedna_obs::{Counter, Gauge, Histogram, Registry};

/// Handles for every `sedna_net_*` metric. Cloning shares the underlying
/// atomics, so the server hands clones to its acceptor and workers.
#[derive(Clone, Default)]
pub struct NetMetrics {
    /// TCP connections accepted by the listener.
    pub connections_opened: Counter,
    /// Connections currently being served.
    pub connections_active: Gauge,
    /// Connections turned away by admission control (worker queue full or
    /// the database's session limit reached).
    pub connections_rejected: Counter,
    /// Wire sessions opened (successful `StartSession`).
    pub sessions_opened: Counter,
    /// Wire sessions closed, gracefully or by connection teardown.
    pub sessions_closed: Counter,
    /// Wire sessions currently open.
    pub sessions_active: Gauge,
    /// `StartSession` requests received.
    pub msg_start_session: Counter,
    /// `CloseSession` requests received.
    pub msg_close_session: Counter,
    /// `Begin` requests received.
    pub msg_begin: Counter,
    /// `Commit` requests received.
    pub msg_commit: Counter,
    /// `Rollback` requests received.
    pub msg_rollback: Counter,
    /// `Execute` requests received.
    pub msg_execute: Counter,
    /// `FetchNext` requests received.
    pub msg_fetch_next: Counter,
    /// `FetchBatch` requests received.
    pub msg_fetch_batch: Counter,
    /// `LoadXml` requests received.
    pub msg_load_xml: Counter,
    /// `Ping` requests received.
    pub msg_ping: Counter,
    /// `GetMetrics` requests received.
    pub msg_get_metrics: Counter,
    /// `Shutdown` requests received.
    pub msg_shutdown: Counter,
    /// `Activity` requests received.
    pub msg_activity: Counter,
    /// `SlowLog` requests received.
    pub msg_slow_log: Counter,
    /// `GetTrace` requests received.
    pub msg_get_trace: Counter,
    /// `ExplainAnalyze` requests received.
    pub msg_explain_analyze: Counter,
    /// `Fork` requests received.
    pub msg_fork: Counter,
    /// `DropFork` requests received.
    pub msg_drop_fork: Counter,
    /// `DropDatabase` requests received.
    pub msg_drop_database: Counter,
    /// `AsOf` session-open requests received.
    pub msg_as_of: Counter,
    /// `Cancel` requests received.
    pub msg_cancel: Counter,
    /// Readiness wakeups of the event thread (events or timer ticks).
    pub event_wakeups: Counter,
    /// Request batches handed from the event thread to the worker pool.
    pub dispatches: Counter,
    /// Requests received while the connection already had a request
    /// executing or queued (pipelining in action).
    pub pipelined_requests: Counter,
    /// Session opens refused for missing or wrong credentials.
    pub auth_failures: Counter,
    /// Wall time per request, receipt to response flushed.
    pub request_ns: Histogram,
    /// Frame bytes received.
    pub bytes_in: Counter,
    /// Frame bytes sent.
    pub bytes_out: Counter,
    /// Error responses sent.
    pub errors: Counter,
    /// Result items streamed via `FetchNext` / `FetchBatch`.
    pub items_streamed: Counter,
}

impl NetMetrics {
    /// Fresh, unregistered handles.
    pub fn new() -> NetMetrics {
        NetMetrics::default()
    }

    /// Registers every handle into `registry` under its `sedna_net_*`
    /// name.
    pub fn register_into(&self, registry: &Registry) {
        registry.register_counter(
            "sedna_net_connections_opened_total",
            "TCP connections accepted by the listener",
            &self.connections_opened,
        );
        registry.register_gauge(
            "sedna_net_connections_active",
            "Connections currently being served",
            &self.connections_active,
        );
        registry.register_counter(
            "sedna_net_connections_rejected_total",
            "Connections turned away by admission control (queue full or session limit)",
            &self.connections_rejected,
        );
        registry.register_counter(
            "sedna_net_sessions_opened_total",
            "Wire sessions opened (successful StartSession)",
            &self.sessions_opened,
        );
        registry.register_counter(
            "sedna_net_sessions_closed_total",
            "Wire sessions closed, gracefully or by connection teardown",
            &self.sessions_closed,
        );
        registry.register_gauge(
            "sedna_net_sessions_active",
            "Wire sessions currently open",
            &self.sessions_active,
        );
        registry.register_counter(
            "sedna_net_msg_start_session_total",
            "StartSession requests received",
            &self.msg_start_session,
        );
        registry.register_counter(
            "sedna_net_msg_close_session_total",
            "CloseSession requests received",
            &self.msg_close_session,
        );
        registry.register_counter(
            "sedna_net_msg_begin_total",
            "Begin requests received",
            &self.msg_begin,
        );
        registry.register_counter(
            "sedna_net_msg_commit_total",
            "Commit requests received",
            &self.msg_commit,
        );
        registry.register_counter(
            "sedna_net_msg_rollback_total",
            "Rollback requests received",
            &self.msg_rollback,
        );
        registry.register_counter(
            "sedna_net_msg_execute_total",
            "Execute requests received",
            &self.msg_execute,
        );
        registry.register_counter(
            "sedna_net_msg_fetch_next_total",
            "FetchNext requests received",
            &self.msg_fetch_next,
        );
        registry.register_counter(
            "sedna_net_msg_fetch_batch_total",
            "FetchBatch requests received",
            &self.msg_fetch_batch,
        );
        registry.register_counter(
            "sedna_net_msg_load_xml_total",
            "LoadXml requests received",
            &self.msg_load_xml,
        );
        registry.register_counter(
            "sedna_net_msg_ping_total",
            "Ping requests received",
            &self.msg_ping,
        );
        registry.register_counter(
            "sedna_net_msg_get_metrics_total",
            "GetMetrics requests received",
            &self.msg_get_metrics,
        );
        registry.register_counter(
            "sedna_net_msg_shutdown_total",
            "Shutdown requests received",
            &self.msg_shutdown,
        );
        registry.register_counter(
            "sedna_net_msg_activity_total",
            "Activity requests received",
            &self.msg_activity,
        );
        registry.register_counter(
            "sedna_net_msg_slow_log_total",
            "SlowLog requests received",
            &self.msg_slow_log,
        );
        registry.register_counter(
            "sedna_net_msg_get_trace_total",
            "GetTrace requests received",
            &self.msg_get_trace,
        );
        registry.register_counter(
            "sedna_net_msg_explain_analyze_total",
            "ExplainAnalyze requests received",
            &self.msg_explain_analyze,
        );
        registry.register_counter(
            "sedna_net_msg_fork_total",
            "Fork requests received",
            &self.msg_fork,
        );
        registry.register_counter(
            "sedna_net_msg_drop_fork_total",
            "DropFork requests received",
            &self.msg_drop_fork,
        );
        registry.register_counter(
            "sedna_net_msg_drop_database_total",
            "DropDatabase requests received",
            &self.msg_drop_database,
        );
        registry.register_counter(
            "sedna_net_msg_as_of_total",
            "AsOf session-open requests received",
            &self.msg_as_of,
        );
        registry.register_counter(
            "sedna_net_msg_cancel_total",
            "Cancel requests received",
            &self.msg_cancel,
        );
        registry.register_counter(
            "sedna_net_event_wakeups_total",
            "Readiness wakeups of the event thread (events or timer ticks)",
            &self.event_wakeups,
        );
        registry.register_counter(
            "sedna_net_dispatches_total",
            "Request batches handed from the event thread to the worker pool",
            &self.dispatches,
        );
        registry.register_counter(
            "sedna_net_pipelined_requests_total",
            "Requests received while the connection already had a request executing or queued",
            &self.pipelined_requests,
        );
        registry.register_counter(
            "sedna_net_auth_failures_total",
            "Session opens refused for missing or wrong credentials",
            &self.auth_failures,
        );
        registry.register_histogram(
            "sedna_net_request_ns",
            "Wall time per request, receipt to response flushed (ns)",
            &self.request_ns,
        );
        registry.register_counter(
            "sedna_net_bytes_in_total",
            "Frame bytes received",
            &self.bytes_in,
        );
        registry.register_counter(
            "sedna_net_bytes_out_total",
            "Frame bytes sent",
            &self.bytes_out,
        );
        registry.register_counter(
            "sedna_net_errors_total",
            "Error responses sent",
            &self.errors,
        );
        registry.register_counter(
            "sedna_net_items_streamed_total",
            "Result items streamed via FetchNext and FetchBatch",
            &self.items_streamed,
        );
    }

    /// The per-message-type counter for `code`, if it is a known request
    /// code.
    pub fn msg_counter(&self, code: u8) -> Option<&Counter> {
        use crate::protocol::codes;
        match code {
            codes::START_SESSION => Some(&self.msg_start_session),
            codes::CLOSE_SESSION => Some(&self.msg_close_session),
            codes::BEGIN => Some(&self.msg_begin),
            codes::COMMIT => Some(&self.msg_commit),
            codes::ROLLBACK => Some(&self.msg_rollback),
            codes::EXECUTE => Some(&self.msg_execute),
            codes::FETCH_NEXT => Some(&self.msg_fetch_next),
            codes::FETCH_BATCH => Some(&self.msg_fetch_batch),
            codes::LOAD_XML => Some(&self.msg_load_xml),
            codes::PING => Some(&self.msg_ping),
            codes::GET_METRICS => Some(&self.msg_get_metrics),
            codes::SHUTDOWN => Some(&self.msg_shutdown),
            codes::ACTIVITY => Some(&self.msg_activity),
            codes::SLOW_LOG => Some(&self.msg_slow_log),
            codes::GET_TRACE => Some(&self.msg_get_trace),
            codes::EXPLAIN_ANALYZE => Some(&self.msg_explain_analyze),
            codes::FORK => Some(&self.msg_fork),
            codes::DROP_FORK => Some(&self.msg_drop_fork),
            codes::DROP_DATABASE => Some(&self.msg_drop_database),
            codes::AS_OF => Some(&self.msg_as_of),
            codes::CANCEL => Some(&self.msg_cancel),
            _ => None,
        }
    }
}
