//! # sedna-net
//!
//! The client-server network layer of the Sedna reproduction (Figure 1
//! of the paper): Sedna "is implemented on the client-server
//! architecture"; clients connect to a listener, the governor
//! establishes the connection, and a per-client session component serves
//! statements. This crate provides:
//!
//! * [`protocol`] — the length-prefixed binary wire protocol (v2):
//!   message codes for session control (with credential
//!   authentication), transactions, statement execution, out-of-band
//!   `Cancel`, and item-at-a-time result streaming (`FetchNext`), plus
//!   a structured error envelope;
//! * [`server`] — the non-blocking readiness-loop listener: one event
//!   thread owns every socket (epoll/poll via an internal poller
//!   abstraction), parses frames incrementally, and feeds a bounded
//!   worker pool; supports per-connection request pipelining with
//!   in-order responses, admission control, and graceful
//!   drain-to-checkpoint shutdown;
//! * [`client`] — [`SednaClient`], a blocking Rust client;
//! * [`metrics`] — the `sedna_net_*` metric family, registered into the
//!   governor's registry and exported through
//!   `Governor::render_prometheus`.
//!
//! The `sednad` binary (in `src/bin/`) ties these together into a
//! standalone server process, optionally serving several databases at
//! once (`--db a,b,c`).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
mod conn;
pub mod metrics;
mod poller;
pub mod protocol;
pub mod server;

pub use client::{ClientError, ExecReply, SednaClient};
pub use metrics::NetMetrics;
pub use protocol::{
    ActivityRow, Request, Response, SlowLogRow, DEFAULT_MAX_FRAME, PROTOCOL_VERSION,
};
pub use server::{error_kind, Credentials, NetConfig, Server, ServerHandle};
