//! Idle-heavy admission: the readiness-loop server carries hundreds of
//! mostly-idle connections on a fixed thread count. This test lives in
//! its own binary so the process's OS thread count is deterministic —
//! no sibling tests spawning servers while we measure.

use std::sync::Arc;
use std::time::Duration;

use sedna::{DbConfig, Governor};
use sedna_net::{NetConfig, SednaClient, Server};

/// `Threads:` from `/proc/self/status`; `None` off Linux.
fn os_thread_count() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("Threads:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

#[test]
fn many_idle_connections_are_admitted_without_growing_threads() {
    const TOTAL: usize = 256;
    const ACTIVE: usize = TOTAL / 100; // 1% active, floor at least 1
    const WORKERS: usize = 8;

    let dir = std::env::temp_dir().join(format!("sedna-net-admission-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let governor = Governor::new();
    governor
        .create_database("db", &dir, DbConfig::small())
        .unwrap();
    {
        let mut s = governor.connect("db").unwrap();
        s.execute("CREATE DOCUMENT 'lib'").unwrap();
        s.load_xml("lib", "<library><book><title>T</title></book></library>")
            .unwrap();
    }
    let handle = Server::start(
        Arc::clone(&governor),
        NetConfig {
            workers: WORKERS,
            max_conns: TOTAL + 16,
            poll_interval: Duration::from_millis(5),
            ..NetConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    // Warm the serving path once so anything spawned lazily (WAL,
    // checkpointing) exists before the baseline is taken.
    {
        let mut warm = SednaClient::connect(addr, "db").unwrap();
        warm.query("count(doc('lib')//book)").unwrap();
        warm.close().unwrap();
    }

    // Baseline after the server's fixed complement (event thread +
    // workers) is up.
    let baseline = os_thread_count();

    // Open the idle herd: raw connections that never send a frame.
    let idle: Vec<SednaClient> = (0..TOTAL - ACTIVE)
        .map(|_| SednaClient::connect_admin(addr).unwrap())
        .collect();
    // Give the event thread time to accept and register all of them.
    std::thread::sleep(Duration::from_millis(200));

    // 1% of the population does real work while the rest sit idle.
    let mut active: Vec<SednaClient> = (0..ACTIVE.max(1))
        .map(|_| SednaClient::connect(addr, "db").unwrap())
        .collect();
    for c in &mut active {
        for _ in 0..10 {
            assert_eq!(
                c.query("count(doc('lib')//book)").unwrap(),
                vec!["1".to_string()]
            );
        }
    }

    // The whole herd is admitted (none rejected, none torn down) ...
    let m = handle.metrics();
    assert_eq!(m.connections_rejected.get(), 0);
    assert_eq!(m.connections_active.get(), TOTAL as i64);

    // ... and costs no threads: idle connections are kernel
    // registrations, not stacks. Off Linux there is no cheap portable
    // thread count, so the admission assertions above carry the test.
    if let (Some(before), Some(now)) = (baseline, os_thread_count()) {
        assert_eq!(
            now, before,
            "idle connections must not grow the server's thread count"
        );
    }

    // Idle connections are still live, not silently dropped: each can
    // wake up and be served.
    for mut c in idle.into_iter().take(3) {
        c.ping().unwrap();
    }

    for c in active {
        c.close().unwrap();
    }
    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
