//! End-to-end tests: a real listener on loopback TCP serving
//! [`sedna_net::SednaClient`] sessions against a live database.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sedna::{DbConfig, Governor};
use sedna_net::{
    ClientError, Credentials, ExecReply, NetConfig, Request, Response, SednaClient, Server,
    ServerHandle,
};

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sedna-net-e2e-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One governor, one database `"db"`, one listener on a free loopback
/// port with a fast poll tick.
fn start_server(name: &str, max_sessions: usize) -> (ServerHandle, PathBuf, Arc<Governor>) {
    let dir = tmpdir(name);
    let governor = Governor::new();
    let cfg = DbConfig {
        max_sessions,
        ..DbConfig::small()
    };
    governor.create_database("db", &dir, cfg).unwrap();
    let handle = Server::start(
        Arc::clone(&governor),
        NetConfig {
            poll_interval: Duration::from_millis(5),
            ..NetConfig::default()
        },
    )
    .unwrap();
    (handle, dir, governor)
}

#[test]
fn query_streaming_end_to_end() {
    let (handle, dir, _governor) = start_server("stream", 0);
    let mut c = SednaClient::connect(handle.addr(), "db").unwrap();
    c.ping().unwrap();
    assert_eq!(c.execute("CREATE DOCUMENT 'lib'").unwrap(), ExecReply::Done);
    let nodes = c
        .load_xml(
            "lib",
            "<library><book><title>A</title></book><book><title>B</title></book></library>",
        )
        .unwrap();
    assert!(nodes > 0);

    // Item-at-a-time streaming: an auto-commit query answers with the
    // live-cursor sentinel (cardinality unknown until drained) and the
    // items are pulled one FetchNext at a time.
    assert_eq!(
        c.execute("doc('lib')//title/text()").unwrap(),
        ExecReply::Query(u64::MAX)
    );
    assert_eq!(c.fetch_next().unwrap().as_deref(), Some("A"));
    assert_eq!(c.fetch_next().unwrap().as_deref(), Some("B"));
    assert_eq!(c.fetch_next().unwrap(), None);
    // Fetching past the end stays at ResultEnd.
    assert_eq!(c.fetch_next().unwrap(), None);

    // The convenience wrapper drains the stream.
    assert_eq!(
        c.query("count(doc('lib')//book)").unwrap(),
        vec!["2".to_string()]
    );

    // Batched fetch: both items in one round trip, exhaustion flagged.
    assert_eq!(
        c.execute("doc('lib')//title/text()").unwrap(),
        ExecReply::Query(u64::MAX)
    );
    let (batch, done) = c.fetch_batch(10).unwrap();
    assert_eq!(batch, vec!["A".to_string(), "B".to_string()]);
    assert!(done);

    // Inside an explicit read-only transaction the result is buffered on
    // the session (the cursor cannot carry the session's transaction),
    // so the exact cardinality comes back.
    c.begin_read_only().unwrap();
    assert_eq!(
        c.execute("doc('lib')//title/text()").unwrap(),
        ExecReply::Query(2)
    );
    assert_eq!(c.fetch_next().unwrap().as_deref(), Some("A"));
    let (batch, done) = c.fetch_batch(10).unwrap();
    assert_eq!(batch, vec!["B".to_string()]);
    assert!(done);
    c.commit().unwrap();

    // A new Execute discards the previous result (dropping a live
    // cursor mid-stream releases its transaction).
    assert_eq!(
        c.execute("doc('lib')//title/text()").unwrap(),
        ExecReply::Query(u64::MAX)
    );
    assert_eq!(
        c.query("count(doc('lib')//title)").unwrap(),
        vec!["2".to_string()]
    );

    c.close().unwrap();
    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn large_result_streams_lazily_with_bounded_pins() {
    let (handle, dir, governor) = start_server("large", 0);
    let mut c = SednaClient::connect(handle.addr(), "db").unwrap();
    c.execute("CREATE DOCUMENT 'big'").unwrap();
    let mut xml = String::from("<r>");
    for i in 0..500 {
        xml.push_str(&format!("<v>{i}</v>"));
    }
    xml.push_str("</r>");
    c.load_xml("big", &xml).unwrap();

    let db = governor.database("db").unwrap();
    db.reset_pinned_peak();

    assert_eq!(
        c.execute("doc('big')//v/text()").unwrap(),
        ExecReply::Query(u64::MAX)
    );
    assert_eq!(c.fetch_next().unwrap().as_deref(), Some("0"));
    let mut count = 1usize;
    loop {
        let (batch, done) = c.fetch_batch(100).unwrap();
        count += batch.len();
        if done {
            break;
        }
    }
    assert_eq!(count, 500);
    assert_eq!(db.pinned_pages(), 0, "pins must not leak after a drain");
    let peak = db.pinned_pages_peak();
    assert!(
        peak <= 8,
        "a streamed scan must pin O(pipeline depth) pages, peak was {peak}"
    );

    // Mid-stream abandon: a new Execute drops the live cursor, which
    // releases its pins and read-only transaction immediately.
    assert_eq!(
        c.execute("doc('big')//v/text()").unwrap(),
        ExecReply::Query(u64::MAX)
    );
    assert_eq!(c.fetch_next().unwrap().as_deref(), Some("0"));
    assert_eq!(
        c.query("count(doc('big')//v)").unwrap(),
        vec!["500".to_string()]
    );
    assert_eq!(db.pinned_pages(), 0, "abandoned cursor must release pins");

    c.close().unwrap();
    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn transactions_and_error_envelope() {
    let (handle, dir, _governor) = start_server("txn", 0);
    let mut c = SednaClient::connect(handle.addr(), "db").unwrap();
    c.execute("CREATE DOCUMENT 'd'").unwrap();
    c.load_xml("d", "<r/>").unwrap();

    c.begin().unwrap();
    match c.execute("UPDATE insert <x>1</x> into doc('d')/r").unwrap() {
        ExecReply::Updated(n) => assert!(n >= 1),
        other => panic!("expected an update reply, got {other:?}"),
    }
    c.commit().unwrap();
    assert_eq!(
        c.query("count(doc('d')/r/x)").unwrap(),
        vec!["1".to_string()]
    );

    // Rollback undoes the insert.
    c.begin().unwrap();
    c.execute("UPDATE insert <x>2</x> into doc('d')/r").unwrap();
    c.rollback().unwrap();
    assert_eq!(
        c.query("count(doc('d')/r/x)").unwrap(),
        vec!["1".to_string()]
    );

    // Errors arrive as structured envelopes and do not poison the
    // connection.
    let err = c.execute("doc('no-such-doc')//x").unwrap_err();
    match err {
        ClientError::Server { kind, message } => {
            assert!(!kind.is_empty(), "kind must be machine-readable");
            assert!(!message.is_empty());
        }
        other => panic!("expected a server error envelope, got {other}"),
    }
    c.ping().unwrap();
    assert_eq!(
        c.query("count(doc('d')/r/x)").unwrap(),
        vec!["1".to_string()]
    );

    c.close().unwrap();
    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn session_limit_rejects_then_admits_after_close() {
    let (handle, dir, _governor) = start_server("limit", 1);
    let c1 = SednaClient::connect(handle.addr(), "db").unwrap();
    match SednaClient::connect(handle.addr(), "db").unwrap_err() {
        ClientError::Server { kind, message } => {
            assert_eq!(kind, "conflict");
            assert!(message.contains("session limit"), "message: {message}");
        }
        other => panic!("expected a conflict envelope, got {other}"),
    }
    assert_eq!(handle.metrics().connections_rejected.get(), 1);

    // Closing the first session frees the slot (the server drops the
    // database session before acknowledging CloseSession).
    c1.close().unwrap();
    let c2 = SednaClient::connect(handle.addr(), "db").unwrap();
    c2.close().unwrap();

    // Unknown databases are a not_found envelope.
    match SednaClient::connect(handle.addr(), "no-such-db").unwrap_err() {
        ClientError::Server { kind, .. } => assert_eq!(kind, "not_found"),
        other => panic!("expected a not_found envelope, got {other}"),
    }

    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dropped_connection_aborts_transaction_and_accounting_balances() {
    let (handle, dir, governor) = start_server("abort", 0);
    let mut c = SednaClient::connect(handle.addr(), "db").unwrap();
    c.execute("CREATE DOCUMENT 'd'").unwrap();
    c.load_xml("d", "<r/>").unwrap();

    let mut rogue = SednaClient::connect(handle.addr(), "db").unwrap();
    rogue.begin().unwrap();
    rogue
        .execute("UPDATE insert <x>1</x> into doc('d')/r")
        .unwrap();
    drop(rogue); // vanish mid-transaction: the server must roll back

    let m = handle.metrics();
    let deadline = Instant::now() + Duration::from_secs(5);
    while m.sessions_active.get() > 1 {
        assert!(
            Instant::now() < deadline,
            "server did not reap the dropped session"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        c.query("count(doc('d')/r/x)").unwrap(),
        vec!["0".to_string()]
    );
    assert_eq!(
        m.sessions_opened.get(),
        m.sessions_closed.get() + m.sessions_active.get() as u64
    );
    assert_eq!(governor.database("db").unwrap().active_sessions(), 1);

    c.close().unwrap();
    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn metrics_are_exported_through_the_governor() {
    let (handle, dir, governor) = start_server("metrics", 0);
    let mut c = SednaClient::connect(handle.addr(), "db").unwrap();
    c.ping().unwrap();
    c.execute("CREATE DOCUMENT 'm'").unwrap();
    c.load_xml("m", "<r><v>1</v></r>").unwrap();
    c.query("doc('m')//v/text()").unwrap();

    // Over the wire ...
    let text = c.metrics().unwrap();
    for name in [
        "sedna_net_connections_opened_total",
        "sedna_net_connections_active",
        "sedna_net_connections_rejected_total",
        "sedna_net_sessions_opened_total",
        "sedna_net_msg_ping_total",
        "sedna_net_msg_execute_total",
        "sedna_net_request_ns",
        "sedna_net_bytes_in_total",
        "sedna_net_bytes_out_total",
        "sedna_net_items_streamed_total",
    ] {
        assert!(text.contains(name), "metrics text is missing {name}");
    }
    // ... and the same names next to the database's own metrics in the
    // governor-level rendering.
    let direct = governor.render_prometheus();
    assert!(direct.contains("sedna_net_connections_opened_total"));
    assert!(direct.contains("sedna_db_sessions_active"));

    let m = handle.metrics();
    assert!(m.msg_ping.get() >= 1);
    assert!(m.msg_execute.get() >= 2);
    assert!(m.items_streamed.get() >= 1);
    assert!(m.bytes_in.get() > 0);
    assert!(m.bytes_out.get() > 0);
    // Every served frame took one latency sample.
    assert!(m.request_ns.snapshot().count >= m.msg_execute.get());

    c.close().unwrap();
    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_checkpoints_and_data_survives_reopen() {
    let (handle, dir, _governor) = start_server("persist", 0);
    let mut c = SednaClient::connect(handle.addr(), "db").unwrap();
    c.execute("CREATE DOCUMENT 'lib'").unwrap();
    c.load_xml("lib", "<library><book/><book/></library>")
        .unwrap();
    c.close().unwrap();

    // Drain + Governor::shutdown: WAL flushed, final checkpoint taken.
    let addr = handle.addr();
    handle.shutdown().unwrap();
    assert!(
        SednaClient::connect(addr, "db").is_err(),
        "listener must be closed after shutdown"
    );

    let db = sedna::Database::open(&dir, DbConfig::small()).unwrap();
    let mut s = db.session();
    assert_eq!(s.query("count(doc('lib')//book)").unwrap(), "2");
    drop(s);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn introspection_over_the_wire() {
    // Own setup: this server's database has a 1 ms slow-query threshold
    // (sampling stays off — traces are forced per-request instead).
    let dir = tmpdir("introspect");
    let governor = Governor::new();
    let cfg = DbConfig {
        slow_query_ms: 1,
        ..DbConfig::small()
    };
    governor.create_database("db", &dir, cfg).unwrap();
    let handle = Server::start(
        Arc::clone(&governor),
        NetConfig {
            poll_interval: Duration::from_millis(5),
            ..NetConfig::default()
        },
    )
    .unwrap();

    let mut c = SednaClient::connect(handle.addr(), "db").unwrap();
    c.execute("CREATE DOCUMENT 'big'").unwrap();
    let mut xml = String::from("<r>");
    for i in 0..200 {
        xml.push_str(&format!("<v>{i}</v>"));
    }
    xml.push_str("</r>");
    c.load_xml("big", &xml).unwrap();

    // Live activity: this session is visible, idle, outside a txn.
    let (sessions, pinned) = c.activity().unwrap();
    assert_eq!(sessions.len(), 1);
    assert_eq!(sessions[0].txn, "none");
    assert!(sessions[0].statement.is_none());
    assert!(pinned >= 0);
    // Inside an explicit transaction the mode shows up in the view.
    c.begin_read_only().unwrap();
    let (sessions, _) = c.activity().unwrap();
    assert_eq!(sessions[0].txn, "read-only");
    c.commit().unwrap();

    // Per-request forced trace on a streamed query: published when the
    // cursor finishes, retrievable as Chrome trace-event JSON via
    // GetTrace(0) = "my most recent trace".
    assert_eq!(
        c.execute_traced("doc('big')//v/text()").unwrap(),
        ExecReply::Query(u64::MAX)
    );
    let items = c.fetch_all().unwrap();
    assert_eq!(items.len(), 200);
    let (trace_id, json) = c.get_trace(0).unwrap();
    assert!(trace_id > 0);
    assert!(json.contains("traceEvents"), "json: {json}");
    for event in ["query.statement", "cursor.open", "cursor.finish"] {
        assert!(json.contains(event), "trace is missing {event}: {json}");
    }
    // The same trace is addressable by its id.
    let (again, json2) = c.get_trace(trace_id).unwrap();
    assert_eq!(again, trace_id);
    assert_eq!(json, json2);

    // Streaming bumped the session's items_streamed tally.
    let (sessions, _) = c.activity().unwrap();
    assert!(sessions[0].items_streamed >= 200);

    // EXPLAIN ANALYZE returns the per-operator tree of the streamed
    // pipeline with real pull counts.
    let report = c.explain_analyze("doc('big')//v/text()").unwrap();
    assert!(report.contains("plan"), "report: {report}");
    assert!(report.contains("pulls="), "report: {report}");
    assert!(
        report.contains("Ddo") || report.contains("StructuralScan") || report.contains("Step"),
        "report has no operator lines: {report}"
    );

    // A deliberately heavy query crosses the 1 ms threshold and lands in
    // the slow-query log. Sampling is off, so the trace that the log
    // entry points at is forced per-request here too.
    let heavy = "count(for $a in doc('big')//v return count(doc('big')//v))";
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        c.execute_traced(heavy).unwrap();
        let _ = c.fetch_all();
        let log = c.slow_log().unwrap();
        if let Some(entry) = log.first() {
            assert_eq!(entry.statement, heavy);
            assert!(entry.total_ns >= 1_000_000);
            assert!(entry.trace_id > 0, "slow entry must carry its trace id");
            let (id, trace) = c.get_trace(entry.trace_id).unwrap();
            assert_eq!(id, entry.trace_id);
            assert!(trace.contains("query.statement"));
            break;
        }
        assert!(
            Instant::now() < deadline,
            "heavy query never crossed the slow threshold"
        );
    }

    // The new request types are metered.
    let m = handle.metrics();
    assert!(m.msg_activity.get() >= 3);
    assert!(m.msg_get_trace.get() >= 3);
    assert!(m.msg_slow_log.get() >= 1);
    assert!(m.msg_explain_analyze.get() >= 1);

    c.close().unwrap();
    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn forking_and_time_travel_over_the_wire() {
    // Own setup: the database retains snapshots so AS OF sessions have
    // history to pin.
    let dir = tmpdir("fork");
    let governor = Governor::new();
    let cfg = DbConfig {
        retain_snapshots: 16,
        ..DbConfig::small()
    };
    governor.create_database("db", &dir, cfg).unwrap();
    let handle = Server::start(
        Arc::clone(&governor),
        NetConfig {
            poll_interval: Duration::from_millis(5),
            ..NetConfig::default()
        },
    )
    .unwrap();

    let mut c = SednaClient::connect(handle.addr(), "db").unwrap();
    c.execute("CREATE DOCUMENT 'd'").unwrap();
    c.load_xml("d", "<r><v>1</v></r>").unwrap();

    // Fork through a sessionless admin connection.
    let mut admin = SednaClient::connect_admin(handle.addr()).unwrap();
    admin.ping().unwrap();
    let fork_ts = admin.fork("db", "db-staging").unwrap();
    assert!(fork_ts > 0);
    // Duplicate fork names are refused with a structured conflict.
    match admin.fork("db", "db-staging").unwrap_err() {
        ClientError::Server { kind, .. } => assert_eq!(kind, "conflict"),
        other => panic!("expected a conflict envelope, got {other}"),
    }

    // The fork serves wire sessions under its own name and sees the
    // parent's data.
    let mut f = SednaClient::connect(handle.addr(), "db-staging").unwrap();
    assert_eq!(
        f.query("count(doc('d')//v)").unwrap(),
        vec!["1".to_string()]
    );

    // Divergence is isolated both ways.
    f.execute("UPDATE insert <v>2</v> into doc('d')/r").unwrap();
    c.execute("UPDATE insert <v>3</v> into doc('d')/r").unwrap();
    c.execute("UPDATE insert <v>4</v> into doc('d')/r").unwrap();
    assert_eq!(
        f.query("count(doc('d')//v)").unwrap(),
        vec!["2".to_string()]
    );
    assert_eq!(
        c.query("count(doc('d')//v)").unwrap(),
        vec!["3".to_string()]
    );

    // AS OF: a session pinned to the branch-point snapshot sees the
    // historical state while a concurrent writer keeps committing.
    let mut t = SednaClient::connect_as_of(handle.addr(), "db", fork_ts).unwrap();
    assert_eq!(
        t.query("count(doc('d')//v)").unwrap(),
        vec!["1".to_string()]
    );
    c.execute("UPDATE insert <v>5</v> into doc('d')/r").unwrap();
    assert_eq!(
        t.query("count(doc('d')//v)").unwrap(),
        vec!["1".to_string()]
    );
    // Transaction control and updates are refused on an AS OF session.
    match t.begin().unwrap_err() {
        ClientError::Server { kind, .. } => assert_eq!(kind, "conflict"),
        other => panic!("expected a conflict envelope, got {other}"),
    }
    match t
        .execute("UPDATE insert <v>9</v> into doc('d')/r")
        .unwrap_err()
    {
        ClientError::Server { kind, .. } => assert_eq!(kind, "conflict"),
        other => panic!("expected a conflict envelope, got {other}"),
    }
    t.close().unwrap();

    // Dropping a fork with an active wire session is refused; after the
    // session closes it succeeds.
    match admin.drop_fork("db-staging").unwrap_err() {
        ClientError::Server { kind, .. } => assert_eq!(kind, "conflict"),
        other => panic!("expected a conflict envelope, got {other}"),
    }
    f.close().unwrap();
    admin.drop_fork("db-staging").unwrap();
    // DropFork refuses root databases.
    match admin.drop_fork("db").unwrap_err() {
        ClientError::Server { kind, message } => {
            assert_eq!(kind, "conflict");
            assert!(message.contains("not a fork"), "message: {message}");
        }
        other => panic!("expected a conflict envelope, got {other}"),
    }
    // The dropped fork's name no longer resolves.
    match SednaClient::connect(handle.addr(), "db-staging").unwrap_err() {
        ClientError::Server { kind, .. } => assert_eq!(kind, "not_found"),
        other => panic!("expected a not_found envelope, got {other}"),
    }

    // DropDatabase closes the root and unregisters it (it was refused
    // while the fork was alive — the governor enforces drop order).
    c.close().unwrap();
    admin.drop_database("db").unwrap();
    match SednaClient::connect(handle.addr(), "db").unwrap_err() {
        ClientError::Server { kind, .. } => assert_eq!(kind, "not_found"),
        other => panic!("expected a not_found envelope, got {other}"),
    }

    // Every new message type is metered.
    let m = handle.metrics();
    assert!(m.msg_fork.get() >= 2);
    assert!(m.msg_drop_fork.get() >= 3);
    assert!(m.msg_drop_database.get() >= 1);
    assert!(m.msg_as_of.get() >= 1);

    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wire_shutdown_request_drains_the_server() {
    let (handle, dir, _governor) = start_server("wire-shutdown", 0);
    let c = SednaClient::connect(handle.addr(), "db").unwrap();
    c.shutdown_server().unwrap();

    let deadline = Instant::now() + Duration::from_secs(5);
    while !handle.shutdown_requested() {
        assert!(Instant::now() < deadline, "drain flag never flipped");
        std::thread::sleep(Duration::from_millis(5));
    }
    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Like [`start_server`] but with full control over the listener's
/// [`NetConfig`] (the address is always rewritten to a free loopback
/// port and the poll tick kept fast).
fn start_server_cfg(name: &str, cfg: NetConfig) -> (ServerHandle, PathBuf, Arc<Governor>) {
    let dir = tmpdir(name);
    let governor = Governor::new();
    governor
        .create_database("db", &dir, DbConfig::small())
        .unwrap();
    let handle = Server::start(
        Arc::clone(&governor),
        NetConfig {
            addr: "127.0.0.1:0".into(),
            poll_interval: Duration::from_millis(5),
            ..cfg
        },
    )
    .unwrap();
    (handle, dir, governor)
}

#[test]
fn pipelined_requests_are_answered_in_order_with_interleaved_errors() {
    let (handle, dir, _governor) = start_server("pipeline", 0);
    let mut c = SednaClient::connect(handle.addr(), "db").unwrap();
    c.execute("CREATE DOCUMENT 'lib'").unwrap();
    c.load_xml(
        "lib",
        "<library><book><title>A</title></book><book><title>B</title></book></library>",
    )
    .unwrap();

    // Five requests on the wire before reading a single response. The
    // server may pipeline up to `pipeline_depth` of them, but responses
    // must come back strictly in request order — errors included, and
    // an error must not disturb the requests queued behind it.
    c.send_request(&Request::Ping).unwrap();
    c.send_request(&Request::Execute {
        stmt: "doc('no-such-doc')//x".into(),
        trace: false,
    })
    .unwrap();
    c.send_request(&Request::Ping).unwrap();
    c.send_request(&Request::Execute {
        stmt: "doc('lib')//title/text()".into(),
        trace: false,
    })
    .unwrap();
    c.send_request(&Request::FetchBatch { max: 10 }).unwrap();

    assert!(matches!(c.recv_response().unwrap(), Response::Pong));
    match c.recv_response().unwrap() {
        Response::Error { kind, message } => {
            assert!(!kind.is_empty());
            assert!(!message.is_empty());
        }
        other => panic!("expected the bad statement's error envelope, got {other:?}"),
    }
    assert!(matches!(c.recv_response().unwrap(), Response::Pong));
    assert!(matches!(c.recv_response().unwrap(), Response::QueryOk(_)));
    match c.recv_response().unwrap() {
        Response::ItemBatch { items, done } => {
            assert_eq!(items, vec!["A".to_string(), "B".to_string()]);
            assert!(done);
        }
        other => panic!("expected the pipelined batch, got {other:?}"),
    }

    // The connection stays healthy for plain request/response use.
    assert_eq!(
        c.query("count(doc('lib')//book)").unwrap(),
        vec!["2".to_string()]
    );
    c.close().unwrap();
    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancel_aborts_a_streamed_statement_and_releases_its_resources() {
    let (handle, dir, governor) = start_server("cancel", 0);
    let mut c = SednaClient::connect(handle.addr(), "db").unwrap();
    c.execute("CREATE DOCUMENT 'big'").unwrap();
    let mut xml = String::from("<r>");
    for i in 0..500 {
        xml.push_str(&format!("<v>{i}</v>"));
    }
    xml.push_str("</r>");
    c.load_xml("big", &xml).unwrap();
    let db = governor.database("db").unwrap();

    // Open a live streaming cursor and pull one item, so the statement
    // is genuinely mid-stream: cursor open, read-only transaction held.
    assert_eq!(
        c.execute("doc('big')//v/text()").unwrap(),
        ExecReply::Query(u64::MAX)
    );
    assert_eq!(c.fetch_next().unwrap().as_deref(), Some("0"));

    // Cancel. The ack arrives in request order, and by the time it does
    // the cursor is dropped: pins released, transaction finished.
    c.cancel().unwrap();
    match c.recv_response().unwrap() {
        Response::Cancelled => {}
        other => panic!("expected the Cancelled ack, got {other:?}"),
    }
    assert_eq!(
        db.pinned_pages(),
        0,
        "cancel must release the cursor's pins"
    );

    // The connection is reusable: the abandoned result is simply empty
    // and a fresh statement runs to completion.
    assert!(c.fetch_next().unwrap().is_none());
    assert_eq!(
        c.query("count(doc('big')//v)").unwrap(),
        vec!["500".to_string()]
    );

    // A cancel with nothing running is a no-op that still acks in order.
    c.cancel().unwrap();
    assert!(matches!(c.recv_response().unwrap(), Response::Cancelled));
    c.ping().unwrap();
    c.close().unwrap();

    // Session accounting balances: nothing leaked by the abort path.
    let m = handle.metrics();
    let deadline = Instant::now() + Duration::from_secs(5);
    while m.sessions_active.get() != 0 {
        assert!(Instant::now() < deadline, "cancelled session leaked");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(m.sessions_opened.get(), m.sessions_closed.get());
    assert!(m.msg_cancel.get() >= 2);
    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancel_races_a_pipelined_fetch_without_corrupting_the_stream() {
    let (handle, dir, governor) = start_server("cancel-race", 0);
    let mut c = SednaClient::connect(handle.addr(), "db").unwrap();
    c.execute("CREATE DOCUMENT 'big'").unwrap();
    let mut xml = String::from("<r>");
    for i in 0..300 {
        xml.push_str(&format!("<v>{i}</v>"));
    }
    xml.push_str("</r>");
    c.load_xml("big", &xml).unwrap();
    let db = governor.database("db").unwrap();

    // Execute, FetchBatch, and Cancel pipelined in one burst. The
    // cancel flag is raised the moment the server *parses* the Cancel
    // frame, so the Execute/FetchBatch may be aborted mid-statement
    // (`cancelled` envelopes) or may have already produced results —
    // both are legal; what is fixed is the response order, the ordered
    // Cancelled ack, and that nothing leaks.
    c.send_request(&Request::Execute {
        stmt: "doc('big')//v/text()".into(),
        trace: false,
    })
    .unwrap();
    c.send_request(&Request::FetchBatch { max: 50 }).unwrap();
    c.send_request(&Request::Cancel).unwrap();

    match c.recv_response().unwrap() {
        Response::QueryOk(_) => {}
        Response::Error { kind, .. } => assert_eq!(kind, "cancelled"),
        other => panic!("expected QueryOk or a cancelled envelope, got {other:?}"),
    }
    match c.recv_response().unwrap() {
        Response::ItemBatch { .. } => {}
        Response::Error { kind, .. } => assert_eq!(kind, "cancelled"),
        other => panic!("expected ItemBatch or a cancelled envelope, got {other:?}"),
    }
    assert!(matches!(c.recv_response().unwrap(), Response::Cancelled));

    // Whatever the race decided, the aftermath is clean: no pins, a
    // cleared cancel flag, and a connection that serves new statements.
    assert_eq!(db.pinned_pages(), 0);
    assert_eq!(
        c.query("count(doc('big')//v)").unwrap(),
        vec!["300".to_string()]
    );
    c.close().unwrap();
    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn auth_rejects_bad_credentials_and_protocol_v1_clients() {
    let (handle, dir, _governor) = start_server_cfg(
        "auth",
        NetConfig {
            auth: Some(Credentials {
                user: "admin".into(),
                password: "s3cret".into(),
            }),
            ..NetConfig::default()
        },
    );
    let addr = handle.addr();

    // Empty and wrong credentials are refused with an `auth` envelope
    // and the connection is closed.
    match SednaClient::connect(addr, "db").unwrap_err() {
        ClientError::Server { kind, .. } => assert_eq!(kind, "auth"),
        other => panic!("expected an auth envelope, got {other}"),
    }
    match SednaClient::connect_with_auth(addr, "db", "admin", "wrong").unwrap_err() {
        ClientError::Server { kind, .. } => assert_eq!(kind, "auth"),
        other => panic!("expected an auth envelope, got {other}"),
    }

    // A protocol-v1 StartSession has no credential fields at all, so an
    // authenticating server must turn it away rather than treat it as
    // an empty password.
    let mut v1 = SednaClient::connect_admin(addr).unwrap();
    v1.send_request(&Request::StartSession {
        version: 1,
        database: "db".into(),
        user: String::new(),
        password: String::new(),
    })
    .unwrap();
    match v1.recv_response().unwrap() {
        Response::Error { kind, message } => {
            assert_eq!(kind, "auth");
            assert!(
                message.contains("v2"),
                "message should say how to fix it: {message}"
            );
        }
        other => panic!("expected an auth envelope for the v1 client, got {other:?}"),
    }

    // The right credentials work, and the session is fully functional.
    let mut ok = SednaClient::connect_with_auth(addr, "db", "admin", "s3cret").unwrap();
    ok.execute("CREATE DOCUMENT 'd'").unwrap();
    ok.load_xml("d", "<r><v>1</v></r>").unwrap();
    assert_eq!(
        ok.query("count(doc('d')//v)").unwrap(),
        vec!["1".to_string()]
    );
    ok.close().unwrap();

    let m = handle.metrics();
    assert!(
        m.auth_failures.get() >= 3,
        "three refusals must be counted, got {}",
        m.auth_failures.get()
    );
    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn version_negotiation_keeps_v1_clients_working_and_refuses_unknown_versions() {
    let (handle, dir, _governor) = start_server("v1", 0);
    let addr = handle.addr();

    // A v1 client (no credentials on the wire) round-trips against an
    // unauthenticated v2 server: the frames it sends are byte-identical
    // to the old protocol's.
    let mut v1 = SednaClient::connect_admin(addr).unwrap();
    v1.send_request(&Request::StartSession {
        version: 1,
        database: "db".into(),
        user: String::new(),
        password: String::new(),
    })
    .unwrap();
    assert!(matches!(
        v1.recv_response().unwrap(),
        Response::SessionStarted
    ));
    v1.execute("CREATE DOCUMENT 'd'").unwrap();
    v1.load_xml("d", "<r><v>7</v></r>").unwrap();
    assert_eq!(
        v1.query("doc('d')//v/text()").unwrap(),
        vec!["7".to_string()]
    );
    v1.close().unwrap();

    // Versions the server does not speak are refused with a `protocol`
    // envelope naming the supported range.
    for bad in [0u8, 9] {
        let mut c = SednaClient::connect_admin(addr).unwrap();
        c.send_request(&Request::StartSession {
            version: bad,
            database: "db".into(),
            user: String::new(),
            password: String::new(),
        })
        .unwrap();
        match c.recv_response().unwrap() {
            Response::Error { kind, message } => {
                assert_eq!(kind, "protocol");
                assert!(message.contains("1..=2"), "message: {message}");
            }
            other => panic!("expected a protocol envelope for version {bad}, got {other:?}"),
        }
    }

    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
