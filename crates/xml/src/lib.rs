//! # sedna-xml
//!
//! A from-scratch XML 1.0 (+ Namespaces) processor: pull parser, small
//! owned DOM, and serializer. This is the ingestion substrate of the Sedna
//! reproduction — documents enter the database as a stream of
//! [`XmlEvent`]s which the storage builder (crate `sedna-storage`) turns
//! into schema-clustered blocks.
//!
//! Scope: the subset of XML 1.0 a database loader needs —
//! elements, attributes, character data, CDATA sections, comments,
//! processing instructions, numeric/predefined entity references,
//! namespace declaration and resolution, and well-formedness checking
//! (tag balance, attribute uniqueness, single root). DTDs are skipped,
//! not processed; external entities are rejected (they are a security
//! liability and the paper's system does not rely on them).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dom;
mod escape;
mod event;
mod reader;
pub mod serialize;

pub use dom::{Document, Node};
pub use escape::{escape_attr, escape_text, unescape};
pub use event::{Attribute, QName, XmlEvent};
pub use reader::{XmlError, XmlReader, XmlResult};

/// Parses a complete document into a DOM tree.
pub fn parse(input: &str) -> XmlResult<Document> {
    dom::parse_document(input)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_round_trip() {
        let src = r#"<library><book id="1"><title>Foundations &amp; Aims</title></book><!--c--></library>"#;
        let doc = parse(src).unwrap();
        let out = serialize::to_string(&doc);
        let doc2 = parse(&out).unwrap();
        assert_eq!(serialize::to_string(&doc2), out);
    }
}
