//! The pull parser.

use crate::escape::unescape;
use crate::event::{Attribute, QName, XmlEvent};

/// Errors produced by the XML parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// Malformed input, with a byte offset and description.
    Syntax {
        /// Byte offset into the source where the problem was detected.
        pos: usize,
        /// Human-readable description.
        msg: String,
    },
    /// Well-formed but unsupported construct (e.g. general entities
    /// declared in a DTD).
    Unsupported(String),
}

impl std::fmt::Display for XmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XmlError::Syntax { pos, msg } => write!(f, "XML syntax error at byte {pos}: {msg}"),
            XmlError::Unsupported(msg) => write!(f, "unsupported XML construct: {msg}"),
        }
    }
}

impl std::error::Error for XmlError {}

/// Result alias for the parser.
pub type XmlResult<T> = Result<T, XmlError>;

const XML_NS: &str = "http://www.w3.org/XML/1998/namespace";

/// A pull parser over an in-memory document.
///
/// ```
/// use sedna_xml::{XmlReader, XmlEvent};
/// let mut r = XmlReader::new("<a x='1'>hi</a>");
/// let mut names = Vec::new();
/// while let Some(ev) = r.next_event().unwrap() {
///     if let XmlEvent::StartElement { name, .. } = ev {
///         names.push(name.local.clone());
///     }
/// }
/// assert_eq!(names, ["a"]);
/// ```
pub struct XmlReader<'a> {
    src: &'a str,
    pos: usize,
    /// Open elements, stored as written (prefix kept for matching) plus the
    /// number of namespace bindings each introduced.
    stack: Vec<(QName, usize)>,
    /// In-scope namespace bindings, innermost last.
    bindings: Vec<(Option<String>, Option<String>)>,
    seen_root: bool,
    pending_end: Option<QName>,
    pending_start: Option<XmlEvent>,
}

impl<'a> XmlReader<'a> {
    /// Creates a parser over `src`.
    pub fn new(src: &'a str) -> Self {
        XmlReader {
            src,
            pos: 0,
            stack: Vec::new(),
            bindings: Vec::new(),
            seen_root: false,
            pending_end: None,
            pending_start: None,
        }
    }

    fn err<T>(&self, msg: impl Into<String>) -> XmlResult<T> {
        Err(XmlError::Syntax {
            pos: self.pos,
            msg: msg.into(),
        })
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.rest().starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.peek() {
            if c.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn is_name_start(c: char) -> bool {
        c.is_alphabetic() || c == '_'
    }

    fn is_name_char(c: char) -> bool {
        c.is_alphanumeric() || matches!(c, '_' | '-' | '.')
    }

    /// Parses a possibly-prefixed name, returning `(prefix, local)`.
    fn parse_name(&mut self) -> XmlResult<(Option<String>, String)> {
        let start = self.pos;
        match self.peek() {
            Some(c) if Self::is_name_start(c) => {
                self.bump();
            }
            _ => return self.err("expected a name"),
        }
        while let Some(c) = self.peek() {
            if Self::is_name_char(c) {
                self.bump();
            } else {
                break;
            }
        }
        let first = &self.src[start..self.pos];
        if self.peek() == Some(':') {
            self.bump();
            let lstart = self.pos;
            match self.peek() {
                Some(c) if Self::is_name_start(c) => {
                    self.bump();
                }
                _ => return self.err("expected a local name after ':'"),
            }
            while let Some(c) = self.peek() {
                if Self::is_name_char(c) {
                    self.bump();
                } else {
                    break;
                }
            }
            Ok((
                Some(first.to_string()),
                self.src[lstart..self.pos].to_string(),
            ))
        } else {
            Ok((None, first.to_string()))
        }
    }

    fn resolve(&self, prefix: &Option<String>, is_attr: bool) -> XmlResult<Option<String>> {
        match prefix.as_deref() {
            Some("xml") => return Ok(Some(XML_NS.to_string())),
            Some("xmlns") => return self.err("'xmlns' is not a usable prefix"),
            _ => {}
        }
        // Unprefixed attributes are in no namespace, regardless of the
        // default namespace.
        if is_attr && prefix.is_none() {
            return Ok(None);
        }
        for (p, uri) in self.bindings.iter().rev() {
            if p == prefix {
                return Ok(uri.clone());
            }
        }
        if prefix.is_some() {
            return Err(XmlError::Syntax {
                pos: self.pos,
                msg: format!("unbound namespace prefix '{}'", prefix.as_deref().unwrap()),
            });
        }
        Ok(None)
    }

    fn parse_attr_value(&mut self) -> XmlResult<String> {
        let quote = match self.bump() {
            Some(c @ ('"' | '\'')) => c,
            _ => return self.err("expected a quoted attribute value"),
        };
        let start = self.pos;
        loop {
            match self.peek() {
                None => return self.err("unterminated attribute value"),
                Some(c) if c == quote => break,
                Some('<') => return self.err("'<' is not allowed in attribute values"),
                Some(_) => {
                    self.bump();
                }
            }
        }
        let raw = &self.src[start..self.pos];
        self.bump(); // closing quote
        unescape(raw).ok_or(XmlError::Syntax {
            pos: start,
            msg: format!("bad entity reference in attribute value '{raw}'"),
        })
    }

    fn parse_start_tag(&mut self) -> XmlResult<XmlEvent> {
        let (prefix, local) = self.parse_name()?;
        let mut raw_attrs: Vec<(Option<String>, String, String)> = Vec::new();
        let mut declared: Vec<(Option<String>, Option<String>)> = Vec::new();
        loop {
            let before = self.pos;
            self.skip_ws();
            if self.eat("/>") {
                self.finish_start(prefix, local, raw_attrs, declared, true)?;
                return self.build_start_event();
            }
            if self.eat(">") {
                self.finish_start(prefix, local, raw_attrs, declared, false)?;
                return self.build_start_event();
            }
            if self.pos == before {
                return self.err("expected whitespace before attribute");
            }
            if self.peek().is_none() {
                return self.err("unterminated start tag");
            }
            // Another attribute.
            let (ap, al) = self.parse_name()?;
            self.skip_ws();
            if !self.eat("=") {
                return self.err("expected '=' after attribute name");
            }
            self.skip_ws();
            let value = self.parse_attr_value()?;
            // Namespace declarations.
            if ap.is_none() && al == "xmlns" {
                declared.push((None, if value.is_empty() { None } else { Some(value) }));
            } else if ap.as_deref() == Some("xmlns") {
                if value.is_empty() {
                    return self.err("cannot undeclare a prefixed namespace in XML 1.0");
                }
                declared.push((Some(al), Some(value)));
            } else {
                raw_attrs.push((ap, al, value));
            }
        }
    }

    // Stash for the two-phase start-tag build (declarations must be in
    // scope before names are resolved).
    fn finish_start(
        &mut self,
        prefix: Option<String>,
        local: String,
        raw_attrs: Vec<(Option<String>, String, String)>,
        declared: Vec<(Option<String>, Option<String>)>,
        self_closing: bool,
    ) -> XmlResult<()> {
        let n_bindings = declared.len();
        for (p, uri) in &declared {
            self.bindings.push((p.clone(), uri.clone()));
        }
        let uri = self.resolve(&prefix, false)?;
        let name = QName { prefix, local, uri };
        let mut attributes = Vec::with_capacity(raw_attrs.len());
        for (ap, al, value) in raw_attrs {
            let uri = self.resolve(&ap, true)?;
            let qn = QName {
                prefix: ap,
                local: al,
                uri,
            };
            if attributes
                .iter()
                .any(|a: &Attribute| a.name.matches(&qn) && a.name.prefix == qn.prefix)
                || attributes.iter().any(|a: &Attribute| a.name.matches(&qn))
            {
                return Err(XmlError::Syntax {
                    pos: self.pos,
                    msg: format!("duplicate attribute '{qn}'"),
                });
            }
            attributes.push(Attribute { name: qn, value });
        }
        if self.stack.is_empty() {
            if self.seen_root {
                return self.err("multiple root elements");
            }
            self.seen_root = true;
        }
        self.stack.push((name.clone(), n_bindings));
        if self_closing {
            self.pending_end = Some(name.clone());
        }
        self.pending_start = Some(XmlEvent::StartElement {
            name,
            attributes,
            namespaces: declared
                .into_iter()
                .filter_map(|(p, uri)| uri.map(|u| (p, u)))
                .collect(),
        });
        Ok(())
    }

    fn build_start_event(&mut self) -> XmlResult<XmlEvent> {
        Ok(self.pending_start.take().expect("finish_start ran"))
    }

    fn parse_end_tag(&mut self) -> XmlResult<XmlEvent> {
        let (prefix, local) = self.parse_name()?;
        self.skip_ws();
        if !self.eat(">") {
            return self.err("expected '>' in end tag");
        }
        match self.stack.last() {
            Some((open, _)) if open.prefix == prefix && open.local == local => {
                let (name, n_bindings) = self.stack.pop().unwrap();
                self.bindings.truncate(self.bindings.len() - n_bindings);
                Ok(XmlEvent::EndElement { name })
            }
            Some((open, _)) => Err(XmlError::Syntax {
                pos: self.pos,
                msg: format!(
                    "end tag '</{}{}>' does not match open element '<{}>'",
                    prefix.map(|p| format!("{p}:")).unwrap_or_default(),
                    local,
                    open
                ),
            }),
            None => self.err("end tag with no open element"),
        }
    }

    fn parse_comment(&mut self) -> XmlResult<XmlEvent> {
        let start = self.pos;
        match self.rest().find("--") {
            Some(n) => {
                let content = &self.src[start..start + n];
                self.pos += n;
                if !self.eat("-->") {
                    return self.err("'--' is not allowed inside comments");
                }
                Ok(XmlEvent::Comment(content.to_string()))
            }
            None => self.err("unterminated comment"),
        }
    }

    fn parse_cdata(&mut self) -> XmlResult<XmlEvent> {
        let start = self.pos;
        match self.rest().find("]]>") {
            Some(n) => {
                let content = &self.src[start..start + n];
                self.pos += n + 3;
                Ok(XmlEvent::Text {
                    content: content.to_string(),
                    cdata: true,
                })
            }
            None => self.err("unterminated CDATA section"),
        }
    }

    fn parse_pi(&mut self) -> XmlResult<XmlEvent> {
        let (prefix, target) = self.parse_name()?;
        if prefix.is_some() {
            return self.err("processing-instruction target cannot have a prefix");
        }
        if target.eq_ignore_ascii_case("xml") {
            return self.err("'<?xml' is only allowed at the start of the document");
        }
        self.skip_ws();
        let start = self.pos;
        match self.rest().find("?>") {
            Some(n) => {
                let data = self.src[start..start + n].trim_end().to_string();
                self.pos += n + 2;
                Ok(XmlEvent::ProcessingInstruction { target, data })
            }
            None => self.err("unterminated processing instruction"),
        }
    }

    fn skip_doctype(&mut self) -> XmlResult<()> {
        // We are just past "<!DOCTYPE"; skip to the matching '>'
        // (the internal subset may contain '>' inside [...]).
        let mut depth = 0usize;
        loop {
            match self.bump() {
                None => return self.err("unterminated DOCTYPE"),
                Some('[') => depth += 1,
                Some(']') => depth = depth.saturating_sub(1),
                Some('>') if depth == 0 => return Ok(()),
                Some(_) => {}
            }
        }
    }

    fn parse_text(&mut self) -> XmlResult<XmlEvent> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == '<' {
                break;
            }
            self.bump();
        }
        let raw = &self.src[start..self.pos];
        if self.stack.is_empty() {
            // next_event already skipped prolog/epilog whitespace, so any
            // text reaching here is stray character data.
            return Err(XmlError::Syntax {
                pos: start,
                msg: "character data outside the root element".into(),
            });
        }
        let content = unescape(raw).ok_or(XmlError::Syntax {
            pos: start,
            msg: format!("bad entity reference in text '{}'", raw.trim()),
        })?;
        Ok(XmlEvent::Text {
            content,
            cdata: false,
        })
    }

    /// Returns the next event, or `None` at the well-formed end of the
    /// document.
    pub fn next_event(&mut self) -> XmlResult<Option<XmlEvent>> {
        if let Some(name) = self.pending_end.take() {
            let (popped, n_bindings) = self.stack.pop().expect("self-closing element on stack");
            debug_assert!(popped.matches(&name) || popped.local == name.local);
            self.bindings.truncate(self.bindings.len() - n_bindings);
            return Ok(Some(XmlEvent::EndElement { name }));
        }
        // Prolog: the XML declaration, only at offset 0.
        if self.pos == 0 && self.rest().starts_with("<?xml") {
            match self.rest().find("?>") {
                Some(n) => self.pos += n + 2,
                None => return self.err("unterminated XML declaration"),
            }
        }
        loop {
            if self.rest().is_empty() {
                if let Some((open, _)) = self.stack.last() {
                    return self.err(format!("unclosed element '<{open}>'"));
                }
                if !self.seen_root {
                    return self.err("document has no root element");
                }
                return Ok(None);
            }
            if self.stack.is_empty() {
                // Between prolog/epilog constructs: skip whitespace.
                let before = self.pos;
                self.skip_ws();
                if self.rest().is_empty() {
                    if !self.seen_root {
                        return self.err("document has no root element");
                    }
                    return Ok(None);
                }
                let _ = before;
            }
            if self.eat("<") {
                if self.eat("/") {
                    return self.parse_end_tag().map(Some);
                }
                if self.eat("!--") {
                    return self.parse_comment().map(Some);
                }
                if self.eat("![CDATA[") {
                    if self.stack.is_empty() {
                        return self.err("CDATA outside the root element");
                    }
                    return self.parse_cdata().map(Some);
                }
                if self.eat("!DOCTYPE") {
                    if self.seen_root {
                        return self.err("DOCTYPE after the root element");
                    }
                    self.skip_doctype()?;
                    continue;
                }
                if self.eat("?") {
                    return self.parse_pi().map(Some);
                }
                return self.parse_start_tag().map(Some);
            }
            return self.parse_text().map(Some);
        }
    }

    /// Drains the parser, returning every remaining event.
    pub fn collect_events(mut self) -> XmlResult<Vec<XmlEvent>> {
        let mut out = Vec::new();
        while let Some(ev) = self.next_event()? {
            out.push(ev);
        }
        Ok(out)
    }
}

// Field added after the fact to keep `finish_start` single-pass.
impl<'a> XmlReader<'a> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(src: &str) -> Vec<XmlEvent> {
        XmlReader::new(src).collect_events().unwrap()
    }

    fn parse_err(src: &str) -> XmlError {
        XmlReader::new(src).collect_events().unwrap_err()
    }

    #[test]
    fn simple_element() {
        let evs = events("<a/>");
        assert_eq!(evs.len(), 2);
        assert!(matches!(&evs[0], XmlEvent::StartElement { name, .. } if name.local == "a"));
        assert!(matches!(&evs[1], XmlEvent::EndElement { name } if name.local == "a"));
    }

    #[test]
    fn attributes_and_text() {
        let evs = events(r#"<book id="42" lang='en'>Databases &amp; XML</book>"#);
        match &evs[0] {
            XmlEvent::StartElement { attributes, .. } => {
                assert_eq!(attributes.len(), 2);
                assert_eq!(attributes[0].name.local, "id");
                assert_eq!(attributes[0].value, "42");
                assert_eq!(attributes[1].value, "en");
            }
            other => panic!("expected start element, got {other:?}"),
        }
        assert!(
            matches!(&evs[1], XmlEvent::Text { content, cdata: false } if content == "Databases & XML")
        );
    }

    #[test]
    fn nested_structure_preserved() {
        let evs = events("<a><b><c/></b><b/></a>");
        let opens: Vec<_> = evs
            .iter()
            .filter_map(|e| match e {
                XmlEvent::StartElement { name, .. } => Some(name.local.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(opens, ["a", "b", "c", "b"]);
    }

    #[test]
    fn comments_pis_cdata() {
        let evs = events("<a><!-- note --><?proc do it ?><![CDATA[<raw&>]]></a>");
        assert!(matches!(&evs[1], XmlEvent::Comment(c) if c == " note "));
        assert!(matches!(
            &evs[2],
            XmlEvent::ProcessingInstruction { target, data }
                if target == "proc" && data == "do it"
        ));
        assert!(matches!(&evs[3], XmlEvent::Text { content, cdata: true } if content == "<raw&>"));
    }

    #[test]
    fn prolog_doctype_and_epilog() {
        let evs = events(
            "<?xml version=\"1.0\"?>\n<!DOCTYPE lib [<!ELEMENT a ANY>]>\n<a/>\n<!--done-->\n",
        );
        assert!(matches!(&evs[0], XmlEvent::StartElement { .. }));
        assert!(matches!(evs.last().unwrap(), XmlEvent::Comment(_)));
    }

    #[test]
    fn namespaces_resolve() {
        let evs = events(
            r#"<bk:lib xmlns:bk="urn:books" xmlns="urn:default"><item bk:kind="x"/></bk:lib>"#,
        );
        match &evs[0] {
            XmlEvent::StartElement {
                name, namespaces, ..
            } => {
                assert_eq!(name.uri.as_deref(), Some("urn:books"));
                assert_eq!(namespaces.len(), 2);
            }
            _ => unreachable!(),
        }
        match &evs[1] {
            XmlEvent::StartElement {
                name, attributes, ..
            } => {
                // Unprefixed element takes the default namespace.
                assert_eq!(name.uri.as_deref(), Some("urn:default"));
                // Prefixed attribute resolves; unprefixed attrs would not.
                assert_eq!(attributes[0].name.uri.as_deref(), Some("urn:books"));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn default_namespace_does_not_apply_to_attributes() {
        let evs = events(r#"<a xmlns="urn:d" x="1"/>"#);
        match &evs[0] {
            XmlEvent::StartElement { attributes, .. } => {
                assert_eq!(attributes[0].name.uri, None);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn namespace_scoping_unwinds() {
        let evs = events(r#"<a><b xmlns:p="urn:x"><p:c/></b><d/></a>"#);
        // After </b>, prefix p is gone; <d/> parses fine but <p:d/> would not.
        assert!(matches!(&evs[4], XmlEvent::EndElement { .. }));
        let err = parse_err(r#"<a><b xmlns:p="urn:x"/><p:c/></a>"#);
        assert!(matches!(err, XmlError::Syntax { msg, .. } if msg.contains("unbound")));
    }

    #[test]
    fn mismatched_tags_rejected() {
        assert!(matches!(
            parse_err("<a><b></a></b>"),
            XmlError::Syntax { .. }
        ));
        assert!(matches!(parse_err("<a>"), XmlError::Syntax { .. }));
        assert!(matches!(parse_err("</a>"), XmlError::Syntax { .. }));
    }

    #[test]
    fn multiple_roots_rejected() {
        assert!(matches!(parse_err("<a/><b/>"), XmlError::Syntax { .. }));
    }

    #[test]
    fn empty_and_junk_rejected() {
        assert!(matches!(parse_err(""), XmlError::Syntax { .. }));
        assert!(matches!(parse_err("   "), XmlError::Syntax { .. }));
        assert!(matches!(parse_err("just text"), XmlError::Syntax { .. }));
    }

    #[test]
    fn duplicate_attributes_rejected() {
        assert!(matches!(
            parse_err(r#"<a x="1" x="2"/>"#),
            XmlError::Syntax { msg, .. } if msg.contains("duplicate")
        ));
    }

    #[test]
    fn bad_entities_rejected() {
        assert!(matches!(
            parse_err("<a>&nope;</a>"),
            XmlError::Syntax { .. }
        ));
        assert!(matches!(
            parse_err(r#"<a x="&nope;"/>"#),
            XmlError::Syntax { .. }
        ));
    }

    #[test]
    fn lt_in_attribute_rejected() {
        assert!(matches!(
            parse_err(r#"<a x="a<b"/>"#),
            XmlError::Syntax { .. }
        ));
    }

    #[test]
    fn unicode_names_and_content() {
        let evs = events("<名前 属性=\"値\">ハロー</名前>");
        assert!(matches!(&evs[0], XmlEvent::StartElement { name, .. } if name.local == "名前"));
        assert!(matches!(&evs[1], XmlEvent::Text { content, .. } if content == "ハロー"));
    }

    #[test]
    fn xml_prefix_is_predeclared() {
        let evs = events(r#"<a xml:lang="en"/>"#);
        match &evs[0] {
            XmlEvent::StartElement { attributes, .. } => {
                assert_eq!(
                    attributes[0].name.uri.as_deref(),
                    Some("http://www.w3.org/XML/1998/namespace")
                );
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn whitespace_only_text_inside_root_is_preserved() {
        let evs = events("<a> <b/> </a>");
        let texts: Vec<_> = evs
            .iter()
            .filter_map(|e| match e {
                XmlEvent::Text { content, .. } => Some(content.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(texts, [" ", " "]);
    }
}
