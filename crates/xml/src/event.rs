//! Parser event types and qualified names.

/// A qualified name: optional namespace prefix, local part, and the URI
/// the prefix resolved to at the point of use.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct QName {
    /// The namespace prefix as written (`None` for unprefixed names).
    pub prefix: Option<String>,
    /// The local part of the name.
    pub local: String,
    /// The namespace URI in scope for the prefix (`None` when unbound —
    /// only possible for unprefixed names with no default namespace).
    pub uri: Option<String>,
}

impl QName {
    /// An unprefixed, un-namespaced name.
    pub fn local(name: impl Into<String>) -> QName {
        QName {
            prefix: None,
            local: name.into(),
            uri: None,
        }
    }

    /// The name as written in the source (`prefix:local` or `local`).
    pub fn as_written(&self) -> String {
        match &self.prefix {
            Some(p) => format!("{p}:{}", self.local),
            None => self.local.clone(),
        }
    }

    /// True when local part and namespace URI both match (the XML-standard
    /// notion of name equality, ignoring the prefix spelling).
    pub fn matches(&self, other: &QName) -> bool {
        self.local == other.local && self.uri == other.uri
    }
}

impl std::fmt::Display for QName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(p) = &self.prefix {
            write!(f, "{p}:")?;
        }
        write!(f, "{}", self.local)
    }
}

/// An attribute of a start-element event.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Attribute {
    /// The attribute name.
    pub name: QName,
    /// The attribute value with entities expanded.
    pub value: String,
}

/// One event of the pull parser.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum XmlEvent {
    /// `<name attr="v" ...>` — also emitted for self-closing elements,
    /// immediately followed by the matching [`XmlEvent::EndElement`].
    StartElement {
        /// Element name.
        name: QName,
        /// Attributes in document order, namespace declarations excluded.
        attributes: Vec<Attribute>,
        /// Namespace declarations made on this element:
        /// `(prefix-or-None-for-default, uri)`.
        namespaces: Vec<(Option<String>, String)>,
    },
    /// `</name>` (or the synthetic end of a self-closing element).
    EndElement {
        /// Element name.
        name: QName,
    },
    /// Character data with entities expanded; CDATA content arrives here
    /// too, flagged by `cdata`.
    Text {
        /// The character data.
        content: String,
        /// Whether this run came from a CDATA section.
        cdata: bool,
    },
    /// `<!-- ... -->`
    Comment(String),
    /// `<?target data?>`
    ProcessingInstruction {
        /// The PI target.
        target: String,
        /// The PI data (may be empty).
        data: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qname_display_and_matching() {
        let a = QName {
            prefix: Some("bk".into()),
            local: "title".into(),
            uri: Some("urn:books".into()),
        };
        let b = QName {
            prefix: Some("other".into()),
            local: "title".into(),
            uri: Some("urn:books".into()),
        };
        let c = QName::local("title");
        assert_eq!(a.to_string(), "bk:title");
        assert_eq!(a.as_written(), "bk:title");
        assert_eq!(c.to_string(), "title");
        assert!(a.matches(&b), "same expanded name");
        assert!(!a.matches(&c), "different namespace");
    }
}
