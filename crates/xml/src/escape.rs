//! Entity escaping and expansion.

/// Escapes character data for element content (`&`, `<`, `>`).
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes an attribute value for double-quoted serialization.
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '"' => out.push_str("&quot;"),
            '\n' => out.push_str("&#10;"),
            '\t' => out.push_str("&#9;"),
            _ => out.push(c),
        }
    }
    out
}

/// Expands the predefined and numeric character references in `s`.
/// Returns `None` on a malformed or unknown reference.
pub fn unescape(s: &str) -> Option<String> {
    if !s.contains('&') {
        return Some(s.to_string());
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        rest = &rest[pos + 1..];
        let end = rest.find(';')?;
        let entity = &rest[..end];
        rest = &rest[end + 1..];
        match entity {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "apos" => out.push('\''),
            "quot" => out.push('"'),
            _ => {
                let code = entity.strip_prefix('#')?;
                let n = if let Some(hex) = code.strip_prefix('x').or(code.strip_prefix('X')) {
                    u32::from_str_radix(hex, 16).ok()?
                } else {
                    code.parse::<u32>().ok()?
                };
                out.push(char::from_u32(n)?);
            }
        }
    }
    out.push_str(rest);
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_escaping_round_trips() {
        let raw = "a < b && c > d";
        let esc = escape_text(raw);
        assert_eq!(esc, "a &lt; b &amp;&amp; c &gt; d");
        assert_eq!(unescape(&esc).unwrap(), raw);
    }

    #[test]
    fn attr_escaping_round_trips() {
        let raw = "say \"hi\"\tplease\n& thanks";
        let esc = escape_attr(raw);
        assert!(!esc.contains('"') || esc.contains("&quot;"));
        assert_eq!(unescape(&esc).unwrap(), raw);
    }

    #[test]
    fn numeric_references() {
        assert_eq!(unescape("&#65;&#x42;&#X43;").unwrap(), "ABC");
        assert_eq!(unescape("snow&#x2603;man").unwrap(), "snow\u{2603}man");
    }

    #[test]
    fn malformed_references_rejected() {
        assert!(unescape("&unknown;").is_none());
        assert!(unescape("&#xZZ;").is_none());
        assert!(unescape("&#1114112;").is_none()); // beyond char::MAX
        assert!(unescape("& no semicolon").is_none());
    }

    #[test]
    fn plain_strings_pass_through() {
        assert_eq!(unescape("hello").unwrap(), "hello");
        assert_eq!(escape_text("hello"), "hello");
    }
}
