//! A small owned DOM, used by tests, workload generators, and the query
//! engine's constructed-node values. The database itself never stores DOM
//! trees — documents live in schema-clustered blocks (crate
//! `sedna-storage`).

use crate::event::{Attribute, QName, XmlEvent};
use crate::reader::{XmlReader, XmlResult};

/// A parsed document: the children of the document node.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Document {
    /// Top-level nodes: exactly one element, plus any comments/PIs.
    pub children: Vec<Node>,
}

impl Document {
    /// The root element.
    pub fn root(&self) -> &Node {
        self.children
            .iter()
            .find(|n| matches!(n, Node::Element { .. }))
            .expect("well-formed documents have a root element")
    }
}

/// A DOM node.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Node {
    /// An element with attributes and children.
    Element {
        /// Element name.
        name: QName,
        /// Attributes in document order.
        attributes: Vec<Attribute>,
        /// Child nodes in document order.
        children: Vec<Node>,
    },
    /// A text node (adjacent runs merged).
    Text(String),
    /// A comment.
    Comment(String),
    /// A processing instruction.
    ProcessingInstruction {
        /// PI target.
        target: String,
        /// PI data.
        data: String,
    },
}

impl Node {
    /// Builds an element node.
    pub fn element(name: impl Into<String>, children: Vec<Node>) -> Node {
        Node::Element {
            name: QName::local(name),
            attributes: Vec::new(),
            children,
        }
    }

    /// Builds an element node with attributes.
    pub fn element_with_attrs(
        name: impl Into<String>,
        attrs: Vec<(&str, &str)>,
        children: Vec<Node>,
    ) -> Node {
        Node::Element {
            name: QName::local(name),
            attributes: attrs
                .into_iter()
                .map(|(k, v)| Attribute {
                    name: QName::local(k),
                    value: v.to_string(),
                })
                .collect(),
            children,
        }
    }

    /// Builds a text node.
    pub fn text(content: impl Into<String>) -> Node {
        Node::Text(content.into())
    }

    /// The element name, if this is an element.
    pub fn name(&self) -> Option<&QName> {
        match self {
            Node::Element { name, .. } => Some(name),
            _ => None,
        }
    }

    /// Child nodes (empty for non-elements).
    pub fn children(&self) -> &[Node] {
        match self {
            Node::Element { children, .. } => children,
            _ => &[],
        }
    }

    /// The XPath string-value: concatenated descendant text.
    pub fn string_value(&self) -> String {
        let mut out = String::new();
        self.collect_text(&mut out);
        out
    }

    fn collect_text(&self, out: &mut String) {
        match self {
            Node::Text(t) => out.push_str(t),
            Node::Element { children, .. } => {
                for c in children {
                    c.collect_text(out);
                }
            }
            _ => {}
        }
    }

    /// Total node count of the subtree (elements, text, comments, PIs and
    /// attributes).
    pub fn subtree_size(&self) -> usize {
        match self {
            Node::Element {
                attributes,
                children,
                ..
            } => 1 + attributes.len() + children.iter().map(Node::subtree_size).sum::<usize>(),
            _ => 1,
        }
    }
}

/// Parses a document string into a DOM.
pub fn parse_document(input: &str) -> XmlResult<Document> {
    let mut reader = XmlReader::new(input);
    let mut doc = Document::default();
    // Stack of (element under construction).
    let mut stack: Vec<Node> = Vec::new();

    fn push_child(doc: &mut Document, stack: &mut [Node], node: Node) {
        match stack.last_mut() {
            Some(Node::Element { children, .. }) => {
                // Merge adjacent text runs (CDATA joins plain text).
                if let (Some(Node::Text(prev)), Node::Text(new)) = (children.last_mut(), &node) {
                    prev.push_str(new);
                    return;
                }
                children.push(node);
            }
            _ => doc.children.push(node),
        }
    }

    while let Some(ev) = reader.next_event()? {
        match ev {
            XmlEvent::StartElement {
                name, attributes, ..
            } => {
                stack.push(Node::Element {
                    name,
                    attributes,
                    children: Vec::new(),
                });
            }
            XmlEvent::EndElement { .. } => {
                let done = stack.pop().expect("reader guarantees balance");
                push_child(&mut doc, &mut stack, done);
            }
            XmlEvent::Text { content, .. } => {
                if !stack.is_empty() {
                    push_child(&mut doc, &mut stack, Node::Text(content));
                }
            }
            XmlEvent::Comment(c) => push_child(&mut doc, &mut stack, Node::Comment(c)),
            XmlEvent::ProcessingInstruction { target, data } => push_child(
                &mut doc,
                &mut stack,
                Node::ProcessingInstruction { target, data },
            ),
        }
    }
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_tree_shape() {
        let doc = parse_document("<lib><book><t>A</t></book><book/></lib>").unwrap();
        let root = doc.root();
        assert_eq!(root.name().unwrap().local, "lib");
        assert_eq!(root.children().len(), 2);
        assert_eq!(root.children()[0].children()[0].string_value(), "A");
    }

    #[test]
    fn merges_adjacent_text_and_cdata() {
        let doc = parse_document("<a>one <![CDATA[& two]]> three</a>").unwrap();
        assert_eq!(doc.root().children().len(), 1);
        assert_eq!(doc.root().string_value(), "one & two three");
    }

    #[test]
    fn string_value_crosses_elements() {
        let doc = parse_document("<a>x<b>y<c>z</c></b>w</a>").unwrap();
        assert_eq!(doc.root().string_value(), "xyzw");
    }

    #[test]
    fn subtree_size_counts_everything() {
        let doc = parse_document(r#"<a x="1"><b/>t</a>"#).unwrap();
        // a + attribute + b + text
        assert_eq!(doc.root().subtree_size(), 4);
    }

    #[test]
    fn top_level_comments_kept() {
        let doc = parse_document("<!--pre--><a/><!--post-->").unwrap();
        assert_eq!(doc.children.len(), 3);
        assert!(matches!(&doc.children[0], Node::Comment(c) if c == "pre"));
    }
}
