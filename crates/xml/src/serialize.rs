//! Serialization of DOM trees and event streams back to XML text.

use crate::dom::{Document, Node};
use crate::escape::{escape_attr, escape_text};
use crate::event::XmlEvent;

/// Serializes a document.
pub fn to_string(doc: &Document) -> String {
    let mut out = String::new();
    for child in &doc.children {
        write_node(child, &mut out);
    }
    out
}

/// Serializes a single node (and its subtree).
pub fn node_to_string(node: &Node) -> String {
    let mut out = String::new();
    write_node(node, &mut out);
    out
}

/// Appends the serialization of `node` to `out`.
pub fn write_node(node: &Node, out: &mut String) {
    match node {
        Node::Element {
            name,
            attributes,
            children,
        } => {
            out.push('<');
            out.push_str(&name.as_written());
            for attr in attributes {
                out.push(' ');
                out.push_str(&attr.name.as_written());
                out.push_str("=\"");
                out.push_str(&escape_attr(&attr.value));
                out.push('"');
            }
            if children.is_empty() {
                out.push_str("/>");
            } else {
                out.push('>');
                for c in children {
                    write_node(c, out);
                }
                out.push_str("</");
                out.push_str(&name.as_written());
                out.push('>');
            }
        }
        Node::Text(t) => out.push_str(&escape_text(t)),
        Node::Comment(c) => {
            out.push_str("<!--");
            out.push_str(c);
            out.push_str("-->");
        }
        Node::ProcessingInstruction { target, data } => {
            out.push_str("<?");
            out.push_str(target);
            if !data.is_empty() {
                out.push(' ');
                out.push_str(data);
            }
            out.push_str("?>");
        }
    }
}

/// Serializes an event stream (must be balanced).
pub fn events_to_string(events: &[XmlEvent]) -> String {
    let mut out = String::new();
    let mut iter = events.iter().peekable();
    while let Some(ev) = iter.next() {
        match ev {
            XmlEvent::StartElement {
                name, attributes, ..
            } => {
                out.push('<');
                out.push_str(&name.as_written());
                for attr in attributes {
                    out.push(' ');
                    out.push_str(&attr.name.as_written());
                    out.push_str("=\"");
                    out.push_str(&escape_attr(&attr.value));
                    out.push('"');
                }
                // Collapse immediately-empty elements.
                if matches!(iter.peek(), Some(XmlEvent::EndElement { name: n }) if n == name) {
                    iter.next();
                    out.push_str("/>");
                } else {
                    out.push('>');
                }
            }
            XmlEvent::EndElement { name } => {
                out.push_str("</");
                out.push_str(&name.as_written());
                out.push('>');
            }
            XmlEvent::Text { content, .. } => out.push_str(&escape_text(content)),
            XmlEvent::Comment(c) => {
                out.push_str("<!--");
                out.push_str(c);
                out.push_str("-->");
            }
            XmlEvent::ProcessingInstruction { target, data } => {
                out.push_str("<?");
                out.push_str(target);
                if !data.is_empty() {
                    out.push(' ');
                    out.push_str(data);
                }
                out.push_str("?>");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn dom_round_trip_is_stable() {
        let src = r#"<lib a="x &amp; y"><b>text &lt;here&gt;</b><c/><!--n--><?pi data?></lib>"#;
        let doc = parse(src).unwrap();
        let once = to_string(&doc);
        let twice = to_string(&parse(&once).unwrap());
        assert_eq!(once, twice);
        assert_eq!(parse(&once).unwrap(), doc);
    }

    #[test]
    fn empty_elements_collapse() {
        let doc = parse("<a><b></b></a>").unwrap();
        assert_eq!(to_string(&doc), "<a><b/></a>");
    }

    #[test]
    fn events_round_trip() {
        let src = "<a><b>t</b><c/></a>";
        let events = crate::XmlReader::new(src).collect_events().unwrap();
        assert_eq!(events_to_string(&events), src);
    }

    #[test]
    fn special_chars_escaped_in_output() {
        let doc = parse("<a>&amp;&lt;</a>").unwrap();
        let out = to_string(&doc);
        assert_eq!(out, "<a>&amp;&lt;</a>");
    }
}
