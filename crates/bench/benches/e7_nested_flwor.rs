//! E7 (§5.1.3): loop-invariant binding expressions evaluated lazily.

use criterion::{criterion_group, criterion_main, Criterion};
use sedna_bench::{default_fixture, optimized, run, unoptimized};
use sedna_xquery::exec::ConstructMode;

fn bench(c: &mut Criterion) {
    let fx = default_fixture(&sedna_workload::library(200, 6));
    let q = "count(for $b in doc('lib')/library/book for $p in doc('lib')/library/paper return 1)";
    let opt = optimized(q);
    let base = unoptimized(q);
    assert_eq!(
        run(&fx, &opt, ConstructMode::Embedded).0,
        run(&fx, &base, ConstructMode::Embedded).0
    );
    let mut group = c.benchmark_group("e7_nested_flwor");
    group.sample_size(10);
    group.bench_function("lazy_invariant", |b| {
        b.iter(|| run(&fx, &opt, ConstructMode::Embedded))
    });
    group.bench_function("reevaluated_baseline", |b| {
        b.iter(|| run(&fx, &base, ConstructMode::Embedded))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
