//! E2 (§2, §4.2): pointer dereference — SAS equality-basis mapping vs a
//! swizzling translation table vs a raw in-memory vector.

use criterion::{criterion_group, criterion_main, Criterion};
use sedna_sas::{Sas, SasConfig, TxnToken, View};

fn bench(c: &mut Criterion) {
    let page_size = 4096usize;
    let n_pages = 256u32;
    let sas = Sas::in_memory(SasConfig {
        page_size,
        layer_size: page_size as u64 * 1024,
        buffer_frames: 1024,
        buffer_shards: 0,
    })
    .unwrap();
    let vas = sas.session();
    vas.begin(View::LATEST, Some(TxnToken(1)));
    let mut pages = Vec::new();
    for i in 0..n_pages {
        let (p, mut w) = vas.alloc_page().unwrap();
        w.bytes_mut()[16] = i as u8;
        drop(w);
        pages.push(p);
    }
    let sw = sedna_sas::swizzle::SwizzleSpace::new(sas.clone(), View::LATEST);
    let raw: Vec<Vec<u8>> = (0..n_pages).map(|i| vec![i as u8; 64]).collect();

    let mut group = c.benchmark_group("e2_pointer_deref");
    group.bench_function("raw_vec", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for r in &raw {
                acc += r[16] as u64;
            }
            std::hint::black_box(acc)
        })
    });
    group.bench_function("sas_equality_mapping", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &p in &pages {
                acc += vas.read(p).unwrap()[16] as u64;
            }
            std::hint::black_box(acc)
        })
    });
    group.bench_function("swizzling_table", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &p in &pages {
                acc += sw.read(p).unwrap()[16] as u64;
            }
            std::hint::black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
