//! E4 (§4.1): node moves with the indirection table (O(1) pointer
//! fix-ups) vs direct parent pointers (O(children) rewrites).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use sedna_bench::{fixture, Fixture};
use sedna_schema::{NodeKind, SchemaName};
use sedna_storage::ParentMode;

fn build(mode: ParentMode, fanout: usize) -> Fixture {
    let xml = sedna_workload::flat_records(200, fanout, 5);
    fixture(&xml, 4096, 8192, mode)
}

/// Measures ONLY the mid-document inserts that force splits — the load is
/// done in the (untimed) setup.
fn split_workload(mut fx: Fixture) -> u64 {
    let root = fx.doc.root_element(&fx.vas).unwrap().unwrap();
    let recs = root.children_by_schema(&fx.vas, 0).unwrap();
    let root_h = root.handle(&fx.vas).unwrap();
    let mut left = recs[0].handle(&fx.vas).unwrap();
    let right = recs[1].handle(&fx.vas).unwrap();
    for _ in 0..40 {
        left = fx
            .doc
            .insert_node(
                &fx.vas,
                &mut fx.schema,
                root_h,
                Some(left),
                Some(right),
                NodeKind::Element,
                Some(SchemaName::local("rec")),
                None,
            )
            .unwrap();
    }
    fx.doc.stats.pointer_updates
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_indirection");
    group.sample_size(10);
    for &fanout in &[4usize, 16, 64] {
        group.bench_with_input(
            BenchmarkId::new("indirect_parent", fanout),
            &fanout,
            |b, &f| {
                b.iter_batched(
                    || build(ParentMode::Indirect, f),
                    split_workload,
                    BatchSize::PerIteration,
                )
            },
        );
        group.bench_with_input(
            BenchmarkId::new("direct_parent", fanout),
            &fanout,
            |b, &f| {
                b.iter_batched(
                    || build(ParentMode::Direct, f),
                    split_workload,
                    BatchSize::PerIteration,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
