//! E3 (§4.1.1): the lexicographic numbering scheme never relabels on
//! insert; XISS-style intervals periodically rebuild every label.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sedna_numbering::{LabelAlloc, XissNumbering};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_numbering");
    group.sample_size(10);
    for &n in &[1000usize, 5000] {
        group.bench_with_input(BenchmarkId::new("sedna_front_inserts", n), &n, |b, &n| {
            b.iter(|| {
                let root = LabelAlloc::root();
                let mut first = LabelAlloc::append_child(&root, None);
                for _ in 0..n {
                    first = LabelAlloc::child(&root, None, Some(&first));
                }
                first
            })
        });
        group.bench_with_input(BenchmarkId::new("xiss_front_inserts", n), &n, |b, &n| {
            b.iter(|| {
                let mut doc = XissNumbering::new(64);
                for _ in 0..n {
                    doc.insert(XissNumbering::ROOT, 0);
                }
                doc.relabels()
            })
        });
        // Label operations themselves.
        group.bench_with_input(BenchmarkId::new("ancestor_check", n), &n, |b, _| {
            let root = LabelAlloc::root();
            let child = LabelAlloc::append_child(&root, None);
            let grand = LabelAlloc::append_child(&child, None);
            b.iter(|| {
                std::hint::black_box(root.is_ancestor_of(&grand) && !grand.is_ancestor_of(&root))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
