//! E11 (§6.4): two-step recovery time as a function of the committed work
//! since the last checkpoint.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sedna_bench::TempDb;

fn build_crashed_db(txns: usize) -> TempDb {
    let tmp = TempDb::new("e11", sedna::DbConfig::small());
    let mut s = tmp.db.session();
    s.execute("CREATE DOCUMENT 'lib'").unwrap();
    s.load_xml("lib", &sedna_workload::library(50, 12)).unwrap();
    for i in 0..txns {
        s.execute(&format!(
            "UPDATE insert <author>A{i}</author> into doc('lib')/library/book[1]"
        ))
        .unwrap();
    }
    drop(s);
    tmp.db.clone().crash();
    tmp
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_recovery");
    group.sample_size(10);
    for &txns in &[20usize, 100] {
        let tmp = build_crashed_db(txns);
        group.bench_with_input(
            BenchmarkId::new("reopen_after_crash", txns),
            &txns,
            |b, _| {
                b.iter(|| {
                    let db = sedna::Database::open(tmp.dir(), sedna::DbConfig::small()).unwrap();
                    db.crash(); // keep files for the next iteration
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
