//! E12 (§6.5): full vs incremental hot backup.

use criterion::{criterion_group, criterion_main, Criterion};
use sedna_bench::TempDb;

fn bench(c: &mut Criterion) {
    let tmp = TempDb::new("e12", sedna::DbConfig::small());
    let mut s = tmp.db.session();
    s.execute("CREATE DOCUMENT 'lib'").unwrap();
    s.load_xml("lib", &sedna_workload::library(1000, 13))
        .unwrap();
    drop(s);
    let base = tmp.dir().join("bench-backup-base");
    tmp.db.backup(&base).unwrap();
    // A small update delta for the incremental measurements.
    let mut s = tmp.db.session();
    for i in 0..10 {
        s.execute(&format!(
            "UPDATE insert <author>Z{i}</author> into doc('lib')/library/book[1]"
        ))
        .unwrap();
    }
    drop(s);

    let mut group = c.benchmark_group("e12_hot_backup");
    group.sample_size(10);
    // Incrementals first: every full backup rotates the log, which (by
    // design) invalidates older incremental bases.
    group.bench_function("incremental_backup", |b| {
        b.iter(|| {
            let p = tmp.db.backup_incremental(&base).unwrap();
            let _ = std::fs::remove_file(p);
        })
    });
    let mut n = 0u32;
    group.bench_function("full_backup", |b| {
        b.iter(|| {
            n += 1;
            let dest = tmp.dir().join(format!("full-{n}"));
            tmp.db.backup(&dest).unwrap();
            let _ = std::fs::remove_dir_all(&dest);
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
