//! E8 (§5.1.4): structural location paths over the descriptive schema vs
//! navigational evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use sedna_bench::{default_fixture, optimized, run, unoptimized};
use sedna_xquery::exec::ConstructMode;

fn bench(c: &mut Criterion) {
    let fx = default_fixture(&sedna_workload::auction(1500, 8));
    let q = "count(doc('lib')/site/open_auctions/open_auction/bidder)";
    let opt = optimized(q);
    let base = unoptimized(q);
    assert_eq!(
        run(&fx, &opt, ConstructMode::Embedded).0,
        run(&fx, &base, ConstructMode::Embedded).0
    );
    let mut group = c.benchmark_group("e8_structural_paths");
    group.bench_function("schema_mapped", |b| {
        b.iter(|| run(&fx, &opt, ConstructMode::Embedded))
    });
    group.bench_function("navigational_baseline", |b| {
        b.iter(|| run(&fx, &base, ConstructMode::Embedded))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
