//! E10 (§6.1–§6.3): read-only snapshot transactions next to an updater
//! vs S2PL-locked readers. Measured as reader-transaction latency while
//! a writer holds the document X lock mid-transaction.

use criterion::{criterion_group, criterion_main, Criterion};
use sedna_bench::TempDb;

fn bench(c: &mut Criterion) {
    let tmp = TempDb::new("e10", sedna::DbConfig::small());
    let mut s = tmp.db.session();
    s.execute("CREATE DOCUMENT 'lib'").unwrap();
    s.load_xml("lib", &sedna_workload::library(200, 10))
        .unwrap();
    drop(s);

    // A writer parks mid-transaction, holding the document X lock.
    let mut writer = tmp.db.session();
    writer.begin_update().unwrap();
    writer
        .execute("UPDATE insert <author>InFlight</author> into doc('lib')/library/book[1]")
        .unwrap();

    let mut group = c.benchmark_group("e10_mvcc_readers");
    group.sample_size(20);
    group.bench_function("snapshot_reader_txn", |b| {
        let mut r = tmp.db.session();
        b.iter(|| {
            r.begin_read_only().unwrap();
            let n = r.query("count(doc('lib')//book)").unwrap();
            r.commit().unwrap();
            n
        })
    });
    // The S2PL-only baseline cannot run while the writer holds X — that
    // IS the claim; measure it with the writer committed, where the two
    // schemes differ only by locking overhead, and demonstrate blocking
    // separately in tests/report.
    writer.commit().unwrap();
    group.bench_function("s2pl_reader_txn_uncontended", |b| {
        let mut r = tmp.db.session();
        b.iter(|| {
            r.begin_update().unwrap();
            let n = r.query("count(doc('lib')//book)").unwrap();
            r.commit().unwrap();
            n
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
