//! E6 (§5.1.2): `//para` combined into `/descendant::para`.

use criterion::{criterion_group, criterion_main, Criterion};
use sedna_bench::{default_fixture, optimized, run, unoptimized};
use sedna_xquery::exec::ConstructMode;

fn bench(c: &mut Criterion) {
    let fx = default_fixture(&sedna_workload::deep(60, 8, 4));
    let q = "count(doc('lib')//para)";
    let opt = optimized(q);
    let base = unoptimized(q);
    assert_eq!(
        run(&fx, &opt, ConstructMode::Embedded).0,
        run(&fx, &base, ConstructMode::Embedded).0
    );
    let mut group = c.benchmark_group("e6_descendant_rewrite");
    group.bench_function("combined_descendant", |b| {
        b.iter(|| run(&fx, &opt, ConstructMode::Embedded))
    });
    group.bench_function("naive_descendant_or_self", |b| {
        b.iter(|| run(&fx, &base, ConstructMode::Embedded))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
