//! E1 (§2, §4.1): schema-driven clustering vs subtree clustering.
//!
//! Workloads: (a) typed sub-element value scan, (b) predicate selection,
//! (c) whole-element reconstruction — over the Figure-2-style library at
//! two scales. The paper's claim: schema clustering wins (a) and (b)
//! because "unnecessary nodes are not fetched from disk"; subtree
//! clustering wins (c) via contiguous reads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sedna_bench::{fixture, optimized, run};
use sedna_storage::subtree::SubtreeStore;
use sedna_storage::ParentMode;
use sedna_xquery::exec::ConstructMode;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_storage_strategy");
    group.sample_size(10);
    for &books in &[200usize, 1000] {
        let xml = sedna_workload::library(books, 11);
        let fx = fixture(&xml, 4096, 8192, ParentMode::Indirect);
        let dom = sedna_xml::parse(&xml).unwrap();
        let sub = SubtreeStore::build(&fx.vas, &dom).unwrap();

        let typed = optimized("for $p in doc('lib')/library/book/price return string($p)");
        group.bench_with_input(
            BenchmarkId::new("typed_scan/schema", books),
            &books,
            |b, _| b.iter(|| run(&fx, &typed, ConstructMode::Embedded)),
        );
        group.bench_with_input(
            BenchmarkId::new("typed_scan/subtree", books),
            &books,
            |b, _| b.iter(|| sub.scan_element_values(&fx.vas, "price").unwrap()),
        );

        let pred = optimized("count(doc('lib')/library/book[issue/year > 1995])");
        group.bench_with_input(
            BenchmarkId::new("predicate/schema", books),
            &books,
            |b, _| b.iter(|| run(&fx, &pred, ConstructMode::Embedded)),
        );
        group.bench_with_input(
            BenchmarkId::new("predicate/subtree_fullscan", books),
            &books,
            |b, _| b.iter(|| sub.scan_element_values(&fx.vas, "year").unwrap()),
        );

        let whole = optimized("doc('lib')/library/book");
        let offsets = sub.find_elements(&fx.vas, "book").unwrap();
        group.bench_with_input(
            BenchmarkId::new("whole_elem/schema", books),
            &books,
            |b, _| b.iter(|| run(&fx, &whole, ConstructMode::Embedded)),
        );
        group.bench_with_input(
            BenchmarkId::new("whole_elem/subtree", books),
            &books,
            |b, _| {
                b.iter(|| {
                    for &o in &offsets {
                        let _ = sub.read_subtree(&fx.vas, o).unwrap();
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
