//! E5 (§5.1.1): removing unnecessary distinct-document-order operations.

use criterion::{criterion_group, criterion_main, Criterion};
use sedna_bench::{default_fixture, optimized, run, unoptimized};
use sedna_xquery::exec::ConstructMode;

fn bench(c: &mut Criterion) {
    let fx = default_fixture(&sedna_workload::library(1500, 3));
    let q = "count(doc('lib')/library/book/author)";
    let opt = optimized(q);
    let base = unoptimized(q);
    assert_eq!(
        run(&fx, &opt, ConstructMode::Embedded).0,
        run(&fx, &base, ConstructMode::Embedded).0
    );
    let mut group = c.benchmark_group("e5_ddo_removal");
    group.sample_size(20);
    group.bench_function("ddo_removed", |b| {
        b.iter(|| run(&fx, &opt, ConstructMode::Embedded))
    });
    group.bench_function("ddo_kept_baseline", |b| {
        b.iter(|| run(&fx, &base, ConstructMode::Embedded))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
