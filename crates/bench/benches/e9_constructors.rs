//! E9 (§5.2.1): element constructors — deep copy vs embedded vs virtual.

use criterion::{criterion_group, criterion_main, Criterion};
use sedna_bench::{default_fixture, optimized, run};
use sedna_xquery::exec::ConstructMode;

fn bench(c: &mut Criterion) {
    let fx = default_fixture(&sedna_workload::library(400, 9));
    let q = "<report><section><books>{doc('lib')/library/book}</books></section></report>";
    let stmt = optimized(q);
    let mut group = c.benchmark_group("e9_constructors");
    group.sample_size(10);
    group.bench_function("deep_copy_baseline", |b| {
        b.iter(|| run(&fx, &stmt, ConstructMode::DeepCopy))
    });
    group.bench_function("embedded", |b| {
        b.iter(|| run(&fx, &stmt, ConstructMode::Embedded))
    });
    group.bench_function("virtual", |b| {
        b.iter(|| run(&fx, &stmt, ConstructMode::Virtual))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
