//! Design-choice ablations called out in DESIGN.md:
//! page size, buffer-pool size, and lock granularity (document vs the
//! finer-granularity subtree extension).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sedna_bench::{fixture, optimized, run};
use sedna_sas::XPtr;
use sedna_storage::ParentMode;
use sedna_txn::{LockManager, LockMode, TxnId};
use sedna_xquery::exec::ConstructMode;

fn page_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_page_size");
    group.sample_size(10);
    let xml = sedna_workload::library(800, 21);
    let q = optimized("count(doc('lib')/library/book[issue/year > 1995])");
    for &ps in &[4096usize, 16 * 1024, 64 * 1024] {
        let fx = fixture(
            &xml,
            ps,
            1 << 26 >> ps.trailing_zeros(),
            ParentMode::Indirect,
        );
        group.bench_with_input(BenchmarkId::new("predicate_query", ps), &ps, |b, _| {
            b.iter(|| run(&fx, &q, ConstructMode::Embedded))
        });
    }
    group.finish();
}

fn buffer_frames(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_buffer_frames");
    group.sample_size(10);
    let xml = sedna_workload::library(800, 22);
    let q = optimized("count(doc('lib')//author)");
    for &frames in &[32usize, 128, 2048] {
        let fx = fixture(&xml, 4096, frames, ParentMode::Indirect);
        group.bench_with_input(
            BenchmarkId::new("descendant_count", frames),
            &frames,
            |b, _| b.iter(|| run(&fx, &q, ConstructMode::Embedded)),
        );
    }
    group.finish();
}

fn lock_granularity(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_lock_granularity");
    // Two writers on disjoint subtrees of one document: document-level
    // locks serialize them; subtree locks (the paper's future-work
    // extension) let both proceed. Measured as lock acquire+release cost
    // per scheme (the blocking effect is shown in the lock-manager tests).
    let lm = LockManager::default();
    let s1 = XPtr::new(1, 4096);
    group.bench_function("document_level", |b| {
        b.iter(|| {
            lm.lock_document(TxnId(1), 7, LockMode::X).unwrap();
            lm.release_all(TxnId(1));
        })
    });
    group.bench_function("subtree_level", |b| {
        b.iter(|| {
            lm.lock_subtree(TxnId(1), 7, s1, LockMode::X).unwrap();
            lm.release_all(TxnId(1));
        })
    });
    group.finish();
}

fn buffer_shards(c: &mut Criterion) {
    use sedna_sas::{BufferPool, MemPageStore, PageStore};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Barrier};

    // Warm-pool lookups from 4 threads while criterion times a 5th: the
    // contention profile the sharded page table is built for.
    let mut group = c.benchmark_group("ablation_buffer_shards");
    group.sample_size(10);
    const PS: usize = 4096;
    const PAGES: usize = 512;
    for &shards in &[1usize, 2, 4, 8] {
        let pool = Arc::new(BufferPool::with_shards(1024, PS, shards));
        let store = Arc::new(MemPageStore::new(PS));
        let mut pages = Vec::new();
        for i in 0..PAGES {
            let page = XPtr::new(0, ((i + 1) * PS) as u32);
            let phys = store.alloc().unwrap();
            pool.acquire_fresh(page, phys, store.as_ref()).unwrap();
            pages.push((page, phys));
        }
        let pages = Arc::new(pages);
        let stop = Arc::new(AtomicBool::new(false));
        let gate = Arc::new(Barrier::new(5));
        let background: Vec<_> = (0..4)
            .map(|t| {
                let pool = Arc::clone(&pool);
                let store = Arc::clone(&store);
                let pages = Arc::clone(&pages);
                let stop = Arc::clone(&stop);
                let gate = Arc::clone(&gate);
                std::thread::spawn(move || {
                    let mut x = (t as u64 + 1) * 0x9E37_79B9;
                    gate.wait();
                    // relaxed: a plain stop flag; no data is published through it.
                    while !stop.load(Ordering::Relaxed) {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let (page, phys) = pages[(x % PAGES as u64) as usize];
                        let fref = pool.acquire(page, phys, store.as_ref()).unwrap();
                        std::hint::black_box(pool.try_read(&fref, phys).unwrap().bytes()[0]);
                    }
                })
            })
            .collect();
        gate.wait();
        group.bench_with_input(
            BenchmarkId::new("contended_lookup", shards),
            &shards,
            |b, _| {
                let mut i = 0usize;
                b.iter(|| {
                    let (page, phys) = pages[i % PAGES];
                    i += 1;
                    let fref = pool.acquire(page, phys, store.as_ref()).unwrap();
                    std::hint::black_box(pool.try_read(&fref, phys).unwrap().bytes()[0]);
                })
            },
        );
        // relaxed: a plain stop flag; no data is published through it.
        stop.store(true, Ordering::Relaxed);
        for h in background {
            h.join().unwrap();
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    page_size,
    buffer_frames,
    lock_granularity,
    buffer_shards
);
criterion_main!(benches);
